/**
 * @file
 * cxl_checkd: the long-lived checker daemon — a warm CheckSession
 * pool plus a memoized result cache behind a Unix-domain socket, so
 * a farm of protocol-variant queries never cold-starts a model (or
 * re-explores a space it already answered).
 *
 * Usage:
 *   cxl_checkd --socket PATH [--workers N] [--cache-entries N]
 *              [--queue-depth N] [--default-max-seconds S]
 *              [--corpus DIR] [--stats]
 *              [standard engine flags]
 *
 * The standard flags (--threads, --sym/--no-sym, --compact,
 * --por/--no-por, --ws/--bfs, --max-states, --max-seconds, ...) set
 * the per-request engine *defaults*; each request may override any
 * knob (see src/serve/protocol.hh).  `--default-max-seconds` is the
 * safety net applied to requests that carry no wall-clock budget of
 * their own.  `--corpus DIR` promotes fuzz-discovered scenarios into
 * the registry first, exactly like `cxl_check --corpus`.
 *
 * Signals: SIGINT/SIGTERM begin a graceful drain — in-flight runs
 * are cancelled and answered as governed Incompletes, queued
 * connections are turned away, then the daemon exits 0.  SIGUSR1
 * dumps the stats counters to stderr; `--stats` also dumps them at
 * shutdown.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "api/options.hh"
#include "serve/server.hh"

using namespace cxl;

namespace
{

volatile std::sig_atomic_t g_usr1 = 0;

extern "C" void
usr1Handler(int)
{
    g_usr1 = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    api::corpusOption(args);

    const std::string socket_path = args.get("socket", "");
    if (socket_path.empty()) {
        std::fprintf(
            stderr,
            "usage: cxl_checkd --socket PATH [--workers N] "
            "[--cache-entries N] [--queue-depth N] "
            "[--default-max-seconds S] [--corpus DIR] [--stats] "
            "[engine flags]\n");
        return 2;
    }

    // Claim the signal bridge *before* standardOptions arms the
    // every-CLI one: first-install-wins hands both call sites the
    // same token, and the daemon uses it as its drain trigger.
    const CancelToken drain_token =
        installSignalCancel(CancelToken::create());

    api::StandardOptions opts = api::standardOptions(args);

    serve::ServerOptions sopts;
    sopts.socketPath = socket_path;
    sopts.engine = opts.engine;

    const std::int64_t workers = args.getInt("workers", 2);
    if (workers < 1) {
        std::fprintf(stderr,
                     "--workers %lld out of range (want >= 1)\n",
                     static_cast<long long>(workers));
        return 2;
    }
    sopts.workers = static_cast<std::size_t>(workers);

    const std::int64_t cache_entries =
        args.getInt("cache-entries", 256);
    if (cache_entries < 0) {
        std::fprintf(
            stderr,
            "--cache-entries %lld out of range (want >= 0)\n",
            static_cast<long long>(cache_entries));
        return 2;
    }
    sopts.cacheEntries = static_cast<std::size_t>(cache_entries);

    const std::int64_t queue_depth = args.getInt("queue-depth", 64);
    if (queue_depth < 1) {
        std::fprintf(stderr,
                     "--queue-depth %lld out of range (want >= 1)\n",
                     static_cast<long long>(queue_depth));
        return 2;
    }
    sopts.queueDepth = static_cast<std::size_t>(queue_depth);

    if (args.has("default-max-seconds")) {
        const std::string raw = args.get("default-max-seconds", "");
        char *end = nullptr;
        const double secs = std::strtod(raw.c_str(), &end);
        if (raw.empty() || end == raw.c_str() || *end != '\0' ||
            !(secs > 0)) {
            std::fprintf(stderr,
                         "--default-max-seconds '%s' out of range "
                         "(want a positive number of seconds)\n",
                         raw.c_str());
            return 2;
        }
        sopts.defaultMaxSeconds = secs;
    }

    serve::Server server(std::move(sopts));
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cxl_checkd: %s\n", e.what());
        return 2;
    }
    std::fprintf(stderr,
                 "cxl_checkd: serving on %s (%lld workers, cache "
                 "%lld entries)\n",
                 server.socketPath().c_str(),
                 static_cast<long long>(workers),
                 static_cast<long long>(cache_entries));

    std::signal(SIGUSR1, usr1Handler);

    while (!drain_token.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (g_usr1) {
            g_usr1 = 0;
            std::fputs(server.stats().renderText().c_str(), stderr);
        }
    }

    std::fprintf(stderr, "cxl_checkd: draining...\n");
    server.drain();
    if (args.has("stats"))
        std::fputs(server.stats().renderText().c_str(), stderr);
    std::fprintf(stderr, "cxl_checkd: bye\n");
    return 0;
}
