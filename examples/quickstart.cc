/**
 * @file
 * Quickstart: verify the SWMR property plus the full strengthened
 * invariant on every reachable state of the CXL.cache model — the
 * executable counterpart of the paper's Theorem 6.2, in one
 * CheckSession request.
 */

#include <cstdio>

#include "api/check.hh"
#include "api/options.hh"

int
main(int argc, char **argv)
{
    using namespace cxl;
    CliArgs args(argc, argv);

    api::StandardOptions opts = api::standardOptions(args);

    // One session can serve many requests (configs, device counts,
    // thread sweeps) off shared model caches; this demo needs one.
    CheckSession session(opts.engine);

    CheckRequest request;
    request.scenario = "free-run"; // scenarios::byName lists the rest
    request.devices = opts.devices;

    CheckResult result = session.run(request);
    std::printf("%s", result.renderText().c_str());
    return result.holds() ? 0 : 1;
}
