/**
 * @file
 * Quickstart: build the CXL.cache model, exhaustively enumerate its
 * reachable states in free-run mode, and verify the SWMR property plus
 * the full strengthened invariant on every state — the executable
 * counterpart of the paper's Theorem 6.2.
 */

#include <cstdio>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "litmus/trace_table.hh"
#include "protocol/rules.hh"
#include "support/cli.hh"

using namespace cxl;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet invariants = InvariantSet::full(config);

    std::printf("CXL.cache model: %zu rules, %zu invariant conjuncts\n",
                rules.rules().size(), invariants.size());

    Explorer explorer(rules, scenario, invariants);
    ExploreOptions options;
    options.numThreads = threadCountOption(args); // --threads N
    ExploreResult result = explorer.run(options);

    std::printf("reachable states : %llu\n",
                static_cast<unsigned long long>(result.numStates));
    std::printf("transitions      : %llu\n",
                static_cast<unsigned long long>(result.numTransitions));
    std::printf("diameter         : %u\n", result.maxDepth);
    std::printf("exploration time : %.3f s\n", result.seconds);

    std::size_t fired = 0;
    for (std::size_t r = 0; r < rules.rules().size(); ++r)
        fired += result.ruleFireCounts[r] > 0 ? 1 : 0;
    std::printf("rules exercised  : %zu / %zu\n", fired,
                rules.rules().size());

    if (result.violation) {
        std::printf("VIOLATION: %s\n",
                    result.violation->describe().c_str());
        std::printf("%s\n",
                    renderTraceTable(result.violation->trace, scenario,
                                     {StateColumn::DCache1,
                                      StateColumn::HCache,
                                      StateColumn::DCache2,
                                      StateColumn::H2DReq1,
                                      StateColumn::H2DRsp1,
                                      StateColumn::H2DReq2,
                                      StateColumn::H2DRsp2,
                                      StateColumn::D2HRsp1,
                                      StateColumn::D2HRsp2})
                        .c_str());
        std::printf("bad state:\n%s\n",
                    result.violation->trace.back().state.dump().c_str());
        return 1;
    }

    std::printf("SWMR and all %zu conjuncts hold on every reachable "
                "state.\n",
                invariants.size());
    return 0;
}
