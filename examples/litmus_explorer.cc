/**
 * @file
 * Example: exploring litmus scenarios from the command line.
 *
 * Define a scenario with per-device programs, exhaustively explore
 * every interleaving through a CheckSession, and print the terminal
 * states plus a paper-style transition table for one representative
 * path — the workflow of paper Section 5.1 ("scenario verification").
 *
 * Usage:
 *   litmus_explorer --prog1 LSE --prog2 L [--init shared|invalid|dirty]
 *                   [--devices N] [--prog3 ...] [--prog4 ...]
 *                   [--list] [--run <name>]
 *
 * Program strings: L = Load, S = Store, E = Evict (empty = idle
 * device).
 */

#include <cstdio>
#include <cstring>

#include "api/check.hh"
#include "litmus/trace_table.hh"
#include "support/cli.hh"

using namespace cxl;

namespace
{

std::vector<Instr>
parseProgram(const std::string &txt)
{
    std::vector<Instr> prog;
    for (char c : txt) {
        switch (c) {
          case 'L': case 'l': prog.push_back(Instr::Load); break;
          case 'S': case 's': prog.push_back(Instr::Store); break;
          case 'E': case 'e': prog.push_back(Instr::Evict); break;
          default:
            std::fprintf(stderr, "unknown instruction '%c'\n", c);
            std::exit(2);
        }
    }
    return prog;
}

int
runNamed(CheckSession &session, const std::string &name)
{
    for (const auto &suite :
         {builtinLitmusSuite(), restrictionRelaxationSuite()}) {
        for (const LitmusTest &test : suite) {
            if (test.name != name)
                continue;
            std::printf("%s: %s\n", test.name.c_str(),
                        test.description.c_str());
            LitmusOutcome out = session.litmus(test);
            std::printf("result: %s (%llu states)\n",
                        out.passed ? "PASS" : "FAIL",
                        static_cast<unsigned long long>(
                            out.explore.numStates));
            if (!out.passed)
                std::printf("%s\n", out.message.c_str());
            return out.passed ? 0 : 1;
        }
    }
    std::fprintf(stderr, "no litmus test named '%s'\n", name.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    CheckSession session;

    if (args.has("list")) {
        for (const auto &suite :
             {builtinLitmusSuite(), restrictionRelaxationSuite()}) {
            for (const LitmusTest &test : suite)
                std::printf("%-26s %s\n", test.name.c_str(),
                            test.description.c_str());
        }
        return 0;
    }
    if (args.has("run")) {
        if (args.has("devices")) {
            std::fprintf(stderr, "--devices is ignored with --run: "
                                 "named tests fix their own device "
                                 "count\n");
        }
        return runNamed(session, args.get("run", ""));
    }

    const int devices = deviceCountOption(args, kMaxDevices);
    for (int d = devices; d < kMaxDevices; ++d) {
        const std::string flag = "prog" + std::to_string(d + 1);
        if (args.has(flag)) {
            std::fprintf(stderr,
                         "--%s given but only %d device(s) active; "
                         "raise --devices\n",
                         flag.c_str(), devices);
            return 2;
        }
    }

    Scenario sc;
    sc.name = "custom";
    std::string init = args.get("init", "invalid");
    if (init == "shared")
        sc.initial = initialBothShared(0, devices);
    else if (init == "dirty")
        sc.initial = initialOneModified(0, 1, 0, devices);
    else
        sc.initial = initialAllInvalid(0, devices);
    for (int d = 0; d < devices; ++d) {
        const std::string flag = "prog" + std::to_string(d + 1);
        const char *fallback = d == 0 ? "S" : d == 1 ? "L" : "";
        sc.program[d] = parseProgram(args.get(flag, fallback));
    }

    LitmusTest test;
    test.name = sc.name;
    test.scenario = sc;
    LitmusOutcome out = session.litmus(test);

    std::printf("explored %llu states / %llu transitions; %zu distinct "
                "terminal state(s); invariants %s\n\n",
                static_cast<unsigned long long>(out.explore.numStates),
                static_cast<unsigned long long>(
                    out.explore.numTransitions),
                out.finals.size(),
                out.passed ? "hold everywhere" : "VIOLATED");

    for (std::size_t k = 0; k < out.finals.size(); ++k)
        std::printf("terminal %zu: %s\n", k + 1,
                    out.finals[k].brief().c_str());

    if (out.explore.violation) {
        std::printf("\nviolation: %s\n%s\n",
                    out.explore.violation->describe().c_str(),
                    renderTraceTable(out.explore.violation->trace, sc,
                                     defaultTraceColumns(devices))
                        .c_str());
    }
    return out.passed ? 0 : 1;
}
