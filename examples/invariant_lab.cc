/**
 * @file
 * Example: the iterative invariant-strengthening loop of paper
 * Section 7.1, interactive edition.
 *
 * Starts from bare SWMR, runs the obligation matrix over a boundary
 * universe through the CheckSession façade, groups the failing cells
 * by conjunct, and shows a concrete witness transition for the first
 * failure — the exact feedback the paper's authors worked from for a
 * few dozen iterations until their invariant converged at 796
 * conjuncts.
 *
 * Usage:
 *   invariant_lab [--iteration 0..3] [--witnesses N] [--devices N]
 */

#include <cstdio>
#include <map>

#include "api/check.hh"
#include "api/options.hh"
#include "support/table.hh"

using namespace cxl;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int iteration = static_cast<int>(args.getInt("iteration", 0));
    int witnesses = static_cast<int>(args.getInt("witnesses", 1));
    api::StandardOptions opts = api::standardOptions(args);

    ObligationRequest req;
    req.devices = opts.devices;
    req.matrix.threads = opts.engine.threads;
    const char *label = "bare SWMR (Definition 6.1)";
    switch (iteration) {
      case 0:
        req.families = {"swmr"};
        break;
      case 1:
        req.families = {"swmr", "transient_swmr", "snoop_honesty",
                        "channel_singleton", "data_conflict"};
        label = "SWMR + the paper's four sample conjunct families";
        break;
      case 2:
        req.families = {"swmr", "transient_swmr", "snoop_honesty",
                        "channel_singleton", "data_conflict",
                        "directory", "host_transient", "message_shape",
                        "request_state", "progress", "buffer",
                        "tid_discipline", "data_value"};
        label = "iteration 2: + directory / shape / progress families";
        break;
      default:
        label = "iteration 3: the full strengthened invariant";
        break;
    }

    CheckSession session(opts.engine);
    ObligationResult res = session.obligations(req);

    std::printf("invariant: %s (%zu conjuncts)\n", label,
                res.numConjuncts);
    std::printf("universe : %zu states (%zu reachable seeds + %zu "
                "accepted perturbations)\n",
                res.universeSize, res.universeStats.reachableSeeds,
                res.universeStats.perturbedAccepted);
    std::printf("matrix   : %zu rules x %zu conjuncts = %zu cells, "
                "%llu failing\n\n",
                res.numRules, res.numConjuncts,
                res.matrix.totalCells(),
                static_cast<unsigned long long>(
                    res.matrix.failedCellCount()));

    if (res.matrix.failures.empty()) {
        std::printf("every obligation discharged over this universe — "
                    "the invariant survived this round.\n");
        return 0;
    }

    std::map<std::string, int> by_conjunct;
    for (const FailedCell &cell : res.matrix.failures)
        ++by_conjunct[cell.conjunctName];

    TextTable table({"failing conjunct", "# rules breaking it"});
    for (const auto &[name, count] : by_conjunct)
        table.addRow({name, std::to_string(count)});
    std::printf("%s\n", table.render().c_str());

    std::printf("each failing column above asks for a *supporting* "
                "conjunct that\nexcludes the pre-state below from the "
                "invariant (paper Section 7.1).\n\n");

    int shown = 0;
    for (const FailedCell &cell : res.matrix.failures) {
        if (shown++ >= witnesses)
            break;
        std::printf("witness %d: rule %s breaks %s\n  pre  (satisfies "
                    "the invariant):\n%s  post (violates the "
                    "conjunct):\n%s\n",
                    shown, cell.ruleName.c_str(),
                    cell.conjunctName.c_str(), cell.pre.dump().c_str(),
                    cell.post.dump().c_str());
    }
    return 0;
}
