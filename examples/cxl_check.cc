/**
 * @file
 * The unified checker CLI: run any registered scenario through the
 * CheckSession façade — the command-line face of the api/ layer and
 * the binary behind CI's scenario smoke matrix.
 *
 * Usage:
 *   cxl_check --list                 enumerate registered scenarios
 *   cxl_check --scenario NAME        run one scenario (or positional)
 *   cxl_check --all [--verdicts]     run every scenario; --verdicts
 *                                    prints only the deterministic
 *                                    `name: verdict` lines the CI
 *                                    goldens diff against
 *   cxl_check --corpus DIR ...       first promote the fuzz corpus in
 *                                    DIR into the registry, so --list,
 *                                    --all and --scenario cover the
 *                                    auto-discovered scenarios too
 *   cxl_check --connect SOCK ...     send the request to a running
 *                                    cxl_checkd instead of exploring
 *                                    in-process, relaying its stream;
 *                                    the flags keep their offline
 *                                    meaning, so served and offline
 *                                    output are byte-comparable
 *   cxl_check --connect SOCK --server-stats
 *                                    print the daemon's counters
 *
 * Standard flags: --devices N, --threads N, --sym/--no-sym,
 * --compact, --por/--no-por, --ws/--bfs, --max-states N,
 * --expect-states N, --max-seconds S, --max-rss-mb N,
 * --json [PATH].  `--deterministic` zeroes the wall-clock keys of
 * JSON output (offline and served) so runs diff byte-identical;
 * `--progress` streams served progress frames to stderr.
 *
 * Exit status: 0 when every run matches its scenario's expectation
 * (holds, or reaches the expected violation family) — or stopped
 * early under a user-requested budget/cap/Ctrl-C, reporting the
 * explored prefix as INCOMPLETE — 1 on a mismatch, 2 on usage
 * errors.
 */

#include <cstdio>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "api/check.hh"
#include "api/options.hh"
#include "serve/client.hh"
#include "support/json.hh"
#include "support/json_parse.hh"

using namespace cxl;

namespace
{

/**
 * True when an Incomplete verdict is the outcome the user signed up
 * for: an explicit --max-states cap, a wall-clock/memory budget, or
 * their own Ctrl-C.  Such runs report the explored prefix and exit 0.
 */
bool
requestedStop(const cxl::api::StandardOptions &opts,
              const CheckResult &res)
{
    if (res.verdict != CheckResult::Verdict::Incomplete)
        return false;
    return opts.userCapped || opts.userBudgeted ||
           res.stopReason == StopReason::Cancelled;
}

/** True when @p res is what the registry entry promises. */
bool
asExpected(const scenarios::Entry &entry, const CheckResult &res)
{
    if (!entry.expectViolation)
        return res.holds();
    if (res.verdict != CheckResult::Verdict::Violated)
        return false;
    return entry.expectedViolationFamily.empty() ||
           (res.violation &&
            res.violation->conjunctFamily ==
                entry.expectedViolationFamily);
}

/** requestedStop over a served result's parsed JSON. */
bool
remoteRequestedStop(const cxl::api::StandardOptions &opts,
                    const JsonValue &res)
{
    if (res.getStr("verdict") != "incomplete")
        return false;
    return opts.userCapped || opts.userBudgeted ||
           res.getStr("stop_reason") == "cancelled";
}

/** asExpected over a served result's parsed JSON. */
bool
remoteAsExpected(const scenarios::Entry &entry, const JsonValue &res)
{
    const std::string verdict = res.getStr("verdict");
    if (!entry.expectViolation)
        return verdict == "holds";
    if (verdict != "violation")
        return false;
    return entry.expectedViolationFamily.empty() ||
           res.getStr("violated_family") ==
               entry.expectedViolationFamily;
}

/**
 * The wire form of the already-parsed standard options for @p entry:
 * every resolved knob is sent explicitly, so the client's flags win
 * over the daemon's defaults and a served run is the same run the
 * offline path would have made.
 */
serve::Request
wireRequest(const cxl::api::StandardOptions &opts,
            const CliArgs &args, const scenarios::Entry &entry)
{
    serve::Request r;
    r.id = entry.name;
    r.scenario = entry.name;
    r.devices =
        entry.deviceScalable ? opts.devices : entry.fixedDevices;
    serve::EngineKnobs &k = r.engine;
    k.threads = opts.engine.threads;
    k.symmetry = opts.engine.symmetry;
    k.compact = opts.engine.store == StoreKind::Compact;
    k.por = opts.engine.por;
    k.schedule = opts.engine.schedule;
    if (opts.engine.maxStates != 0)
        k.maxStates = opts.engine.maxStates;
    if (opts.engine.expectedStates != 0)
        k.expectStates = opts.engine.expectedStates;
    if (opts.engine.maxSeconds > 0)
        k.maxSeconds = opts.engine.maxSeconds;
    if (opts.engine.maxRssBytes != 0)
        k.maxRssMb = opts.engine.maxRssBytes / (1024 * 1024);
    r.deterministic = args.has("deterministic");
    r.progress = args.has("progress");
    return r;
}

/** stderr progress printer for --connect --progress. */
void
printProgress(const ProgressSnapshot &p)
{
    std::fprintf(stderr,
                 "progress: %llu states, %llu transitions, depth "
                 "%u, %.1f s\n",
                 static_cast<unsigned long long>(p.states),
                 static_cast<unsigned long long>(p.transitions),
                 p.depth, p.seconds);
}

/** The offline model-cache reuse summary (`--all` text output). */
void
printModelCacheStats(const CheckSession &session)
{
    const std::vector<CheckSession::ModelCacheStat> stats =
        session.modelCacheStats();
    std::uint64_t reuses = 0;
    for (const CheckSession::ModelCacheStat &s : stats)
        reuses += s.hits;
    std::printf("model cache: %zu build(s), %llu reuse(s)\n",
                stats.size(),
                static_cast<unsigned long long>(reuses));
    for (const CheckSession::ModelCacheStat &s : stats) {
        std::printf("  devices %d, config 0x%02x: %llu hit(s)\n",
                    s.devices, s.configBits,
                    static_cast<unsigned long long>(s.hits));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    api::corpusOption(args);

    if (args.has("list")) {
        for (const scenarios::Entry &e : scenarios::all()) {
            std::printf("%-24s %s%s\n", e.name.c_str(),
                        e.expectViolation ? "[expects violation] " : "",
                        e.description.c_str());
        }
        return 0;
    }

    const std::string connect = args.get("connect", "");
    if (!connect.empty() && args.has("server-stats")) {
        std::string error;
        const std::string stats = serve::fetchStats(connect, error);
        if (stats.empty()) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        std::printf("%s\n", stats.c_str());
        return 0;
    }

    api::StandardOptions opts =
        api::standardOptions(args, "BENCH_check.json");
    const bool deterministic = args.has("deterministic");
    const std::function<void(const ProgressSnapshot &)> progress_fn =
        args.has("progress")
            ? std::function<void(const ProgressSnapshot &)>(
                  printProgress)
            : std::function<void(const ProgressSnapshot &)>();
    CheckSession session(opts.engine);

    if (args.has("all")) {
        const bool verdicts_only = args.has("verdicts");
        bool all_ok = true;
        std::vector<std::string> rows;
        for (const scenarios::Entry &e : scenarios::all()) {
            bool ok;
            std::string verdict_line, row;
            if (!connect.empty()) {
                const serve::ClientResult res = serve::requestCheck(
                    connect, wireRequest(opts, args, e),
                    progress_fn);
                if (!res.ok) {
                    std::printf("%s: ERROR %s\n", e.name.c_str(),
                                res.error.c_str());
                    all_ok = false;
                    continue;
                }
                const JsonValue v =
                    parseJson(res.payload.resultJson);
                ok = remoteAsExpected(e, v) ||
                     remoteRequestedStop(opts, v);
                verdict_line = res.payload.verdictLine;
                row = res.payload.resultJson;
                if (!verdicts_only && !ok)
                    std::printf("%s\n", res.payload.text.c_str());
            } else {
                CheckRequest req;
                req.scenario = e.name;
                req.devices = e.deviceScalable ? opts.devices
                                               : e.fixedDevices;
                CheckResult res = session.run(req);
                ok = asExpected(e, res) || requestedStop(opts, res);
                verdict_line = res.verdictText();
                row = res.renderJson(deterministic);
                if (!verdicts_only && !ok)
                    std::printf("%s\n", res.renderText().c_str());
            }
            all_ok &= ok;
            std::printf("%s: %s%s\n", e.name.c_str(),
                        verdict_line.c_str(),
                        ok ? "" : "  ** UNEXPECTED **");
            rows.push_back(std::move(row));
        }
        if (connect.empty() && !verdicts_only)
            printModelCacheStats(session);
        if (opts.json) {
            JsonObject json;
            json.str("bench", "cxl_check")
                .num("devices",
                     static_cast<std::uint64_t>(opts.devices))
                .boolean("all_ok", all_ok)
                .raw("results", JsonObject::array(rows));
            writeJsonFile(opts.jsonPath, json);
        }
        return all_ok ? 0 : 1;
    }

    std::string name = args.get("scenario", "");
    if (name.empty() && !args.positional().empty())
        name = args.positional().front();
    if (name.empty()) {
        std::fprintf(stderr,
                     "usage: cxl_check --list | --scenario NAME | "
                     "--all [--verdicts] [--connect SOCK]\n");
        return 2;
    }
    const scenarios::Entry *entry = scenarios::byName(name);
    if (!entry) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (try --list)\n",
                     name.c_str());
        return 2;
    }

    bool ok;
    if (!connect.empty()) {
        const serve::ClientResult res = serve::requestCheck(
            connect, wireRequest(opts, args, *entry),
            progress_fn);
        if (!res.ok) {
            std::fprintf(stderr, "%s\n", res.error.c_str());
            return 2;
        }
        std::printf("%s", res.payload.text.c_str());
        if (res.cached)
            std::printf("(served from the result cache)\n");
        if (opts.json) {
            JsonObject json;
            json.str("bench", "cxl_check")
                .raw("result", res.payload.resultJson);
            writeJsonFile(opts.jsonPath, json);
        }
        const JsonValue v = parseJson(res.payload.resultJson);
        ok = remoteAsExpected(*entry, v) ||
             remoteRequestedStop(opts, v);
    } else {
        CheckRequest req;
        req.scenario = entry->name;
        req.devices =
            entry->deviceScalable ? opts.devices : entry->fixedDevices;
        CheckResult res = session.run(req);
        std::printf("%s", res.renderText().c_str());
        if (opts.json) {
            JsonObject json;
            json.str("bench", "cxl_check")
                .raw("result", res.renderJson(deterministic));
            writeJsonFile(opts.jsonPath, json);
        }
        ok = asExpected(*entry, res) || requestedStop(opts, res);
    }

    if (entry->expectViolation) {
        std::printf("expected violation in family '%s': %s\n",
                    entry->expectedViolationFamily.c_str(),
                    ok ? "reached" : "NOT REACHED");
    }
    return ok ? 0 : 1;
}
