/**
 * @file
 * The unified checker CLI: run any registered scenario through the
 * CheckSession façade — the command-line face of the api/ layer and
 * the binary behind CI's scenario smoke matrix.
 *
 * Usage:
 *   cxl_check --list                 enumerate registered scenarios
 *   cxl_check --scenario NAME        run one scenario (or positional)
 *   cxl_check --all [--verdicts]     run every scenario; --verdicts
 *                                    prints only the deterministic
 *                                    `name: verdict` lines the CI
 *                                    goldens diff against
 *   cxl_check --corpus DIR ...       first promote the fuzz corpus in
 *                                    DIR into the registry, so --list,
 *                                    --all and --scenario cover the
 *                                    auto-discovered scenarios too
 *
 * Standard flags: --devices N, --threads N, --sym/--no-sym,
 * --compact, --por/--no-por, --ws/--bfs, --max-states N,
 * --expect-states N, --max-seconds S, --max-rss-mb N,
 * --json [PATH].  `--ws` selects the work-stealing schedule: verdict
 * lines are unchanged (states, diameters and verdicts are
 * schedule-invariant); transition counts are not.
 *
 * Exit status: 0 when every run matches its scenario's expectation
 * (holds, or reaches the expected violation family) — or stopped
 * early under a user-requested budget/cap/Ctrl-C, reporting the
 * explored prefix as INCOMPLETE — 1 on a mismatch, 2 on usage
 * errors.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "api/check.hh"
#include "api/options.hh"
#include "fuzz/corpus.hh"
#include "support/json.hh"

using namespace cxl;

namespace
{

/**
 * True when an Incomplete verdict is the outcome the user signed up
 * for: an explicit --max-states cap, a wall-clock/memory budget, or
 * their own Ctrl-C.  Such runs report the explored prefix and exit 0.
 */
bool
requestedStop(const cxl::api::StandardOptions &opts,
              const CheckResult &res)
{
    if (res.verdict != CheckResult::Verdict::Incomplete)
        return false;
    return opts.userCapped || opts.userBudgeted ||
           res.stopReason == StopReason::Cancelled;
}

/** True when @p res is what the registry entry promises. */
bool
asExpected(const scenarios::Entry &entry, const CheckResult &res)
{
    if (!entry.expectViolation)
        return res.holds();
    if (res.verdict != CheckResult::Verdict::Violated)
        return false;
    return entry.expectedViolationFamily.empty() ||
           (res.violation &&
            res.violation->conjunctFamily ==
                entry.expectedViolationFamily);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);

    const std::string corpusDir = args.get("corpus", "");
    if (!corpusDir.empty()) {
        try {
            fuzz::promoteToRegistry(fuzz::loadCorpus(corpusDir));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot load corpus: %s\n", e.what());
            return 2;
        }
    }

    if (args.has("list")) {
        for (const scenarios::Entry &e : scenarios::all()) {
            std::printf("%-24s %s%s\n", e.name.c_str(),
                        e.expectViolation ? "[expects violation] " : "",
                        e.description.c_str());
        }
        return 0;
    }

    api::StandardOptions opts =
        api::standardOptions(args, "BENCH_check.json");
    CheckSession session(opts.engine);

    if (args.has("all")) {
        const bool verdicts_only = args.has("verdicts");
        bool all_ok = true;
        std::vector<std::string> rows;
        for (const scenarios::Entry &e : scenarios::all()) {
            CheckRequest req;
            req.scenario = e.name;
            req.devices = e.deviceScalable ? opts.devices
                                           : e.fixedDevices;
            CheckResult res = session.run(req);
            const bool ok =
                asExpected(e, res) || requestedStop(opts, res);
            all_ok &= ok;
            std::printf("%s: %s%s\n", e.name.c_str(),
                        res.verdictText().c_str(),
                        ok ? "" : "  ** UNEXPECTED **");
            if (!verdicts_only && !ok)
                std::printf("%s\n", res.renderText().c_str());
            rows.push_back(res.renderJson());
        }
        if (opts.json) {
            JsonObject json;
            json.str("bench", "cxl_check")
                .num("devices",
                     static_cast<std::uint64_t>(opts.devices))
                .boolean("all_ok", all_ok)
                .raw("results", JsonObject::array(rows));
            writeJsonFile(opts.jsonPath, json);
        }
        return all_ok ? 0 : 1;
    }

    std::string name = args.get("scenario", "");
    if (name.empty() && !args.positional().empty())
        name = args.positional().front();
    if (name.empty()) {
        std::fprintf(stderr,
                     "usage: cxl_check --list | --scenario NAME | "
                     "--all [--verdicts]\n");
        return 2;
    }
    const scenarios::Entry *entry = scenarios::byName(name);
    if (!entry) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (try --list)\n",
                     name.c_str());
        return 2;
    }

    CheckRequest req;
    req.scenario = entry->name;
    req.devices =
        entry->deviceScalable ? opts.devices : entry->fixedDevices;
    CheckResult res = session.run(req);
    std::printf("%s", res.renderText().c_str());
    if (opts.json) {
        JsonObject json;
        json.str("bench", "cxl_check").raw("result", res.renderJson());
        writeJsonFile(opts.jsonPath, json);
    }

    const bool ok = asExpected(*entry, res) || requestedStop(opts, res);
    if (entry->expectViolation) {
        std::printf("expected violation in family '%s': %s\n",
                    entry->expectedViolationFamily.c_str(),
                    ok ? "reached" : "NOT REACHED");
    }
    return ok ? 0 : 1;
}
