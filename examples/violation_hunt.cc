/**
 * @file
 * Example: hunting coherence violations in relaxed protocols.
 *
 * Enables one of the Section 5.2 rule relaxations, exhaustively
 * explores the free-run model through a CheckSession, and prints the
 * shortest (BFS) witness trace as a paper-style transition table —
 * the workflow a protocol designer would use to understand *why* a
 * restriction exists.
 *
 * Usage:
 *   violation_hunt [--mutation snoop_pushes_go|smad_guard|go_tailgate|
 *                              one_snoop] [--families swmr,...]
 *                  [--devices N]   (model size, default 2)
 *                  [--threads N]   (0 = all hardware threads)
 *                  [--compact]     (hash-compacted store: hunts far
 *                                   larger spaces in RAM, reports the
 *                                   verdict + bad state but no trace)
 */

#include <cstdio>
#include <sstream>

#include "api/check.hh"
#include "api/options.hh"
#include "litmus/trace_table.hh"

using namespace cxl;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    std::string mutation = args.get("mutation", "snoop_pushes_go");

    ProtocolConfig config;
    if (mutation == "snoop_pushes_go")
        config.relaxSnoopPushesGo = true;
    else if (mutation == "smad_guard")
        config.relaxSmadSnoopGuard = true;
    else if (mutation == "go_tailgate")
        config.relaxGoTailgate = true;
    else if (mutation == "one_snoop")
        config.relaxOneSnoop = true;
    else {
        std::fprintf(stderr, "unknown mutation '%s'\n",
                     mutation.c_str());
        return 2;
    }

    api::StandardOptions opts = api::standardOptions(args);

    CheckRequest req;
    req.scenario = "free-run";
    req.devices = opts.devices;
    req.config = config;

    // Optionally narrow the hunt to specific conjunct families
    // (e.g. --families swmr reproduces the pure Table 3 violation).
    std::string families_arg = args.get("families", "");
    if (!families_arg.empty()) {
        std::vector<std::string> families;
        std::stringstream ss(families_arg);
        std::string item;
        while (std::getline(ss, item, ','))
            families.push_back(item);
        req.families = std::move(families);
    }

    CheckSession session(opts.engine);
    CheckResult res = session.run(req);

    std::printf("hunting with mutation '%s' over %zu rules, checking "
                "%zu conjuncts...\n",
                mutation.c_str(), res.numRules, res.numConjuncts);

    if (!res.violation) {
        std::printf("no violation found in %llu reachable states "
                    "(exploration %s)\n",
                    static_cast<unsigned long long>(res.states),
                    res.completed ? "complete" : "truncated");
        return 0;
    }

    std::printf("VIOLATION after %llu states: %s\n",
                static_cast<unsigned long long>(res.states),
                res.violation->describe().c_str());
    if (!res.violation->traceNote.empty())
        std::printf("(%s)\n", res.violation->traceNote.c_str());
    if (res.violation->trace.size() > 1) {
        std::printf("\nwitness trace (shortest, by BFS):\n%s\n",
                    renderTraceTable(res.violation->trace,
                                     res.scenarioSpec,
                                     defaultTraceColumns(res.devices))
                        .c_str());
    }
    if (!res.violation->trace.empty()) {
        std::printf("bad state in full:\n%s",
                    res.violation->trace.back().state.dump().c_str());
    }
    return 1;
}
