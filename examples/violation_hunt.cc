/**
 * @file
 * Example: hunting coherence violations in relaxed protocols.
 *
 * Enables one of the Section 5.2 rule relaxations, exhaustively
 * explores the free-run model, and prints the shortest (BFS) witness
 * trace as a paper-style transition table — the workflow a protocol
 * designer would use to understand *why* a restriction exists.
 *
 * Usage:
 *   violation_hunt [--mutation snoop_pushes_go|smad_guard|go_tailgate|
 *                              one_snoop] [--families swmr,...]
 *                  [--devices N]   (model size, default 2)
 *                  [--threads N]   (0 = all hardware threads)
 *                  [--compact]     (hash-compacted store: hunts far
 *                                   larger spaces in RAM, reports the
 *                                   verdict + bad state but no trace)
 */

#include <cstdio>
#include <sstream>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "litmus/trace_table.hh"
#include "support/cli.hh"

using namespace cxl;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    std::string mutation = args.get("mutation", "snoop_pushes_go");

    ProtocolConfig config;
    if (mutation == "snoop_pushes_go")
        config.relaxSnoopPushesGo = true;
    else if (mutation == "smad_guard")
        config.relaxSmadSnoopGuard = true;
    else if (mutation == "go_tailgate")
        config.relaxGoTailgate = true;
    else if (mutation == "one_snoop")
        config.relaxOneSnoop = true;
    else {
        std::fprintf(stderr, "unknown mutation '%s'\n",
                     mutation.c_str());
        return 2;
    }

    const int devices = deviceCountOption(args, kMaxDevices);

    RuleSet rules(config, devices);
    Scenario scenario = Scenario::freeRunScenario(devices);
    InvariantSet invariants = InvariantSet::full(config, devices);

    // Optionally narrow the hunt to specific conjunct families
    // (e.g. --families swmr reproduces the pure Table 3 violation).
    std::string families_arg = args.get("families", "");
    if (!families_arg.empty()) {
        std::vector<std::string> families;
        std::stringstream ss(families_arg);
        std::string item;
        while (std::getline(ss, item, ','))
            families.push_back(item);
        invariants = invariants.filtered(families);
    }

    std::printf("hunting with mutation '%s' over %zu rules, checking "
                "%zu conjuncts...\n",
                mutation.c_str(), rules.rules().size(),
                invariants.size());

    Explorer explorer(rules, scenario, invariants);
    ExploreOptions opt;
    opt.numThreads = threadCountOption(args);
    opt.compaction = args.has("compact");
    ExploreResult res = explorer.run(opt);

    if (!res.violation) {
        std::printf("no violation found in %llu reachable states "
                    "(exploration %s)\n",
                    static_cast<unsigned long long>(res.numStates),
                    res.completed ? "complete" : "truncated");
        return 0;
    }

    std::printf("VIOLATION after %llu states: %s\n",
                static_cast<unsigned long long>(res.numStates),
                res.violation->describe().c_str());
    if (!res.violation->traceNote.empty())
        std::printf("(%s)\n", res.violation->traceNote.c_str());
    if (res.violation->trace.size() > 1) {
        std::printf("\nwitness trace (shortest, by BFS):\n%s\n",
                    renderTraceTable(res.violation->trace, scenario,
                                     {StateColumn::DCache1,
                                      StateColumn::HCache,
                                      StateColumn::DCache2,
                                      StateColumn::H2DReq1,
                                      StateColumn::H2DReq2,
                                      StateColumn::H2DRsp1,
                                      StateColumn::H2DRsp2,
                                      StateColumn::D2HRsp1,
                                      StateColumn::D2HRsp2})
                        .c_str());
    }
    if (!res.violation->trace.empty()) {
        std::printf("bad state in full:\n%s",
                    res.violation->trace.back().state.dump().c_str());
    }
    return 1;
}
