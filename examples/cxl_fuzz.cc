/**
 * @file
 * Scenario fuzzer + cross-engine differential oracle CLI: generate
 * seeded random scenarios (config bits x invariant families x device
 * counts x inline litmus programs), run each through the engine
 * portfolio ({bfs, ws} x {por} x {sym} x {full, compact} stores), and
 * cross-check the verdict signatures.  Divergence = engine bug.
 * Novel agreeing signatures are minimized and promoted into the
 * persisted corpus.
 *
 * Usage:
 *   cxl_fuzz [--seed N] [--budget N] [--corpus DIR]       fuzz (default)
 *   cxl_fuzz --replay --corpus DIR                        replay corpus
 *            [--replay-threads 1,4,8]
 *   cxl_fuzz --minimize --corpus DIR                      re-minimize
 *
 * Shared flags (api::standardOptions): --devices N caps the generated
 * device count, --threads N sets the parallel portfolio arms' worker
 * count, --max-states N overrides the free-run state cap (default
 * 20000).  --no-minimize promotes unminimized cases (debugging aid).
 * --max-seconds S is a *global* budget: the fuzz/replay loop stops
 * between cases when it runs out (with a diagnostic — a truncated run
 * covers a prefix of the deterministic stream, so its corpus is a
 * prefix too, not comparable to a full run's).  --arm-max-seconds S
 * budgets each oracle arm; arms that exceed it are quarantined and
 * reported, never silently compared.  SIGINT/SIGTERM stop the loop
 * the same graceful way.
 *
 * Determinism: the generated stream depends only on --seed, --budget,
 * --devices and the starting corpus; stored signatures come from the
 * single-threaded reference combination, so two identical invocations
 * produce byte-identical corpus files and MANIFEST.txt regardless of
 * --threads (the fixed-seed CI job diffs exactly that).  Wall-clock
 * budgets trade that away: never pass --max-seconds/--arm-max-seconds
 * to a run whose corpus will be diffed.
 *
 * Exit status: 0 clean, 1 divergence / replay drift, 2 usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <set>
#include <string>
#include <vector>

#include "api/options.hh"
#include "fuzz/corpus.hh"
#include "fuzz/gen.hh"
#include "fuzz/minimize.hh"
#include "fuzz/oracle.hh"

using namespace cxl;
using namespace cxl::fuzz;

namespace
{

void
printReport(const OracleReport &report, const FuzzCase &c)
{
    std::printf("DIVERGENCE in case %s:\n", report.caseName.c_str());
    for (const std::string &d : report.divergences)
        std::printf("  %s\n", d.c_str());
    for (const ComboRun &run : report.runs) {
        std::printf("  [%-20s] %s\n", run.combo.label().c_str(),
                    run.sig.key().c_str());
    }
    std::printf("  repro: %s\n", c.renderJson().c_str());
}

/** Budget-stopped arms are excluded from the cross-checks; say so. */
void
printQuarantined(const OracleReport &report)
{
    for (const std::string &q : report.quarantined)
        std::printf("  QUARANTINED arm %s (excluded from "
                    "cross-checks)\n",
                    q.c_str());
}

/**
 * Corpus files are external input: a malformed entry is a usage
 * error that names the offending file, not an uncaught exception.
 */
std::vector<CorpusEntry>
loadCorpusOrDie(const std::string &dir)
{
    try {
        return loadCorpus(dir);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot load corpus: %s\n", e.what());
        std::exit(2);
    }
}

/**
 * Global loop budget: `--max-seconds` plus the SIGINT/SIGTERM token,
 * checked between cases so the fuzzer stops at a case boundary with
 * its corpus and manifest intact.
 */
struct LoopBudget {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    double maxSeconds = 0;
    CancelToken cancel;

    /** Non-null stop description once the budget is gone. */
    const char *stopWhy() const
    {
        if (cancel.valid() && cancel.cancelled())
            return "cancelled (SIGINT/SIGTERM)";
        if (maxSeconds > 0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= maxSeconds) {
            return "global --max-seconds budget exhausted";
        }
        return nullptr;
    }
};

/** Parse `--arm-max-seconds` (0 = none); exits 2 on junk. */
double
armBudgetOption(const CliArgs &args)
{
    if (!args.has("arm-max-seconds"))
        return 0;
    const std::string raw = args.get("arm-max-seconds", "");
    char *end = nullptr;
    const double secs = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end == raw.c_str() || *end != '\0' ||
        !(secs > 0)) {
        std::fprintf(stderr,
                     "--arm-max-seconds '%s' out of range (want a "
                     "positive number of seconds)\n",
                     raw.c_str());
        std::exit(2);
    }
    return secs;
}

std::vector<std::size_t>
parseThreadList(const std::string &text)
{
    std::vector<std::size_t> counts;
    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t comma = text.find(',', at);
        const std::string tok =
            text.substr(at, comma == std::string::npos
                                ? std::string::npos
                                : comma - at);
        if (!tok.empty())
            counts.push_back(static_cast<std::size_t>(
                std::strtoull(tok.c_str(), nullptr, 10)));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return counts;
}

int
runReplay(const std::string &corpusDir, const CliArgs &args,
          const api::StandardOptions &opts)
{
    const std::vector<CorpusEntry> corpus = loadCorpusOrDie(corpusDir);
    if (corpus.empty()) {
        std::printf("corpus %s is empty; nothing to replay\n",
                    corpusDir.c_str());
        return 0;
    }
    std::vector<std::size_t> counts =
        parseThreadList(args.get("replay-threads", "1,4,8"));
    if (counts.empty())
        counts = {1};

    OracleOptions oopt;
    oopt.portfolio = replayPortfolio(counts);
    oopt.armMaxSeconds = armBudgetOption(args);
    const Oracle oracle(std::move(oopt));

    const LoopBudget budget{std::chrono::steady_clock::now(),
                            opts.engine.maxSeconds,
                            opts.engine.cancel};
    bool bad = false;
    std::size_t replayed = 0;
    for (const CorpusEntry &entry : corpus) {
        if (const char *why = budget.stopWhy()) {
            std::printf("replay stopped early (%s) after %zu/%zu "
                        "cases; the rest are UNVERIFIED\n",
                        why, replayed, corpus.size());
            break;
        }
        const OracleReport report = oracle.check(entry.fuzzCase);
        ++replayed;
        printQuarantined(report);
        const bool drift =
            report.reference.key() != entry.signature.key();
        if (drift) {
            bad = true;
            std::printf("DRIFT in case %s:\n  stored   %s\n"
                        "  observed %s\n",
                        report.caseName.c_str(),
                        entry.signature.key().c_str(),
                        report.reference.key().c_str());
        }
        if (report.diverged()) {
            bad = true;
            printReport(report, entry.fuzzCase);
        }
        if (!drift && !report.diverged()) {
            if (report.quarantined.empty()) {
                std::printf("%s: ok (%s, %zu combos)\n",
                            report.caseName.c_str(),
                            report.reference.key().c_str(),
                            report.runs.size());
            } else {
                std::printf("%s: ok (%s, %zu combos, %zu "
                            "quarantined)\n",
                            report.caseName.c_str(),
                            report.reference.key().c_str(),
                            report.runs.size(),
                            report.quarantined.size());
            }
        }
    }
    std::printf("replayed %zu/%zu corpus cases across %zu combos: %s\n",
                replayed, corpus.size(),
                oracle.options().portfolio.size() + 1,
                bad ? "FAILED" : "all stable");
    return bad ? 1 : 0;
}

int
runMinimize(const std::string &corpusDir)
{
    std::vector<CorpusEntry> corpus = loadCorpusOrDie(corpusDir);
    std::size_t shrunk = 0;
    for (CorpusEntry &entry : corpus) {
        MinimizeStats stats;
        const FuzzCase min =
            minimizeCase(entry.fuzzCase, entry.signature, &stats);
        if (min == entry.fuzzCase) {
            std::printf("%s: already minimal (%zu candidates)\n",
                        entry.fuzzCase.name().c_str(),
                        stats.candidates);
            continue;
        }
        removeCorpusEntry(corpusDir, entry.fuzzCase.name());
        entry.fuzzCase = min;
        entry.signature = referenceSignature(min);
        saveCorpusEntry(corpusDir, entry);
        ++shrunk;
        std::printf("%s: shrunk (%zu of %zu candidates accepted)\n",
                    entry.fuzzCase.name().c_str(), stats.shrinks,
                    stats.candidates);
    }
    writeManifest(corpusDir, corpus);
    std::printf("minimized corpus: %zu/%zu entries shrunk\n", shrunk,
                corpus.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const api::StandardOptions opts = api::standardOptions(args);
    const std::string corpusDir = args.get("corpus", "");

    if (args.has("replay") || args.has("minimize")) {
        if (corpusDir.empty()) {
            std::fprintf(stderr,
                         "--replay/--minimize need --corpus DIR\n");
            return 2;
        }
        return args.has("replay") ? runReplay(corpusDir, args, opts)
                                  : runMinimize(corpusDir);
    }

    // ---- fuzz mode ---------------------------------------------------
    const std::uint64_t budget = static_cast<std::uint64_t>(
        args.getInt("budget", 100));

    GenOptions gopt;
    gopt.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    gopt.minDevices = 2;
    gopt.maxDevices = opts.devices;
    if (opts.userCapped)
        gopt.freeRunCap = opts.engine.maxStates;

    ScenarioGen gen(gopt);
    std::vector<CorpusEntry> corpus;
    std::set<std::string> seenCases;
    std::set<std::string> seenNovelty;
    if (!corpusDir.empty()) {
        corpus = loadCorpusOrDie(corpusDir);
        for (const CorpusEntry &entry : corpus) {
            gen.addSeed(entry.fuzzCase);
            seenCases.insert(entry.fuzzCase.name());
            seenNovelty.insert(entry.signature.noveltyKey());
        }
    }

    OracleOptions oopt;
    // The parallel portfolio arms run at --threads workers (0 = one
    // per hardware thread, like every other harness).
    oopt.portfolio = fullPortfolio(opts.engine.threads);
    oopt.armMaxSeconds = armBudgetOption(args);
    const Oracle oracle(std::move(oopt));

    const LoopBudget timebox{std::chrono::steady_clock::now(),
                             opts.engine.maxSeconds,
                             opts.engine.cancel};
    const bool minimizePromoted = !args.has("no-minimize");
    std::uint64_t ran = 0, skipped = 0, diverged = 0, promoted = 0;
    for (std::uint64_t i = 0; i < budget; ++i) {
        if (const char *why = timebox.stopWhy()) {
            // A truncated run explored a *prefix* of the
            // deterministic case stream: its corpus/manifest are
            // intact and replayable, but not diffable against a
            // full --budget run's.
            std::printf("fuzz stopped early (%s) after %llu of %llu "
                        "budgeted cases\n",
                        why, static_cast<unsigned long long>(i),
                        static_cast<unsigned long long>(budget));
            break;
        }
        const FuzzCase c = gen.next();
        if (!seenCases.insert(c.name()).second) {
            ++skipped; // duplicate of an earlier case this run
            continue;
        }
        const OracleReport report = oracle.check(c);
        ++ran;
        printQuarantined(report);
        if (report.diverged()) {
            ++diverged;
            printReport(report, c);
            continue;
        }
        if (!seenNovelty.insert(report.reference.noveltyKey())
                 .second) {
            continue;
        }
        // Novel signature class: minimize and persist.
        CorpusEntry entry;
        entry.fuzzCase = c;
        entry.signature = report.reference;
        if (minimizePromoted) {
            entry.fuzzCase = minimizeCase(c, report.reference);
            entry.signature = referenceSignature(entry.fuzzCase);
            // A violation may minimize into a class the corpus
            // already covers (smaller depth, same conjunct); don't
            // stack duplicates of it.
            if (entry.signature.noveltyKey() !=
                    report.reference.noveltyKey() &&
                !seenNovelty.insert(entry.signature.noveltyKey())
                     .second) {
                continue;
            }
        }
        bool duplicate = false;
        for (const CorpusEntry &have : corpus)
            duplicate |= have.fuzzCase == entry.fuzzCase;
        if (duplicate)
            continue;
        corpus.push_back(entry);
        ++promoted;
        if (!corpusDir.empty())
            saveCorpusEntry(corpusDir, entry);
        std::printf("promoted %s (%s)\n",
                    entry.fuzzCase.name().c_str(),
                    entry.signature.key().c_str());
    }
    if (!corpusDir.empty())
        writeManifest(corpusDir, corpus);

    std::printf("fuzz: seed=%llu budget=%llu ran=%llu dup=%llu "
                "promoted=%llu corpus=%zu divergences=%llu\n",
                static_cast<unsigned long long>(gopt.seed),
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(ran),
                static_cast<unsigned long long>(skipped),
                static_cast<unsigned long long>(promoted),
                corpus.size(),
                static_cast<unsigned long long>(diverged));
    return diverged ? 1 : 0;
}
