/**
 * @file
 * Integration tests for the litmus engine: the paper's Section 5.1
 * suite, the Section 5.2 relaxations, the guided Table 1-3 walks, and
 * the table / message-sequence-chart renderers.
 */

#include <gtest/gtest.h>

#include "litmus/litmus.hh"
#include "litmus/msc.hh"
#include "litmus/trace_table.hh"

namespace cxl
{
namespace
{

class LitmusSuite
    : public ::testing::TestWithParam<LitmusTest>
{
};

TEST_P(LitmusSuite, PassesExhaustively)
{
    const LitmusTest &test = GetParam();
    LitmusOutcome out = runLitmus(test);
    EXPECT_TRUE(out.passed) << test.name << ": " << out.message;
    if (!test.expectViolation) {
        EXPECT_GE(out.finals.size(), 1u) << test.name;
        EXPECT_TRUE(out.explore.completed);
    }
}

std::string
litmusName(const ::testing::TestParamInfo<LitmusTest> &info)
{
    return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Builtin, LitmusSuite,
                         ::testing::ValuesIn(builtinLitmusSuite()),
                         litmusName);
INSTANTIATE_TEST_SUITE_P(Relaxations, LitmusSuite,
                         ::testing::ValuesIn(restrictionRelaxationSuite()),
                         litmusName);

TEST(LitmusEngine, ViolationExpectationFailsOnCorrectModel)
{
    // An expectViolation test against the correct protocol must fail.
    LitmusTest t;
    t.name = "no_bug_here";
    t.scenario.initial = initialAllInvalid(0);
    t.scenario.program[0] = {Instr::Store};
    t.scenario.program[1] = {Instr::Load};
    t.expectViolation = true;
    LitmusOutcome out = runLitmus(t);
    EXPECT_FALSE(out.passed);
}

TEST(LitmusEngine, FinalCheckFailureReported)
{
    LitmusTest t;
    t.name = "wrong_expectation";
    t.scenario.initial = initialAllInvalid(0);
    t.scenario.program[0] = {Instr::Load};
    t.finalCheck = [](const SystemState &s) {
        return s.dev[0].state == DState::M; // wrong: a load yields S
    };
    t.finalCheckDescription = "deliberately wrong";
    LitmusOutcome out = runLitmus(t);
    EXPECT_FALSE(out.passed);
    EXPECT_NE(out.message.find("deliberately wrong"), std::string::npos);
}

class GuidedTables : public ::testing::Test
{
  protected:
    std::vector<GuidedStep>
    table1(Scenario &sc) const
    {
        static RuleSet rules(ProtocolConfig::correct());
        sc.initial = initialBothShared(0);
        sc.program[0] = {Instr::Evict, Instr::Evict};
        return runGuided(rules, sc,
                         {"SharedEvict1",
                          "HostSharedCleanEvictNotLastDrop1",
                          "SIA_GO_WritePullDrop1", "InvalidEvict1"});
    }
};

TEST_F(GuidedTables, Table1CleanEvictRowByRow)
{
    Scenario sc;
    auto steps = table1(sc);
    ASSERT_EQ(steps.size(), 5u);

    // Row 1: SharedEvict1 -> SIA with a CleanEvict queued.
    EXPECT_EQ(steps[1].state.dev[0].state, DState::SIA);
    EXPECT_EQ(steps[1].state.dev[0].d2hReq.front().op,
              D2HReqOp::CleanEvict);
    EXPECT_EQ(steps[1].state.counter, 1);

    // Row 2: the host answers GO_WritePullDrop, directory stays S
    // because device 2 still shares (the "NotLast" in the rule name).
    EXPECT_EQ(steps[2].state.dev[0].h2dRsp.front().op,
              H2DRspOp::GO_WritePullDrop);
    EXPECT_EQ(steps[2].state.hstate, HState::S);

    // Row 3: the device drops to I and retires the first Evict.
    EXPECT_EQ(steps[3].state.dev[0].state, DState::I);
    EXPECT_EQ(steps[3].state.dev[0].pc, 1);

    // Row 4: the second Evict is a no-op on an invalid line.
    EXPECT_EQ(steps[4].state.dev[0].state, DState::I);
    EXPECT_EQ(steps[4].state.dev[0].pc, 2);
    EXPECT_EQ(steps[4].state.dev[1].state, DState::S);
}

TEST_F(GuidedTables, Table2DirtyEvictRowByRow)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc;
    sc.initial = initialOneModified(0, 1, 0);
    sc.program[0] = {Instr::Evict};
    auto steps = runGuided(rules, sc,
                           {"ModifiedEvict1", "HostModifiedDirtyEvict1",
                            "MIA_GO_WritePull1", "HostID_Data1"});
    ASSERT_EQ(steps.size(), 5u);

    EXPECT_EQ(steps[1].state.dev[0].state, DState::MIA);
    EXPECT_EQ(steps[1].state.dev[0].d2hReq.front().op,
              D2HReqOp::DirtyEvict);

    EXPECT_EQ(steps[2].state.hstate, HState::ID);
    EXPECT_EQ(steps[2].state.dev[0].h2dRsp.front().op,
              H2DRspOp::GO_WritePull);

    EXPECT_EQ(steps[3].state.dev[0].state, DState::I);
    ASSERT_EQ(steps[3].state.dev[0].d2hData.size(), 1u);
    EXPECT_EQ(steps[3].state.dev[0].d2hData.front().val, 1);

    EXPECT_EQ(steps[4].state.hstate, HState::I);
    EXPECT_EQ(steps[4].state.hval, 1)
        << "Table 2: the host copies the writeback in";
}

TEST_F(GuidedTables, Table3SnoopPushesGoViolationRowByRow)
{
    ProtocolConfig cfg;
    cfg.relaxSnoopPushesGo = true;
    RuleSet rules(cfg);
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};
    auto steps = runGuided(
        rules, sc,
        {"InvalidStore1", "InvalidLoad2", "HostInvalidRdShared2",
         "HostSharedRdOwnSnp1", "ISADSnpInv2", "ISAD_GO_Data2",
         "HostMA_RspIHitI1", "IMAD_GO_Data1"});
    ASSERT_EQ(steps.size(), 9u);

    // Row ISADSnpInv2: the mutated device answers RspIHitI and stays
    // in ISAD (the warning-sign rule of Table 3).
    EXPECT_EQ(steps[5].state.dev[1].state, DState::ISAD);
    EXPECT_EQ(steps[5].state.dev[1].d2hRsp.front().op,
              D2HRspOp::RspIHitI);

    // Row ISAD_GO_Data2: it then consumes the stale share grant.
    EXPECT_EQ(steps[6].state.dev[1].state, DState::S);

    // Final row: device 1 modified while device 2 shares — SWMR gone.
    const SystemState &fin = steps.back().state;
    EXPECT_EQ(fin.dev[0].state, DState::M);
    EXPECT_EQ(fin.dev[1].state, DState::S);
    EXPECT_FALSE(swmrHolds(fin));

    // Every intermediate state *does* satisfy plain SWMR — the
    // violation only materialises at the very end (paper Section 5.2).
    for (std::size_t k = 0; k + 1 < steps.size(); ++k)
        EXPECT_TRUE(swmrHolds(steps[k].state)) << k;
}

TEST_F(GuidedTables, GuidedRunRejectsDisabledRule)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Load};
    EXPECT_THROW(runGuided(rules, sc, {"ModifiedEvict1"}),
                 std::runtime_error);
    EXPECT_THROW(runGuided(rules, sc, {"NoSuchRule"}),
                 std::runtime_error);
}

TEST_F(GuidedTables, TraceTableRendersPaperColumns)
{
    Scenario sc;
    auto steps = table1(sc);
    std::string table = renderTraceTable(
        steps, sc,
        {StateColumn::DProg1, StateColumn::DCache1, StateColumn::D2HReq1,
         StateColumn::H2DRsp1, StateColumn::HCache, StateColumn::DCache2,
         StateColumn::Counter});

    EXPECT_NE(table.find("(initial state)"), std::string::npos);
    EXPECT_NE(table.find("SharedEvict1"), std::string::npos);
    EXPECT_NE(table.find("[Evict, Evict]"), std::string::npos);
    EXPECT_NE(table.find("(CleanEvict, 0)"), std::string::npos);
    EXPECT_NE(table.find("GO_WritePullDrop"), std::string::npos);
    EXPECT_NE(table.find("(0, SIA)"), std::string::npos);
}

TEST_F(GuidedTables, MscDerivesSendsAndDeliveries)
{
    Scenario sc;
    auto steps = table1(sc);
    auto events = deriveMscEvents(steps);

    int device_sends = 0, host_sends = 0, delivers = 0, notes = 0;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case MscEvent::Kind::DeviceSend: ++device_sends; break;
          case MscEvent::Kind::HostSend: ++host_sends; break;
          case MscEvent::Kind::Deliver: ++delivers; break;
          case MscEvent::Kind::Note: ++notes; break;
        }
    }
    EXPECT_EQ(device_sends, 1) << "one CleanEvict";
    EXPECT_EQ(host_sends, 1) << "one GO_WritePullDrop";
    EXPECT_EQ(delivers, 2) << "request consumed + drop consumed";
    EXPECT_GE(notes, 2) << "S->SIA and SIA->I at least";

    std::string chart = renderMsc(steps, "table 1");
    EXPECT_NE(chart.find("device 1"), std::string::npos);
    EXPECT_NE(chart.find("host"), std::string::npos);
    EXPECT_NE(chart.find("CleanEvict"), std::string::npos);
}

} // namespace
} // namespace cxl
