/**
 * @file
 * Partial-order reduction tests.
 *
 * Three layers of defence:
 *
 *  1. Footprint validation — every rule's declared write set must
 *     contain every byte its action actually changes, and every pair
 *     the footprints declare independent must really commute (and
 *     preserve each other's enabledness) on a corpus of reachable
 *     states.  An under-declared footprint is the one bug class that
 *     could silently break the reduction, so it is tested empirically
 *     against the semantics, not the annotations.
 *
 *  2. Mechanism tests — permutation remap consistency (the sleep-mask
 *     relabelling used under symmetry), the rule-count ceiling.
 *
 *  3. End-to-end soundness (the ISSUE's equivalence obligation) —
 *     every scenario-registry entry at 2 and 3 devices, at 1/4/8
 *     threads, yields the same verdict, violated-conjunct set, state
 *     count, diameter and violation depth with POR on as off; only
 *     the transition count may (and at 3 devices must) drop.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/check.hh"
#include "api/scenarios.hh"
#include "checker/por.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"
#include "protocol/state.hh"

namespace cxl
{
namespace
{

// ------------------------------------------------ corpus collection

/** Raw active-prefix bytes of a state (the dedup key). */
std::string
stateKey(const SystemState &s)
{
    return std::string(reinterpret_cast<const char *>(&s),
                       s.activeBytes());
}

/**
 * BFS prefix of (rules, scenario): up to @p limit distinct reachable
 * states, in deterministic order.
 */
std::vector<SystemState>
corpus(const RuleSet &rules, const Scenario &scenario,
       std::size_t limit, bool canonicalise)
{
    std::vector<SystemState> states;
    std::set<std::string> seen;
    SystemState init = scenario.initial;
    if (canonicalise)
        init.canonicaliseTids();
    states.push_back(init);
    seen.insert(stateKey(init));
    for (std::size_t at = 0; at < states.size() && states.size() < limit;
         ++at) {
        const SystemState cur = states[at];
        for (const RuleSet::Successor &succ :
             rules.successors(cur, scenario, canonicalise)) {
            if (states.size() >= limit)
                break;
            if (seen.insert(stateKey(succ.state)).second)
                states.push_back(succ.state);
        }
    }
    return states;
}

// ------------------------------------------------- atom byte ranges

struct ByteRange {
    std::size_t off;
    std::size_t len;
};

/** Byte ranges covered by footprint atom bit @p bit. */
std::vector<ByteRange>
atomRanges(int bit)
{
    if ((1u << bit) == fp::kCounter)
        return {{offsetof(SystemState, counter), 1}};
    if ((1u << bit) == fp::kHost) {
        return {{offsetof(SystemState, hval), 1},
                {offsetof(SystemState, hstate), 1},
                {offsetof(SystemState, hreq), 1}};
    }
    const int dev = (bit - 2) / fp::kAtomsPerDevice;
    const int sub = (bit - 2) % fp::kAtomsPerDevice;
    const std::size_t base =
        offsetof(SystemState, dev) + dev * sizeof(DeviceState);
    switch (sub) {
      case 0: // core: val, state, buffer, pc
        return {{base + offsetof(DeviceState, val), 1},
                {base + offsetof(DeviceState, state), 1},
                {base + offsetof(DeviceState, buffer), sizeof(DBuffer)},
                {base + offsetof(DeviceState, pc), 1}};
      case 1:
        return {{base + offsetof(DeviceState, d2hReq),
                 sizeof(DeviceState{}.d2hReq)}};
      case 2:
        return {{base + offsetof(DeviceState, d2hRsp),
                 sizeof(DeviceState{}.d2hRsp)}};
      case 3:
        return {{base + offsetof(DeviceState, d2hData),
                 sizeof(DeviceState{}.d2hData)}};
      case 4:
        return {{base + offsetof(DeviceState, h2dReq),
                 sizeof(DeviceState{}.h2dReq)}};
      case 5:
        return {{base + offsetof(DeviceState, h2dRsp),
                 sizeof(DeviceState{}.h2dRsp)}};
      default:
        return {{base + offsetof(DeviceState, h2dData),
                 sizeof(DeviceState{}.h2dData)}};
    }
}

/** Byte mask (one flag per state byte) of an atom set. */
std::vector<bool>
atomByteMask(std::uint32_t atoms)
{
    std::vector<bool> mask(sizeof(SystemState), false);
    for (int bit = 0; bit < fp::kNumAtoms; ++bit) {
        if (!(atoms & (1u << bit)))
            continue;
        for (const ByteRange &r : atomRanges(bit)) {
            for (std::size_t k = 0; k < r.len; ++k)
                mask[r.off + k] = true;
        }
    }
    return mask;
}

/** The model/config pairs the validation sweeps: the correct model
 * and an everything-mutated one, at 2 and 3 devices. */
std::vector<ProtocolConfig>
validationConfigs()
{
    ProtocolConfig mutated;
    mutated.hostCleanPull = true;
    mutated.relaxSnoopPushesGo = true;
    mutated.relaxSmadSnoopGuard = true;
    mutated.relaxGoTailgate = true;
    mutated.relaxOneSnoop = true;
    return {ProtocolConfig::correct(), mutated};
}

// ---------------------------------------------- footprint validation

TEST(Footprints, DeclaredWritesContainEveryChangedByte)
{
    for (const ProtocolConfig &config : validationConfigs()) {
        for (int ndev : {2, 3}) {
            RuleSet rules(config, ndev);
            Scenario scn = Scenario::freeRunScenario(ndev);
            // Raw (non-canonicalised) firing isolates the rule's own
            // writes from the tid-relabelling pass.
            for (const SystemState &s :
                 corpus(rules, scn, 800, /*canonicalise=*/false)) {
                for (const RuleSet::Successor &succ :
                     rules.successors(s, scn, false)) {
                    const auto allowed =
                        atomByteMask(succ.rule->footprint.writes);
                    const auto *a =
                        reinterpret_cast<const unsigned char *>(&s);
                    const auto *b =
                        reinterpret_cast<const unsigned char *>(
                            &succ.state);
                    for (std::size_t off = 0; off < s.activeBytes();
                         ++off) {
                        if (a[off] != b[off]) {
                            ASSERT_TRUE(allowed[off])
                                << succ.rule->name
                                << " changed undeclared byte " << off
                                << " (ndev " << ndev << ")";
                        }
                    }
                }
            }
        }
    }
}

TEST(Footprints, IndependentPairsCommuteAndPreserveEnabledness)
{
    for (const ProtocolConfig &config : validationConfigs()) {
        for (int ndev : {2, 3}) {
            RuleSet rules(config, ndev);
            Scenario scn = Scenario::freeRunScenario(ndev);
            Context ctx{&scn};
            for (const SystemState &s :
                 corpus(rules, scn, 600, /*canonicalise=*/true)) {
                std::vector<const Rule *> enabled;
                for (const Rule &r : rules.rules()) {
                    if (r.guard(s, ctx))
                        enabled.push_back(&r);
                }
                for (std::size_t x = 0; x < enabled.size(); ++x) {
                    for (std::size_t y = x + 1; y < enabled.size();
                         ++y) {
                        const Rule &a = *enabled[x];
                        const Rule &b = *enabled[y];
                        if (!independentCanonical(a.footprint,
                                                  b.footprint)) {
                            continue;
                        }
                        SystemState sa = s, sb = s;
                        ASSERT_TRUE(a.apply(sa, ctx));
                        ASSERT_TRUE(b.apply(sb, ctx));
                        // Neither may disable (or re-guard) the other.
                        ASSERT_TRUE(b.guard(sa, ctx))
                            << a.name << " disabled " << b.name;
                        ASSERT_TRUE(a.guard(sb, ctx))
                            << b.name << " disabled " << a.name;
                        SystemState ab = sa, ba = sb;
                        ASSERT_TRUE(b.apply(ab, ctx));
                        ASSERT_TRUE(a.apply(ba, ctx));
                        if (independent(a.footprint, b.footprint)) {
                            // Strict disjointness: exact commutation.
                            ASSERT_TRUE(ab == ba)
                                << a.name << " / " << b.name;
                        }
                        // The engine's requirement: commutation
                        // modulo tid canonicalisation.
                        ab.canonicaliseTids();
                        ba.canonicaliseTids();
                        ASSERT_TRUE(ab == ba)
                            << a.name << " / " << b.name
                            << " (canonical)";
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------- mechanism

TEST(PorContext, PermutationRemapMatchesConjugatedFootprints)
{
    RuleSet rules(ProtocolConfig::correct(), 3);
    std::uint8_t perm[kMaxDevices] = {0, 1, 2, 3};
    // Every non-identity permutation of 3 devices (new->old).
    std::vector<std::array<std::uint8_t, kMaxDevices>> perms;
    while (std::next_permutation(perm, perm + 3))
        perms.push_back({perm[0], perm[1], perm[2], 3});
    for (const auto &p : perms) {
        std::uint8_t old_to_new[kMaxDevices] = {0, 0, 0, 3};
        for (int n = 0; n < 3; ++n)
            old_to_new[p[n]] = static_cast<std::uint8_t>(n);
        for (const Rule &r : rules.rules()) {
            const int image = rules.permutedRuleId(r.id, old_to_new);
            ASSERT_GE(image, 0) << r.name;
            const Rule &img = rules.rules()[image];
            // Conjugated footprint: device atoms relabelled through
            // old->new, host/counter atoms fixed.
            auto remap_atoms = [&](std::uint32_t atoms) {
                std::uint32_t out =
                    atoms & (fp::kCounter | fp::kHost);
                for (int d = 0; d < 3; ++d) {
                    const std::uint32_t slice =
                        (atoms >> fp::devShift(d)) &
                        ((1u << fp::kAtomsPerDevice) - 1);
                    out |= slice << fp::devShift(old_to_new[d]);
                }
                return out;
            };
            EXPECT_EQ(remap_atoms(r.footprint.reads),
                      img.footprint.reads)
                << r.name << " -> " << img.name;
            EXPECT_EQ(remap_atoms(r.footprint.writes),
                      img.footprint.writes)
                << r.name << " -> " << img.name;
            EXPECT_EQ(r.footprint.counterAllocOnly,
                      img.footprint.counterAllocOnly);
        }
    }
}

TEST(PorContext, MaskRemapRoundTrips)
{
    RuleSet rules(ProtocolConfig::correct(), 3);
    PorContext por(rules, /*symmetry=*/true);
    // Swap devices 1 and 2 (new->old {1,0,2}): remapping twice is the
    // identity on every mappable rule.
    const std::uint8_t swap[kMaxDevices] = {1, 0, 2, 3};
    RuleMask mask;
    for (std::size_t r = 0; r < rules.rules().size(); r += 3)
        mask.set(r);
    const RuleMask once = por.remap(mask, swap);
    const RuleMask twice = por.remap(once, swap);
    EXPECT_TRUE(twice == mask);
    // The identity permutation maps every mask to itself.
    const std::uint8_t ident[kMaxDevices] = {0, 1, 2, 3};
    EXPECT_TRUE(por.identity(ident));
    EXPECT_TRUE(por.remap(mask, ident) == mask);
}

TEST(PorContext, RejectsOversizedRuleSets)
{
    RuleSet rules(ProtocolConfig::correct(), 2);
    while (rules.rules().size() <= kMaxPorRules) {
        Rule r;
        r.name = "pad" + std::to_string(rules.rules().size());
        r.guard = [](const SystemState &, const Context &) {
            return false;
        };
        r.apply = [](SystemState &, const Context &) { return true; };
        rules.addRule(std::move(r));
    }
    EXPECT_THROW(PorContext(rules, false), std::runtime_error);
}

// ------------------------------------- end-to-end verdict soundness

/** Everything a verdict comparison cares about. */
struct VerdictImage {
    CheckResult::Verdict verdict;
    std::uint64_t states;
    std::uint32_t diameter;
    bool completed;
    std::string violation; // kind/conjunct/family/depth, or "-"
    std::vector<std::string> failedConjuncts;

    friend bool
    operator==(const VerdictImage &a, const VerdictImage &b)
    {
        return a.verdict == b.verdict && a.states == b.states &&
               a.diameter == b.diameter &&
               a.completed == b.completed &&
               a.violation == b.violation &&
               a.failedConjuncts == b.failedConjuncts;
    }
};

VerdictImage
imageOf(const CheckResult &res)
{
    VerdictImage img;
    img.verdict = res.verdict;
    img.states = res.states;
    img.diameter = res.diameter;
    img.completed = res.completed;
    if (res.violation) {
        img.violation = std::to_string(
                            static_cast<int>(res.violation->kind)) +
                        "/" + res.violation->conjunctName + "/" +
                        res.violation->conjunctFamily + "/" +
                        std::to_string(res.violation->depth);
    } else {
        img.violation = "-";
    }
    for (const ConjunctStatus &c : res.conjuncts) {
        if (!c.held)
            img.failedConjuncts.push_back(c.name);
    }
    return img;
}

CheckResult
runScenario(CheckSession &session, const std::string &name,
            int devices, std::size_t threads, bool por)
{
    CheckRequest req;
    req.scenario = name;
    req.devices = devices;
    EngineOptions eng;
    eng.threads = threads;
    eng.por = por;
    req.engine = eng;
    return session.run(req);
}

TEST(PorSoundness, EveryRegistryScenarioKeepsItsVerdict)
{
    CheckSession session;
    for (const scenarios::Entry &entry : scenarios::all()) {
        for (int devices : {2, 3}) {
            if (!entry.deviceScalable &&
                entry.fixedDevices != devices) {
                continue;
            }
            const CheckResult base =
                runScenario(session, entry.name, devices, 1, false);
            const VerdictImage want = imageOf(base);
            for (std::size_t threads : {1u, 4u, 8u}) {
                const CheckResult reduced = runScenario(
                    session, entry.name, devices, threads, true);
                EXPECT_TRUE(imageOf(reduced) == want)
                    << entry.name << " devices " << devices
                    << " threads " << threads << "\n  por: "
                    << reduced.verdictText()
                    << "\n  base: " << base.verdictText();
                EXPECT_LE(reduced.transitions, base.transitions)
                    << entry.name;
                // Fired + slept = the unreduced fan-out of the same
                // (identical) state set — exactly.
                if (base.completed) {
                    EXPECT_EQ(reduced.transitions +
                                  reduced.sleptTransitions,
                              base.transitions)
                        << entry.name << " devices " << devices;
                }
            }
        }
    }
}

TEST(PorSoundness, ThreeDeviceFreeRunMeetsTheReductionTarget)
{
    // The acceptance bar: the 3-device symmetry-reduced free run must
    // shed at least 30% of the recorded 517,428-transition baseline
    // while SWMR and the full invariant still hold on the identical
    // 144,294-state space.  Deterministic for any thread count.
    CheckSession session;
    CheckRequest req;
    req.scenario = "free-run";
    req.devices = 3;
    EngineOptions eng;
    eng.threads = 2;
    eng.por = true;
    req.engine = eng;
    const CheckResult res = session.run(req);
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Holds);
    EXPECT_TRUE(res.symmetryReduction);
    EXPECT_EQ(res.states, 144294u);
    EXPECT_EQ(res.diameter, 45u);
    EXPECT_EQ(res.transitions + res.sleptTransitions, 517428u);
    EXPECT_LE(res.transitions, 517428u * 7 / 10)
        << "POR reduction fell below 30%";
    // Per-rule slept counters tie out with the total.
    std::uint64_t slept = 0;
    for (const RuleFire &rf : res.ruleFires)
        slept += rf.slept;
    EXPECT_EQ(slept, res.sleptTransitions);
}

TEST(PorSoundness, ComposesWithCompactionBitIdentically)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "free-run";
    req.devices = 2;
    EngineOptions eng;
    eng.threads = 4;
    eng.por = true;
    eng.store = StoreKind::Compact;
    req.engine = eng;
    const CheckResult res = session.run(req);
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Holds);
    EXPECT_TRUE(res.compaction);
    EXPECT_EQ(res.states, 5218u);
    EXPECT_EQ(res.diameter, 27u);

    eng.store = StoreKind::Full;
    req.engine = eng;
    const CheckResult full = session.run(req);
    EXPECT_EQ(full.transitions, res.transitions);
    EXPECT_EQ(full.sleptTransitions, res.sleptTransitions);
}

} // namespace
} // namespace cxl
