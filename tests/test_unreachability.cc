/**
 * @file
 * Negative scenario verification (paper Section 5: "illegal
 * interactions are indeed forbidden"): exhaustively assert that
 * specific bad state shapes are unreachable in the correct model —
 * and, as a sanity check on the method, that the matching *legal*
 * shapes are reachable.
 */

#include <gtest/gtest.h>

#include <deque>
#include <functional>

#include "checker/state_store.hh"
#include "protocol/rules.hh"

namespace cxl
{
namespace
{

/** Exhaustively search for a state satisfying @p predicate. */
bool
reachable(const RuleSet &rules, const Scenario &scenario,
          const std::function<bool(const SystemState &)> &predicate)
{
    StateStore store;
    std::deque<std::uint32_t> frontier;
    SystemState init = scenario.initial;
    init.canonicaliseTids();
    if (predicate(init))
        return true;
    frontier.push_back(
        store.insert(init, StateStore::kNoParent, 0, 0).first);

    while (!frontier.empty()) {
        std::uint32_t idx = frontier.front();
        frontier.pop_front();
        const SystemState &state = store.stateAt(idx);
        for (auto &succ : rules.successors(state, scenario, true)) {
            if (predicate(succ.state))
                return true;
            auto [sidx, is_new] =
                store.insert(succ.state, idx, succ.rule->id, 0);
            if (is_new)
                frontier.push_back(sidx);
        }
    }
    return false;
}

class Unreachability : public ::testing::Test
{
  protected:
    Unreachability()
        : rules(ProtocolConfig::correct()),
          scenario(Scenario::freeRunScenario())
    {
    }

    bool
    freeRunReaches(std::function<bool(const SystemState &)> predicate)
    {
        return reachable(rules, scenario, std::move(predicate));
    }

    RuleSet rules;
    Scenario scenario;
};

TEST_F(Unreachability, TwoSimultaneousOwnersForbidden)
{
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        return s.dev[0].state == DState::M && s.dev[1].state == DState::M;
    }));
    // ...but a single owner is of course reachable.
    EXPECT_TRUE(freeRunReaches([](const SystemState &s) {
        return s.dev[0].state == DState::M;
    }));
}

TEST_F(Unreachability, OwnerAndSharerForbidden)
{
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        return s.dev[0].state == DState::M && s.dev[1].state == DState::S;
    }));
    EXPECT_TRUE(freeRunReaches([](const SystemState &s) {
        return s.dev[0].state == DState::S && s.dev[1].state == DState::S;
    }));
}

TEST_F(Unreachability, RspIHitINeverSentByHonestDevices)
{
    // Perfect tracking means the host never snoops an invalid line, so
    // the correct model never produces RspIHitI (paper Section 3.2).
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        for (const auto &d : s.dev) {
            for (const auto &m : d.d2hRsp) {
                if (m.op == D2HRspOp::RspIHitI)
                    return true;
            }
        }
        return false;
    }));
}

TEST_F(Unreachability, SnoopNeverTargetsAnIdleInvalidLine)
{
    // A snoop in flight to a device that is plain-I with nothing
    // pending would be an unnecessary snoop.
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        for (const auto &d : s.dev) {
            if (!d.h2dReq.empty() && d.state == DState::I &&
                d.d2hReq.empty() && d.h2dRsp.empty() &&
                d.h2dData.empty()) {
                return true;
            }
        }
        return false;
    }));
}

TEST_F(Unreachability, OwnershipGrantNeverCoexistsWithAnotherGrant)
{
    // An in-flight GO-M excludes any grant to the other device; two
    // in-flight GO-S grants, by contrast, are perfectly legal.
    auto has_go_to = [](const DeviceState &d, DState target) {
        for (const auto &m : d.h2dRsp) {
            if (m.op == H2DRspOp::GO && m.target == target)
                return true;
        }
        return false;
    };
    auto has_any_go = [](const DeviceState &d) {
        for (const auto &m : d.h2dRsp) {
            if (m.op == H2DRspOp::GO)
                return true;
        }
        return false;
    };
    EXPECT_FALSE(
        freeRunReaches([has_go_to, has_any_go](const SystemState &s) {
            return (has_go_to(s.dev[0], DState::M) &&
                    has_any_go(s.dev[1])) ||
                   (has_go_to(s.dev[1], DState::M) &&
                    has_any_go(s.dev[0]));
        }));
    EXPECT_TRUE(
        freeRunReaches([has_go_to](const SystemState &s) {
            return has_go_to(s.dev[0], DState::S) &&
                   has_go_to(s.dev[1], DState::S);
        }))
        << "two share grants in flight are legal";
}

TEST_F(Unreachability, SnoopPushesGoShapeIsReachableButHarmless)
{
    // The Table 3 pre-condition — a snoop queued *behind* a pending GO
    // — is reachable even in the correct model; the restriction is
    // about processing order, not about the shape existing.
    EXPECT_TRUE(freeRunReaches([](const SystemState &s) {
        for (const auto &d : s.dev) {
            if (!d.h2dReq.empty() && !d.h2dRsp.empty())
                return true;
        }
        return false;
    }));
}

TEST_F(Unreachability, BogusDataForbiddenUnderSection44Fix)
{
    // With GO_WritePullDrop on stale evictions (default config), no
    // bogus data message is ever produced...
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        for (const auto &d : s.dev) {
            for (const auto &m : d.d2hData) {
                if (m.bogus)
                    return true;
            }
        }
        return false;
    }));

    // ...while the standard behaviour does produce them.
    ProtocolConfig standard;
    standard.staleEvictDrop = false;
    RuleSet std_rules(standard);
    EXPECT_TRUE(reachable(std_rules, scenario, [](const SystemState &s) {
        for (const auto &d : s.dev) {
            for (const auto &m : d.d2hData) {
                if (m.bogus)
                    return true;
            }
        }
        return false;
    }));
}

TEST_F(Unreachability, HostTransientsNeverCoexistWithIdleChannels)
{
    // A snooping host state always has its transaction visibly in
    // flight somewhere (matching the progress conjuncts).
    EXPECT_FALSE(freeRunReaches([](const SystemState &s) {
        if (s.hstate != HState::MA && s.hstate != HState::MAD &&
            s.hstate != HState::SAD) {
            return false;
        }
        for (const auto &d : s.dev) {
            if (!d.h2dReq.empty() || !d.d2hRsp.empty())
                return false;
        }
        return true;
    }));
}

} // namespace
} // namespace cxl
