/**
 * @file
 * Tests for the restriction-relaxation machinery (paper Section 5.2):
 * each mutation makes a specific violation reachable that the correct
 * model provably (exhaustively) never reaches, and the mutated rule
 * sets differ from the base set in exactly the advertised ways.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "litmus/litmus.hh"

namespace cxl
{
namespace
{

TEST(Mutations, ConfigReportsActiveMutations)
{
    ProtocolConfig c;
    EXPECT_FALSE(c.mutated());
    EXPECT_TRUE(c.activeMutations().empty());

    c.relaxSnoopPushesGo = true;
    c.relaxOneSnoop = true;
    EXPECT_TRUE(c.mutated());
    auto names = c.activeMutations();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "relax_snoop_pushes_go");
    EXPECT_EQ(names[1], "relax_one_snoop");
}

TEST(Mutations, MutatedRulesAreFlagged)
{
    ProtocolConfig c;
    c.relaxSnoopPushesGo = true;
    c.relaxGoTailgate = true;
    c.relaxOneSnoop = true;
    RuleSet rules(c);

    std::size_t mutated = 0;
    for (const Rule &r : rules.rules())
        mutated += r.mutated ? 1 : 0;
    // ISADSnpInv + IMADSnpInv + HostEagerGoRdOwn + HostSecondSnoop,
    // each per device.
    EXPECT_EQ(mutated, 8u);
    EXPECT_EQ(rules.baseRuleCount(), rules.rules().size() - 8);
}

TEST(Mutations, CorrectModelHasNoMutatedRules)
{
    RuleSet rules(ProtocolConfig::correct());
    for (const Rule &r : rules.rules())
        EXPECT_FALSE(r.mutated) << r.name;
}

struct MutationCase {
    const char *name;
    ProtocolConfig config;
    /// Conjunct families whose violation the mutation must enable.
    std::vector<std::string> checkFamilies;
    const char *expectedFamily;
};

std::vector<MutationCase>
mutationCases()
{
    std::vector<MutationCase> cases;
    {
        MutationCase c{"relax_snoop_pushes_go", {}, {"swmr"}, "swmr"};
        c.config.relaxSnoopPushesGo = true;
        cases.push_back(c);
    }
    {
        MutationCase c{"relax_smad_snoop_guard",
                       {},
                       {"swmr", "snoop_honesty"},
                       "snoop_honesty"};
        c.config.relaxSmadSnoopGuard = true;
        cases.push_back(c);
    }
    {
        MutationCase c{"relax_go_tailgate", {}, {"swmr"}, "swmr"};
        c.config.relaxGoTailgate = true;
        cases.push_back(c);
    }
    {
        MutationCase c{"relax_one_snoop",
                       {},
                       {"swmr", "channel_singleton"},
                       "channel_singleton"};
        c.config.relaxOneSnoop = true;
        cases.push_back(c);
    }
    return cases;
}

class MutationSweep : public ::testing::TestWithParam<MutationCase>
{
};

TEST_P(MutationSweep, FreeRunReachesTheAdvertisedViolation)
{
    const MutationCase &mc = GetParam();
    RuleSet rules(mc.config);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet inv =
        InvariantSet::full(mc.config).filtered(mc.checkFamilies);
    ASSERT_GT(inv.size(), 0u);

    Explorer explorer(rules, scenario, inv);
    ExploreResult res = explorer.run();
    ASSERT_TRUE(res.violation.has_value()) << mc.name;
    EXPECT_EQ(res.violation->conjunctFamily, mc.expectedFamily)
        << res.violation->describe();
}

TEST_P(MutationSweep, CorrectModelNeverReachesIt)
{
    const MutationCase &mc = GetParam();
    ProtocolConfig correct = ProtocolConfig::correct();
    RuleSet rules(correct);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet inv =
        InvariantSet::full(correct).filtered(mc.checkFamilies);

    Explorer explorer(rules, scenario, inv);
    ExploreResult res = explorer.run();
    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(res.violation.has_value());
}

std::string
mutationName(const ::testing::TestParamInfo<MutationCase> &info)
{
    return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllMutations, MutationSweep,
                         ::testing::ValuesIn(mutationCases()),
                         mutationName);

TEST(Mutations, RelaxedModelStrictlyEnlargesStateSpace)
{
    // Relaxations add behaviours; they must never remove any.
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet none = InvariantSet::swmrOnly().filtered({"none"});

    RuleSet base(ProtocolConfig::correct());
    Explorer base_ex(base, scenario, none);
    ExploreOptions opt;
    opt.checkInvariants = false;
    auto base_res = base_ex.run(opt);

    ProtocolConfig relaxed;
    relaxed.relaxSnoopPushesGo = true;
    RuleSet mrules(relaxed);
    Explorer mut_ex(mrules, scenario, none);
    auto mut_res = mut_ex.run(opt);

    EXPECT_GT(mut_res.numStates, base_res.numStates)
        << "relaxing Snoop-pushes-GO must make new states reachable";
}

} // namespace
} // namespace cxl
