/**
 * @file
 * Tests for the obligation-matrix engine and universe generation: the
 * SWMR non-inductiveness result (paper Section 6), reachable-closure
 * inductiveness, witness replayability, and thread-count invariance.
 */

#include <gtest/gtest.h>

#include <set>

#include "obligation/matrix.hh"
#include "obligation/universe.hh"

namespace cxl
{
namespace
{

class Obligation : public ::testing::Test
{
  protected:
    Obligation()
        : config(ProtocolConfig::correct()), rules(config),
          scenario(Scenario::freeRunScenario())
    {
    }

    ProtocolConfig config;
    RuleSet rules;
    Scenario scenario;
};

TEST_F(Obligation, PaperWitnessShowsSwmrNotInductive)
{
    // Paper Section 6: the state with DCache1 = IMA, a GO-M in flight
    // and DCache2 = M satisfies SWMR, but one transition breaks it.
    SystemState w = swmrNonInductiveWitness(0);
    EXPECT_TRUE(swmrHolds(w));

    Context ctx{&scenario};
    const Rule *rule = rules.find("IMA_GO1");
    ASSERT_NE(rule, nullptr);
    ASSERT_TRUE(rule->guard(w, ctx));
    SystemState post = w;
    ASSERT_TRUE(rule->apply(post, ctx));
    EXPECT_FALSE(swmrHolds(post));

    // The strengthened invariant rejects the witness as a state, which
    // is exactly why it had to be strengthened.
    InvariantSet full = InvariantSet::full(config);
    EXPECT_FALSE(full.holds(w, ctx));
}

TEST_F(Obligation, WitnessIsUnreachable)
{
    // The counterexample state must not be reachable (paper: "this
    // state is not reachable from any valid initial state").
    SystemState w = swmrNonInductiveWitness(0);
    w.canonicaliseTids();
    UniverseOptions opt;
    opt.perturbationsPerSeed = 0; // reachable closure only
    InvariantSet full = InvariantSet::full(config);
    auto reachable = buildUniverse(rules, scenario, full, opt, nullptr);
    for (const SystemState &s : reachable)
        EXPECT_FALSE(s == w);
}

TEST_F(Obligation, ReachableClosureHasNoFailingCells)
{
    // Over the reachable universe every obligation is discharged:
    // successors of reachable states are reachable, and exhaustive
    // checking proved all conjuncts there.
    UniverseOptions opt;
    opt.perturbationsPerSeed = 0;
    InvariantSet full = InvariantSet::full(config);
    auto universe = buildUniverse(rules, scenario, full, opt, nullptr);
    ASSERT_GT(universe.size(), 1000u);

    MatrixResult res =
        checkObligationMatrix(rules, scenario, full, universe, {});
    EXPECT_EQ(res.failedCellCount(), 0u);
    EXPECT_GT(res.totalFirings, universe.size());
    EXPECT_EQ(res.totalCells(),
              rules.rules().size() * full.size());
}

TEST_F(Obligation, SwmrOnlyFailsExactlyAtGrantConsumptionRules)
{
    InvariantSet swmr = InvariantSet::swmrOnly();
    UniverseOptions opt;
    opt.seed = 7;
    auto universe = buildUniverse(rules, scenario, swmr, opt, nullptr);

    MatrixResult res =
        checkObligationMatrix(rules, scenario, swmr, universe, {});
    EXPECT_GT(res.failedCellCount(), 0u)
        << "bare SWMR must not be inductive (paper Section 6)";

    // Every failing rule is a GO/Data consumption completing an
    // ownership or share upgrade — the only rules that create access.
    const std::set<std::string> upgrade_prefixes = {
        "IMA_GO",   "IMD_Data",   "IMAD_GO_Data", "SMA_GO",
        "SMD_Data", "SMAD_GO_Data", "ISA_GO",     "ISD_Data",
        "ISAD_GO_Data"};
    for (const FailedCell &cell : res.failures) {
        std::string base = cell.ruleName.substr(0, cell.ruleName.size() - 1);
        EXPECT_TRUE(upgrade_prefixes.count(base))
            << "unexpected failing rule " << cell.ruleName;
        EXPECT_EQ(cell.conjunctName.rfind("swmr", 0), 0u);
    }
}

TEST_F(Obligation, WitnessesReplay)
{
    // Each reported witness must actually replay: pre satisfies the
    // invariant, the rule fires, the conjunct fails on post.
    InvariantSet swmr = InvariantSet::swmrOnly();
    UniverseOptions opt;
    auto universe = buildUniverse(rules, scenario, swmr, opt, nullptr);
    MatrixResult res =
        checkObligationMatrix(rules, scenario, swmr, universe, {});
    ASSERT_FALSE(res.failures.empty());

    Context ctx{&scenario};
    for (const FailedCell &cell : res.failures) {
        EXPECT_TRUE(swmr.holds(cell.pre, ctx));
        const Rule *rule = rules.find(cell.ruleName);
        ASSERT_NE(rule, nullptr);
        ASSERT_TRUE(rule->guard(cell.pre, ctx));
        SystemState post = cell.pre;
        ASSERT_TRUE(rule->apply(post, ctx));
        EXPECT_EQ(post, cell.post);
        const Conjunct *conjunct = swmr.find(cell.conjunctName);
        ASSERT_NE(conjunct, nullptr);
        EXPECT_FALSE(conjunct->holds(post, ctx));
    }
}

TEST_F(Obligation, ThreadCountDoesNotChangeTotals)
{
    InvariantSet full = InvariantSet::full(config);
    UniverseOptions opt;
    opt.maxReachable = 2000;
    opt.perturbationsPerSeed = 2;
    auto universe = buildUniverse(rules, scenario, full, opt, nullptr);

    MatrixOptions one;
    one.threads = 1;
    MatrixOptions four;
    four.threads = 4;
    MatrixResult a =
        checkObligationMatrix(rules, scenario, full, universe, one);
    MatrixResult b =
        checkObligationMatrix(rules, scenario, full, universe, four);

    EXPECT_EQ(a.totalFirings, b.totalFirings);
    EXPECT_EQ(a.cellFailures, b.cellFailures);
    EXPECT_EQ(a.ruleEnabledCounts, b.ruleEnabledCounts);
    EXPECT_EQ(a.failedCellCount(), b.failedCellCount());
}

TEST_F(Obligation, UniverseIsDeterministicInSeed)
{
    InvariantSet full = InvariantSet::full(config);
    UniverseOptions opt;
    opt.maxReachable = 1000;
    auto a = buildUniverse(rules, scenario, full, opt, nullptr);
    auto b = buildUniverse(rules, scenario, full, opt, nullptr);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k], b[k]);
}

TEST_F(Obligation, UniverseStatesSatisfyFilter)
{
    InvariantSet full = InvariantSet::full(config);
    UniverseStats stats;
    UniverseOptions opt;
    opt.maxReachable = 3000;
    auto universe = buildUniverse(rules, scenario, full, opt, &stats);
    EXPECT_GT(stats.reachableSeeds, 0u);
    EXPECT_GT(stats.perturbedAccepted, 0u);

    Context ctx{&scenario};
    for (const SystemState &s : universe)
        ASSERT_TRUE(full.holds(s, ctx));
}

TEST_F(Obligation, ReachableRowCoverageIsExact)
{
    // Over the reachable closure, exactly the program-mode-only rules
    // (free-run disables silent hits), the config-gated pull paths and
    // the mutation-companion rules are uncovered.
    InvariantSet full = InvariantSet::full(config);
    UniverseOptions opt;
    opt.perturbationsPerSeed = 0;
    auto universe = buildUniverse(rules, scenario, full, opt, nullptr);
    MatrixResult res =
        checkObligationMatrix(rules, scenario, full, universe, {});

    const std::set<std::string> expected_uncovered_bases = {
        "InvalidEvict", "SharedLoad",      "ModifiedLoad",
        "SIA_GO_WritePull", "IIA_GO_WritePull", "HostMA_RspIHitI",
        "HostSB_Data",  "HostBogusData"};
    for (std::size_t r = 0; r < rules.rules().size(); ++r) {
        const std::string &name = rules.rules()[r].name;
        std::string base = name.substr(0, name.size() - 1);
        if (res.ruleEnabledCounts[r] == 0) {
            EXPECT_TRUE(expected_uncovered_bases.count(base))
                << "rule " << name << " unexpectedly uncovered";
        } else {
            EXPECT_FALSE(expected_uncovered_bases.count(base))
                << "rule " << name << " unexpectedly covered";
        }
    }

    // The perturbed universe probes beyond reachability and can cover
    // some of those rows too (e.g. an injected GO_WritePull enables
    // SIA_GO_WritePull); it must never lose coverage.
    UniverseOptions popt;
    auto perturbed = buildUniverse(rules, scenario, full, popt, nullptr);
    MatrixResult pres =
        checkObligationMatrix(rules, scenario, full, perturbed, {});
    for (std::size_t r = 0; r < rules.rules().size(); ++r) {
        if (res.ruleEnabledCounts[r] > 0) {
            EXPECT_GT(pres.ruleEnabledCounts[r], 0u)
                << rules.rules()[r].name;
        }
    }
}

} // namespace
} // namespace cxl
