/**
 * @file
 * The reproduction's counterpart of paper Theorem 6.2
 * (SWMR_CXL_cache): for every protocol configuration, every reachable
 * state of the free-run two-device model satisfies SWMR and the full
 * strengthened invariant.  Program-mode sweeps additionally check
 * termination and final coherence over a grid of device programs.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"

namespace cxl
{
namespace
{

struct ConfigCase {
    const char *name;
    ProtocolConfig config;
};

std::vector<ConfigCase>
allCorrectConfigs()
{
    std::vector<ConfigCase> cases;
    cases.push_back({"default", ProtocolConfig::correct()});

    ProtocolConfig standard;
    standard.staleEvictDrop = false;
    cases.push_back({"standard_bogus_pulls", standard});

    ProtocolConfig pull;
    pull.hostCleanPull = true;
    cases.push_back({"host_clean_pull", pull});

    ProtocolConfig both;
    both.hostCleanPull = true;
    both.staleEvictDrop = false;
    cases.push_back({"pull_and_standard", both});

    ProtocolConfig no_cend;
    no_cend.cleanEvictNoData = false;
    cases.push_back({"no_clean_evict_nodata", no_cend});

    return cases;
}

class SwmrTheorem : public ::testing::TestWithParam<ConfigCase>
{
};

TEST_P(SwmrTheorem, HoldsOnEveryReachableState)
{
    const ConfigCase &cc = GetParam();
    RuleSet rules(cc.config);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet invariants = InvariantSet::full(cc.config);

    Explorer explorer(rules, scenario, invariants);
    ExploreResult res = explorer.run();

    ASSERT_TRUE(res.completed)
        << "the free-run state space must be finite and fully explored";
    EXPECT_FALSE(res.violation.has_value())
        << (res.violation ? res.violation->describe() : std::string());
    EXPECT_GT(res.numStates, 1000u)
        << "the space must be non-trivial for the theorem to mean much";
}

TEST_P(SwmrTheorem, StateSpaceIsDeviceSymmetric)
{
    const ConfigCase &cc = GetParam();
    RuleSet rules(cc.config);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet invariants = InvariantSet::full(cc.config);

    Explorer explorer(rules, scenario, invariants);
    ExploreResult res = explorer.run();
    ASSERT_TRUE(res.completed);

    for (const Rule &rule : rules.rules()) {
        if (rule.dev != 0)
            continue;
        std::string twin = rule.name;
        twin.back() = '2';
        const Rule *other = rules.find(twin);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(res.ruleFireCounts[rule.id],
                  res.ruleFireCounts[other->id])
            << rule.name;
    }
}

std::string
configName(const ::testing::TestParamInfo<ConfigCase> &info)
{
    return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, SwmrTheorem,
                         ::testing::ValuesIn(allCorrectConfigs()),
                         configName);

// ---------------------------------------------------------------------
// Program-grid sweep: both devices run every pair of two-instruction
// programs from {Load, Store, Evict}^2; every interleaving must stay
// coherent, terminate, and drain its channels.
// ---------------------------------------------------------------------

using ProgramPair = std::tuple<int, int>; // indices into the grid

std::vector<Instr>
programFromIndex(int idx)
{
    const Instr ops[] = {Instr::Load, Instr::Store, Instr::Evict};
    return {ops[idx / 3], ops[idx % 3]};
}

std::string
programText(int idx)
{
    std::string txt;
    for (Instr op : programFromIndex(idx))
        txt += toString(op);
    return txt;
}

class ProgramSweep : public ::testing::TestWithParam<ProgramPair>
{
};

TEST_P(ProgramSweep, AllInterleavingsCoherentAndTerminate)
{
    auto [p1, p2] = GetParam();
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    InvariantSet invariants = InvariantSet::full(config);

    Scenario sc;
    sc.name = "sweep_" + programText(p1) + "_" + programText(p2);
    sc.initial = initialAllInvalid(0);
    sc.program[0] = programFromIndex(p1);
    sc.program[1] = programFromIndex(p2);

    Explorer explorer(rules, sc, invariants);
    ExploreOptions opt;
    opt.checkDeadlock = true;
    ExploreResult res = explorer.run(opt);

    EXPECT_TRUE(res.completed) << sc.name;
    EXPECT_FALSE(res.violation.has_value())
        << sc.name << ": "
        << (res.violation ? res.violation->describe() : "");
}

TEST_P(ProgramSweep, FromSharedInitialState)
{
    auto [p1, p2] = GetParam();
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    InvariantSet invariants = InvariantSet::full(config);

    Scenario sc;
    sc.initial = initialBothShared(0);
    sc.program[0] = programFromIndex(p1);
    sc.program[1] = programFromIndex(p2);

    Explorer explorer(rules, sc, invariants);
    ExploreOptions opt;
    opt.checkDeadlock = true;
    ExploreResult res = explorer.run(opt);
    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(res.violation.has_value())
        << (res.violation ? res.violation->describe() : "");
}

std::string
sweepName(const ::testing::TestParamInfo<ProgramPair> &info)
{
    return programText(std::get<0>(info.param)) + "_vs_" +
           programText(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Grid, ProgramSweep,
                         ::testing::Combine(::testing::Range(0, 9),
                                            ::testing::Range(0, 9)),
                         sweepName);

} // namespace
} // namespace cxl
