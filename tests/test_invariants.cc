/**
 * @file
 * Unit tests for the invariant library: SWMR (Definition 6.1), the
 * paper's four sample conjuncts, filtering and registry behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "invariants/invariant.hh"

namespace cxl
{
namespace
{

class Invariants : public ::testing::Test
{
  protected:
    Invariants()
        : inv(InvariantSet::full(ProtocolConfig::correct()))
    {
        sc.initial = {};
        sc.freeRun = true;
    }

    const Conjunct *
    get(const std::string &name)
    {
        const Conjunct *c = inv.find(name);
        EXPECT_NE(c, nullptr) << name;
        return c;
    }

    bool
    holds(const std::string &name, const SystemState &s)
    {
        Context ctx{&sc};
        return get(name)->holds(s, ctx);
    }

    InvariantSet inv;
    Scenario sc;
};

TEST_F(Invariants, SwmrDefinition)
{
    SystemState ok = initialOneModified(0, 1, 0);
    EXPECT_TRUE(swmrHolds(ok));

    SystemState two_owners = ok;
    two_owners.dev[1].state = DState::M;
    EXPECT_FALSE(swmrHolds(two_owners));

    SystemState owner_and_reader = ok;
    owner_and_reader.dev[1].state = DState::S;
    EXPECT_FALSE(swmrHolds(owner_and_reader));

    SystemState both_shared = initialBothShared(0);
    EXPECT_TRUE(swmrHolds(both_shared)) << "multiple readers are fine";

    // Transients do not count as readers or writers for Def. 6.1.
    SystemState transient = ok;
    transient.dev[1].state = DState::SIA;
    EXPECT_TRUE(swmrHolds(transient));
}

TEST_F(Invariants, SwmrConjunctMatchesPredicate)
{
    SystemState bad = initialOneModified(0, 1, 0);
    bad.dev[1].state = DState::S;
    EXPECT_FALSE(holds("swmr_d1", bad));
    EXPECT_TRUE(holds("swmr_d2", bad))
        << "device 2 has no write access, so its instance holds";
}

TEST_F(Invariants, TransientSwmrFlagsAlmostOwnerConflicts)
{
    // The paper's first sample conjunct: device 1 almost-M while
    // device 2 is still a sharer, with no snoop on the way.
    SystemState bad;
    bad.dev[0].state = DState::IMAD;
    bad.dev[0].h2dRsp.pushBack({H2DRspOp::GO, DState::M, 0});
    bad.dev[1].state = DState::S;
    bad.hstate = HState::M;
    bad.counter = 1;
    EXPECT_FALSE(holds("transient_swmr_d1", bad));

    // With a SnpInv heading to device 2 the state is legitimate.
    SystemState racing = bad;
    racing.dev[1].h2dReq.pushBack({H2DReqOp::SnpInv, 0});
    EXPECT_TRUE(holds("transient_swmr_d1", racing));

    // IMD counts as almost-M even with no GO in flight.
    SystemState imd = bad;
    imd.dev[0].h2dRsp.clear();
    imd.dev[0].state = DState::IMD;
    EXPECT_FALSE(holds("transient_swmr_d1", imd));
}

TEST_F(Invariants, SnoopHonestyMatchesPaperSet)
{
    // Paper: head(D2HRsp1) ∈ {RspIFwdM, RspIHitSE} ⟹
    //        DCache1.State ∈ {I, ISDI, ISAD, IMAD, IIA}.
    for (int idx = 0; idx < kNumDStates; ++idx) {
        DState st = dstateFromIndex(idx);
        SystemState s;
        s.dev[0].state = st;
        s.dev[0].d2hRsp.pushBack({D2HRspOp::RspIHitSE, 0});
        s.counter = 1;
        bool expected = st == DState::I || st == DState::ISDI ||
                        st == DState::ISAD || st == DState::IMAD ||
                        st == DState::IIA;
        EXPECT_EQ(holds("snoop_honest_inv_d1", s), expected)
            << toString(st);
    }
}

TEST_F(Invariants, ChannelSingletonCountsMessages)
{
    SystemState s;
    s.dev[0].h2dRsp.pushBack({H2DRspOp::GO, DState::S, 0});
    s.counter = 1;
    EXPECT_TRUE(holds("singleton_h2d_rsp_d1", s));
    s.dev[0].h2dRsp.pushBack({H2DRspOp::GO, DState::S, 0});
    EXPECT_FALSE(holds("singleton_h2d_rsp_d1", s));
}

TEST_F(Invariants, DataConflictConjunct)
{
    // Paper: i ≠ j ⟹ D2HData_i = [] ∨ H2DData_j = [].
    SystemState s;
    s.counter = 2;
    s.dev[0].d2hData.pushBack({0, 1, 0});
    EXPECT_TRUE(holds("data_no_conflict_d1", s));
    s.dev[1].h2dData.pushBack({1, 1, 0});
    EXPECT_FALSE(holds("data_no_conflict_d1", s));
}

TEST_F(Invariants, DirectoryConjuncts)
{
    SystemState bad_m = initialAllInvalid();
    bad_m.hstate = HState::M;
    EXPECT_FALSE(holds("dir_m_owner", bad_m)) << "M with no owner";

    SystemState bad_i = initialAllInvalid();
    bad_i.dev[0].state = DState::S;
    EXPECT_FALSE(holds("dir_i_nothing_valid_d1", bad_i));

    SystemState good = initialOneModified(1, 2, 0);
    Context ctx{&sc};
    EXPECT_EQ(inv.firstFailure(good, ctx), nullptr);
}

TEST_F(Invariants, FirstFailureReportsAndOrderIsStable)
{
    SystemState bad = initialOneModified(0, 1, 0);
    bad.dev[1].state = DState::M; // two owners
    Context ctx{&sc};
    const Conjunct *failure = inv.firstFailure(bad, ctx);
    ASSERT_NE(failure, nullptr);
    EXPECT_EQ(failure->family, "swmr")
        << "swmr conjuncts come first in the registry";
}

TEST_F(Invariants, SwmrOnlySetIsExactlyTheSwmrFamily)
{
    InvariantSet swmr = InvariantSet::swmrOnly();
    EXPECT_EQ(swmr.size(), 2u);
    for (const Conjunct &c : swmr.conjuncts())
        EXPECT_EQ(c.family, "swmr");
}

TEST_F(Invariants, FilteredKeepsRequestedFamilies)
{
    InvariantSet sub = inv.filtered({"swmr", "directory"});
    EXPECT_GT(sub.size(), 0u);
    for (const Conjunct &c : sub.conjuncts())
        EXPECT_TRUE(c.family == "swmr" || c.family == "directory");
    // ids are re-numbered densely.
    for (std::size_t k = 0; k < sub.size(); ++k)
        EXPECT_EQ(sub.conjuncts()[k].id, k);
}

TEST_F(Invariants, FamiliesEnumerated)
{
    auto fams = inv.families();
    for (const char *expected :
         {"swmr", "transient_swmr", "snoop_honesty", "channel_singleton",
          "data_conflict", "directory", "host_transient", "message_shape",
          "request_state", "ordering", "progress", "buffer",
          "tid_discipline"}) {
        EXPECT_NE(std::find(fams.begin(), fams.end(), expected),
                  fams.end())
            << expected;
    }
}

TEST_F(Invariants, DataConflictExcludedInStandardMode)
{
    // The paper's fourth sample conjunct needs the Section 4.4 drop
    // behaviour; standard mode legitimately violates it.
    ProtocolConfig standard;
    standard.staleEvictDrop = false;
    InvariantSet std_inv = InvariantSet::full(standard);
    EXPECT_EQ(std_inv.find("data_no_conflict_d1"), nullptr);
    EXPECT_NE(inv.find("data_no_conflict_d1"), nullptr);
}

TEST_F(Invariants, UniqueNames)
{
    std::set<std::string> names;
    for (const Conjunct &c : inv.conjuncts())
        EXPECT_TRUE(names.insert(c.name).second) << c.name;
}

TEST_F(Invariants, EveryConjunctHasDescription)
{
    for (const Conjunct &c : inv.conjuncts()) {
        EXPECT_FALSE(c.description.empty()) << c.name;
        EXPECT_FALSE(c.family.empty()) << c.name;
    }
}

} // namespace
} // namespace cxl
