/**
 * @file
 * Tests for the random-walk tester and the device-permutation symmetry
 * reduction — the two checker extensions beyond the paper's toolkit.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "checker/random_walk.hh"

namespace cxl
{
namespace
{

class RandomWalkTest : public ::testing::Test
{
  protected:
    RandomWalkTest()
        : config(ProtocolConfig::correct()), rules(config),
          scenario(Scenario::freeRunScenario()),
          invariants(InvariantSet::full(config))
    {
    }

    ProtocolConfig config;
    RuleSet rules;
    Scenario scenario;
    InvariantSet invariants;
};

TEST_F(RandomWalkTest, CleanOnCorrectModel)
{
    RandomWalker walker(rules, scenario, invariants);
    RandomWalkOptions opt;
    opt.walks = 64;
    opt.maxSteps = 128;
    RandomWalkResult res = walker.run(opt);

    EXPECT_EQ(res.walks, 64u);
    EXPECT_FALSE(res.violation.has_value());
    EXPECT_GT(res.steps, 64u * 32u)
        << "free-run walks never terminate early, so nearly every "
           "walk should exhaust its step budget";
}

TEST_F(RandomWalkTest, DeterministicInSeed)
{
    RandomWalker walker(rules, scenario, invariants);
    RandomWalkOptions opt;
    opt.walks = 16;
    RandomWalkResult a = walker.run(opt);
    RandomWalkResult b = walker.run(opt);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.terminalWalks, b.terminalWalks);
}

TEST_F(RandomWalkTest, FindsMutationViolations)
{
    // Cross-check with the explorer: random walks must also stumble
    // into the snoop-pushes-GO violation (SWMR-family) eventually.
    ProtocolConfig mutated = config;
    mutated.relaxSnoopPushesGo = true;
    RuleSet mrules(mutated);
    InvariantSet swmr = InvariantSet::swmrOnly();

    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};

    RandomWalker walker(mrules, sc, swmr);
    RandomWalkOptions opt;
    opt.walks = 2000;
    opt.maxSteps = 32;
    RandomWalkResult res = walker.run(opt);

    ASSERT_TRUE(res.violation.has_value())
        << "2000 walks over a 123-state space must hit the violation";
    EXPECT_EQ(res.violation->conjunctFamily, "swmr");
    // The walk's trace is replayable.
    ASSERT_GE(res.violation->trace.size(), 2u);
    EXPECT_FALSE(swmrHolds(res.violation->trace.back().state));
}

TEST_F(RandomWalkTest, TerminalWalksCountedInProgramMode)
{
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Load};

    RandomWalker walker(rules, sc, invariants);
    RandomWalkOptions opt;
    opt.walks = 32;
    RandomWalkResult res = walker.run(opt);
    EXPECT_EQ(res.terminalWalks, 32u)
        << "a single-load program always reaches a terminal state";
    EXPECT_FALSE(res.violation.has_value());
}

// ---------------------------------------------------------------------
// Symmetry reduction.
// ---------------------------------------------------------------------

TEST(Symmetry, SwapIsAnInvolution)
{
    SystemState s = initialOneModified(0, 1, 0);
    s.dev[1].state = DState::ISAD;
    s.dev[1].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    s.counter = 1;

    SystemState twice = s.swappedDevices().swappedDevices();
    EXPECT_EQ(s, twice);
}

TEST(Symmetry, SwapExchangesDevicesAndStoreValues)
{
    SystemState s = initialOneModified(0, 1, 0);
    SystemState t = s.swappedDevices();
    EXPECT_EQ(t.dev[1].state, DState::M);
    EXPECT_EQ(t.dev[0].state, DState::I);
    EXPECT_EQ(t.dev[1].val, 2)
        << "device 1's stored value 1 becomes device 2's value 2";
}

TEST(Symmetry, ReductionHalvesTheSpaceAndPreservesTheVerdict)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet invariants = InvariantSet::full(config);
    Explorer ex(rules, scenario, invariants);

    ExploreOptions plain;
    ExploreResult full = ex.run(plain);

    ExploreOptions reduced = plain;
    reduced.symmetryReduction = true;
    ExploreResult sym = ex.run(reduced);

    EXPECT_TRUE(full.completed);
    EXPECT_TRUE(sym.completed);
    EXPECT_FALSE(full.violation.has_value());
    EXPECT_FALSE(sym.violation.has_value());

    // Strictly smaller, and no smaller than half (self-symmetric
    // states are their own orbit).
    EXPECT_LT(sym.numStates, full.numStates);
    EXPECT_GE(2 * sym.numStates + 1, full.numStates);
}

TEST(Symmetry, ReductionStillFindsMutationViolations)
{
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario scenario = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(mutated).filtered({"swmr"});

    Explorer ex(rules, scenario, inv);
    ExploreOptions opt;
    opt.symmetryReduction = true;
    ExploreResult res = ex.run(opt);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->conjunctFamily, "swmr");
}

} // namespace
} // namespace cxl
