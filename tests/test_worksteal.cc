/**
 * @file
 * Work-stealing schedule tests.
 *
 * Two layers:
 *
 *  1. Deque mechanism — WorkDeque push/pop LIFO semantics, owner
 *     pop vs. concurrent steals over a growth-forcing volume
 *     (element conservation, no duplication), and a multi-thief
 *     hammer that TSan can chew on (the ci job runs this binary
 *     under -fsanitize=thread).
 *
 *  2. End-to-end equivalence (the ISSUE's acceptance obligation) —
 *     every scenario-registry entry at 2 and 3 devices, across
 *     1/4/8/16 threads, symmetry on/off and POR on/off, yields the
 *     same verdict, violated-conjunct set, state count, diameter and
 *     violation depth under Schedule::WorkSteal as under the
 *     depth-synchronized baseline.  Transition counts are
 *     deliberately NOT compared: re-expansion (label correction) and
 *     async POR sleep-mask convergence make them schedule-dependent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/check.hh"
#include "api/scenarios.hh"
#include "checker/explorer.hh"
#include "checker/workqueue.hh"
#include "litmus/litmus.hh"

namespace cxl
{
namespace
{

// ------------------------------------------------ deque mechanism

TEST(WorkDeque, OwnerPushPopIsLifo)
{
    WorkDeque dq;
    std::uint64_t v = 0;
    EXPECT_FALSE(dq.pop(v));
    dq.push(1);
    dq.push(2);
    dq.push(3);
    ASSERT_TRUE(dq.pop(v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(dq.pop(v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(dq.pop(v));
    EXPECT_EQ(v, 1u);
    EXPECT_FALSE(dq.pop(v));
}

TEST(WorkDeque, StealTakesTheOppositeEnd)
{
    WorkDeque dq;
    dq.push(10);
    dq.push(11);
    dq.push(12);
    std::uint64_t v = 0;
    ASSERT_EQ(dq.steal(v), WorkDeque::Steal::Success);
    EXPECT_EQ(v, 10u); // FIFO end
    ASSERT_TRUE(dq.pop(v));
    EXPECT_EQ(v, 12u); // LIFO end
    ASSERT_EQ(dq.steal(v), WorkDeque::Steal::Success);
    EXPECT_EQ(v, 11u);
    EXPECT_EQ(dq.steal(v), WorkDeque::Steal::Empty);
}

TEST(WorkDeque, GrowthPreservesEveryElement)
{
    // Start tiny so push() exercises ring growth several times.
    WorkDeque dq(4);
    constexpr std::uint64_t kN = 10000;
    for (std::uint64_t i = 0; i < kN; ++i)
        dq.push(i);
    // Drain from both ends; every value must appear exactly once.
    std::vector<bool> seen(kN, false);
    std::uint64_t v = 0;
    bool from_top = true;
    while (from_top ? dq.steal(v) == WorkDeque::Steal::Success
                    : dq.pop(v)) {
        ASSERT_LT(v, kN);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
        from_top = !from_top;
    }
    for (std::uint64_t i = 0; i < kN; ++i)
        EXPECT_TRUE(seen[i]) << i;
}

TEST(WorkDeque, ConcurrentStealsConserveElements)
{
    // One owner pushing (and occasionally popping), three thieves
    // stealing — the classic conservation test: every pushed value is
    // consumed exactly once, across rings retired by growth.  Run
    // under TSan by the ci sanitizer job.
    constexpr std::uint64_t kN = 50000;
    constexpr int kThieves = 3;
    WorkDeque dq(8);
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    for (int i = 0; i < kThieves; ++i) {
        thieves.emplace_back([&] {
            std::uint64_t v = 0;
            for (;;) {
                switch (dq.steal(v)) {
                  case WorkDeque::Steal::Success:
                    sum.fetch_add(v, std::memory_order_relaxed);
                    consumed.fetch_add(1,
                                       std::memory_order_relaxed);
                    break;
                  case WorkDeque::Steal::Abort:
                    break;
                  case WorkDeque::Steal::Empty:
                    if (done.load(std::memory_order_acquire))
                        return;
                    std::this_thread::yield();
                    break;
                }
            }
        });
    }

    std::uint64_t v = 0;
    for (std::uint64_t i = 1; i <= kN; ++i) {
        dq.push(i);
        if ((i & 7) == 0 && dq.pop(v)) {
            sum.fetch_add(v, std::memory_order_relaxed);
            consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    while (dq.pop(v)) {
        sum.fetch_add(v, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
    }
    done.store(true, std::memory_order_release);
    for (std::thread &th : thieves)
        th.join();

    EXPECT_EQ(consumed.load(), kN);
    EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

// ------------------------------------------- schedule equivalence

/** The schedule-independent face of a CheckResult. */
struct VerdictImage {
    CheckResult::Verdict verdict;
    std::uint64_t states;
    std::uint32_t diameter;
    bool completed;
    std::string violation; // kind/conjunct/family/depth, or "-"
    std::vector<std::string> failedConjuncts;

    friend bool
    operator==(const VerdictImage &a, const VerdictImage &b)
    {
        return a.verdict == b.verdict && a.states == b.states &&
               a.diameter == b.diameter &&
               a.completed == b.completed &&
               a.violation == b.violation &&
               a.failedConjuncts == b.failedConjuncts;
    }
};

VerdictImage
imageOf(const CheckResult &res)
{
    VerdictImage img;
    img.verdict = res.verdict;
    img.states = res.states;
    img.diameter = res.diameter;
    img.completed = res.completed;
    if (res.violation) {
        img.violation = std::to_string(
                            static_cast<int>(res.violation->kind)) +
                        "/" + res.violation->conjunctName + "/" +
                        res.violation->conjunctFamily + "/" +
                        std::to_string(res.violation->depth);
    } else {
        img.violation = "-";
    }
    for (const ConjunctStatus &c : res.conjuncts) {
        if (!c.held)
            img.failedConjuncts.push_back(c.name);
    }
    return img;
}

CheckResult
runScenario(CheckSession &session, const std::string &name,
            int devices, std::size_t threads, Schedule schedule,
            bool sym, bool por)
{
    CheckRequest req;
    req.scenario = name;
    req.devices = devices;
    EngineOptions eng;
    eng.threads = threads;
    eng.schedule = schedule;
    eng.symmetry = sym ? SymmetryMode::On : SymmetryMode::Off;
    eng.por = por;
    req.engine = eng;
    return session.run(req);
}

TEST(WorkStealEquivalence, EveryRegistryScenarioEveryConfig)
{
    CheckSession session;
    for (const scenarios::Entry &entry : scenarios::all()) {
        for (int devices : {2, 3}) {
            if (!entry.deviceScalable &&
                entry.fixedDevices != devices) {
                continue;
            }
            for (bool sym : {false, true}) {
                // Symmetry is only sound on device-symmetric
                // scenarios — free-run, in the registry.
                if (sym && !entry.build(devices).freeRun)
                    continue;
                for (bool por : {false, true}) {
                    const CheckResult base = runScenario(
                        session, entry.name, devices, 1,
                        Schedule::Bfs, sym, por);
                    const VerdictImage want = imageOf(base);
                    for (std::size_t threads : {1u, 4u, 8u, 16u}) {
                        const CheckResult ws = runScenario(
                            session, entry.name, devices, threads,
                            Schedule::WorkSteal, sym, por);
                        EXPECT_TRUE(imageOf(ws) == want)
                            << entry.name << " devices " << devices
                            << " sym " << sym << " por " << por
                            << " threads " << threads
                            << "\n  ws:  " << ws.verdictText()
                            << "\n  bfs: " << base.verdictText();
                    }
                }
            }
        }
    }
}

TEST(WorkStealEquivalence, ComposesWithCompactionBitIdentically)
{
    // sym + compact + por + ws at once — the 4-device bench
    // configuration, scaled to 3 devices for test time — against the
    // recorded 3-device constants.
    CheckSession session;
    CheckRequest req;
    req.scenario = "free-run";
    req.devices = 3;
    EngineOptions eng;
    eng.threads = 4;
    eng.schedule = Schedule::WorkSteal;
    eng.symmetry = SymmetryMode::On;
    eng.store = StoreKind::Compact;
    eng.por = true;
    req.engine = eng;
    const CheckResult res = session.run(req);
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Holds);
    EXPECT_EQ(res.states, 144294u);
    EXPECT_EQ(res.diameter, 45u);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.schedule, Schedule::WorkSteal);
}

TEST(WorkStealEquivalence, CountedModeTallyMatchesBfs)
{
    // stopAtFirstViolation = false: the full space is enumerated and
    // every distinct violating state/edge is tallied.  The ws
    // candidate log dedups re-observations (label correction
    // re-expands states), so the tally must equal the bfs one at any
    // thread count.
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};
    InvariantSet swmr = InvariantSet::swmrOnly();
    Explorer explorer(rules, sc, swmr);

    ExploreOptions opt;
    opt.stopAtFirstViolation = false;
    opt.checkDeadlock = false;
    opt.numThreads = 1;
    const ExploreResult base = explorer.run(opt);
    ASSERT_TRUE(base.violation.has_value());
    EXPECT_GE(base.violationCount, 1u);
    EXPECT_TRUE(base.completed);

    for (std::size_t threads : {1u, 4u, 8u}) {
        ExploreOptions ws = opt;
        ws.schedule = Schedule::WorkSteal;
        ws.numThreads = threads;
        const ExploreResult res = explorer.run(ws);
        EXPECT_EQ(res.violationCount, base.violationCount)
            << "threads " << threads;
        EXPECT_EQ(res.numStates, base.numStates);
        EXPECT_EQ(res.maxDepth, base.maxDepth);
        EXPECT_EQ(res.completed, base.completed);
        ASSERT_TRUE(res.violation.has_value());
        EXPECT_EQ(res.violation->depth, base.violation->depth);
        EXPECT_EQ(res.violation->conjunctName,
                  base.violation->conjunctName);
    }
}

TEST(WorkStealEquivalence, WitnessTraceIsShortestAndReplayable)
{
    // Violation scenarios: the ws trace must exist, start at the
    // initial state, and have exactly violation-depth steps — the
    // converged labels make it a shortest path.  Unlike bfs+compact,
    // ws+compact keeps all levels retained, so this holds in both
    // store modes.
    CheckSession session;
    for (const char *name :
         {"go_tailgate_test", "one_snoop_test",
          "snoop_pushes_go_test", "smad_snoop_guard_test"}) {
        for (StoreKind store :
             {StoreKind::Full, StoreKind::Compact}) {
            CheckRequest req;
            req.scenario = name;
            EngineOptions eng;
            eng.threads = 4;
            eng.schedule = Schedule::WorkSteal;
            eng.store = store;
            req.engine = eng;
            const CheckResult res = session.run(req);
            ASSERT_TRUE(res.violation) << name;
            EXPECT_TRUE(res.violation->traceNote.empty()) << name;
            ASSERT_FALSE(res.violation->trace.empty()) << name;
            EXPECT_TRUE(res.violation->trace.front().ruleName.empty())
                << name;
            EXPECT_EQ(res.violation->trace.size(),
                      res.violation->depth + 1u)
                << name << (store == StoreKind::Compact
                                ? " (compact)"
                                : " (full)");
        }
    }
}

} // namespace
} // namespace cxl
