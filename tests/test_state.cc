/**
 * @file
 * Unit tests for types, messages, and the SystemState record:
 * padding-freeness, hashing, tid canonicalisation, builders.
 */

#include <gtest/gtest.h>

#include "protocol/message.hh"
#include "protocol/state.hh"
#include "protocol/types.hh"

namespace cxl
{
namespace
{

TEST(Types, StablePredicates)
{
    EXPECT_TRUE(isStable(DState::I));
    EXPECT_TRUE(isStable(DState::S));
    EXPECT_TRUE(isStable(DState::M));
    EXPECT_FALSE(isStable(DState::ISAD));
    EXPECT_FALSE(isStable(DState::IIA));
    EXPECT_TRUE(isStable(HState::M));
    EXPECT_FALSE(isStable(HState::MAD));
}

TEST(Types, AccessPredicatesMatchSwmrDefinition)
{
    // SWMR ranges only over S and M (paper Definition 6.1).
    for (int i = 0; i < kNumDStates; ++i) {
        DState s = dstateFromIndex(i);
        EXPECT_EQ(hasReadAccess(s), s == DState::S || s == DState::M);
        EXPECT_EQ(hasWriteAccess(s), s == DState::M);
    }
}

TEST(Types, ToStringRoundTripIsUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumDStates; ++i)
        names.insert(toString(dstateFromIndex(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumDStates));

    names.clear();
    for (int i = 0; i < kNumHStates; ++i)
        names.insert(toString(hstateFromIndex(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumHStates));
}

TEST(Messages, EqualityAndText)
{
    D2HReq a{D2HReqOp::RdOwn, 3};
    D2HReq b{D2HReqOp::RdOwn, 3};
    D2HReq c{D2HReqOp::RdShared, 3};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(toString(a), "(RdOwn, 3)");

    H2DRsp go{H2DRspOp::GO, DState::S, 1};
    EXPECT_EQ(toString(go), "(GO, S, 1)");

    DataMsg d{2, 42, 1};
    EXPECT_EQ(toString(d), "(Data(42), 2)!bogus");
}

TEST(DBuffer, Lifecycle)
{
    DBuffer b = DBuffer::empty();
    EXPECT_TRUE(b.isEmpty());
    EXPECT_EQ(toString(b), "_");

    b = DBuffer::fromReq({H2DReqOp::SnpInv, 5});
    EXPECT_FALSE(b.isEmpty());
    EXPECT_TRUE(b.holdsSnoop(H2DReqOp::SnpInv));
    EXPECT_FALSE(b.holdsSnoop(H2DReqOp::SnpData));
    EXPECT_EQ(b.tid, 5);

    DBuffer c = DBuffer::fromRsp({H2DRspOp::GO, DState::M, 2});
    EXPECT_FALSE(c.holdsSnoop(H2DReqOp::SnpInv));
    EXPECT_FALSE(b == c);
}

TEST(SystemState, DefaultIsAllInvalid)
{
    SystemState s;
    EXPECT_EQ(s.dev[0].state, DState::I);
    EXPECT_EQ(s.dev[1].state, DState::I);
    EXPECT_EQ(s.hstate, HState::I);
    EXPECT_EQ(s.counter, 0);
    EXPECT_TRUE(s.dev[0].d2hReq.empty());
    EXPECT_TRUE(structurallyWellFormed(s));
}

TEST(SystemState, HashDistinguishesStates)
{
    SystemState a, b;
    EXPECT_EQ(a.hash(), b.hash());
    b.dev[1].state = DState::S;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(SystemState, EqualityIsComponentwise)
{
    SystemState a = initialBothShared(3);
    SystemState b = initialBothShared(3);
    EXPECT_EQ(a, b);
    b.dev[0].d2hReq.pushBack({D2HReqOp::CleanEvict, 0});
    EXPECT_FALSE(a == b);
}

TEST(SystemState, Builders)
{
    SystemState shared = initialBothShared(9);
    EXPECT_EQ(shared.dev[0].state, DState::S);
    EXPECT_EQ(shared.dev[1].state, DState::S);
    EXPECT_EQ(shared.hstate, HState::S);
    EXPECT_EQ(shared.hval, 9);
    EXPECT_EQ(shared.dev[0].val, 9);

    SystemState owned = initialOneModified(1, 5, 2);
    EXPECT_EQ(owned.dev[1].state, DState::M);
    EXPECT_EQ(owned.dev[1].val, 5);
    EXPECT_EQ(owned.dev[0].state, DState::I);
    EXPECT_EQ(owned.hstate, HState::M);
    EXPECT_EQ(owned.hval, 2);
}

TEST(SystemState, CanonicaliseRenamesTidsInOrder)
{
    SystemState s;
    s.counter = 200;
    s.dev[0].d2hReq.pushBack({D2HReqOp::RdOwn, 150});
    s.dev[1].h2dRsp.pushBack({H2DRspOp::GO, DState::S, 99});
    s.dev[1].h2dData.pushBack({99, 1, 0});
    s.canonicaliseTids();

    EXPECT_EQ(s.dev[0].d2hReq.front().tid, 0);
    EXPECT_EQ(s.dev[1].h2dRsp.front().tid, 1);
    EXPECT_EQ(s.dev[1].h2dData.front().tid, 1)
        << "same original tid must map to the same canonical tid";
    EXPECT_EQ(s.counter, 2);
}

TEST(SystemState, CanonicaliseIsIdempotent)
{
    SystemState s;
    s.counter = 42;
    s.dev[0].d2hReq.pushBack({D2HReqOp::RdShared, 17});
    s.dev[0].buffer = DBuffer::fromReq({H2DReqOp::SnpInv, 30});
    s.canonicaliseTids();
    SystemState once = s;
    s.canonicaliseTids();
    EXPECT_EQ(s, once);
}

TEST(SystemState, CanonicaliseIdentifiesTidIsomorphicStates)
{
    SystemState a, b;
    a.counter = 10;
    a.dev[0].d2hReq.pushBack({D2HReqOp::RdOwn, 3});
    b.counter = 99;
    b.dev[0].d2hReq.pushBack({D2HReqOp::RdOwn, 77});
    a.canonicaliseTids();
    b.canonicaliseTids();
    EXPECT_EQ(a, b);
}

TEST(SystemState, StructuralWellFormedness)
{
    SystemState s = initialAllInvalid();
    EXPECT_TRUE(structurallyWellFormed(s));
    s.dev[0].state = static_cast<DState>(200);
    EXPECT_FALSE(structurallyWellFormed(s));
}

TEST(SystemState, DumpMentionsEveryComponent)
{
    SystemState s = initialBothShared(1);
    s.dev[0].d2hReq.pushBack({D2HReqOp::CleanEvict, 0});
    std::string dump = s.dump();
    EXPECT_NE(dump.find("HCache"), std::string::npos);
    EXPECT_NE(dump.find("Device 1"), std::string::npos);
    EXPECT_NE(dump.find("Device 2"), std::string::npos);
    EXPECT_NE(dump.find("CleanEvict"), std::string::npos);
}

} // namespace
} // namespace cxl
