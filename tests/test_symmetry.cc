/**
 * @file
 * Tests for device-permutation symmetry: canonicalisation is constant
 * on orbits, store values / requester tracking / tids are remapped
 * consistently, and the explorer's reduced two-device space is
 * exactly halved-plus-diagonal relative to the unreduced one.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "checker/explorer.hh"
#include "checker/state_store.hh"
#include "invariants/invariant.hh"
#include "protocol/rules.hh"

namespace cxl
{
namespace
{

/** BFS-enumerate the tid-canonical free-run space (no symmetry). */
std::vector<SystemState>
enumerateFreeRun(int devices, std::size_t cap)
{
    RuleSet rules(ProtocolConfig::correct(), devices);
    Scenario sc = Scenario::freeRunScenario(devices);
    StateStore store;
    std::vector<SystemState> states;
    std::deque<std::size_t> frontier;

    SystemState init = sc.initial;
    init.canonicaliseTids();
    store.insert(init, StateStore::kNoParent, 0, 0);
    states.push_back(init);
    frontier.push_back(0);

    while (!frontier.empty() && states.size() < cap) {
        const SystemState state = states[frontier.front()];
        frontier.pop_front();
        for (auto &succ : rules.successors(state, sc, true)) {
            auto [idx, is_new] = store.insert(
                succ.state, StateStore::kNoParent, 0, 0);
            (void)idx;
            if (is_new) {
                states.push_back(succ.state);
                frontier.push_back(states.size() - 1);
            }
        }
    }
    EXPECT_LT(states.size(), cap) << "enumeration cap hit";
    return states;
}

/** All permutations of [0, n) padded to kMaxDevices. */
std::vector<std::vector<std::uint8_t>>
allPerms(int n)
{
    std::vector<std::uint8_t> perm;
    for (int i = 0; i < n; ++i)
        perm.push_back(static_cast<std::uint8_t>(i));
    std::vector<std::vector<std::uint8_t>> result;
    do {
        result.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return result;
}

TEST(Symmetry, PermutedStatesCanonicaliseIdentically)
{
    // Every reachable three-device state must land on the same
    // canonical representative as each of its 3! permuted images.
    auto states = enumerateFreeRun(3, 2'000'000);
    ASSERT_GT(states.size(), 100'000u);

    const auto perms = allPerms(3);
    std::size_t checked = 0;
    // Sampling keeps the quadratic-ish work bounded; a stride over
    // the BFS order still touches every depth band.
    for (std::size_t k = 0; k < states.size(); k += 97) {
        const SystemState &s = states[k];
        SystemState canon = s.deviceCanonical(true);
        for (const auto &perm : perms) {
            SystemState image = s.permutedDevices(perm.data());
            image.canonicaliseTids();
            SystemState image_canon = image.deviceCanonical(true);
            ASSERT_EQ(canon, image_canon)
                << "orbit of state #" << k
                << " has multiple representatives:\n"
                << s.dump();
        }
        ++checked;
    }
    EXPECT_GT(checked, 1000u);
}

TEST(Symmetry, PermutationRemapsValuesMessagesAndRequester)
{
    // Device 0 owns the line dirty with its store value 1; device 2
    // is mid-upgrade with grant data in flight carrying value 3 (a
    // device-2 store forwarded by the host); the host serves
    // requester 3 (hreq = 3).
    SystemState s = initialAllInvalid(0, 3);
    s.dev[0].state = DState::M;
    s.dev[0].val = 1;
    s.hstate = HState::MAD;
    s.hreq = 3;
    s.dev[2].state = DState::IMAD;
    s.dev[2].h2dData.pushBack({0, 3, 0});
    s.dev[0].d2hData.pushBack({1, 1, 0});
    s.counter = 2;

    // Rotate: new slot n takes old device perm[n].
    const std::uint8_t perm[kMaxDevices] = {2, 0, 1, 3};
    SystemState t = s.permutedDevices(perm);

    // Old device 0 landed on slot 1, old 1 on slot 2, old 2 on slot 0.
    EXPECT_EQ(t.dev[1].state, DState::M);
    EXPECT_EQ(t.dev[1].val, 2) << "store value 1 names device 1 -> 2";
    EXPECT_EQ(t.dev[0].state, DState::IMAD);
    ASSERT_EQ(t.dev[0].h2dData.size(), 1u);
    EXPECT_EQ(t.dev[0].h2dData.front().val, 1)
        << "store value 3 names device 3, now in slot 1";
    ASSERT_EQ(t.dev[1].d2hData.size(), 1u);
    EXPECT_EQ(t.dev[1].d2hData.front().val, 2);
    EXPECT_EQ(t.hreq, 1) << "requester device 3 now sits in slot 1";

    // Identity round trip: applying the inverse permutation restores
    // the original state bit for bit.
    const std::uint8_t inv[kMaxDevices] = {1, 2, 0, 3};
    EXPECT_EQ(t.permutedDevices(inv), s);
}

TEST(Symmetry, PermutationRemapsTidsViaCanonicalisation)
{
    // Two states that differ only by device order and tid labels must
    // canonicalise identically: permutation moves the channels, tid
    // canonicalisation then relabels in the new first-appearance
    // order.
    SystemState a = initialAllInvalid(0, 3);
    a.dev[0].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    a.dev[0].state = DState::ISAD;
    a.dev[2].d2hReq.pushBack({D2HReqOp::RdOwn, 1});
    a.dev[2].state = DState::IMAD;
    a.counter = 2;

    SystemState b = initialAllInvalid(0, 3);
    b.dev[0].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    b.dev[0].state = DState::IMAD;
    b.dev[2].d2hReq.pushBack({D2HReqOp::RdShared, 1});
    b.dev[2].state = DState::ISAD;
    b.counter = 2;

    EXPECT_FALSE(a == b);
    EXPECT_EQ(a.deviceCanonical(true), b.deviceCanonical(true));
}

TEST(Symmetry, CanonicalIsIdempotentAndBytewiseLeast)
{
    auto states = enumerateFreeRun(2, 100'000);
    const auto perms = allPerms(2);
    for (std::size_t k = 0; k < states.size(); k += 13) {
        SystemState canon = states[k].deviceCanonical(true);
        EXPECT_EQ(canon, canon.deviceCanonical(true));
        for (const auto &perm : perms) {
            SystemState image = states[k].permutedDevices(perm.data());
            image.canonicaliseTids();
            EXPECT_FALSE(image.bytewiseLess(canon));
        }
    }
}

TEST(Symmetry, TwoDeviceReductionIsHalvedPlusDiagonal)
{
    // |reduced| = (|full| + |self-symmetric|) / 2: every asymmetric
    // orbit contributes two full-space states and one representative,
    // every self-symmetric state is its own orbit.
    auto states = enumerateFreeRun(2, 100'000);

    std::size_t self_symmetric = 0;
    for (const SystemState &s : states) {
        SystemState swapped = s.swappedDevices();
        swapped.canonicaliseTids();
        if (swapped == s)
            ++self_symmetric;
    }

    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet invariants = InvariantSet::full(config);
    Explorer ex(rules, sc, invariants);

    ExploreOptions plain;
    ExploreResult full = ex.run(plain);
    ExploreOptions reduced_opt = plain;
    reduced_opt.symmetryReduction = true;
    ExploreResult reduced = ex.run(reduced_opt);

    ASSERT_TRUE(full.completed);
    ASSERT_TRUE(reduced.completed);
    EXPECT_EQ(full.numStates, states.size());
    EXPECT_EQ((full.numStates + self_symmetric) % 2, 0u);
    EXPECT_EQ(reduced.numStates,
              (full.numStates + self_symmetric) / 2);
    EXPECT_FALSE(reduced.violation.has_value());
}

TEST(Symmetry, ThreeDeviceReductionBoundsAndVerdict)
{
    // Orbits have size at most 3! = 6, so the reduced space is
    // between 1/6 of the full space and the full space itself; the
    // invariant verdict must agree.
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config, 3);
    Scenario sc = Scenario::freeRunScenario(3);
    InvariantSet invariants = InvariantSet::full(config, 3);
    Explorer ex(rules, sc, invariants);

    ExploreOptions plain;
    plain.checkInvariants = false; // counted by the bench; speed here
    ExploreResult full = ex.run(plain);

    ExploreOptions reduced_opt;
    reduced_opt.symmetryReduction = true;
    ExploreResult reduced = ex.run(reduced_opt);

    ASSERT_TRUE(full.completed);
    ASSERT_TRUE(reduced.completed);
    EXPECT_FALSE(reduced.violation.has_value())
        << "SWMR + invariant must hold on every 3-device orbit";
    EXPECT_LT(reduced.numStates, full.numStates);
    EXPECT_GE(reduced.numStates * 6, full.numStates);
}

} // namespace
} // namespace cxl
