/**
 * @file
 * Unit and end-to-end tests for the cxl_checkd serve layer: the
 * cxl-checkd/v1 wire protocol (round-trip, goldens, framing over a
 * real socketpair), cache-key canonicalization (aliases and knob
 * spellings collapse, distinct semantics never alias, Incomplete is
 * never cacheable), the bounded LRU result cache, and a live server
 * on a tmp socket — concurrent clients, served-vs-offline byte
 * identity, cache replay, client-disconnect cancellation and drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "api/check.hh"
#include "api/scenarios.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "support/json_parse.hh"

namespace cxl::serve
{
namespace
{

// --------------------------------------------------- wire protocol

Request
fullRequest()
{
    Request r;
    r.id = "req-7";
    r.scenario = "clean_evict_test";
    r.devices = 2;
    r.checks = CheckKind::Invariants;
    r.families = std::vector<std::string>{"swmr", "dir"};
    r.engine.threads = 3;
    r.engine.symmetry = SymmetryMode::Off;
    r.engine.store = StoreKind::Mmap;
    r.engine.compact = true;
    r.engine.por = true;
    r.engine.schedule = Schedule::WorkSteal;
    r.engine.maxStates = 12345;
    r.engine.expectStates = 99;
    r.engine.maxSeconds = 1.5;
    r.engine.maxRssMb = 512;
    r.deterministic = true;
    r.progress = false;
    r.progressInterval = 0.5;
    return r;
}

TEST(ServeProtocol, RequestRoundTripsThroughJson)
{
    const Request r = fullRequest();
    const Request p = requestFromJson(renderRequestJson(r));
    EXPECT_EQ(p.type, Request::Type::Check);
    EXPECT_EQ(p.id, r.id);
    EXPECT_EQ(p.scenario, r.scenario);
    EXPECT_FALSE(p.inlineCase.has_value());
    EXPECT_EQ(p.devices, r.devices);
    EXPECT_EQ(p.checks, CheckKind::Invariants);
    ASSERT_TRUE(p.families.has_value());
    EXPECT_EQ(*p.families, *r.families);
    EXPECT_EQ(p.engine.threads, r.engine.threads);
    EXPECT_EQ(p.engine.symmetry, r.engine.symmetry);
    EXPECT_EQ(p.engine.store, r.engine.store);
    EXPECT_EQ(p.engine.compact, r.engine.compact);
    EXPECT_EQ(p.engine.por, r.engine.por);
    EXPECT_EQ(p.engine.schedule, r.engine.schedule);
    EXPECT_EQ(p.engine.maxStates, r.engine.maxStates);
    EXPECT_EQ(p.engine.expectStates, r.engine.expectStates);
    EXPECT_EQ(p.engine.maxSeconds, r.engine.maxSeconds);
    EXPECT_EQ(p.engine.maxRssMb, r.engine.maxRssMb);
    EXPECT_TRUE(p.deterministic);
    EXPECT_FALSE(p.progress);
    EXPECT_EQ(p.progressInterval, 0.5);
}

TEST(ServeProtocol, InlineCaseRoundTripsThroughJson)
{
    fuzz::FuzzCase c;
    c.devices = 2;
    c.freeRun = true;
    c.maxStates = 500;
    c.config.relaxSnoopPushesGo = true;

    Request r;
    r.id = "inline-1";
    r.inlineCase = c;
    const Request p = requestFromJson(renderRequestJson(r));
    ASSERT_TRUE(p.inlineCase.has_value());
    EXPECT_TRUE(*p.inlineCase == c);
    EXPECT_TRUE(p.scenario.empty());
}

TEST(ServeProtocol, MinimalRequestKeepsDefaults)
{
    const std::string text = "{\"schema\": \"cxl-checkd/v1\", "
                             "\"type\": \"check\", \"id\": \"x\", "
                             "\"scenario\": \"free-run\"}";
    const Request p = requestFromJson(text);
    EXPECT_EQ(p.id, "x");
    EXPECT_EQ(p.scenario, "free-run");
    EXPECT_EQ(p.devices, kDefaultNumDevices);
    EXPECT_EQ(p.checks, CheckKind::Both);
    EXPECT_FALSE(p.config.has_value());
    EXPECT_FALSE(p.families.has_value());
    EXPECT_FALSE(p.engine.threads.has_value());
    EXPECT_FALSE(p.engine.maxSeconds.has_value());
    EXPECT_FALSE(p.deterministic);
    EXPECT_TRUE(p.progress);
    EXPECT_EQ(p.progressInterval, 0.25);
}

TEST(ServeProtocol, MalformedRequestsThrow)
{
    // Junk, wrong schema, wrong type.
    EXPECT_THROW(requestFromJson("not json"), std::exception);
    EXPECT_THROW(requestFromJson("{\"schema\": \"other/v1\", "
                                 "\"type\": \"check\", \"id\": \"x\", "
                                 "\"scenario\": \"free-run\"}"),
                 std::runtime_error);
    EXPECT_THROW(requestFromJson("{\"schema\": \"cxl-checkd/v1\", "
                                 "\"type\": \"frobnicate\", "
                                 "\"id\": \"x\"}"),
                 std::runtime_error);

    // A check must carry exactly one of scenario|case.
    EXPECT_THROW(requestFromJson("{\"schema\": \"cxl-checkd/v1\", "
                                 "\"type\": \"check\", \"id\": \"x\"}"),
                 std::runtime_error);
    const std::string both =
        "{\"schema\": \"cxl-checkd/v1\", \"type\": \"check\", "
        "\"id\": \"x\", \"scenario\": \"free-run\", \"case\": " +
        fuzz::FuzzCase{}.renderJson() + "}";
    EXPECT_THROW(requestFromJson(both), std::runtime_error);

    // Junk knob words.
    EXPECT_THROW(
        requestFromJson("{\"schema\": \"cxl-checkd/v1\", "
                        "\"type\": \"check\", \"id\": \"x\", "
                        "\"scenario\": \"free-run\", "
                        "\"engine\": {\"sym\": \"sometimes\"}}"),
        std::runtime_error);
    EXPECT_THROW(
        requestFromJson("{\"schema\": \"cxl-checkd/v1\", "
                        "\"type\": \"check\", \"id\": \"x\", "
                        "\"scenario\": \"free-run\", "
                        "\"engine\": {\"schedule\": \"dfs\"}}"),
        std::runtime_error);
    EXPECT_THROW(
        requestFromJson("{\"schema\": \"cxl-checkd/v1\", "
                        "\"type\": \"check\", \"id\": \"x\", "
                        "\"scenario\": \"free-run\", "
                        "\"engine\": {\"store\": \"floppy\"}}"),
        std::runtime_error);
}

TEST(ServeProtocol, FramingSurvivesSplitsAndCoalescing)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Two frames coalesced into one send, one frame split over
    // several sends: recvFrame must recover all three in order.
    const std::string a = "{\"n\": 1}";
    const std::string b = "{\"n\": 2}";
    const std::string c = "{\"n\": 3}";
    ASSERT_TRUE(sendFrame(fds[0], a + "\n" + b));
    const std::string half = c + "\n";
    ASSERT_EQ(::send(fds[0], half.data(), 3, 0), 3);
    ASSERT_EQ(::send(fds[0], half.data() + 3,
                     static_cast<int>(half.size()) - 3, 0),
              static_cast<long>(half.size()) - 3);
    ::close(fds[0]);

    FrameReader reader;
    std::string line;
    ASSERT_TRUE(recvFrame(fds[1], reader, line));
    EXPECT_EQ(line, a);
    ASSERT_TRUE(recvFrame(fds[1], reader, line));
    EXPECT_EQ(line, b);
    ASSERT_TRUE(recvFrame(fds[1], reader, line));
    EXPECT_EQ(line, c);
    EXPECT_FALSE(recvFrame(fds[1], reader, line)); // EOF
    ::close(fds[1]);
}

TEST(ServeProtocol, ResponseFramesParse)
{
    ProgressSnapshot p;
    p.states = 10;
    p.transitions = 20;
    p.depth = 3;
    p.rssBytes = 4096;
    p.seconds = 0.5;
    const JsonValue prog = parseJson(renderProgressFrame("id1", p));
    EXPECT_EQ(prog.getStr("schema"), kSchema);
    EXPECT_EQ(prog.getStr("type"), "progress");
    EXPECT_EQ(prog.getStr("id"), "id1");
    EXPECT_EQ(prog.getNum("states"), 10);
    EXPECT_EQ(prog.getNum("depth"), 3);

    ResultPayload payload;
    payload.verdictLine = "HOLDS (7 states)";
    payload.text = "line1\nline2\n";
    payload.resultJson = "{\"schema\": \"cxl-check-result/v1\"}";
    const JsonValue res =
        parseJson(renderResultFrame("id2", true, payload));
    EXPECT_EQ(res.getStr("type"), "result");
    EXPECT_TRUE(res.getBool("cached"));
    EXPECT_EQ(res.getStr("verdict_line"), payload.verdictLine);
    EXPECT_EQ(res.getStr("text"), payload.text);
    ASSERT_NE(res.get("result"), nullptr);
    EXPECT_EQ(res.get("result")->getStr("schema"),
              "cxl-check-result/v1");

    const JsonValue err =
        parseJson(renderErrorFrame("id3", "bad \"thing\""));
    EXPECT_EQ(err.getStr("type"), "error");
    EXPECT_EQ(err.getStr("message"), "bad \"thing\"");
}

// ------------------------------------------------------ result cache

ResultPayload
payloadNamed(const std::string &tag)
{
    ResultPayload p;
    p.verdictLine = tag;
    p.text = tag + "\n";
    p.resultJson = "{\"tag\": \"" + tag + "\"}";
    return p;
}

TEST(ResultCache, CountsHitsMissesAndEvictsLru)
{
    ResultCache cache(2);
    EXPECT_FALSE(cache.lookup("a").has_value()); // miss
    cache.insert("a", payloadNamed("a"));
    cache.insert("b", payloadNamed("b"));

    const auto hit = cache.lookup("a"); // refreshes a over b
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->verdictLine, "a");

    cache.insert("c", payloadNamed("c")); // evicts b, the LRU
    EXPECT_FALSE(cache.lookup("b").has_value());
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(ResultCache, DuplicateInsertKeepsTheIncumbent)
{
    // Two workers may race the same uncached request; determinism
    // makes their payloads byte-identical, so first-in wins and the
    // population never double-counts.
    ResultCache cache(4);
    cache.insert("k", payloadNamed("first"));
    cache.insert("k", payloadNamed("second"));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.lookup("k")->verdictLine, "first");
}

TEST(ResultCache, ZeroCapacityDisablesCaching)
{
    ResultCache cache(0);
    cache.insert("k", payloadNamed("k"));
    EXPECT_FALSE(cache.lookup("k").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, IncompleteVerdictsAreNeverCacheable)
{
    CheckResult r;
    r.verdict = CheckResult::Verdict::Incomplete;
    EXPECT_FALSE(cacheable(r));
    r.verdict = CheckResult::Verdict::Holds;
    EXPECT_TRUE(cacheable(r));
    r.verdict = CheckResult::Verdict::Violated;
    EXPECT_TRUE(cacheable(r));
    r.verdict = CheckResult::Verdict::Deadlocked;
    EXPECT_TRUE(cacheable(r));
}

// ------------------------------------------- cache-key canonicalizer

Request
namedRequest(const std::string &scenario)
{
    Request r;
    r.id = "t";
    r.scenario = scenario;
    return r;
}

std::string
keyOf(const Request &r, const EngineOptions &defaults = {},
      double defaultMaxSeconds = 0)
{
    return resolveRequest(r, defaults, defaultMaxSeconds).cacheKey;
}

TEST(ResolveRequest, ScenarioAliasesCollapseToOneKey)
{
    // byName folds '-' to '_' and accepts the "_test"-suffix-less
    // spelling; the key is built from the registry-canonical name,
    // so all spellings share one cache entry.
    const std::string canon = keyOf(namedRequest("clean_evict_test"));
    EXPECT_EQ(keyOf(namedRequest("clean-evict-test")), canon);
    EXPECT_EQ(keyOf(namedRequest("clean_evict")), canon);
    EXPECT_NE(keyOf(namedRequest("dirty_evict_test")), canon);
}

TEST(ResolveRequest, KnobSpellingsThatMeanTheSameRunCollapse)
{
    // An absent knob resolves to the daemon default; spelling the
    // same value explicitly must not fork the cache.
    EngineOptions defaults;
    defaults.threads = 2;
    defaults.por = true;

    Request implicit = namedRequest("free-run");
    Request explicitly = namedRequest("free-run");
    explicitly.engine.threads = 2;
    explicitly.engine.por = true;
    explicitly.engine.schedule = Schedule::Bfs;
    EXPECT_EQ(keyOf(implicit, defaults), keyOf(explicitly, defaults));

    // Family restriction: order and duplicates are not semantics.
    Request fam1 = namedRequest("free-run");
    fam1.families = std::vector<std::string>{"swmr", "dir", "swmr"};
    Request fam2 = namedRequest("free-run");
    fam2.families = std::vector<std::string>{"dir", "swmr"};
    EXPECT_EQ(keyOf(fam1), keyOf(fam2));
    EXPECT_NE(keyOf(fam1), keyOf(implicit));
}

TEST(ResolveRequest, DistinctSemanticsNeverAlias)
{
    const std::string base = keyOf(namedRequest("free-run"));

    Request dev = namedRequest("free-run");
    dev.devices = 3;
    EXPECT_NE(keyOf(dev), base);

    Request det = namedRequest("free-run");
    det.deterministic = true;
    EXPECT_NE(keyOf(det), base);

    Request threads = namedRequest("free-run");
    threads.engine.threads = 1;
    Request threads2 = namedRequest("free-run");
    threads2.engine.threads = 2;
    EXPECT_NE(keyOf(threads), keyOf(threads2));

    Request capped = namedRequest("free-run");
    capped.engine.maxStates = 1000;
    EXPECT_NE(keyOf(capped), base);

    Request ws = namedRequest("free-run");
    ws.engine.schedule = Schedule::WorkSteal;
    EXPECT_NE(keyOf(ws), base);

    Request cfg = namedRequest("free-run");
    ProtocolConfig relaxed;
    relaxed.relaxSnoopPushesGo = true;
    cfg.config = relaxed;
    EXPECT_NE(keyOf(cfg), base);
}

TEST(ResolveRequest, RamAndMmapStoreSpellingsCollapseToOneKey)
{
    // The backend is below the probe algorithm: verdicts, counts and
    // the rendered JSON are backend-independent, so ram and mmap
    // spellings of the same compactness must share one cache entry —
    // a ram-warmed cache answers mmap requests.  The compact bit is
    // semantics (detected-collision accounting, trace notes) and
    // must fork the key.
    const std::string base = keyOf(namedRequest("free-run"));

    Request ram = namedRequest("free-run");
    ram.engine.store = StoreKind::InRam;
    Request mmap = namedRequest("free-run");
    mmap.engine.store = StoreKind::Mmap;
    EXPECT_EQ(keyOf(ram), base);
    EXPECT_EQ(keyOf(mmap), base);

    Request ram_c = namedRequest("free-run");
    ram_c.engine.store = StoreKind::InRamCompact;
    Request mmap_c = namedRequest("free-run");
    mmap_c.engine.store = StoreKind::MmapCompact;
    EXPECT_EQ(keyOf(ram_c), keyOf(mmap_c));
    EXPECT_NE(keyOf(ram_c), base);

    // The compact knob layers onto the chosen backend the same way
    // --compact layers onto --store.
    Request layered = namedRequest("free-run");
    layered.engine.store = StoreKind::Mmap;
    layered.engine.compact = true;
    EXPECT_EQ(keyOf(layered), keyOf(ram_c));
}

TEST(ResolveRequest, WallClockBudgetsStayOutOfTheKey)
{
    // Budgets only change *whether* a run finishes (Incomplete is
    // never cached), not what a finished run returns — a budgeted
    // request must still be answerable by an unbudgeted run's entry.
    const std::string base = keyOf(namedRequest("free-run"));
    Request budgeted = namedRequest("free-run");
    budgeted.engine.maxSeconds = 5.0;
    budgeted.engine.maxRssMb = 4096;
    budgeted.engine.expectStates = 1000;
    EXPECT_EQ(keyOf(budgeted), base);
    EXPECT_EQ(keyOf(namedRequest("free-run"), {}, 30.0), base);
}

TEST(ResolveRequest, InlineCasesKeyByContentHash)
{
    fuzz::FuzzCase c;
    c.freeRun = true;
    c.maxStates = 500;

    Request r1;
    r1.id = "a";
    r1.inlineCase = c;
    Request r2;
    r2.id = "b"; // the client-chosen id is not semantics
    r2.inlineCase = c;
    EXPECT_EQ(keyOf(r1), keyOf(r2));
    EXPECT_EQ(keyOf(r1).rfind("g:", 0), 0u) << keyOf(r1);

    c.maxStates = 600;
    Request r3;
    r3.id = "a";
    r3.inlineCase = c;
    EXPECT_NE(keyOf(r3), keyOf(r1));
}

TEST(ResolveRequest, RejectsUnknownScenarioAndBadDevices)
{
    EXPECT_THROW(keyOf(namedRequest("no_such_scenario")),
                 std::runtime_error);
    Request pinned = namedRequest("clean_evict_test");
    pinned.devices = 3; // pinned 2-device litmus scenario
    EXPECT_THROW(keyOf(pinned), std::runtime_error);
}

TEST(ResolveRequest, AppliesTheDefaultWallClockSafetyNet)
{
    // No budget anywhere -> the daemon's net; request's own wins.
    EXPECT_EQ(resolveRequest(namedRequest("free-run"), {}, 12.0)
                  .engine.maxSeconds,
              12.0);
    Request own = namedRequest("free-run");
    own.engine.maxSeconds = 3.0;
    EXPECT_EQ(resolveRequest(own, {}, 12.0).engine.maxSeconds, 3.0);
}

// ------------------------------------------------------- live server

class ServeEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char path[96];
        std::snprintf(path, sizeof path, "/tmp/cxl_serve_%d_%u.sock",
                      static_cast<int>(::getpid()), ++instances_);
        ServerOptions opt;
        opt.socketPath = path;
        opt.workers = 3;
        opt.cacheEntries = 64;
        server_ = std::make_unique<Server>(std::move(opt));
        server_->start();
    }

    void
    TearDown() override
    {
        server_->drain();
        server_.reset();
    }

    Request
    deterministicRequest(const std::string &scenario) const
    {
        Request r = namedRequest(scenario);
        r.id = scenario;
        r.engine.threads = 2;
        r.deterministic = true;
        r.progress = false;
        return r;
    }

    std::unique_ptr<Server> server_;
    static unsigned instances_;
};

unsigned ServeEndToEnd::instances_ = 0;

TEST_F(ServeEndToEnd, ConcurrentClientsMatchOfflineByteForByte)
{
    const std::vector<std::string> scenarios = {
        "clean_evict_test",    "dirty_evict_test",
        "multiple_reads",      "upgrade_race",
        "snoop_pushes_go_test"};

    // The offline truth: same resolved knobs, deterministic render.
    EngineOptions offline;
    offline.threads = 2;
    CheckSession session(offline);
    std::vector<std::string> expected;
    for (const std::string &s : scenarios) {
        CheckRequest req;
        req.scenario = s;
        expected.push_back(session.run(req).renderJson(true));
    }

    std::vector<ClientResult> served(scenarios.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        clients.emplace_back([&, i] {
            served[i] = requestCheck(
                server_->socketPath(),
                deterministicRequest(scenarios[i]));
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        ASSERT_TRUE(served[i].ok) << served[i].error;
        EXPECT_FALSE(served[i].cached);
        EXPECT_EQ(served[i].payload.resultJson, expected[i])
            << scenarios[i];
    }

    // Same requests again: answered from the cache, byte-identical.
    const CacheStats before = server_->stats().cache;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const ClientResult again = requestCheck(
            server_->socketPath(),
            deterministicRequest(scenarios[i]));
        ASSERT_TRUE(again.ok) << again.error;
        EXPECT_TRUE(again.cached) << scenarios[i];
        EXPECT_EQ(again.payload.resultJson, expected[i]);
    }
    // The served counter is bumped after the result frame is on the
    // wire, so a client can observe its answer a beat before the
    // increment lands: poll briefly instead of racing it.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server_->stats().checksServed < 2 * scenarios.size() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const ServerStats after = server_->stats();
    EXPECT_EQ(after.cache.hits, before.hits + scenarios.size());
    EXPECT_EQ(after.cache.misses, before.misses);
    EXPECT_EQ(after.checksServed, 2 * scenarios.size())
        << after.renderJson();
}

TEST_F(ServeEndToEnd, MmapStoreServesOfflineBytesForEveryScenario)
{
    // Every registry scenario served under the mmap store must
    // return the exact bytes an offline in-RAM run renders: the
    // backend may not leak into the result, and the out-of-core
    // path must not perturb a single count or verdict.
    EngineOptions offline;
    offline.threads = 2;
    CheckSession session(offline);
    for (const scenarios::Entry &entry : scenarios::all()) {
        const int devices = entry.deviceScalable
                                ? kDefaultNumDevices
                                : entry.fixedDevices;
        CheckRequest req;
        req.scenario = entry.name;
        req.devices = devices;
        const std::string expected =
            session.run(req).renderJson(true);

        Request r = deterministicRequest(entry.name);
        r.devices = devices;
        r.engine.store = StoreKind::Mmap;
        const ClientResult served =
            requestCheck(server_->socketPath(), r);
        ASSERT_TRUE(served.ok) << entry.name << ": " << served.error;
        EXPECT_EQ(served.payload.resultJson, expected) << entry.name;
    }
}

TEST_F(ServeEndToEnd, StatsRequestReportsTheCounters)
{
    const ClientResult first = requestCheck(
        server_->socketPath(), deterministicRequest("multiple_reads"));
    ASSERT_TRUE(first.ok) << first.error;

    // The served counter lands a beat after the client's answer.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server_->stats().checksServed < 1 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    std::string error;
    const std::string stats =
        fetchStats(server_->socketPath(), error);
    ASSERT_FALSE(stats.empty()) << error;
    const JsonValue v = parseJson(stats);
    EXPECT_EQ(v.getStr("schema"), "cxl-checkd-stats/v1");
    EXPECT_EQ(v.getNum("checks_served"), 1);
    EXPECT_EQ(v.getNum("cache_misses"), 1);
    EXPECT_EQ(v.getNum("model_builds"), 1);
    EXPECT_FALSE(v.getBool("draining"));
}

TEST_F(ServeEndToEnd, BadRequestsGetAnErrorFrame)
{
    const ClientResult unknown = requestCheck(
        server_->socketPath(), namedRequest("no_such_scenario"));
    EXPECT_FALSE(unknown.ok);
    EXPECT_NE(unknown.error.find("unknown scenario"),
              std::string::npos)
        << unknown.error;

    // Raw garbage never crashes the worker; the server answers.
    const int fd = connectUnixSocket(server_->socketPath());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendFrame(fd, "this is not json"));
    FrameReader reader;
    std::string line;
    ASSERT_TRUE(recvFrame(fd, reader, line));
    EXPECT_EQ(parseJson(line).getStr("type"), "error");
    ::close(fd);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server_->stats().errors < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server_->stats().errors, 2u);
}

TEST_F(ServeEndToEnd, ClientDisconnectCancelsTheRun)
{
    // An expensive free run with per-flush progress frames: drop the
    // connection after the first frame and the server must cancel the
    // exploration (and never cache the resulting Incomplete).
    Request r = namedRequest("free-run");
    r.id = "doomed";
    r.devices = 3;
    r.engine.threads = 1;
    r.engine.maxSeconds = 60.0; // safety net, not the mechanism
    r.progressInterval = 0.0;   // a frame per batch flush

    const int fd = connectUnixSocket(server_->socketPath());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendFrame(fd, renderRequestJson(r)));
    FrameReader reader;
    std::string line;
    ASSERT_TRUE(recvFrame(fd, reader, line));
    EXPECT_EQ(parseJson(line).getStr("type"), "progress");
    ::close(fd); // hang up mid-run

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (server_->stats().disconnectCancels == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const ServerStats s = server_->stats();
    EXPECT_EQ(s.disconnectCancels, 1u);
    EXPECT_EQ(s.cache.entries, 0u); // the Incomplete was not cached
}

TEST(ServeDrain, CancelsInFlightAndTurnsAwayQueuedConnections)
{
    char path[96];
    std::snprintf(path, sizeof path, "/tmp/cxl_drain_%d.sock",
                  static_cast<int>(::getpid()));
    ServerOptions opt;
    opt.socketPath = path;
    opt.workers = 1; // one worker: the second connection must queue
    Server server(std::move(opt));
    server.start();

    // Client A occupies the only worker with an expensive run.
    Request slow = namedRequest("free-run");
    slow.id = "slow";
    slow.devices = 3;
    slow.engine.threads = 1;
    slow.engine.maxSeconds = 60.0; // safety net, not the mechanism
    slow.progress = false;
    ClientResult a;
    std::thread client_a(
        [&] { a = requestCheck(server.socketPath(), slow); });

    // The worker has started A once its cache miss is counted.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (server.stats().cache.misses == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(server.stats().cache.misses, 1u);

    // Client B connects and queues behind A.
    const int fd = connectUnixSocket(server.socketPath());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(
        sendFrame(fd, renderRequestJson(
                          namedRequest("clean_evict_test"))));
    while (server.stats().accepted < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Drain: A finishes as a governed (uncached) Incomplete and is
    // still answered; B is turned away with an error frame.
    server.beginDrain();
    client_a.join();
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(parseJson(a.payload.resultJson).getStr("verdict"),
              "incomplete");
    EXPECT_EQ(parseJson(a.payload.resultJson).getStr("stop_reason"),
              "cancelled");

    FrameReader reader;
    std::string line;
    if (recvFrame(fd, reader, line)) {
        EXPECT_EQ(parseJson(line).getStr("type"), "error");
        EXPECT_NE(parseJson(line).getStr("message").find("server"),
                  std::string::npos)
            << line;
    } // else: B raced the accept loop's shutdown and was reset
    ::close(fd);

    server.drain();
    const ServerStats s = server.stats();
    EXPECT_EQ(s.cache.entries, 0u); // the Incomplete was not cached
    EXPECT_TRUE(s.draining);

    // A drained server's socket is gone: clients fail to connect.
    const ClientResult after =
        requestCheck(path, namedRequest("multiple_reads"));
    EXPECT_FALSE(after.ok);
    EXPECT_NE(after.error.find("cannot connect"), std::string::npos)
        << after.error;
}

} // namespace
} // namespace cxl::serve
