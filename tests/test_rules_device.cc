/**
 * @file
 * Unit tests for the device-side transition rules: each rule's guard
 * and action semantics on hand-crafted states, parameterised over both
 * devices (the rule templates must be perfectly symmetric).
 */

#include <gtest/gtest.h>

#include "protocol/rules.hh"

namespace cxl
{
namespace
{

class DeviceRules : public ::testing::TestWithParam<int>
{
  protected:
    DeviceRules() : rules(ProtocolConfig::correct()) {}

    /** Rule name with the 1-based suffix of the parameter device. */
    std::string
    rn(const std::string &base) const
    {
        return base + std::to_string(GetParam() + 1);
    }

    int d() const { return GetParam(); }
    int o() const { return SystemState::other(GetParam()); }

    /** A scenario whose parameter device runs @p prog. */
    Scenario
    withProgram(SystemState init, std::vector<Instr> prog) const
    {
        Scenario sc;
        sc.initial = std::move(init);
        sc.program[d()] = std::move(prog);
        return sc;
    }

    RuleSet rules;
};

TEST_P(DeviceRules, InvalidLoadIssuesRdShared)
{
    Scenario sc = withProgram(initialAllInvalid(), {Instr::Load});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("InvalidLoad"), s, sc));

    EXPECT_EQ(s.dev[d()].state, DState::ISAD);
    ASSERT_EQ(s.dev[d()].d2hReq.size(), 1u);
    EXPECT_EQ(s.dev[d()].d2hReq.front().op, D2HReqOp::RdShared);
    EXPECT_EQ(s.dev[d()].d2hReq.front().tid, 0);
    EXPECT_EQ(s.counter, 1);
    EXPECT_EQ(s.dev[d()].pc, 0) << "pc advances on completion, not issue";
}

TEST_P(DeviceRules, InvalidLoadBlockedWithoutLoadInstruction)
{
    Scenario sc = withProgram(initialAllInvalid(), {Instr::Store});
    SystemState s = sc.initial;
    EXPECT_FALSE(rules.fire(rn("InvalidLoad"), s, sc));
    EXPECT_TRUE(rules.fire(rn("InvalidStore"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::IMAD);
    EXPECT_EQ(s.dev[d()].d2hReq.front().op, D2HReqOp::RdOwn);
}

TEST_P(DeviceRules, SharedStoreUpgrades)
{
    Scenario sc = withProgram(initialBothShared(4), {Instr::Store});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("SharedStore"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::SMAD);
    EXPECT_EQ(s.dev[d()].d2hReq.front().op, D2HReqOp::RdOwn);
}

TEST_P(DeviceRules, SharedAndModifiedHitsRetireInstruction)
{
    {
        Scenario sc = withProgram(initialBothShared(4), {Instr::Load});
        SystemState s = sc.initial;
        ASSERT_TRUE(rules.fire(rn("SharedLoad"), s, sc));
        EXPECT_EQ(s.dev[d()].pc, 1);
        EXPECT_EQ(s.dev[d()].state, DState::S);
        EXPECT_TRUE(s.dev[d()].d2hReq.empty()) << "hits are silent";
    }
    {
        Scenario sc =
            withProgram(initialOneModified(d(), 7, 0), {Instr::Store});
        SystemState s = sc.initial;
        ASSERT_TRUE(rules.fire(rn("ModifiedStore"), s, sc));
        EXPECT_EQ(s.dev[d()].pc, 1);
        EXPECT_EQ(s.dev[d()].val, static_cast<Val>(d() + 1));
    }
}

TEST_P(DeviceRules, EvictionsSelectRequestByDirtiness)
{
    {
        Scenario sc = withProgram(initialBothShared(4), {Instr::Evict});
        SystemState s = sc.initial;
        ASSERT_TRUE(rules.fire(rn("SharedEvict"), s, sc));
        EXPECT_EQ(s.dev[d()].state, DState::SIA);
        EXPECT_EQ(s.dev[d()].d2hReq.front().op, D2HReqOp::CleanEvict);
    }
    {
        Scenario sc = withProgram(initialBothShared(4), {Instr::Evict});
        SystemState s = sc.initial;
        ASSERT_TRUE(rules.fire(rn("SharedEvictNoData"), s, sc));
        EXPECT_EQ(s.dev[d()].state, DState::SIAC);
        EXPECT_EQ(s.dev[d()].d2hReq.front().op,
                  D2HReqOp::CleanEvictNoData);
    }
    {
        Scenario sc =
            withProgram(initialOneModified(d(), 3, 0), {Instr::Evict});
        SystemState s = sc.initial;
        ASSERT_TRUE(rules.fire(rn("ModifiedEvict"), s, sc));
        EXPECT_EQ(s.dev[d()].state, DState::MIA);
        EXPECT_EQ(s.dev[d()].d2hReq.front().op, D2HReqOp::DirtyEvict);
    }
}

TEST_P(DeviceRules, GrantConsumptionSplitPath)
{
    Scenario sc = withProgram(initialAllInvalid(5), {Instr::Load});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("InvalidLoad"), s, sc));
    // Hand-deliver the grant.
    s.dev[d()].d2hReq.popFront();
    s.dev[d()].h2dRsp.pushBack({H2DRspOp::GO, DState::S, 0});
    s.dev[d()].h2dData.pushBack({0, 5, 0});

    SystemState go_first = s;
    ASSERT_TRUE(rules.fire(rn("ISAD_GO"), go_first, sc));
    EXPECT_EQ(go_first.dev[d()].state, DState::ISD);
    ASSERT_TRUE(rules.fire(rn("ISD_Data"), go_first, sc));
    EXPECT_EQ(go_first.dev[d()].state, DState::S);
    EXPECT_EQ(go_first.dev[d()].val, 5);
    EXPECT_EQ(go_first.dev[d()].pc, 1) << "load completes";

    SystemState data_first = s;
    ASSERT_TRUE(rules.fire(rn("ISAD_Data"), data_first, sc));
    EXPECT_EQ(data_first.dev[d()].state, DState::ISA);
    EXPECT_EQ(data_first.dev[d()].val, 5);
    ASSERT_TRUE(rules.fire(rn("ISA_GO"), data_first, sc));
    EXPECT_EQ(data_first.dev[d()].state, DState::S);

    SystemState combined = s;
    ASSERT_TRUE(rules.fire(rn("ISAD_GO_Data"), combined, sc));
    EXPECT_EQ(combined.dev[d()].state, DState::S);
    EXPECT_EQ(combined, go_first) << "split and combined paths converge";
}

TEST_P(DeviceRules, OwnershipGrantPerformsStore)
{
    Scenario sc = withProgram(initialAllInvalid(5), {Instr::Store});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("InvalidStore"), s, sc));
    s.dev[d()].d2hReq.popFront();
    s.dev[d()].h2dRsp.pushBack({H2DRspOp::GO, DState::M, 0});
    s.dev[d()].h2dData.pushBack({0, 5, 0});

    ASSERT_TRUE(rules.fire(rn("IMAD_GO_Data"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::M);
    EXPECT_EQ(s.dev[d()].val, static_cast<Val>(d() + 1))
        << "the pending store overwrites the granted data";
    EXPECT_EQ(s.dev[d()].pc, 1);
}

TEST_P(DeviceRules, GoTargetMismatchBlocks)
{
    Scenario sc = withProgram(initialAllInvalid(), {Instr::Load});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("InvalidLoad"), s, sc));
    s.dev[d()].d2hReq.popFront();
    // Wrong grant: ownership GO for a share requester.
    s.dev[d()].h2dRsp.pushBack({H2DRspOp::GO, DState::M, 0});
    EXPECT_FALSE(rules.fire(rn("ISAD_GO"), s, sc));
}

TEST_P(DeviceRules, DirtyEvictionWritesBackOnPull)
{
    Scenario sc =
        withProgram(initialOneModified(d(), 9, 0), {Instr::Evict});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("ModifiedEvict"), s, sc));
    s.dev[d()].d2hReq.popFront();
    s.dev[d()].h2dRsp.pushBack({H2DRspOp::GO_WritePull, DState::I, 0});

    ASSERT_TRUE(rules.fire(rn("MIA_GO_WritePull"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::I);
    ASSERT_EQ(s.dev[d()].d2hData.size(), 1u);
    EXPECT_EQ(s.dev[d()].d2hData.front().val, 9);
    EXPECT_EQ(s.dev[d()].d2hData.front().bogus, 0);
    EXPECT_EQ(s.dev[d()].pc, 1) << "the evict retires with the pull";
}

TEST_P(DeviceRules, CleanEvictionDropsWithoutData)
{
    Scenario sc = withProgram(initialBothShared(2), {Instr::Evict});
    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("SharedEvict"), s, sc));
    s.dev[d()].d2hReq.popFront();
    s.dev[d()].h2dRsp.pushBack(
        {H2DRspOp::GO_WritePullDrop, DState::I, 0});

    ASSERT_TRUE(rules.fire(rn("SIA_GO_WritePullDrop"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::I);
    EXPECT_TRUE(s.dev[d()].d2hData.empty());
    EXPECT_EQ(s.dev[d()].pc, 1);
}

TEST_P(DeviceRules, SnoopKilledEvictionSendsBogusData)
{
    SystemState init = initialAllInvalid();
    init.dev[d()].state = DState::IIA;
    init.dev[d()].val = 7;
    init.dev[d()].h2dRsp.pushBack(
        {H2DRspOp::GO_WritePull, DState::I, 0});
    init.counter = 1;
    Scenario sc = withProgram(init, {Instr::Evict});

    SystemState s = sc.initial;
    ASSERT_TRUE(rules.fire(rn("IIA_GO_WritePull"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::I);
    ASSERT_EQ(s.dev[d()].d2hData.size(), 1u);
    EXPECT_EQ(s.dev[d()].d2hData.front().bogus, 1)
        << "CXL 3.1 S3.2.5.4: data after a snoop-hit eviction is Bogus";
}

TEST_P(DeviceRules, SharedSnpInvRespondsAndInvalidates)
{
    // Fig. 4's SharedSnpInv rule, verbatim.
    SystemState init = initialBothShared(3);
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 2});
    init.counter = 3;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    ASSERT_TRUE(rules.fire(rn("SharedSnpInv"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::I);
    EXPECT_TRUE(s.dev[d()].h2dReq.empty());
    ASSERT_EQ(s.dev[d()].d2hRsp.size(), 1u);
    EXPECT_EQ(s.dev[d()].d2hRsp.front().op, D2HRspOp::RspIHitSE);
    EXPECT_EQ(s.dev[d()].d2hRsp.front().tid, 2)
        << "the response reuses the snoop's transaction id";
    EXPECT_TRUE(s.dev[d()].buffer.holdsSnoop(H2DReqOp::SnpInv));
}

TEST_P(DeviceRules, SnoopPushesGoGuardBlocksSnoop)
{
    // A pending GO must be consumed before the snoop (S3.2.5.2).
    SystemState init = initialBothShared(3);
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 2});
    init.dev[d()].h2dRsp.pushBack(
        {H2DRspOp::GO_WritePullDrop, DState::I, 1});
    init.counter = 3;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    EXPECT_FALSE(rules.fire(rn("SharedSnpInv"), s, sc))
        << "Snoop-pushes-GO: the snoop must wait behind the GO";
}

TEST_P(DeviceRules, ModifiedSnoopsForwardDirtyData)
{
    SystemState init = initialOneModified(d(), 8, 1);
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpData, 4});
    init.counter = 5;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    ASSERT_TRUE(rules.fire(rn("ModifiedSnpData"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::S);
    EXPECT_EQ(s.dev[d()].d2hRsp.front().op, D2HRspOp::RspSFwdM);
    ASSERT_EQ(s.dev[d()].d2hData.size(), 1u);
    EXPECT_EQ(s.dev[d()].d2hData.front().val, 8);

    SystemState t = init;
    t.dev[d()].h2dReq.clear();
    t.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 4});
    ASSERT_TRUE(rules.fire(rn("ModifiedSnpInv"), t, sc));
    EXPECT_EQ(t.dev[d()].state, DState::I);
    EXPECT_EQ(t.dev[d()].d2hRsp.front().op, D2HRspOp::RspIFwdM);
}

TEST_P(DeviceRules, SnoopHitsWritebackKillsEviction)
{
    SystemState init = initialOneModified(d(), 6, 0);
    init.dev[d()].state = DState::MIA;
    init.dev[d()].d2hReq.pushBack({D2HReqOp::DirtyEvict, 0});
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 1});
    init.counter = 2;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    ASSERT_TRUE(rules.fire(rn("MIASnpInv"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::IIA);
    EXPECT_EQ(s.dev[d()].d2hRsp.front().op, D2HRspOp::RspIFwdM);
    EXPECT_EQ(s.dev[d()].d2hData.front().val, 6)
        << "the snoop still forwards the dirty line";
}

TEST_P(DeviceRules, IsdSnoopEntersReadOnce)
{
    SystemState init = initialAllInvalid(4);
    init.dev[d()].state = DState::ISD;
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 1});
    init.dev[d()].h2dData.pushBack({0, 4, 0});
    init.counter = 2;
    Scenario sc = withProgram(init, {Instr::Load});

    SystemState s = init;
    ASSERT_TRUE(rules.fire(rn("ISDSnpInv"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::ISDI);

    ASSERT_TRUE(rules.fire(rn("ISDI_Data"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::I);
    EXPECT_EQ(s.dev[d()].pc, 1) << "the read-once satisfies the load";
}

TEST_P(DeviceRules, SmadSnoopDowngradesUpgradeRequest)
{
    SystemState init = initialBothShared(1);
    init.dev[d()].state = DState::SMAD;
    init.dev[d()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 1});
    init.counter = 2;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    ASSERT_TRUE(rules.fire(rn("SMADSnpInv"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::IMAD)
        << "the invalidated upgrader now needs data too";
    EXPECT_EQ(s.dev[d()].d2hRsp.front().op, D2HRspOp::RspIHitSE);
}

TEST_P(DeviceRules, MutatedIsadSnoopOnlyExistsUnderMutation)
{
    EXPECT_EQ(rules.find(rn("ISADSnpInv")), nullptr)
        << "the Table 3 rule must not exist in the correct model";

    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet mrules(mutated);
    const Rule *rule = mrules.find(rn("ISADSnpInv"));
    ASSERT_NE(rule, nullptr);
    EXPECT_TRUE(rule->mutated);

    // It lies with RspIHitI and stays in ISAD (paper Section 5.2).
    SystemState init = initialAllInvalid();
    init.dev[d()].state = DState::ISAD;
    init.dev[d()].h2dReq.pushBack({H2DReqOp::SnpInv, 0});
    init.counter = 1;
    Scenario sc;
    sc.initial = init;

    SystemState s = init;
    ASSERT_TRUE(mrules.fire(rn("ISADSnpInv"), s, sc));
    EXPECT_EQ(s.dev[d()].state, DState::ISAD);
    EXPECT_EQ(s.dev[d()].d2hRsp.front().op, D2HRspOp::RspIHitI);
}

INSTANTIATE_TEST_SUITE_P(BothDevices, DeviceRules, ::testing::Range(0, 2));

} // namespace
} // namespace cxl
