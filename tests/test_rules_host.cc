/**
 * @file
 * Unit tests for the host-side transition rules: grant flows, snoop
 * transactions, evictions and the GO-cannot-tailgate guards,
 * parameterised over the requesting device.
 */

#include <gtest/gtest.h>

#include "protocol/rules.hh"

namespace cxl
{
namespace
{

class HostRules : public ::testing::TestWithParam<int>
{
  protected:
    HostRules() : rules(ProtocolConfig::correct()) { sc.initial = {}; }

    std::string
    rn(const std::string &base) const
    {
        return base + std::to_string(GetParam() + 1);
    }

    int i() const { return GetParam(); }
    int o() const { return SystemState::other(GetParam()); }

    RuleSet rules;
    Scenario sc;
};

TEST_P(HostRules, InvalidRdSharedGrants)
{
    SystemState s = initialAllInvalid(6);
    s.dev[i()].state = DState::ISAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostInvalidRdShared"), s, sc));
    EXPECT_EQ(s.hstate, HState::S);
    EXPECT_TRUE(s.dev[i()].d2hReq.empty());
    ASSERT_EQ(s.dev[i()].h2dRsp.size(), 1u);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().op, H2DRspOp::GO);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().target, DState::S);
    ASSERT_EQ(s.dev[i()].h2dData.size(), 1u);
    EXPECT_EQ(s.dev[i()].h2dData.front().val, 6)
        << "the grant carries the memory value";
}

TEST_P(HostRules, InvalidRdOwnGrantsOwnership)
{
    SystemState s = initialAllInvalid(6);
    s.dev[i()].state = DState::IMAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostInvalidRdOwn"), s, sc));
    EXPECT_EQ(s.hstate, HState::M);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().target, DState::M);
}

TEST_P(HostRules, SharedRdOwnSoleSharerUpgradesWithoutSnoop)
{
    SystemState s = initialBothShared(2);
    s.dev[o()].state = DState::I; // requester is the only sharer
    s.dev[i()].state = DState::SMAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostSharedRdOwnUpgrade"), s, sc));
    EXPECT_EQ(s.hstate, HState::M);
    EXPECT_TRUE(s.dev[o()].h2dReq.empty()) << "no snoop needed";
}

TEST_P(HostRules, SharedRdOwnSnoopsOtherSharer)
{
    // Table 3's SharedRdOwn step: snoop + early data, GO later.
    SystemState s = initialBothShared(2);
    s.dev[i()].state = DState::SMAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostSharedRdOwnSnp"), s, sc));
    EXPECT_EQ(s.hstate, HState::MA);
    ASSERT_EQ(s.dev[o()].h2dReq.size(), 1u);
    EXPECT_EQ(s.dev[o()].h2dReq.front().op, H2DReqOp::SnpInv);
    EXPECT_EQ(s.dev[o()].h2dReq.front().tid, 0)
        << "the snoop reuses the request's transaction id";
    ASSERT_EQ(s.dev[i()].h2dData.size(), 1u)
        << "data travels to the requester immediately";
    EXPECT_TRUE(s.dev[i()].h2dRsp.empty()) << "but the GO waits";

    // Upgrade rule must NOT fire in the same state.
    SystemState t = initialBothShared(2);
    t.dev[i()].state = DState::SMAD;
    t.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    t.counter = 1;
    EXPECT_FALSE(rules.fire(rn("HostSharedRdOwnUpgrade"), t, sc));
}

TEST_P(HostRules, MaAckCompletesOwnershipGrant)
{
    SystemState s = initialAllInvalid(2);
    s.hstate = HState::MA;
    s.hreq = static_cast<std::uint8_t>(i() + 1);
    s.dev[i()].state = DState::SMAD;
    s.dev[i()].h2dData.pushBack({0, 2, 0}); // early data already sent
    s.dev[o()].state = DState::I;
    s.dev[o()].d2hRsp.pushBack({D2HRspOp::RspIHitSE, 0});
    s.dev[o()].buffer = DBuffer::fromReq({H2DReqOp::SnpInv, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostMA_RspIHitSE"), s, sc));
    EXPECT_EQ(s.hstate, HState::M);
    EXPECT_TRUE(s.dev[o()].d2hRsp.empty());
    ASSERT_EQ(s.dev[i()].h2dRsp.size(), 1u);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().target, DState::M);
}

TEST_P(HostRules, MaAckWaitsForStaleGrantDataToDrain)
{
    // The snooped device was in ISD and went ISDI; its read-once data
    // is still in flight, so the ownership GO must wait.
    SystemState s = initialAllInvalid(2);
    s.hstate = HState::MA;
    s.hreq = static_cast<std::uint8_t>(i() + 1);
    s.dev[i()].state = DState::IMAD;
    s.dev[i()].h2dData.pushBack({0, 2, 0});
    s.dev[o()].state = DState::ISDI;
    s.dev[o()].d2hRsp.pushBack({D2HRspOp::RspIHitSE, 0});
    s.dev[o()].h2dData.pushBack({1, 2, 0}); // undrained grant data
    s.counter = 2;

    EXPECT_FALSE(rules.fire(rn("HostMA_RspIHitSE"), s, sc));
    s.dev[o()].h2dData.clear();
    EXPECT_TRUE(rules.fire(rn("HostMA_RspIHitSE"), s, sc));
}

TEST_P(HostRules, ModifiedRdSharedRunsSnpDataTransaction)
{
    SystemState s = initialOneModified(o(), 9, 1);
    s.dev[i()].state = DState::ISAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostModifiedRdShared"), s, sc));
    EXPECT_EQ(s.hstate, HState::SAD);
    EXPECT_EQ(s.dev[o()].h2dReq.front().op, H2DReqOp::SnpData);

    // Owner responds.
    ASSERT_TRUE(rules.fire("ModifiedSnpData" + std::to_string(o() + 1),
                           s, sc));
    ASSERT_TRUE(rules.fire(rn("HostSAD_RspSFwdM"), s, sc));
    EXPECT_EQ(s.hstate, HState::SD);

    ASSERT_TRUE(rules.fire(rn("HostSD_Data"), s, sc));
    EXPECT_EQ(s.hstate, HState::S);
    EXPECT_EQ(s.hval, 9) << "forwarded dirty data updates memory";
    EXPECT_EQ(s.dev[i()].h2dRsp.front().target, DState::S);
    EXPECT_EQ(s.dev[i()].h2dData.front().val, 9);
}

TEST_P(HostRules, ModifiedRdOwnRunsSnpInvTransaction)
{
    SystemState s = initialOneModified(o(), 9, 1);
    s.dev[i()].state = DState::IMAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostModifiedRdOwn"), s, sc));
    EXPECT_EQ(s.hstate, HState::MAD);
    ASSERT_TRUE(rules.fire("ModifiedSnpInv" + std::to_string(o() + 1),
                           s, sc));
    ASSERT_TRUE(rules.fire(rn("HostMAD_RspIFwdM"), s, sc));
    EXPECT_EQ(s.hstate, HState::MD);
    ASSERT_TRUE(rules.fire(rn("HostMD_Data"), s, sc));
    EXPECT_EQ(s.hstate, HState::M);
    EXPECT_EQ(s.hval, 9);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().target, DState::M);
}

TEST_P(HostRules, DirtyEvictFollowsFig4)
{
    // Paper Fig. 4, HostModifiedDirtyEvict1 verbatim.
    SystemState s = initialOneModified(i(), 4, 0);
    s.dev[i()].state = DState::MIA;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::DirtyEvict, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostModifiedDirtyEvict"), s, sc));
    EXPECT_EQ(s.hstate, HState::ID);
    EXPECT_EQ(s.dev[i()].h2dRsp.front().op, H2DRspOp::GO_WritePull);
    EXPECT_TRUE(s.dev[i()].buffer.isEmpty()) << "Fig. 4 clears DBuffer";

    ASSERT_TRUE(
        rules.fire("MIA_GO_WritePull" + std::to_string(i() + 1), s, sc));
    ASSERT_TRUE(rules.fire(rn("HostID_Data"), s, sc));
    EXPECT_EQ(s.hstate, HState::I);
    EXPECT_EQ(s.hval, 4) << "Table 2: the writeback lands in memory";
}

TEST_P(HostRules, GoCannotTailgateSnoopGuard)
{
    // Fig. 4's fourth guard: no GO while the device's snoop-side
    // channels are busy.
    SystemState s = initialOneModified(i(), 4, 0);
    s.dev[i()].state = DState::MIA;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::DirtyEvict, 0});
    s.dev[i()].h2dReq.pushBack({H2DReqOp::SnpData, 1});
    s.counter = 2;

    EXPECT_FALSE(rules.fire(rn("HostModifiedDirtyEvict"), s, sc))
        << "a GO must not be sent while a snoop is outstanding";
}

TEST_P(HostRules, CleanEvictLastVsNotLast)
{
    // Table 1: another sharer remains, directory stays S.
    SystemState not_last = initialBothShared(2);
    not_last.dev[i()].state = DState::SIA;
    not_last.dev[i()].d2hReq.pushBack({D2HReqOp::CleanEvict, 0});
    not_last.counter = 1;
    ASSERT_TRUE(rules.fire(rn("HostSharedCleanEvictNotLastDrop"),
                           not_last, sc));
    EXPECT_EQ(not_last.hstate, HState::S);
    EXPECT_EQ(not_last.dev[i()].h2dRsp.front().op,
              H2DRspOp::GO_WritePullDrop);

    // Last sharer leaving: the directory drops to I.
    SystemState last = initialBothShared(2);
    last.dev[o()].state = DState::I;
    last.dev[i()].state = DState::SIA;
    last.dev[i()].d2hReq.pushBack({D2HReqOp::CleanEvict, 0});
    last.counter = 1;
    EXPECT_FALSE(
        rules.fire(rn("HostSharedCleanEvictNotLastDrop"), last, sc));
    ASSERT_TRUE(
        rules.fire(rn("HostSharedCleanEvictLastDrop"), last, sc));
    EXPECT_EQ(last.hstate, HState::I);
}

TEST_P(HostRules, StaleEvictionDroppedUnderProposedFix)
{
    // Section 4.4: the snoop already collected the line, so the host
    // may answer the orphaned eviction with GO_WritePullDrop.
    SystemState s = initialOneModified(o(), 3, 1);
    s.dev[i()].state = DState::IIA;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::DirtyEvict, 0});
    s.counter = 1;

    ASSERT_TRUE(rules.fire(rn("HostStaleDirtyEvictDrop"), s, sc));
    EXPECT_EQ(s.dev[i()].h2dRsp.front().op, H2DRspOp::GO_WritePullDrop);
    EXPECT_EQ(s.hstate, HState::M) << "directory already moved on";

    // The standard-behaviour pull rule only exists when the fix is off.
    EXPECT_EQ(rules.find(rn("HostStaleDirtyEvictPull")), nullptr);
    ProtocolConfig standard;
    standard.staleEvictDrop = false;
    RuleSet std_rules(standard);
    EXPECT_EQ(std_rules.find(rn("HostStaleDirtyEvictDrop")), nullptr);
    ASSERT_NE(std_rules.find(rn("HostStaleDirtyEvictPull")), nullptr);
}

TEST_P(HostRules, CleanEvictNoDataNeverPulled)
{
    // Even in standard mode, a CleanEvictNoData is always dropped.
    ProtocolConfig standard;
    standard.staleEvictDrop = false;
    RuleSet std_rules(standard);
    EXPECT_NE(std_rules.find(rn("HostStaleCleanEvictNoDataDrop")),
              nullptr);
    EXPECT_EQ(std_rules.find(rn("HostStaleCleanEvictNoDataPull")),
              nullptr);
    EXPECT_EQ(std_rules.find(rn("HostSharedCleanEvictNoDataNotLastPull")),
              nullptr);
}

TEST_P(HostRules, BogusDataDiscarded)
{
    SystemState s = initialAllInvalid(1);
    s.dev[i()].d2hData.pushBack({0, 9, 1});
    s.counter = 1;
    ASSERT_TRUE(rules.fire(rn("HostBogusData"), s, sc));
    EXPECT_TRUE(s.dev[i()].d2hData.empty());
    EXPECT_EQ(s.hval, 1) << "bogus data must not touch memory";
}

TEST_P(HostRules, RequestsWaitWhileHostTransient)
{
    // One coherence transaction at a time: a queued request is not
    // served while the host is mid-snoop.
    SystemState s = initialOneModified(o(), 5, 0);
    s.hstate = HState::MAD;
    s.dev[i()].state = DState::IMAD;
    s.dev[i()].d2hReq.pushBack({D2HReqOp::RdOwn, 1});
    s.counter = 2;

    EXPECT_FALSE(rules.fire(rn("HostInvalidRdOwn"), s, sc));
    EXPECT_FALSE(rules.fire(rn("HostModifiedRdOwn"), s, sc));
    EXPECT_FALSE(rules.fire(rn("HostSharedRdOwnUpgrade"), s, sc));
    EXPECT_FALSE(rules.fire(rn("HostSharedRdOwnSnp"), s, sc));
}

INSTANTIATE_TEST_SUITE_P(BothRequesters, HostRules,
                         ::testing::Range(0, 2));

} // namespace
} // namespace cxl
