/**
 * @file
 * Unit tests for hashing, the table renderer, the CLI parser and the
 * thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "support/cli.hh"
#include "support/hash.hh"
#include "support/json.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"

namespace cxl
{
namespace
{

TEST(Hash, Deterministic)
{
    const char data[] = "cxl.cache";
    EXPECT_EQ(hashBytes(data, sizeof(data)),
              hashBytes(data, sizeof(data)));
}

TEST(Hash, SingleByteFlipChangesHash)
{
    unsigned char a[16] = {};
    unsigned char b[16] = {};
    b[7] = 1;
    EXPECT_NE(hashBytes(a, sizeof(a)), hashBytes(b, sizeof(b)));
}

TEST(Hash, Mix64IsBijectiveish)
{
    // Distinct small inputs must produce distinct outputs.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(SplitMix64, ReproducibleStream)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, BelowRespectsBound)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "long_header"});
    t.addRow({"xx", "y"});
    std::string out = t.render();
    // Every line has the same length.
    std::size_t first_len = out.find('\n');
    EXPECT_NE(first_len, std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.render());
}

TEST(TextTable, MarkdownMode)
{
    TextTable t({"col"});
    t.addRow({"val"});
    std::string out = t.render(true);
    EXPECT_NE(out.find("| col"), std::string::npos);
    EXPECT_NE(out.find("| val"), std::string::npos);
}

TEST(CliArgs, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--states", "100", "--verbose",
                          "--name=abc", "positional"};
    CliArgs args(6, argv);
    EXPECT_EQ(args.getInt("states", 0), 100);
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("name", ""), "abc");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "positional");
    EXPECT_EQ(args.getInt("absent", 42), 42);
}

TEST(CliArgs, RejectsNonNumericIntValues)
{
    // strtoll with a discarded end pointer used to turn "--devices
    // foo" into 0 silently; the parser must now exit(2) naming the
    // flag for garbage, trailing junk and out-of-range values.
    auto parse = [](const char *value) {
        const char *argv[] = {"prog", "--devices", value};
        CliArgs args(3, argv);
        return args.getInt("devices", 0);
    };
    EXPECT_EXIT(parse("foo"), testing::ExitedWithCode(2),
                "--devices 'foo' is not a valid integer");
    EXPECT_EXIT(parse("12abc"), testing::ExitedWithCode(2),
                "--devices '12abc' is not a valid integer");
    EXPECT_EXIT(parse("99999999999999999999999"),
                testing::ExitedWithCode(2),
                "is not a valid integer");
    EXPECT_EQ(parse("3"), 3);
    EXPECT_EQ(parse("-7"), -7);
}

TEST(JsonQuote, EscapesControlAndShortEscapeCharacters)
{
    EXPECT_EQ(JsonObject::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(JsonObject::quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(JsonObject::quote("a\nb\tc"), "\"a\\nb\\tc\"");
    // The short escapes added for \r, \b and \f.
    EXPECT_EQ(JsonObject::quote("a\rb\bc\fd"), "\"a\\rb\\bc\\fd\"");
    // Other control characters take the \u form, emitted through an
    // unsigned char so the value can never sign-extend.
    EXPECT_EQ(JsonObject::quote(std::string(1, '\x01')), "\"\\u0001\"");
    EXPECT_EQ(JsonObject::quote(std::string(1, '\x1f')), "\"\\u001f\"");
    // High-bit bytes (negative as signed char) pass through verbatim.
    EXPECT_EQ(JsonObject::quote(std::string(1, '\x80')),
              std::string("\"") + '\x80' + '"');
}

TEST(ThreadPool, ExecutesAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, SingleThreadPoolWorks)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 10);
    EXPECT_EQ(pool.threadCount(), 1u);
}

} // namespace
} // namespace cxl
