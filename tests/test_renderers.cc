/**
 * @file
 * Tests for the presentation layer: trace tables over explorer traces,
 * message-sequence charts of the snooping flows, and column formatting
 * edge cases.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "litmus/litmus.hh"
#include "litmus/msc.hh"
#include "litmus/trace_table.hh"

namespace cxl
{
namespace
{

TEST(TraceTable, ColumnNamesMatchPaperHeaders)
{
    EXPECT_EQ(columnName(StateColumn::DProg1), "DProg1");
    EXPECT_EQ(columnName(StateColumn::DCache2), "DCache2");
    EXPECT_EQ(columnName(StateColumn::H2DRsp1), "H2DRsp1");
    EXPECT_EQ(columnName(StateColumn::HCache), "HCache");
    EXPECT_EQ(columnName(StateColumn::Counter), "Counter");
}

TEST(TraceTable, FormatsEveryColumnKind)
{
    Scenario sc;
    sc.program[0] = {Instr::Load, Instr::Store};
    SystemState s = initialBothShared(3);
    s.dev[0].d2hReq.pushBack({D2HReqOp::RdOwn, 1});
    s.dev[0].h2dData.pushBack({1, 3, 0});
    s.dev[1].d2hData.pushBack({0, 9, 1});
    s.counter = 2;

    EXPECT_EQ(formatColumn(s, sc, StateColumn::DProg1),
              "[Load, Store]");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DProg2), "[]");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DCache1), "(3, S)");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::D2HReq1),
              "[(RdOwn, 1)]");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::H2DData1),
              "[(Data(3), 1)]");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::D2HData2),
              "[(Data(9), 0)!bogus]");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::HCache), "(3, S)");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::Counter), "2");
}

TEST(TraceTable, ProgramColumnTracksPc)
{
    Scenario sc;
    sc.program[0] = {Instr::Load, Instr::Store, Instr::Evict};
    SystemState s;
    s.dev[0].pc = 2;
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DProg1), "[Evict]");
    s.dev[0].pc = 3;
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DProg1), "[]");
}

TEST(TraceTable, FreeRunProgramColumn)
{
    Scenario sc = Scenario::freeRunScenario();
    SystemState s;
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DProg1), "(free)");
}

TEST(TraceTable, RendersExplorerViolationTraces)
{
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};
    InvariantSet swmr = InvariantSet::swmrOnly();

    Explorer ex(rules, sc, swmr);
    ExploreResult res = ex.run();
    ASSERT_TRUE(res.violation.has_value());

    std::string table = renderTraceTable(
        res.violation->trace, sc,
        {StateColumn::DCache1, StateColumn::DCache2});
    // One row per step plus header and rule line.
    std::size_t lines = 0;
    for (char c : table)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, res.violation->trace.size() + 2);
    EXPECT_NE(table.find("ISADSnpInv2"), std::string::npos)
        << "the mutated rule must appear on the violation path";
}

TEST(Msc, DirtyEvictChartShowsWritebackDirection)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc;
    sc.initial = initialOneModified(0, 1, 0);
    sc.program[0] = {Instr::Evict};
    auto steps = runGuided(rules, sc,
                           {"ModifiedEvict1", "HostModifiedDirtyEvict1",
                            "MIA_GO_WritePull1", "HostID_Data1"});

    auto events = deriveMscEvents(steps);
    // DirtyEvict + writeback data are device sends; GO_WritePull is a
    // host send; request/GO/data deliveries appear on both lifelines.
    int dev_sends = 0, host_sends = 0;
    bool saw_writeback = false;
    for (const auto &ev : events) {
        if (ev.kind == MscEvent::Kind::DeviceSend) {
            ++dev_sends;
            if (ev.text.find("D2HData") != std::string::npos)
                saw_writeback = true;
        }
        if (ev.kind == MscEvent::Kind::HostSend)
            ++host_sends;
    }
    EXPECT_EQ(dev_sends, 2);
    EXPECT_EQ(host_sends, 1);
    EXPECT_TRUE(saw_writeback);

    std::string chart = renderMsc(steps, "dirty evict");
    EXPECT_NE(chart.find("GO_WritePull"), std::string::npos);
    EXPECT_NE(chart.find("HCache: M -> ID"), std::string::npos);
}

TEST(Msc, StateNotesTrackAllThreeLifelines)
{
    ProtocolConfig cfg;
    cfg.relaxSnoopPushesGo = true;
    RuleSet rules(cfg);
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};
    auto steps = runGuided(
        rules, sc,
        {"InvalidStore1", "InvalidLoad2", "HostInvalidRdShared2",
         "HostSharedRdOwnSnp1", "ISADSnpInv2", "ISAD_GO_Data2",
         "HostMA_RspIHitI1", "IMAD_GO_Data1"});

    bool dev1_note = false, host_note = false, dev2_note = false;
    for (const auto &ev : deriveMscEvents(steps)) {
        if (ev.kind != MscEvent::Kind::Note)
            continue;
        if (ev.device == 0)
            dev1_note = true;
        if (ev.device == -1)
            host_note = true;
        if (ev.device == 1)
            dev2_note = true;
    }
    EXPECT_TRUE(dev1_note);
    EXPECT_TRUE(host_note);
    EXPECT_TRUE(dev2_note);
}

TEST(TraceTable, DeviceColumnCoversEveryKindAndSlot)
{
    // The kind-major grid must round-trip through columnName for all
    // kMaxDevices slots, including the paper's two-device spellings.
    EXPECT_EQ(deviceColumn(DeviceColumn::DCache, 0),
              StateColumn::DCache1);
    EXPECT_EQ(deviceColumn(DeviceColumn::H2DRsp, 1),
              StateColumn::H2DRsp2);
    EXPECT_EQ(columnName(deviceColumn(DeviceColumn::DCache, 2)),
              "DCache3");
    EXPECT_EQ(columnName(deviceColumn(DeviceColumn::D2HData, 3)),
              "D2HData4");
    EXPECT_EQ(columnName(deviceColumn(DeviceColumn::DProg, 2)),
              "DProg3");
}

TEST(TraceTable, FormatsThirdDeviceColumns)
{
    Scenario sc = Scenario::freeRunScenario(3);
    SystemState s = initialBothShared(4, 3);
    s.dev[2].d2hReq.pushBack({D2HReqOp::RdShared, 2});
    EXPECT_EQ(formatColumn(s, sc, StateColumn::DCache3), "(4, S)");
    EXPECT_EQ(formatColumn(s, sc, StateColumn::D2HReq3),
              "[(RdShared, 2)]");
}

TEST(TraceTable, DefaultColumnsScaleWithDeviceCount)
{
    const auto two = defaultTraceColumns(2);
    const auto four = defaultTraceColumns(4);
    // Caches (device 1, host, devices 2..N) + 3 channels per device.
    EXPECT_EQ(two.size(), 3u + 2u * 3u);
    EXPECT_EQ(four.size(), 5u + 4u * 3u);
    EXPECT_EQ(four[0], StateColumn::DCache1);
    EXPECT_EQ(four[1], StateColumn::HCache);
    EXPECT_EQ(four[4], StateColumn::DCache4);

    // A rendered 4-device table carries all four device headers.
    Scenario sc = Scenario::freeRunScenario(4);
    std::vector<TraceStep> steps{{"", sc.initial}};
    std::string table = renderTraceTable(steps, sc, four);
    for (const char *hdr : {"DCache1", "DCache2", "DCache3", "DCache4",
                            "HCache", "D2HRsp4"})
        EXPECT_NE(table.find(hdr), std::string::npos) << hdr;
}

TEST(Msc, ThreeDeviceChartAddsALanePerDevice)
{
    // Device 3 sends a request: the chart must grow a "device 3"
    // lifeline and place the send on its lane, right of device 2.
    Scenario sc = Scenario::freeRunScenario(3);
    SystemState next = sc.initial;
    next.dev[2].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    next.dev[2].state = DState::ISAD;
    std::vector<GuidedStep> steps{{"", sc.initial},
                                  {"InvalidLoad3", next}};

    auto events = deriveMscEvents(steps);
    bool dev3_send = false;
    for (const auto &ev : events)
        dev3_send |= ev.kind == MscEvent::Kind::DeviceSend &&
                     ev.device == 2;
    EXPECT_TRUE(dev3_send);

    std::string chart = renderMsc(steps, "three devices");
    EXPECT_NE(chart.find("device 3"), std::string::npos);
    EXPECT_NE(chart.find("device 2"), std::string::npos);
    EXPECT_GT(chart.find("device 3"), chart.find("device 2"));
    // The send from device 3 points left, towards the host lane.
    EXPECT_NE(chart.find("<"), std::string::npos);
}

TEST(Msc, EmptyTraceRendersHeaderOnly)
{
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    std::vector<GuidedStep> steps{{"", sc.initial}};
    std::string chart = renderMsc(steps, "empty");
    EXPECT_NE(chart.find("device 1"), std::string::npos);
    EXPECT_NE(chart.find("(I)"), std::string::npos);
}

} // namespace
} // namespace cxl
