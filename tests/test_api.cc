/**
 * @file
 * Unit tests for the unified checker API: session reuse across
 * requests, registry lookup of every named scenario, the
 * CheckResult JSON schema, and bit-identical counts/verdicts
 * against the low-level RuleSet/Explorer path at 1/4/8 threads.
 */

#include <gtest/gtest.h>

#include "api/check.hh"
#include "api/scenarios.hh"
#include "checker/explorer.hh"
#include "support/json_parse.hh"

namespace cxl
{
namespace
{

// ------------------------------------------------------ the registry

TEST(ScenarioRegistry, LooksUpEveryRegisteredScenarioByName)
{
    ASSERT_FALSE(scenarios::all().empty());
    for (const scenarios::Entry &e : scenarios::all()) {
        const scenarios::Entry *found = scenarios::byName(e.name);
        ASSERT_NE(found, nullptr) << e.name;
        EXPECT_EQ(found->name, e.name);
        const int ndev =
            e.deviceScalable ? kDefaultNumDevices : e.fixedDevices;
        Scenario sc = e.build(ndev);
        EXPECT_EQ(sc.numDevices(), ndev) << e.name;
    }
}

TEST(ScenarioRegistry, NormalisesDashesAndTestSuffix)
{
    EXPECT_NE(scenarios::byName("free-run"), nullptr);
    EXPECT_NE(scenarios::byName("free_run"), nullptr);
    const scenarios::Entry *clean = scenarios::byName("clean-evict");
    ASSERT_NE(clean, nullptr);
    EXPECT_EQ(clean->name, "clean_evict_test");
    EXPECT_EQ(scenarios::byName("clean_evict_test"), clean);
    EXPECT_EQ(scenarios::byName("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, RelaxationEntriesCarryTheirMutatedConfigs)
{
    const scenarios::Entry *e = scenarios::byName("snoop_pushes_go");
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->config.relaxSnoopPushesGo);
    EXPECT_TRUE(e->expectViolation);
    EXPECT_EQ(e->expectedViolationFamily, "swmr");
    EXPECT_EQ(e->families, std::vector<std::string>{"swmr"});
}

// ----------------------------------------------------- session runs

TEST(CheckSession, ReusesModelsAcrossRequests)
{
    // One session serves a free-run request, a litmus scenario, a
    // symmetry-reduced re-run and a repeat of the first request; the
    // repeat must reproduce the first run exactly.
    CheckSession session;

    CheckRequest free_run;
    free_run.scenario = "free-run";
    CheckResult first = session.run(free_run);
    EXPECT_EQ(first.states, 5218u);
    EXPECT_EQ(first.transitions, 13126u);
    EXPECT_TRUE(first.holds());
    EXPECT_EQ(first.numConjuncts, 88u);

    CheckRequest litmus;
    litmus.scenario = "clean-evict";
    CheckResult clean = session.run(litmus);
    EXPECT_TRUE(clean.holds());
    EXPECT_EQ(clean.devices, 2);

    CheckRequest sym = free_run;
    EngineOptions engine;
    engine.symmetry = SymmetryMode::On;
    sym.engine = engine;
    CheckResult reduced = session.run(sym);
    EXPECT_TRUE(reduced.symmetryReduction);
    EXPECT_EQ(reduced.states, 2615u);

    CheckResult repeat = session.run(free_run);
    EXPECT_EQ(repeat.states, first.states);
    EXPECT_EQ(repeat.transitions, first.transitions);
    EXPECT_EQ(repeat.diameter, first.diameter);
    EXPECT_EQ(repeat.verdict, first.verdict);
}

TEST(CheckSession, ExpectedViolationsReportConjunctAndDepth)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "snoop_pushes_go_test";
    CheckResult res = session.run(req);
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Violated);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->conjunctFamily, "swmr");
    EXPECT_EQ(res.violation->depth, 8u);
    EXPECT_GT(res.violation->trace.size(), 1u);

    // Exactly the violated conjunct is flagged in the per-conjunct
    // status list.
    std::size_t violated = 0;
    for (const ConjunctStatus &c : res.conjuncts)
        violated += c.held ? 0 : 1;
    EXPECT_EQ(violated, 1u);
}

TEST(CheckSession, InlineScenarioAndDeadlockKinds)
{
    // An inline program spec runs without registry involvement, and
    // CheckKind::Invariants disables the deadlock detector.
    Scenario sc;
    sc.name = "inline_store_race";
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Store};

    CheckSession session;
    CheckRequest req;
    req.inlineScenario = sc;
    CheckResult res = session.run(req);
    EXPECT_TRUE(res.holds());
    EXPECT_EQ(res.scenario, "inline_store_race");

    req.checks = CheckKind::Invariants;
    CheckResult inv_only = session.run(req);
    EXPECT_EQ(inv_only.states, res.states);
    EXPECT_TRUE(inv_only.holds());
}

TEST(CheckSession, RequestErrorsThrow)
{
    CheckSession session;
    CheckRequest unknown;
    unknown.scenario = "does-not-exist";
    EXPECT_THROW(session.run(unknown), std::runtime_error);

    CheckRequest empty;
    EXPECT_THROW(session.run(empty), std::runtime_error);

    CheckRequest pinned;
    pinned.scenario = "clean-evict";
    pinned.devices = 3; // litmus scenarios are pinned to 2 devices
    EXPECT_THROW(session.run(pinned), std::runtime_error);
}

TEST(CheckSession, GuidedWalkMatchesLitmusEngine)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "dirty-evict";
    GuidedRun walk = session.guided(
        req, {"ModifiedEvict1", "HostModifiedDirtyEvict1",
              "MIA_GO_WritePull1", "HostID_Data1"});
    ASSERT_EQ(walk.steps.size(), 5u);
    EXPECT_EQ(walk.steps.back().state.hval, 1);
    EXPECT_THROW(session.guided(req, {"NoSuchRule"}),
                 std::runtime_error);

    LitmusTest test;
    test.scenario = walk.scenario;
    LitmusOutcome out = session.litmus(test);
    EXPECT_TRUE(out.passed);
}

TEST(CheckSession, ObligationRunsShareTheCachedUniverse)
{
    CheckSession session;
    ObligationRequest req;
    req.families = {"swmr"};
    req.universe.maxReachable = 2000;
    req.universe.maxStates = 4000;
    ObligationResult first = session.obligations(req);
    EXPECT_GT(first.universeSize, 0u);
    // Bare SWMR is not inductive over the boundary universe (paper
    // Section 6).
    EXPECT_GT(first.matrix.failedCellCount(), 0u);

    req.matrix.threads = 2;
    ObligationResult again = session.obligations(req);
    EXPECT_EQ(again.universeSize, first.universeSize);
    EXPECT_EQ(again.matrix.failedCellCount(),
              first.matrix.failedCellCount());
}

// ------------------------------------------------------- the schema

TEST(CheckResult, JsonSchemaKeysArePresentInOrder)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "clean-evict";
    CheckResult res = session.run(req);
    const std::string json = res.renderJson();

    const char *const keys[] = {
        "\"schema\": \"cxl-check-result/v1\"",
        "\"scenario\"", "\"devices\"", "\"threads\"",
        "\"symmetry_reduction\"", "\"compact\"", "\"por\"",
        "\"schedule\"", "\"max_states\"",
        "\"rules\"", "\"conjuncts\"", "\"states\"", "\"transitions\"",
        "\"slept_transitions\"",
        "\"diameter\"", "\"completed\"", "\"seconds\"",
        "\"states_per_sec\"", "\"verdict\"", "\"violation_kind\"",
        "\"violated_conjunct\"", "\"violated_family\"",
        "\"violation_depth\"", "\"probe_hash_collisions\"",
        "\"peak_rss_bytes\"", "\"rss_delta_bytes\"",
        "\"mapped_file_bytes\"", "\"store_file_bytes\"",
    };
    std::size_t at = 0;
    for (const char *key : keys) {
        const std::size_t pos = json.find(key, at);
        ASSERT_NE(pos, std::string::npos)
            << "missing or out of order: " << key << "\nin: " << json;
        at = pos;
    }
    EXPECT_NE(json.find("\"verdict\": \"holds\""), std::string::npos);
    // A holding run nulls every violation field.
    EXPECT_NE(json.find("\"violation_kind\": null"),
              std::string::npos);
    EXPECT_NE(json.find("\"violated_conjunct\": null"),
              std::string::npos);
}

TEST(CheckResult, JsonReportsViolationsStructurally)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "one_snoop_test";
    CheckResult res = session.run(req);
    const std::string json = res.renderJson();
    EXPECT_NE(json.find("\"verdict\": \"violation\""),
              std::string::npos);
    EXPECT_NE(json.find("\"violation_kind\": \"conjunct\""),
              std::string::npos);
    EXPECT_NE(json.find("\"violated_family\": \"channel_singleton\""),
              std::string::npos);
}

TEST(CheckResult, CappedRunRendersThreadDependentQualifier)
{
    // A run stopped by --max-states ends at a thread-dependent point
    // (the soft cap can overshoot by up to one state per worker), so
    // the rendered report must say the counts are not exact instead
    // of presenting them as run properties.
    CheckSession session;
    CheckRequest req;
    req.scenario = "free-run";
    EngineOptions eng;
    eng.maxStates = 500;
    eng.threads = 4;
    req.engine = eng;
    const CheckResult res = session.run(req);
    ASSERT_EQ(res.verdict, CheckResult::Verdict::Incomplete);
    const std::string text = res.renderText(false);
    EXPECT_NE(text.find("counts are thread-dependent"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("one state per worker"), std::string::npos);

    // A single-threaded capped run stops at an exact, reproducible
    // point, so it carries no qualifier; neither does an uncapped
    // run.
    eng.threads = 1;
    req.engine = eng;
    const std::string single = session.run(req).renderText(false);
    EXPECT_EQ(single.find("thread-dependent"), std::string::npos)
        << single;
    req.engine = std::nullopt;
    const std::string clean = session.run(req).renderText(false);
    EXPECT_EQ(clean.find("thread-dependent"), std::string::npos)
        << clean;
}

TEST(CheckResult, VerdictTextIsDeterministic)
{
    CheckSession session;
    CheckRequest req;
    req.scenario = "free-run";
    EXPECT_EQ(session.run(req).verdictText(),
              "HOLDS (5218 states, 13126 transitions, diameter 27)");
    req.scenario = "go_tailgate_test";
    EXPECT_EQ(session.run(req).verdictText(),
              "VIOLATION swmr_d1 (swmr) at depth 3");
}

// ------------------------- equivalence with the low-level engine ---

TEST(CheckSession, BitIdenticalToLowLevelPathAcrossThreadCounts)
{
    // The façade must add nothing and lose nothing: counts, verdict
    // and per-rule firing profile equal a hand-assembled
    // RuleSet/Scenario/InvariantSet/Explorer run, at 1, 4 and 8
    // workers, with and without symmetry reduction.
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config, 2);
    Scenario scenario = Scenario::freeRunScenario(2);
    InvariantSet invariants = InvariantSet::full(config, 2);
    Explorer explorer(rules, scenario, invariants);

    CheckSession session;
    for (bool sym : {false, true}) {
        for (std::size_t threads : {1u, 4u, 8u}) {
            ExploreOptions low;
            low.numThreads = threads;
            low.symmetryReduction = sym;
            ExploreResult ref = explorer.run(low);

            CheckRequest req;
            req.scenario = "free-run";
            EngineOptions engine;
            engine.threads = threads;
            engine.symmetry =
                sym ? SymmetryMode::On : SymmetryMode::Off;
            req.engine = engine;
            CheckResult res = session.run(req);

            EXPECT_EQ(res.states, ref.numStates)
                << "sym=" << sym << " threads=" << threads;
            EXPECT_EQ(res.transitions, ref.numTransitions);
            EXPECT_EQ(res.diameter, ref.maxDepth);
            EXPECT_EQ(res.completed, ref.completed);
            EXPECT_TRUE(res.holds());
            ASSERT_EQ(res.ruleFires.size(),
                      ref.ruleFireCounts.size());
            for (std::size_t r = 0; r < res.ruleFires.size(); ++r)
                EXPECT_EQ(res.ruleFires[r].fires,
                          ref.ruleFireCounts[r])
                    << res.ruleFires[r].name;
        }
    }
}

// ---------------------------------------------------- registry hygiene

TEST(ScenarioRegistry, HasNoAliasedNamesUnderLookupNormalisation)
{
    // byName folds '-' to '_' and bridges the optional "_test"
    // suffix, so two distinct entries may silently shadow each other
    // unless their *normalised* names (with and without the suffix)
    // stay unique.
    std::vector<std::string> seen;
    for (const scenarios::Entry &e : scenarios::all()) {
        const std::string norm = scenarios::normalisedName(e.name);
        for (const std::string &other : seen) {
            EXPECT_FALSE(norm == other || norm == other + "_test" ||
                         other == norm + "_test")
                << "registry entries alias under byName: '" << norm
                << "' vs '" << other << "'";
        }
        seen.push_back(norm);
    }
}

TEST(ScenarioRegistry, RejectsRegistrationsThatWouldAlias)
{
    const std::size_t before = scenarios::all().size();

    scenarios::Entry dup;
    dup.name = "free-run"; // normalises onto the existing free-run
    dup.build = [](int ndev) {
        return Scenario::freeRunScenario(ndev);
    };
    EXPECT_FALSE(scenarios::registerEntry(dup));

    dup.name = "clean_evict"; // aliases clean_evict_test via suffix
    EXPECT_FALSE(scenarios::registerEntry(dup));
    EXPECT_EQ(scenarios::all().size(), before);

    // A genuinely new name registers and is then found by lookup.
    scenarios::Entry fresh;
    fresh.name = "registry_hygiene_probe";
    fresh.description = "registered by test_api";
    fresh.build = [](int ndev) {
        return Scenario::freeRunScenario(ndev);
    };
    EXPECT_TRUE(scenarios::registerEntry(fresh));
    EXPECT_EQ(scenarios::all().size(), before + 1);
    const scenarios::Entry *found =
        scenarios::byName("registry-hygiene-probe");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->description, "registered by test_api");

    // And it now blocks its own aliases.
    EXPECT_FALSE(scenarios::registerEntry(fresh));
}

TEST(ScenarioRegistry, EveryEntryRoundTripsThroughJsonToItsVerdict)
{
    // Run every registry entry (at its pinned device count), parse
    // the rendered JSON back, and cross-check the structured verdict
    // against both the expectation the entry declares and the
    // original CheckResult fields.
    CheckSession session;
    for (const scenarios::Entry &e : scenarios::all()) {
        CheckRequest req;
        req.scenario = e.name;
        req.devices =
            e.deviceScalable ? kDefaultNumDevices : e.fixedDevices;
        const CheckResult res = session.run(req);

        const JsonValue doc = parseJson(res.renderJson());
        EXPECT_EQ(doc.getStr("schema"), "cxl-check-result/v1")
            << e.name;
        EXPECT_EQ(doc.getStr("scenario"), e.name);
        EXPECT_EQ(doc.getNum("devices"), req.devices);
        EXPECT_EQ(doc.get("states")->asUint(), res.states) << e.name;
        EXPECT_EQ(doc.getBool("completed"), res.completed);

        if (e.expectViolation) {
            EXPECT_EQ(doc.getStr("verdict"), "violation") << e.name;
            if (!e.expectedViolationFamily.empty()) {
                EXPECT_EQ(doc.getStr("violated_family"),
                          e.expectedViolationFamily)
                    << e.name;
            }
        } else {
            EXPECT_EQ(doc.getStr("verdict"), "holds") << e.name;
            EXPECT_TRUE(doc.get("violated_conjunct")->isNull())
                << e.name;
        }
    }
}

} // namespace
} // namespace cxl
