/**
 * @file
 * Hash-compaction (fingerprint-only) storage tests: compact and full
 * modes must agree on state/transition counts and verdicts for 2- and
 * 3-device explorations across 1/4/8 worker threads, a synthetic
 * probe-hash collision must be detected and kept as two states (and
 * reported via probeCollisions) rather than silently merged, and a
 * violation found under compaction must carry the same verdict with
 * an explanatory trace note instead of a breadcrumb path.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "checker/state_store.hh"

namespace cxl
{
namespace
{

const std::size_t kSweep[] = {1, 4, 8};

ExploreResult
runMode(const RuleSet &rules, const Scenario &sc,
        const InvariantSet &inv, ExploreOptions opt, bool compact,
        std::size_t threads)
{
    opt.compaction = compact;
    opt.numThreads = threads;
    Explorer ex(rules, sc, inv);
    return ex.run(opt);
}

/** Compact results must match the full-mode baseline bit for bit. */
void
expectAgreement(const ExploreResult &full, const ExploreResult &comp,
                const std::string &what)
{
    EXPECT_EQ(full.numStates, comp.numStates) << what;
    EXPECT_EQ(full.numTransitions, comp.numTransitions) << what;
    EXPECT_EQ(full.maxDepth, comp.maxDepth) << what;
    EXPECT_EQ(full.completed, comp.completed) << what;
    EXPECT_EQ(full.violationCount, comp.violationCount) << what;
    EXPECT_EQ(full.ruleFireCounts, comp.ruleFireCounts) << what;
    ASSERT_EQ(full.violation.has_value(), comp.violation.has_value())
        << what;
    if (full.violation) {
        EXPECT_EQ(full.violation->kind, comp.violation->kind) << what;
        EXPECT_EQ(full.violation->depth, comp.violation->depth)
            << what;
        EXPECT_EQ(full.violation->conjunctName,
                  comp.violation->conjunctName)
            << what;
    }
    // 64-bit fingerprints over these space sizes: a collision that
    // perturbed the counts would be a ~n^2/2^65 event, and even
    // detected near-misses are overwhelmingly unlikely.
    EXPECT_EQ(comp.probeCollisions, 0u) << what;
}

TEST(Compaction, TwoDeviceFreeRunAgreesAcrossThreadCounts)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    ExploreResult base = runMode(rules, sc, inv, {}, false, 1);
    ASSERT_TRUE(base.completed);
    ASSERT_FALSE(base.violation.has_value());
    for (std::size_t n : kSweep) {
        expectAgreement(base, runMode(rules, sc, inv, {}, true, n),
                        "2dev compact @" + std::to_string(n));
    }
}

TEST(Compaction, ThreeDeviceSymmetryReducedAgreesAcrossThreadCounts)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config, 3);
    Scenario sc = Scenario::freeRunScenario(3);
    InvariantSet inv = InvariantSet::full(config, 3);

    ExploreOptions opt;
    opt.symmetryReduction = true;

    ExploreResult base = runMode(rules, sc, inv, opt, false, 1);
    ASSERT_TRUE(base.completed);
    ASSERT_FALSE(base.violation.has_value());
    EXPECT_GT(base.numStates, 100000u); // the 144,294-orbit space
    for (std::size_t n : kSweep) {
        expectAgreement(base, runMode(rules, sc, inv, opt, true, n),
                        "3dev sym compact @" + std::to_string(n));
    }
}

TEST(Compaction, ExpectedStatesHintChangesNoCounts)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    ExploreResult base = runMode(rules, sc, inv, {}, false, 1);
    for (bool compact : {false, true}) {
        ExploreOptions opt;
        opt.expectedStates = 1 << 20; // far beyond the real space
        expectAgreement(base,
                        runMode(rules, sc, inv, opt, compact, 4),
                        compact ? "hint compact" : "hint full");
    }
}

TEST(Compaction, ViolationVerdictMatchesWithTraceNote)
{
    // The Table 3 mutation under compaction: same conjunct, family
    // and minimal depth as the full-mode verdict, but the breadcrumb
    // path cannot be rebuilt — the violation must say so instead of
    // showing a wrong or empty trace silently.
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet swmr = InvariantSet::swmrOnly();

    ExploreResult full = runMode(rules, sc, swmr, {}, false, 1);
    ASSERT_TRUE(full.violation.has_value());
    ASSERT_TRUE(full.violation->traceNote.empty());

    for (std::size_t n : kSweep) {
        ExploreResult comp = runMode(rules, sc, swmr, {}, true, n);
        ASSERT_TRUE(comp.violation.has_value())
            << "compact @" << n;
        EXPECT_EQ(comp.violation->kind, full.violation->kind);
        EXPECT_EQ(comp.violation->depth, full.violation->depth);
        EXPECT_EQ(comp.violation->conjunctName,
                  full.violation->conjunctName);
        EXPECT_EQ(comp.violation->conjunctFamily,
                  full.violation->conjunctFamily);
        EXPECT_NE(comp.violation->traceNote.find("compaction"),
                  std::string::npos);
        // At most the bad state itself is shown; never a partial
        // breadcrumb path that silently omits steps.
        EXPECT_LE(comp.violation->trace.size(), 1u);
        if (!comp.violation->trace.empty()) {
            EXPECT_FALSE(
                swmrHolds(comp.violation->trace.back().state));
        }
    }
}

TEST(Compaction, SyntheticProbeHashCollisionIsDetected)
{
    // Two distinct states forged onto the same 64-bit probe hash:
    // probe-hash-only compaction would merge them silently.  The
    // verification fingerprint must keep them apart and count the
    // near-miss, in both storage modes.
    SystemState a = initialAllInvalid();
    SystemState b = initialBothShared(1);
    ASSERT_FALSE(a == b);
    ASSERT_NE(a.fingerprint(), b.fingerprint());
    const std::uint64_t forged = 0x1234567890abcdefull;

    for (StoreMode mode : {StoreMode::Compact, StoreMode::Full}) {
        StateStore store(1 << 10, mode);
        auto [ia, new_a] =
            store.insert(a, forged, StateStore::kNoParent, 0, 0);
        auto [ib, new_b] =
            store.insert(b, forged, StateStore::kNoParent, 0, 0);
        EXPECT_TRUE(new_a);
        EXPECT_TRUE(new_b) << "collision silently merged states";
        EXPECT_NE(ia, ib);
        EXPECT_EQ(store.size(), 2u);
        EXPECT_GE(store.probeCollisions(), 1u)
            << "collision not reported";

        // Re-probing either state finds its own entry, not the
        // other's.
        auto [ia2, dup_a] =
            store.insert(a, forged, StateStore::kNoParent, 0, 0);
        auto [ib2, dup_b] =
            store.insert(b, forged, StateStore::kNoParent, 0, 0);
        EXPECT_FALSE(dup_a);
        EXPECT_FALSE(dup_b);
        EXPECT_EQ(ia2, ia);
        EXPECT_EQ(ib2, ib);
        EXPECT_EQ(store.size(), 2u);
    }
}

/** A distinct, moderately busy state for arena tests. */
SystemState
arenaState(int i)
{
    SystemState s;
    s.counter = static_cast<std::uint8_t>(i & 0xff);
    s.dev[0].val = static_cast<Val>((i >> 8) & 0xff);
    s.dev[1].val = static_cast<Val>(i >> 16);
    s.dev[0].d2hReq.pushBack(
        {D2HReqOp::RdShared, static_cast<Tid>(i & 3)});
    s.dev[1].h2dData.pushBack({0, static_cast<Val>(i & 0x7f), 0});
    return s;
}

TEST(Compaction, CompactCellsRoundTripBitExactly)
{
    // The zero-RLE cells must reproduce the active prefix exactly —
    // stateInto(insert(s)) == s for sparse, busy and near-full
    // states.
    StateStore store(1 << 10, StoreMode::Compact);
    std::vector<SystemState> originals;
    originals.push_back(initialAllInvalid(0, 4));
    originals.push_back(initialBothShared(3, 4));
    for (int i = 0; i < 500; ++i)
        originals.push_back(arenaState(i));
    {
        // Near-incompressible: every channel of every device full.
        SystemState s = initialBothShared(1, 4);
        for (int d = 0; d < 4; ++d) {
            for (int k = 0; k < 3; ++k) {
                s.dev[d].d2hReq.pushBack({D2HReqOp::RdOwn, 1});
                s.dev[d].d2hRsp.pushBack({D2HRspOp::RspIHitSE, 2});
                s.dev[d].d2hData.pushBack({1, 2, 1});
                s.dev[d].h2dReq.pushBack({H2DReqOp::SnpInv, 3});
                s.dev[d].h2dRsp.pushBack(
                    {H2DRspOp::GO, DState::M, 1});
                s.dev[d].h2dData.pushBack({2, 3, 0});
            }
        }
        s.counter = 4;
        originals.push_back(s);
    }
    for (const SystemState &s : originals) {
        auto [idx, is_new] =
            store.insert(s, StateStore::kNoParent, 0, 0);
        ASSERT_TRUE(is_new);
        SystemState decoded;
        store.stateInto(idx, decoded);
        EXPECT_TRUE(decoded == s);
    }
}

TEST(Compaction, CompactStoreReleasesSealedLevels)
{
    // sealLevel must release only state bytes at least two level
    // boundaries old; the newest level (the next frontier) stays
    // readable.  Insert enough encoded cells on one shard that whole
    // byte-arena blocks become releasable.
    StateStore store(1 << 10, StoreMode::Compact);
    const int n = 200000; // cells total several byte blocks
    std::vector<std::uint32_t> ids;
    auto forged = [](int i) {
        return mix64(static_cast<std::uint64_t>(i)) >> 4; // shard 0
    };
    for (int i = 0; i < n; ++i) {
        ids.push_back(store
                          .insert(arenaState(i), forged(i),
                                  StateStore::kNoParent, 0, 0)
                          .first);
    }
    EXPECT_TRUE(store.stateRetained(ids.front()));
    EXPECT_TRUE(store.stateRetained(ids.back()));
    store.sealLevel(); // boundary after "level A"
    for (std::uint32_t id : ids)
        EXPECT_TRUE(store.stateRetained(id));

    store.sealLevel(); // level A is now two boundaries old
    // Whole byte blocks below the boundary are released; the
    // partially filled tail block is shared with the newest level
    // and stays.
    EXPECT_FALSE(store.stateRetained(ids.front()));
    EXPECT_TRUE(store.stateRetained(ids.back()));

    // Deduplication still works without the state bytes.
    auto [idx, is_new] = store.insert(arenaState(0), forged(0),
                                      StateStore::kNoParent, 0, 0);
    EXPECT_FALSE(is_new);
    EXPECT_EQ(idx, ids.front());
}

} // namespace
} // namespace cxl
