/**
 * @file
 * Unit tests for InlineVec, the bounded channel container.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "support/inline_vec.hh"

namespace cxl
{
namespace
{

TEST(InlineVec, StartsEmpty)
{
    InlineVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_FALSE(v.full());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVec, PushBackUntilFull)
{
    InlineVec<int, 3> v;
    EXPECT_TRUE(v.pushBack(1));
    EXPECT_TRUE(v.pushBack(2));
    EXPECT_TRUE(v.pushBack(3));
    EXPECT_TRUE(v.full());
    EXPECT_FALSE(v.pushBack(4)) << "push into a full vector must fail";
    EXPECT_EQ(v.size(), 3u);
}

TEST(InlineVec, FrontBackIndex)
{
    InlineVec<int, 4> v{10, 20, 30};
    EXPECT_EQ(v.front(), 10);
    EXPECT_EQ(v.back(), 30);
    EXPECT_EQ(v[1], 20);
}

TEST(InlineVec, PopFrontShiftsFifo)
{
    InlineVec<int, 4> v{1, 2, 3};
    v.popFront();
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v.front(), 2);
    EXPECT_EQ(v.back(), 3);
    v.popFront();
    v.popFront();
    EXPECT_TRUE(v.empty());
}

TEST(InlineVec, ClearResets)
{
    InlineVec<int, 4> v{1, 2, 3, 4};
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.pushBack(9));
    EXPECT_EQ(v.front(), 9);
}

TEST(InlineVec, EqualityIsValueBased)
{
    InlineVec<int, 4> a{1, 2};
    InlineVec<int, 4> b{1, 2};
    InlineVec<int, 4> c{1, 3};
    InlineVec<int, 4> d{1};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_FALSE(a == d);
}

TEST(InlineVec, PopRezeroesTailForBytewiseHashing)
{
    // The checker hashes states bytewise, so two equal vectors must be
    // bytewise identical regardless of history.  Byte-sized elements
    // as in the protocol message types (whose alignment-1 layout is
    // what makes SystemState padding-free).
    InlineVec<unsigned char, 4> a{7, 8, 9};
    a.popFront();
    a.popFront();

    InlineVec<unsigned char, 4> b{9};
    EXPECT_EQ(a, b);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
        << "popped slots must be zeroed";
}

TEST(InlineVec, ClearRezeroesStorage)
{
    InlineVec<unsigned char, 4> a{5, 6, 7, 8};
    a.clear();
    InlineVec<unsigned char, 4> b;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0);
}

TEST(InlineVec, RangeForIteratesLiveElements)
{
    InlineVec<int, 4> v{4, 5, 6};
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 15);
}

class InlineVecSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(InlineVecSizeSweep, FillDrainRoundTrip)
{
    const int n = GetParam();
    InlineVec<int, 8> v;
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(v.pushBack(i * i));
    ASSERT_EQ(v.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(v.front(), i * i);
        v.popFront();
    }
    EXPECT_TRUE(v.empty());
}

INSTANTIATE_TEST_SUITE_P(AllFillLevels, InlineVecSizeSweep,
                         ::testing::Range(0, 9));

} // namespace
} // namespace cxl
