/**
 * @file
 * Tests for the run governor: wall-clock deadlines, memory ceilings,
 * cooperative cancellation (including the SIGINT bridge), graceful
 * shard-full stops, and the quarantine of budget-stopped oracle
 * arms — every stop cause must land as a well-formed Incomplete
 * verdict with an exact explored prefix, never as an exception.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/check.hh"
#include "checker/state_store.hh"
#include "fuzz/corpus.hh"
#include "fuzz/oracle.hh"
#include "support/governor.hh"
#include "support/json_parse.hh"
#include "support/resource.hh"

namespace cxl
{
namespace
{

/** Uncapped 2-device free-run size (see test_api.cc). */
constexpr std::uint64_t kTwoDevFreeRunStates = 5218;

CheckRequest
freeRunRequest(int devices, const EngineOptions &engine)
{
    CheckRequest req;
    req.scenario = "free-run";
    req.devices = devices;
    EngineOptions opt = engine;
    if (devices > 2)
        opt.symmetry = SymmetryMode::Off; // keep the space big
    req.engine = opt;
    return req;
}

/**
 * The invariants every governed stop must satisfy, whatever the
 * cause: Incomplete verdict, the expected stop reason, a non-empty
 * explored prefix, a consistent deepest-complete level, and JSON
 * that parses with the matching "stop_reason" word.
 */
void
expectGovernedStop(const CheckResult &res, StopReason reason,
                   const char *jsonWord)
{
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Incomplete);
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(res.stopReason, reason);
    EXPECT_GE(res.states, 1u); // the initial state at least
    EXPECT_LE(res.deepestCompleteLevel, res.diameter);
    EXPECT_NE(res.renderText().find(stopReasonPhrase(reason)),
              std::string::npos);

    const JsonValue doc = parseJson(res.renderJson());
    ASSERT_EQ(doc.kind(), JsonValue::Kind::Object);
    EXPECT_EQ(doc.getStr("verdict"), "incomplete");
    EXPECT_FALSE(doc.getBool("completed"));
    EXPECT_EQ(doc.getStr("stop_reason"), jsonWord);
    ASSERT_NE(doc.get("deepest_complete_level"), nullptr);
    EXPECT_LE(doc.getNum("deepest_complete_level"),
              doc.getNum("diameter"));
}

// ------------------------------------------------------- deadlines

TEST(Governor, DeadlineStopsEveryScheduleAndThreadCount)
{
    // A microscopic budget trips at the very first poll, so the run
    // reports the smallest possible prefix — at any thread count,
    // under both schedules, without an exception in sight.
    CheckSession session;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        for (std::size_t threads : {1u, 4u, 8u}) {
            EngineOptions engine;
            engine.schedule = sched;
            engine.threads = threads;
            engine.maxSeconds = 1e-6;
            CheckResult res;
            ASSERT_NO_THROW(
                res = session.run(freeRunRequest(2, engine)))
                << "schedule " << static_cast<int>(sched)
                << " threads " << threads;
            expectGovernedStop(res, StopReason::Deadline, "deadline");
            EXPECT_LE(res.states, kTwoDevFreeRunStates);
        }
    }
}

TEST(Governor, DeadlineTruncatesABigSpaceMidFlight)
{
    // 3-device unreduced free-run is ~861k states — far more than
    // 20 ms of exploration.  The run must stop with a strict prefix
    // under every schedule x thread-count combination.
    CheckSession session;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        for (std::size_t threads : {1u, 4u, 8u}) {
            EngineOptions engine;
            engine.schedule = sched;
            engine.threads = threads;
            engine.maxSeconds = 0.02;
            const CheckResult res =
                session.run(freeRunRequest(3, engine));
            expectGovernedStop(res, StopReason::Deadline, "deadline");
            EXPECT_LT(res.states, 860925u);
        }
    }
}

// -------------------------------------------------- memory ceiling

TEST(Governor, MemoryCeilingStopsBothSchedules)
{
    // A 1-byte ceiling is below any process's resident set, so the
    // governor's very first RSS sample trips it.
    CheckSession session;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        EngineOptions engine;
        engine.schedule = sched;
        engine.threads = 4;
        engine.maxRssBytes = 1;
        const CheckResult res =
            session.run(freeRunRequest(2, engine));
        expectGovernedStop(res, StopReason::Memory, "memory");
    }
}

#if defined(__linux__)
TEST(Governor, MemoryCeilingMetersAnonymousRssNotMappedFiles)
{
    // The ceiling meters anonymous RSS only, so an mmap-store run
    // whose file-backed mappings dwarf the ceiling's headroom still
    // completes: the kernel can reclaim those pages by writeback,
    // and tripping on them would defeat the out-of-core mode's whole
    // point.  The ceiling is set to the current anonymous footprint
    // plus generous slack for the run's heap — far less than
    // anon+mapped would need if mapped bytes were (wrongly) counted.
    CheckSession session;
    EngineOptions engine;
    engine.threads = 4;
    engine.store = StoreKind::Mmap;
    engine.maxRssBytes =
        currentAnonRssBytes() + 256ull * 1024 * 1024;
    const CheckResult res = session.run(freeRunRequest(2, engine));
    EXPECT_EQ(res.verdict, CheckResult::Verdict::Holds);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.states, kTwoDevFreeRunStates);
    // The run reports its file-backed footprint separately.
    EXPECT_GT(res.mappedFileBytes, 0u);
    EXPECT_GT(res.storeFileBytes, 0u);
    const JsonValue doc = parseJson(res.renderJson());
    EXPECT_GT(doc.getNum("mapped_file_bytes"), 0.0);
    EXPECT_GT(doc.getNum("store_file_bytes"), 0.0);
    // Deterministic rendering zeroes both, like the other
    // wall-clock/allocator keys.
    const JsonValue det = parseJson(res.renderJson(true));
    EXPECT_EQ(det.getNum("mapped_file_bytes"), 0.0);
    EXPECT_EQ(det.getNum("store_file_bytes"), 0.0);
}
#endif // __linux__

// ----------------------------------------------------- cancellation

TEST(Governor, PreCancelledTokenStopsBeforeExpansion)
{
    const CancelToken token = CancelToken::create();
    token.cancel();
    CheckSession session;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        for (std::size_t threads : {1u, 4u}) {
            EngineOptions engine;
            engine.schedule = sched;
            engine.threads = threads;
            engine.cancel = token;
            const CheckResult res =
                session.run(freeRunRequest(2, engine));
            expectGovernedStop(res, StopReason::Cancelled,
                               "cancelled");
        }
    }
}

TEST(Governor, AsyncCancelStopsARunningExploration)
{
    // Cancel from another thread mid-run: the 3-device space takes
    // seconds, the cancel lands after ~30 ms, and the run must come
    // back promptly with the explored prefix.
    const CancelToken token = CancelToken::create();
    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        token.cancel();
    });
    EngineOptions engine;
    engine.schedule = Schedule::WorkSteal;
    engine.threads = 4;
    engine.cancel = token;
    CheckSession session;
    const CheckResult res = session.run(freeRunRequest(3, engine));
    canceller.join();
    expectGovernedStop(res, StopReason::Cancelled, "cancelled");
    EXPECT_LT(res.states, 860925u);
}

TEST(Governor, InvalidTokenMeansNotCancellable)
{
    // A default-constructed (invalid) token never reads cancelled,
    // so an unbudgeted run completes exactly as before.
    const CancelToken none;
    EXPECT_FALSE(none.valid());
    EXPECT_FALSE(none.cancelled());
}

TEST(Governor, SigintTripsTheInstalledToken)
{
    // The CLI bridge: installSignalCancel binds the token, raise()
    // stands in for a user's Ctrl-C, and the next run ends as a
    // graceful cancelled Incomplete — same shape as the token API.
    const CancelToken token = CancelToken::create();
    installSignalCancel(token);
    ASSERT_FALSE(token.cancelled());
    std::raise(SIGINT);
    EXPECT_TRUE(token.cancelled());
    uninstallSignalCancel();

    EngineOptions engine;
    engine.cancel = token;
    engine.threads = 2;
    CheckSession session;
    const CheckResult res = session.run(freeRunRequest(2, engine));
    expectGovernedStop(res, StopReason::Cancelled, "cancelled");
}

TEST(Governor, SignalBridgeInstallIsFirstWins)
{
    // Layered installs (the daemon claims the bridge before
    // standardOptions arms the every-CLI one): the first token stays
    // bound and every later call is handed that same token back —
    // observable as flag aliasing.
    const CancelToken first = CancelToken::create();
    installSignalCancel(first);

    const CancelToken second = CancelToken::create();
    const CancelToken bound = installSignalCancel(second);
    ASSERT_TRUE(bound.valid());

    std::raise(SIGTERM);
    EXPECT_TRUE(first.cancelled());
    EXPECT_TRUE(bound.cancelled()); // bound aliases first, ...
    EXPECT_FALSE(second.cancelled()); // ... not the late-comer
    uninstallSignalCancel();

    // After uninstall the bridge is free for a fresh token.
    const CancelToken fresh = CancelToken::create();
    const CancelToken rebound = installSignalCancel(fresh);
    EXPECT_FALSE(rebound.cancelled());
    std::raise(SIGINT);
    EXPECT_TRUE(fresh.cancelled());
    EXPECT_TRUE(rebound.cancelled());
    uninstallSignalCancel();
}

TEST(Governor, SignalBridgeIgnoresInvalidTokens)
{
    // An invalid token installs nothing: no handler is armed, and
    // the invalid token is just echoed back.
    const CancelToken none;
    EXPECT_FALSE(installSignalCancel(none).valid());

    // A real install still works afterwards, and an invalid-token
    // call then returns the bound token (flag-aliased).
    const CancelToken token = CancelToken::create();
    installSignalCancel(token);
    const CancelToken bound = installSignalCancel(none);
    ASSERT_TRUE(bound.valid());
    token.cancel();
    EXPECT_TRUE(bound.cancelled());
    uninstallSignalCancel();
}

TEST(Governor, SignalBridgeInstallIsThreadSafe)
{
    // Concurrent installs agree on a single winner; every caller is
    // handed the same token, so layered front-ends can't split the
    // bridge.
    constexpr int kThreads = 8;
    std::vector<CancelToken> returned(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&returned, i] {
            returned[i] = installSignalCancel(CancelToken::create());
        });
    }
    for (std::thread &t : threads)
        t.join();
    returned[0].cancel();
    for (int i = 1; i < kThreads; ++i) {
        ASSERT_TRUE(returned[i].valid()) << i;
        EXPECT_TRUE(returned[i].cancelled()) << i;
    }
    uninstallSignalCancel();
}

// ------------------------------------------------------ shard full

TEST(Governor, ShardFullStopsGracefullyAtToyCapacity)
{
    // A 64-entry store cannot hold the 5218-state space; the
    // StoreFullError must be converted into a graceful Incomplete,
    // not escape as an exception.
    CheckSession session;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        for (std::size_t threads : {1u, 4u}) {
            EngineOptions engine;
            engine.schedule = sched;
            engine.threads = threads;
            engine.storeCapacity = 64;
            CheckResult res;
            ASSERT_NO_THROW(
                res = session.run(freeRunRequest(2, engine)))
                << "schedule " << static_cast<int>(sched)
                << " threads " << threads;
            expectGovernedStop(res, StopReason::ShardFull,
                               "shard_full");
            EXPECT_LT(res.states, kTwoDevFreeRunStates);
        }
    }
}

TEST(Governor, StoreFullErrorNamesShardAndRemedies)
{
    // The raw store-level throw (what the explorers catch) must tell
    // a user which shard filled and which flags raise the ceiling.
    StateStore store(16, StoreMode::Full,
                     /*capacity_limit=*/16); // 1 entry per shard
    SystemState parent = initialAllInvalid();
    auto [pid, fresh] =
        store.insert(parent, StateStore::kNoParent, 0, 0);
    ASSERT_TRUE(fresh);
    try {
        // Distinct states eventually revisit pid's shard and overflow
        // its single slot.
        for (Val v = 1; v < 64; ++v)
            store.insert(initialBothShared(v), pid, 0, 1);
        FAIL() << "expected StoreFullError";
    } catch (const StoreFullError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("shard"), std::string::npos) << what;
        // The message names the computed per-shard ceiling (16
        // states across 16 shards -> 1 entry) ...
        EXPECT_NE(what.find("per-shard limit 1 entries"),
                  std::string::npos)
            << what;
        // ... and every store kind a user could switch to.
        EXPECT_NE(what.find("--expect-states"), std::string::npos)
            << what;
        EXPECT_NE(what.find(
                      "--store=ram|ram-compact|mmap|mmap-compact"),
                  std::string::npos)
            << what;
        EXPECT_LT(e.shard(), StateStore::kNumShards);
    }
}

// ------------------------------------------- completed-run baseline

TEST(Governor, CompletedRunsCarryNoStopReason)
{
    CheckSession session;
    const CheckResult res =
        session.run(freeRunRequest(2, EngineOptions{}));
    EXPECT_TRUE(res.holds());
    EXPECT_EQ(res.stopReason, StopReason::None);
    EXPECT_EQ(res.deepestCompleteLevel, res.diameter);

    const JsonValue doc = parseJson(res.renderJson());
    ASSERT_NE(doc.get("stop_reason"), nullptr);
    EXPECT_TRUE(doc.get("stop_reason")->isNull());
    EXPECT_EQ(doc.getNum("deepest_complete_level"),
              doc.getNum("diameter"));
}

// -------------------------------------------------- oracle quarantine

TEST(Oracle, PlantedSlowArmIsQuarantinedNotCompared)
{
    // Plant a guard that naps on every evaluation into exactly one
    // portfolio arm: that arm blows the per-arm budget and must be
    // quarantined (reported, excluded from the cross-checks) while
    // the untouched reference still decides the case.
    fuzz::FuzzCase c;
    c.devices = 2;
    c.init = fuzz::InitKind::BothShared;
    c.programs = {{Instr::Store}, {Instr::Load}};

    fuzz::OracleOptions oopt;
    oopt.portfolio = {
        fuzz::ComboDesc{Schedule::WorkSteal, false, false, false, 1}};
    oopt.randomWalkProbe = false;
    oopt.armMaxSeconds = 0.2;
    oopt.sessionHook = [&](CheckSession &session,
                           const fuzz::ComboDesc &combo) {
        if (combo.schedule != Schedule::WorkSteal)
            return;
        Rule sleepy;
        sleepy.name = "planted_sleeper";
        sleepy.guard = [](const SystemState &, const Context &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            return false; // never fires: same verdict, just slow
        };
        sleepy.apply = [](SystemState &, const Context &) {
            return true;
        };
        session.mutableRuleSet(c.config, c.devices)
            .addRule(std::move(sleepy));
    };
    const fuzz::Oracle oracle(std::move(oopt));
    const fuzz::OracleReport report = oracle.check(c);

    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_NE(report.quarantined[0].find("ws/"), std::string::npos)
        << report.quarantined[0];
    EXPECT_NE(report.quarantined[0].find(
                  stopReasonPhrase(StopReason::Deadline)),
              std::string::npos)
        << report.quarantined[0];
    EXPECT_FALSE(report.diverged())
        << "a quarantined arm must not be compared";
    EXPECT_NE(report.reference.verdict, "incomplete")
        << "the unbudgeted-in-practice reference still decides";
}

// ------------------------------------------------- corpus handling

TEST(Corpus, MalformedEntryNamesTheOffendingFile)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "cxl_governor_corpus_test";
    fs::create_directories(dir);
    const fs::path bad = dir / "broken.json";
    {
        std::ofstream out(bad);
        out << "{ this is not json";
    }
    try {
        fuzz::loadCorpus(dir.string());
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("broken.json"),
                  std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace cxl
