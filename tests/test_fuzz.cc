/**
 * @file
 * Unit tests for the scenario fuzzer and differential oracle: the
 * JSON reader, FuzzCase round-tripping, generator determinism, the
 * fixed-seed golden-manifest property, minimizer idempotence, corpus
 * persistence, registry promotion, and the planted-divergence
 * self-test (corrupt one engine combination's model and assert the
 * cross-check flags it).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "fuzz/corpus.hh"
#include "fuzz/gen.hh"
#include "fuzz/minimize.hh"
#include "fuzz/oracle.hh"
#include "support/json_parse.hh"

namespace cxl::fuzz
{
namespace
{

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A fresh scratch directory under the gtest temp root. */
fs::path
scratchDir(const std::string &leaf)
{
    const fs::path dir = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

// ------------------------------------------------------- JSON reader

TEST(JsonParse, RoundTripsTheEmitterGrammar)
{
    const std::string text =
        "{\"s\": \"a\\\"b\\\\c\\n\\u0041\", \"n\": 42, "
        "\"neg\": -1.5, \"t\": true, \"f\": false, \"z\": null, "
        "\"arr\": [1, 2, 3], \"obj\": {\"k\": \"v\"}}";
    const JsonValue doc = parseJson(text);
    EXPECT_EQ(doc.getStr("s"), "a\"b\\c\nA");
    EXPECT_EQ(doc.getNum("n"), 42);
    EXPECT_EQ(doc.getNum("neg"), -1.5);
    EXPECT_TRUE(doc.getBool("t"));
    EXPECT_FALSE(doc.getBool("f"));
    EXPECT_TRUE(doc.get("z")->isNull());
    ASSERT_EQ(doc.get("arr")->items().size(), 3u);
    EXPECT_EQ(doc.get("arr")->items()[2].asUint(), 3u);
    EXPECT_EQ(doc.get("obj")->getStr("k"), "v");

    // Member order is preserved, and render() re-emits parseably.
    EXPECT_EQ(doc.members().front().first, "s");
    const JsonValue again = parseJson(doc.render());
    EXPECT_EQ(again.getStr("s"), "a\"b\\c\nA");
    EXPECT_EQ(again.get("arr")->items().size(), 3u);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"),
                 std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parseJson("nul"), std::runtime_error);
}

// ---------------------------------------------------------- FuzzCase

TEST(FuzzCase, RoundTripsThroughJsonByteIdentically)
{
    GenOptions gopt;
    gopt.seed = 7;
    gopt.maxDevices = 4;
    ScenarioGen gen(gopt);
    for (int i = 0; i < 25; ++i) {
        const FuzzCase c = gen.next();
        const std::string json = c.renderJson();
        const FuzzCase back = FuzzCase::fromJson(json);
        EXPECT_EQ(back, c);
        EXPECT_EQ(back.renderJson(), json);
        EXPECT_EQ(back.name(), c.name());
    }
}

TEST(FuzzCase, NameIsAContentHash)
{
    FuzzCase a;
    a.programs = {{Instr::Load}, {}};
    FuzzCase b = a;
    EXPECT_EQ(a.name(), b.name());
    b.programs[0].push_back(Instr::Store);
    EXPECT_NE(a.name(), b.name());
    EXPECT_EQ(a.name().size(), 17u); // "g" + 16 hex digits
}

TEST(FuzzCase, RejectsForeignDocuments)
{
    EXPECT_THROW(FuzzCase::fromJson("{\"schema\": \"nope\"}"),
                 std::runtime_error);
    EXPECT_THROW(
        FuzzCase::fromJson(
            "{\"schema\": \"cxl-fuzz-case/v1\", \"devices\": 9}"),
        std::runtime_error);
}

// --------------------------------------------------------- generator

TEST(ScenarioGen, IsDeterministicForAFixedSeed)
{
    GenOptions gopt;
    gopt.seed = 99;
    gopt.maxDevices = 4;
    ScenarioGen a(gopt);
    ScenarioGen b(gopt);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next()) << "case " << i;
}

TEST(ScenarioGen, EmitsWellFormedCases)
{
    GenOptions gopt;
    gopt.seed = 3;
    gopt.maxDevices = 4;
    ScenarioGen gen(gopt);
    bool sawFreeRun = false, sawProgram = false, sawFamilies = false;
    for (int i = 0; i < 60; ++i) {
        const FuzzCase c = gen.next();
        EXPECT_GE(c.devices, 2);
        EXPECT_LE(c.devices, 4);
        EXPECT_LT(c.owner, c.devices);
        if (c.freeRun) {
            sawFreeRun = true;
            EXPECT_TRUE(c.programs.empty());
            EXPECT_GT(c.maxStates, 0u) << "free runs must be capped";
        } else {
            sawProgram = true;
            EXPECT_EQ(c.programs.size(),
                      static_cast<std::size_t>(c.devices));
            EXPECT_EQ(c.maxStates, 0u);
        }
        sawFamilies |= !c.families.empty();
        // The scenario builds at the declared device count.
        EXPECT_EQ(c.toScenario().numDevices(), c.devices);
    }
    EXPECT_TRUE(sawFreeRun);
    EXPECT_TRUE(sawProgram);
    EXPECT_TRUE(sawFamilies);
}

TEST(ScenarioGen, MutationStaysInTheValidSpace)
{
    GenOptions gopt;
    gopt.seed = 17;
    gopt.maxDevices = 3;
    ScenarioGen gen(gopt);
    FuzzCase c = gen.next();
    for (int i = 0; i < 80; ++i) {
        c = gen.mutate(c);
        EXPECT_GE(c.devices, 2);
        EXPECT_LE(c.devices, 3);
        EXPECT_LT(c.owner, c.devices);
        EXPECT_TRUE(c.freeRun ? c.programs.empty()
                              : c.programs.size() ==
                                    static_cast<std::size_t>(
                                        c.devices));
    }
}

// ------------------------------------------------------------ oracle

TEST(Oracle, PortfolioAgreesOnACorrectProgramScenario)
{
    FuzzCase c;
    c.devices = 2;
    c.init = InitKind::BothShared;
    c.programs = {{Instr::Store, Instr::Load}, {Instr::Evict}};

    OracleOptions oopt;
    oopt.portfolio = fullPortfolio(2);
    const Oracle oracle(std::move(oopt));
    const OracleReport report = oracle.check(c);
    EXPECT_FALSE(report.diverged())
        << report.divergences.front();
    EXPECT_EQ(report.reference.verdict, "holds");
    EXPECT_TRUE(report.reference.exactCounts);
    // Symmetry arms are skipped for program scenarios: 17 combos
    // (the 16-way cross product plus the mmap arm) minus 8 sym arms,
    // plus the reference.
    EXPECT_EQ(report.runs.size(), 10u);
}

TEST(Oracle, PortfolioAgreesOnAMutatedViolatingScenario)
{
    // relaxOneSnoop's free-run space violates; every combo must see
    // the same conjunct at the same depth (sym arms the same family).
    FuzzCase c;
    c.freeRun = true;
    c.devices = 2;
    c.maxStates = 20000;
    c.config.relaxOneSnoop = true;

    OracleOptions oopt;
    oopt.portfolio = fullPortfolio(2);
    const Oracle oracle(std::move(oopt));
    const OracleReport report = oracle.check(c);
    EXPECT_FALSE(report.diverged())
        << report.divergences.front();
    EXPECT_EQ(report.reference.verdict, "violation");
    EXPECT_EQ(report.runs.size(), 18u);
}

TEST(Oracle, ComparesOnlySymInvariantFactsAcrossSymmetryClasses)
{
    // Found by the fuzzer (seed 1): this configuration reaches both a
    // channel_singleton and an ordering violation at minimal depth 5.
    // Unreduced runs deterministically report the former and
    // symmetry-reduced runs the latter — the same-depth winner is
    // picked by a key that includes the state fingerprint, which the
    // orbit quotient relabels — and neither is wrong, so the oracle
    // must compare only clean-vs-bad and depth across sym classes.
    FuzzCase c;
    c.devices = 4;
    c.freeRun = true;
    c.maxStates = 20000;
    c.memVal = 1;
    c.ownerVal = 1;
    c.owner = 2;
    c.config.staleEvictDrop = false;
    c.config.relaxSnoopPushesGo = true;
    c.config.relaxOneSnoop = true;

    OracleOptions opt;
    opt.portfolio = {ComboDesc{Schedule::Bfs, false, true, false, 1}};
    opt.randomWalkProbe = false;
    const Oracle oracle(std::move(opt));

    const OracleReport report = oracle.check(c);
    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_EQ(report.reference.family, "channel_singleton");
    EXPECT_EQ(report.runs[1].sig.family, "ordering");
    EXPECT_FALSE(report.diverged());
}

TEST(Oracle, FlagsAPlantedDivergence)
{
    // Corrupt exactly one combination's model with an extra rule that
    // invents states (host memory spontaneously becomes 42); the
    // cross-check must notice the arms disagree.
    FuzzCase c;
    c.devices = 2;
    c.init = InitKind::BothShared;
    c.programs = {{Instr::Store}, {Instr::Load}};

    OracleOptions oopt;
    oopt.portfolio = {
        ComboDesc{Schedule::WorkSteal, false, false, false, 1}};
    oopt.randomWalkProbe = false;
    oopt.sessionHook = [&](CheckSession &session,
                           const ComboDesc &combo) {
        if (combo.schedule != Schedule::WorkSteal)
            return;
        Rule evil;
        evil.name = "planted_corruption";
        evil.guard = [](const SystemState &s, const Context &) {
            return s.hval != 42;
        };
        evil.apply = [](SystemState &s, const Context &) {
            s.hval = 42;
            return true;
        };
        session.mutableRuleSet(c.config, c.devices)
            .addRule(std::move(evil));
    };
    const Oracle oracle(std::move(oopt));
    const OracleReport report = oracle.check(c);
    EXPECT_TRUE(report.diverged())
        << "a corrupted engine arm must not pass the oracle";
}

// --------------------------------------------------------- minimizer

TEST(Minimize, IsIdempotentAndPreservesTheViolationClass)
{
    // A noisy violating case: extra instructions, a stacked second
    // mutation, non-default behavioural bits.
    FuzzCase c;
    c.devices = 3;
    c.init = InitKind::BothShared;
    c.config.relaxSnoopPushesGo = true;
    c.config.relaxGoTailgate = true;
    c.config.hostCleanPull = true;
    c.programs = {{Instr::Load, Instr::Store, Instr::Load},
                  {Instr::Store, Instr::Evict},
                  {Instr::Load, Instr::Store}};

    const VerdictSignature before = referenceSignature(c);
    ASSERT_EQ(before.verdict, "violation");

    MinimizeStats stats;
    const FuzzCase small = minimizeCase(c, before, &stats);
    EXPECT_GT(stats.shrinks, 0u);
    const VerdictSignature after = referenceSignature(small);
    EXPECT_EQ(after.classKey(), before.classKey());

    // Fixpoint: minimizing the minimum changes nothing.
    const FuzzCase again = minimizeCase(small, after);
    EXPECT_EQ(again, small);
}

TEST(Minimize, KeepsTheDiameterClassOfHoldsCases)
{
    // A clean free-run case must not collapse into the empty
    // scenario: its noveltyKey (diameter class) is part of what the
    // corpus entry witnesses.
    FuzzCase c;
    c.freeRun = true;
    c.devices = 2;
    c.maxStates = 20000;

    const VerdictSignature before = referenceSignature(c);
    ASSERT_EQ(before.verdict, "holds");
    const FuzzCase small = minimizeCase(c, before);
    const VerdictSignature after = referenceSignature(small);
    EXPECT_EQ(after.noveltyKey(), before.noveltyKey());
}

// ----------------------------------------------- corpus + promotion

TEST(Corpus, EntriesRoundTripAndLoadSorted)
{
    const fs::path dir = scratchDir("corpus_roundtrip");

    GenOptions gopt;
    gopt.seed = 23;
    ScenarioGen gen(gopt);
    std::set<std::string> names;
    for (int i = 0; i < 6; ++i) {
        CorpusEntry entry;
        entry.fuzzCase = gen.next();
        if (!names.insert(entry.fuzzCase.name()).second)
            continue;
        entry.signature = referenceSignature(entry.fuzzCase);
        ASSERT_TRUE(saveCorpusEntry(dir.string(), entry));
    }

    const std::vector<CorpusEntry> loaded = loadCorpus(dir.string());
    ASSERT_EQ(loaded.size(), names.size());
    std::string prev;
    for (const CorpusEntry &entry : loaded) {
        const std::string name = entry.fuzzCase.name();
        EXPECT_TRUE(names.count(name));
        EXPECT_GT(name, prev) << "corpus must load in name order";
        prev = name;
        // The stored signature replays against a fresh reference run.
        EXPECT_EQ(referenceSignature(entry.fuzzCase).key(),
                  entry.signature.key());
    }

    EXPECT_TRUE(loadCorpus((dir / "missing").string()).empty());
}

TEST(Corpus, PromotesEntriesIntoTheScenarioRegistry)
{
    FuzzCase c;
    c.devices = 2;
    c.freeRun = true;
    c.maxStates = 5000;
    c.config.relaxOneSnoop = true;

    CorpusEntry entry;
    entry.fuzzCase = c;
    entry.signature = referenceSignature(c);
    ASSERT_EQ(entry.signature.verdict, "violation");

    ASSERT_EQ(promoteToRegistry({entry}), 1u);
    const scenarios::Entry *reg = scenarios::byName(c.name());
    ASSERT_NE(reg, nullptr);
    EXPECT_TRUE(reg->expectViolation);
    EXPECT_EQ(reg->expectedViolationFamily, entry.signature.family);
    EXPECT_TRUE(reg->config.relaxOneSnoop);
    EXPECT_EQ(reg->fixedDevices, 2);

    // Idempotent: a second promotion is a registry no-op.
    EXPECT_EQ(promoteToRegistry({entry}), 0u);

    // Deadlock/incomplete signatures cannot be expressed as registry
    // expectations (and would free-run uncapped there), so promotion
    // leaves them fuzz-replay-only.
    CorpusEntry capped;
    capped.fuzzCase = c;
    capped.fuzzCase.config.relaxOneSnoop = false;
    capped.fuzzCase.devices = 3;
    capped.fuzzCase.maxStates = 50;
    capped.signature = referenceSignature(capped.fuzzCase);
    ASSERT_EQ(capped.signature.verdict, "incomplete");
    EXPECT_EQ(promoteToRegistry({capped}), 0u);
    EXPECT_EQ(scenarios::byName(capped.fuzzCase.name()), nullptr);
}

// ------------------------------------------- fixed-seed golden runs

/** The CLI's fuzz loop, reduced to the pieces the goldens depend on:
 * generate, oracle, promote novel signatures, persist, manifest. */
std::string
fuzzIntoDir(const fs::path &dir, std::uint64_t seed, int budget)
{
    GenOptions gopt;
    gopt.seed = seed;
    ScenarioGen gen(gopt);
    OracleOptions oopt;
    oopt.portfolio = fullPortfolio(2);
    const Oracle oracle(std::move(oopt));

    std::vector<CorpusEntry> corpus;
    std::set<std::string> seenCases, seenNovelty;
    for (int i = 0; i < budget; ++i) {
        const FuzzCase c = gen.next();
        if (!seenCases.insert(c.name()).second)
            continue;
        const OracleReport report = oracle.check(c);
        EXPECT_FALSE(report.diverged())
            << report.divergences.front();
        if (!seenNovelty.insert(report.reference.noveltyKey())
                 .second) {
            continue;
        }
        CorpusEntry entry;
        entry.fuzzCase = minimizeCase(c, report.reference);
        entry.signature = referenceSignature(entry.fuzzCase);
        corpus.push_back(entry);
        saveCorpusEntry(dir.string(), entry);
    }
    writeManifest(dir.string(), corpus);
    return readFile(dir / "MANIFEST.txt");
}

TEST(FuzzGolden, SameSeedSameBudgetYieldsByteIdenticalManifests)
{
    const fs::path dirA = scratchDir("golden_a");
    const fs::path dirB = scratchDir("golden_b");
    const std::string manifestA = fuzzIntoDir(dirA, 1, 12);
    const std::string manifestB = fuzzIntoDir(dirB, 1, 12);
    EXPECT_FALSE(manifestA.empty());
    EXPECT_EQ(manifestA, manifestB);

    // Every persisted case file is byte-identical too.
    for (const fs::directory_entry &de :
         fs::directory_iterator(dirA)) {
        EXPECT_EQ(readFile(de.path()),
                  readFile(dirB / de.path().filename()))
            << de.path().filename();
    }

    // And a different seed explores a different stream.
    const fs::path dirC = scratchDir("golden_c");
    EXPECT_NE(fuzzIntoDir(dirC, 2, 12), manifestA);
}

} // namespace
} // namespace cxl::fuzz
