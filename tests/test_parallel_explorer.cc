/**
 * @file
 * Determinism tests for the depth-synchronized parallel explorer:
 * whatever the worker count, exploration must produce bit-identical
 * state/transition counts, rule-firing profiles and violation
 * verdicts.  Sweeps 1, 2 and 8 threads over the free-run space, the
 * full litmus suite, and a mutated (violating) model.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "litmus/litmus.hh"

namespace cxl
{
namespace
{

const std::size_t kSweep[] = {1, 2, 8};

ExploreResult
runWith(const RuleSet &rules, const Scenario &sc,
        const InvariantSet &inv, ExploreOptions opt, std::size_t threads)
{
    opt.numThreads = threads;
    Explorer ex(rules, sc, inv);
    return ex.run(opt);
}

/** Counts + verdict presence must match the 1-thread baseline. */
void
expectIdentical(const ExploreResult &base, const ExploreResult &res,
                const std::string &what)
{
    EXPECT_EQ(base.numStates, res.numStates) << what;
    EXPECT_EQ(base.numTransitions, res.numTransitions) << what;
    EXPECT_EQ(base.maxDepth, res.maxDepth) << what;
    EXPECT_EQ(base.completed, res.completed) << what;
    EXPECT_EQ(base.violationCount, res.violationCount) << what;
    EXPECT_EQ(base.ruleFireCounts, res.ruleFireCounts) << what;
    ASSERT_EQ(base.violation.has_value(), res.violation.has_value())
        << what;
    if (base.violation) {
        EXPECT_EQ(base.violation->kind, res.violation->kind) << what;
        EXPECT_EQ(base.violation->depth, res.violation->depth) << what;
        EXPECT_EQ(base.violation->conjunctName,
                  res.violation->conjunctName)
            << what;
        EXPECT_EQ(base.violation->conjunctFamily,
                  res.violation->conjunctFamily)
            << what;
    }
}

TEST(ParallelExplorer, FreeRunIdenticalAcrossThreadCounts)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    ExploreResult base = runWith(rules, sc, inv, {}, 1);
    ASSERT_TRUE(base.completed);
    ASSERT_FALSE(base.violation.has_value());
    EXPECT_GT(base.numStates, 100u);

    for (std::size_t n : kSweep) {
        expectIdentical(base, runWith(rules, sc, inv, {}, n),
                        "free run @" + std::to_string(n));
    }
}

TEST(ParallelExplorer, LitmusSuiteIdenticalAcrossThreadCounts)
{
    for (const LitmusTest &test : builtinLitmusSuite()) {
        RuleSet rules(test.config);
        InvariantSet inv = InvariantSet::full(test.config);
        if (!test.restrictToFamilies.empty())
            inv = inv.filtered(test.restrictToFamilies);

        ExploreOptions opt;
        opt.checkDeadlock = true;
        ExploreResult base =
            runWith(rules, test.scenario, inv, opt, 1);
        for (std::size_t n : kSweep) {
            expectIdentical(
                base, runWith(rules, test.scenario, inv, opt, n),
                test.name + " @" + std::to_string(n));
        }
    }
}

TEST(ParallelExplorer, ViolatingModelVerdictIdentical)
{
    // The Table 3 mutation: snoop-pushes-GO relaxed, free-run, pure
    // SWMR.  Every thread count must converge on the same verdict at
    // the same (minimal) depth, with a well-formed trace.
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet swmr = InvariantSet::swmrOnly();

    ExploreResult base = runWith(rules, sc, swmr, {}, 1);
    ASSERT_TRUE(base.violation.has_value());
    EXPECT_EQ(base.violation->kind, Violation::Kind::Conjunct);
    EXPECT_EQ(base.violation->conjunctFamily, "swmr");

    for (std::size_t n : kSweep) {
        ExploreResult res = runWith(rules, sc, swmr, {}, n);
        expectIdentical(base, res, "mutated @" + std::to_string(n));
        // The trace itself may route through different parents, but
        // must always be a rule-labelled path from the initial state
        // of the right length.
        ASSERT_TRUE(res.violation.has_value());
        ASSERT_GE(res.violation->trace.size(), 2u);
        EXPECT_TRUE(res.violation->trace.front().ruleName.empty());
        EXPECT_EQ(res.violation->depth,
                  res.violation->trace.size() - 1);
        for (std::size_t k = 1; k < res.violation->trace.size(); ++k) {
            EXPECT_NE(
                rules.find(res.violation->trace[k].ruleName), nullptr);
        }
    }
}

TEST(ParallelExplorer, ViolatingProgramCountedModeIdentical)
{
    // Counted mode on the Table 3 program scenario: the full space is
    // enumerated and every distinct violating state is tallied, so
    // the tally must be thread-count independent too.
    ProtocolConfig mutated;
    mutated.relaxSnoopPushesGo = true;
    RuleSet rules(mutated);
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};
    InvariantSet swmr = InvariantSet::swmrOnly();

    ExploreOptions opt;
    opt.stopAtFirstViolation = false;
    opt.checkDeadlock = false;

    ExploreResult base = runWith(rules, sc, swmr, opt, 1);
    ASSERT_TRUE(base.violation.has_value());
    EXPECT_GE(base.violationCount, 1u);
    EXPECT_TRUE(base.completed);

    for (std::size_t n : kSweep) {
        expectIdentical(base, runWith(rules, sc, swmr, opt, n),
                        "counted @" + std::to_string(n));
    }
}

TEST(ParallelExplorer, SymmetryReductionIdenticalAcrossThreadCounts)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    ExploreOptions opt;
    opt.symmetryReduction = true;

    ExploreResult base = runWith(rules, sc, inv, opt, 1);
    ASSERT_TRUE(base.completed);
    for (std::size_t n : kSweep) {
        expectIdentical(base, runWith(rules, sc, inv, opt, n),
                        "symmetry @" + std::to_string(n));
    }
}

TEST(ParallelExplorer, MaxStatesCapOvershootBounded)
{
    // Under a state cap the stopping point is inherently racy, but
    // the overshoot is bounded by the worker count (each in-flight
    // worker can add at most one state past the cap).
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    for (std::size_t n : kSweep) {
        ExploreOptions opt;
        opt.maxStates = 100;
        opt.numThreads = n;
        Explorer ex(rules, sc, inv);
        ExploreResult res = ex.run(opt);
        EXPECT_FALSE(res.completed) << n;
        EXPECT_GE(res.numStates, 100u) << n;
        EXPECT_LE(res.numStates, 100u + n) << n;
    }
}

TEST(ParallelExplorer, DeadlockVerdictIdenticalAcrossThreadCounts)
{
    // Crafted stuck state (see test_checker.cc): device 0 waits for a
    // grant no request will produce.
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc;
    sc.initial = initialAllInvalid();
    sc.initial.dev[0].state = DState::ISAD;
    sc.program[0] = {Instr::Load};
    InvariantSet inv = InvariantSet::full(config);

    ExploreOptions opt;
    opt.checkInvariants = false;
    opt.checkDeadlock = true;

    ExploreResult base = runWith(rules, sc, inv, opt, 1);
    ASSERT_TRUE(base.violation.has_value());
    EXPECT_EQ(base.violation->kind, Violation::Kind::Deadlock);
    for (std::size_t n : kSweep) {
        expectIdentical(base, runWith(rules, sc, inv, opt, n),
                        "deadlock @" + std::to_string(n));
    }
}

} // namespace
} // namespace cxl
