/**
 * @file
 * Unit tests for the state store and the BFS explorer: deduplication,
 * trace reconstruction, violation and deadlock detection, limits.
 */

#include <gtest/gtest.h>

#include "checker/explorer.hh"
#include "checker/state_store.hh"

namespace cxl
{
namespace
{

TEST(StateStore, InsertDeduplicates)
{
    StateStore store;
    SystemState a = initialAllInvalid();
    SystemState b = initialBothShared(1);

    auto [ia, new_a] = store.insert(a, StateStore::kNoParent, 0, 0);
    auto [ib, new_b] = store.insert(b, ia, 3, 1);
    auto [ia2, dup] = store.insert(a, ib, 5, 2);

    EXPECT_TRUE(new_a);
    EXPECT_TRUE(new_b);
    EXPECT_FALSE(dup);
    EXPECT_EQ(ia, ia2);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.parentAt(ib), ia);
    EXPECT_EQ(store.ruleAt(ib), 3);
    EXPECT_EQ(store.depthAt(ib), 1u);
}

TEST(StateStore, DepthWiderThanSixteenBits)
{
    // ExploreOptions::maxDepth defaults to 60000 and callers may
    // raise it; entry depths beyond 65535 must survive unclamped
    // (Entry::depth was once uint16_t and silently wrapped here).
    StateStore store;
    SystemState parent_state = initialAllInvalid();
    SystemState child_state = initialBothShared(2);

    auto [parent, pnew] =
        store.insert(parent_state, StateStore::kNoParent, 0, 65535);
    auto [child, cnew] = store.insert(child_state, parent, 1, 70000);
    ASSERT_TRUE(pnew);
    ASSERT_TRUE(cnew);
    EXPECT_EQ(store.depthAt(parent), 65535u);
    EXPECT_EQ(store.depthAt(child), 70000u);
    EXPECT_EQ(store.parentAt(child), parent);
}

TEST(StateStore, PackedIdsRoundTripAcrossShards)
{
    // Ids are (shard, offset) pairs; whatever shard the fingerprint
    // routes to, entry(id) must return the inserted state and no id
    // may collide with the kNoParent sentinel.
    StateStore store;
    std::vector<std::pair<std::uint32_t, SystemState>> inserted;
    for (int i = 0; i < 64; ++i) {
        SystemState s;
        s.counter = static_cast<std::uint8_t>(i);
        s.dev[0].pc = static_cast<std::uint8_t>(i % 5);
        auto [idx, is_new] =
            store.insert(s, StateStore::kNoParent, 0, 0);
        ASSERT_TRUE(is_new);
        ASSERT_NE(idx, StateStore::kNoParent);
        inserted.emplace_back(idx, s);
    }
    bool multiple_shards = false;
    for (const auto &[idx, s] : inserted) {
        EXPECT_TRUE(store.stateAt(idx) == s);
        if (StateStore::shardOf(idx) != StateStore::shardOf(inserted[0].first))
            multiple_shards = true;
    }
    EXPECT_TRUE(multiple_shards)
        << "64 distinct fingerprints should spread across shards";
    EXPECT_EQ(store.size(), 64u);
}

TEST(StateStore, GrowShardRehashesAcrossManyDoublings)
{
    // Regression for the resize path: force every insert onto one
    // shard (forged probe hashes with a fixed top nibble) and push it
    // through many bucket-array doublings.  After the rehashes every
    // entry must still be found by a duplicate probe, including the
    // forged-hash entries whose slots moved each time.
    for (StoreMode mode : {StoreMode::Full, StoreMode::Compact}) {
        StateStore store(16, mode);
        const int n = 50000; // 16 -> 65536+ buckets on the one shard
        auto forged = [](int i) {
            // Top nibble zero routes everything to shard 0; the rest
            // spreads probes over the bucket range.
            return mix64(static_cast<std::uint64_t>(i)) >> 4;
        };
        for (int i = 0; i < n; ++i) {
            SystemState s;
            s.counter = static_cast<std::uint8_t>(i & 0xff);
            s.dev[0].val = static_cast<Val>((i >> 8) & 0xff);
            s.dev[1].val = static_cast<Val>(i >> 16);
            auto [idx, is_new] = store.insert(
                s, forged(i), StateStore::kNoParent, 0, 0);
            ASSERT_TRUE(is_new) << i;
            ASSERT_EQ(StateStore::shardOf(idx), 0u) << i;
        }
        EXPECT_EQ(store.size(), static_cast<std::size_t>(n));
        for (int i = 0; i < n; i += 97) {
            SystemState s;
            s.counter = static_cast<std::uint8_t>(i & 0xff);
            s.dev[0].val = static_cast<Val>((i >> 8) & 0xff);
            s.dev[1].val = static_cast<Val>(i >> 16);
            auto [idx, is_new] = store.insert(
                s, forged(i), StateStore::kNoParent, 0, 0);
            (void)idx;
            EXPECT_FALSE(is_new)
                << "entry " << i << " lost in a rehash";
        }
        EXPECT_EQ(store.size(), static_cast<std::size_t>(n));
    }
}

TEST(StateStore, BatchInsertMatchesSequentialInserts)
{
    // insertBatch must deduplicate exactly like a sequence of single
    // inserts, including duplicates *within* one batch.
    StateStore batched;
    StateStore sequential;
    std::vector<StateStore::BatchItem> items(300);
    for (int i = 0; i < 300; ++i) {
        SystemState s;
        s.counter = static_cast<std::uint8_t>(i % 100); // 3x duplicates
        s.dev[0].pc = static_cast<std::uint8_t>((i % 100) >> 4);
        items[i].state = s;
        items[i].hash = s.hash();
        items[i].parent = StateStore::kNoParent;
        items[i].depth = 7;
        items[i].rule = 5;
    }
    batched.insertBatch(items.data(), items.size());
    for (int i = 0; i < 300; ++i) {
        auto [idx, is_new] =
            sequential.insert(items[i].state, items[i].hash,
                              StateStore::kNoParent, 5, 7);
        EXPECT_EQ(items[i].id, idx) << i;
        EXPECT_EQ(items[i].inserted, is_new) << i;
    }
    EXPECT_EQ(batched.size(), 100u);
    EXPECT_EQ(batched.size(), sequential.size());
    for (int i = 0; i < 300; ++i) {
        EXPECT_TRUE(batched.stateAt(items[i].id) == items[i].state);
        EXPECT_EQ(batched.depthAt(items[i].id), 7u);
    }
}

TEST(StateStore, GrowsPastInitialCapacity)
{
    StateStore store(16);
    for (int i = 0; i < 1000; ++i) {
        SystemState s;
        s.counter = static_cast<std::uint8_t>(i % 251);
        s.dev[0].val = static_cast<Val>(i / 251);
        s.dev[0].pc = static_cast<std::uint8_t>(i % 7);
        s.dev[1].pc = static_cast<std::uint8_t>(i % 11);
        store.insert(s, StateStore::kNoParent, 0, 0);
    }
    // All distinct (counter, val, pc0, pc1) tuples survive the rehash.
    EXPECT_GT(store.size(), 900u);
    SystemState probe;
    probe.counter = 5;
    probe.dev[0].pc = 5;
    probe.dev[1].pc = 5;
    auto [idx, is_new] = store.insert(probe, StateStore::kNoParent, 0, 0);
    (void)idx;
    EXPECT_FALSE(is_new) << "i=5 must already be present";
}

class ExplorerTest : public ::testing::Test
{
  protected:
    ExplorerTest()
        : config(ProtocolConfig::correct()), rules(config),
          invariants(InvariantSet::full(config))
    {
    }

    ProtocolConfig config;
    RuleSet rules;
    InvariantSet invariants;
};

TEST_F(ExplorerTest, SingleLoadScenario)
{
    Scenario sc;
    sc.initial = initialAllInvalid(3);
    sc.program[0] = {Instr::Load};

    Explorer ex(rules, sc, invariants);
    ExploreResult res = ex.run();

    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(res.violation.has_value());
    // InvalidLoad1, HostInvalidRdShared1, then GO/Data consumption in
    // three interleavings; BFS dedup makes the combined GO+Data path
    // set the diameter at 3 (the split-path states join at depth 3).
    EXPECT_GE(res.numStates, 6u);
    EXPECT_LE(res.numStates, 12u);
    EXPECT_EQ(res.maxDepth, 3u);
}

TEST_F(ExplorerTest, DeterministicAcrossRuns)
{
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Store};

    Explorer ex(rules, sc, invariants);
    ExploreResult a = ex.run();
    ExploreResult b = ex.run();
    EXPECT_EQ(a.numStates, b.numStates);
    EXPECT_EQ(a.numTransitions, b.numTransitions);
    EXPECT_EQ(a.ruleFireCounts, b.ruleFireCounts);
}

TEST_F(ExplorerTest, MaxStatesLimitStopsExploration)
{
    Scenario sc = Scenario::freeRunScenario();
    Explorer ex(rules, sc, invariants);
    ExploreOptions opt;
    opt.maxStates = 100;
    opt.numThreads = 1; // exact stopping point; see the parallel
                        // overshoot test in test_parallel_explorer.cc
    ExploreResult res = ex.run(opt);
    EXPECT_FALSE(res.completed);
    EXPECT_LE(res.numStates, 101u);
}

TEST_F(ExplorerTest, ViolationTraceStartsAtInitialState)
{
    ProtocolConfig mutated = config;
    mutated.relaxSnoopPushesGo = true;
    RuleSet mrules(mutated);
    InvariantSet swmr = InvariantSet::swmrOnly();

    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};

    Explorer ex(mrules, sc, swmr);
    ExploreOptions opt;
    opt.canonicaliseTids = false;
    ExploreResult res = ex.run(opt);

    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, Violation::Kind::Conjunct);
    EXPECT_EQ(res.violation->conjunctFamily, "swmr");
    ASSERT_GE(res.violation->trace.size(), 2u);
    EXPECT_TRUE(res.violation->trace.front().ruleName.empty());
    EXPECT_EQ(res.violation->trace.front().state, sc.initial);
    EXPECT_FALSE(swmrHolds(res.violation->trace.back().state));
    // Each step's rule must actually be a known rule.
    for (std::size_t k = 1; k < res.violation->trace.size(); ++k) {
        EXPECT_NE(mrules.find(res.violation->trace[k].ruleName), nullptr);
    }
    // Depth equals trace length minus the initial state.
    EXPECT_EQ(res.violation->depth, res.violation->trace.size() - 1);
}

TEST_F(ExplorerTest, Table3ViolationAtDepthEight)
{
    // The paper's Table 3 walk takes 8 transitions from all-invalid to
    // the incoherent state; BFS must find it at exactly that depth.
    ProtocolConfig mutated = config;
    mutated.relaxSnoopPushesGo = true;
    RuleSet mrules(mutated);
    InvariantSet swmr = InvariantSet::swmrOnly();

    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Store};
    sc.program[1] = {Instr::Load};

    Explorer ex(mrules, sc, swmr);
    ExploreResult res = ex.run();
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->depth, 8u);
}

TEST_F(ExplorerTest, NoDeadlockInLitmusPrograms)
{
    Scenario sc;
    sc.initial = initialBothShared(0);
    sc.program[0] = {Instr::Store, Instr::Evict};
    sc.program[1] = {Instr::Load, Instr::Evict};

    Explorer ex(rules, sc, invariants);
    ExploreOptions opt;
    opt.checkDeadlock = true;
    ExploreResult res = ex.run(opt);
    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(res.violation.has_value());
}

TEST_F(ExplorerTest, DeadlockDetected)
{
    // A hand-built stuck state: a device waits for a grant that no
    // request will ever produce (its request channel is empty and the
    // host is idle).
    Scenario sc;
    sc.initial = initialAllInvalid();
    sc.initial.dev[0].state = DState::ISAD;
    sc.program[0] = {Instr::Load};

    Explorer ex(rules, sc, invariants);
    ExploreOptions opt;
    opt.checkInvariants = false; // the crafted state violates progress
    opt.checkDeadlock = true;
    ExploreResult res = ex.run(opt);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, Violation::Kind::Deadlock);
}

TEST_F(ExplorerTest, OverflowTraceEndsWithTheOverflowingEdge)
{
    // ROADMAP item-6 wart: overflow is reported per *edge*, but the
    // rebuilt trace used to follow the target state's breadcrumbs, so
    // an overflow edge landing on an already-known state printed a
    // path that never fired the overflowing rule.  Build a model
    // where exactly that happens: "Fill" queues messages until the
    // channel is full, and "Burst" then pushes into the full channel,
    // overflowing with *no state change* — the target is the (known)
    // source state itself.
    RuleSet custom(config); // base rules are inert with empty programs
    Rule fill;
    fill.name = "Fill";
    fill.mutated = true;
    fill.guard = [](const SystemState &s, const Context &) {
        return !s.dev[0].d2hReq.full();
    };
    fill.apply = [](SystemState &s, const Context &) {
        return s.dev[0].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    };
    custom.addRule(fill);
    Rule burst;
    burst.name = "Burst";
    burst.mutated = true;
    burst.guard = [](const SystemState &s, const Context &) {
        return s.dev[0].d2hReq.full();
    };
    burst.apply = [](SystemState &s, const Context &) {
        return s.dev[0].d2hReq.pushBack({D2HReqOp::RdShared, 0});
    };
    custom.addRule(burst);

    Scenario sc;
    sc.initial = initialAllInvalid(0); // empty programs: only the
                                       // custom rules can fire
    Explorer ex(custom, sc, invariants);
    ExploreOptions opt;
    opt.checkInvariants = false; // the crafted states are not legal
    opt.checkDeadlock = false;
    ExploreResult res = ex.run(opt);

    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, Violation::Kind::Overflow);
    EXPECT_EQ(res.violation->overflowRule, "Burst");
    EXPECT_NE(res.violation->describe().find("Burst"),
              std::string::npos);
    // Depth 4: three Fill edges to the full-channel state, then the
    // overflowing Burst edge.
    EXPECT_EQ(res.violation->depth, 4u);
    ASSERT_EQ(res.violation->trace.size(), 5u);
    EXPECT_TRUE(res.violation->trace.front().ruleName.empty());
    EXPECT_EQ(res.violation->trace.back().ruleName, "Burst");
    for (std::size_t k = 1; k + 1 < res.violation->trace.size(); ++k)
        EXPECT_EQ(res.violation->trace[k].ruleName, "Fill");
    // The overflowing push is dropped, so the final step lands on the
    // same (already known) state it left from.
    EXPECT_TRUE(res.violation->trace[3].state ==
                res.violation->trace[4].state);
    EXPECT_TRUE(res.violation->traceNote.empty());
}

TEST_F(ExplorerTest, FreeRunCoversEveryDeviceStateAndHostState)
{
    Scenario sc = Scenario::freeRunScenario();
    Explorer ex(rules, sc, invariants);
    ExploreResult res = ex.run();
    ASSERT_TRUE(res.completed);
    EXPECT_FALSE(res.violation.has_value());

    // Free-run must exercise both devices symmetrically.
    for (const Rule &rule : rules.rules()) {
        if (rule.dev != 0)
            continue;
        std::string twin = rule.name;
        twin.back() = '2';
        const Rule *other = rules.find(twin);
        ASSERT_NE(other, nullptr) << twin;
        EXPECT_EQ(res.ruleFireCounts[rule.id],
                  res.ruleFireCounts[other->id])
            << rule.name << " vs " << twin
            << ": the model must be device-symmetric";
    }
}

} // namespace
} // namespace cxl
