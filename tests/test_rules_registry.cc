/**
 * @file
 * Tests for the rule registry: construction, lookup, successor
 * enumeration, and the Scenario plumbing (program fetch, free-run).
 */

#include <gtest/gtest.h>

#include <set>

#include "protocol/rules.hh"

namespace cxl
{
namespace
{

TEST(Scenario, FetchAndMayIssue)
{
    Scenario sc;
    sc.program[0] = {Instr::Load, Instr::Store};

    EXPECT_EQ(sc.fetch(0, 0), Instr::Load);
    EXPECT_EQ(sc.fetch(0, 1), Instr::Store);
    EXPECT_EQ(sc.fetch(0, 2), Instr::None) << "past the end";
    EXPECT_EQ(sc.fetch(1, 0), Instr::None) << "empty program";

    EXPECT_TRUE(sc.mayIssue(0, 0, Instr::Load));
    EXPECT_FALSE(sc.mayIssue(0, 0, Instr::Store));
    EXPECT_EQ(sc.nextPc(0, 0), 1);
}

TEST(Scenario, FreeRunSemantics)
{
    Scenario sc = Scenario::freeRunScenario();
    EXPECT_TRUE(sc.freeRun);
    EXPECT_TRUE(sc.mayIssue(0, 0, Instr::Load));
    EXPECT_TRUE(sc.mayIssue(1, 0, Instr::Evict));
    EXPECT_EQ(sc.nextPc(0, 0), 0) << "free-run never advances the pc";
    EXPECT_FALSE(sc.finished(sc.initial));
}

TEST(Scenario, FinishedChecksBothPrograms)
{
    Scenario sc;
    sc.program[0] = {Instr::Load};
    sc.program[1] = {Instr::Load, Instr::Load};
    SystemState s;
    EXPECT_FALSE(sc.finished(s));
    s.dev[0].pc = 1;
    s.dev[1].pc = 1;
    EXPECT_FALSE(sc.finished(s));
    s.dev[1].pc = 2;
    EXPECT_TRUE(sc.finished(s));
}

TEST(RuleSet, RuleCountsAndIds)
{
    RuleSet rules(ProtocolConfig::correct());
    // The paper's model has 68 rules (34 per device); ours is a
    // documented superset (DESIGN.md): CleanEvictNoData, stale-evict
    // races, combined GO+Data consumption, read-once ISDI, etc.
    EXPECT_GE(rules.rules().size(), 100u);
    EXPECT_LE(rules.rules().size(), 160u);
    EXPECT_EQ(rules.baseRuleCount(), rules.rules().size());

    for (std::size_t k = 0; k < rules.rules().size(); ++k)
        EXPECT_EQ(rules.rules()[k].id, k);
}

TEST(RuleSet, NamesAreUniqueAndDeviceSuffixed)
{
    RuleSet rules(ProtocolConfig::correct());
    std::set<std::string> names;
    std::size_t dev1 = 0, dev2 = 0;
    for (const Rule &r : rules.rules()) {
        EXPECT_TRUE(names.insert(r.name).second) << r.name;
        char suffix = r.name.back();
        EXPECT_TRUE(suffix == '1' || suffix == '2') << r.name;
        EXPECT_EQ(suffix, r.dev == 0 ? '1' : '2') << r.name;
        (r.dev == 0 ? dev1 : dev2)++;
    }
    EXPECT_EQ(dev1, dev2) << "rule templates instantiate symmetrically";
}

TEST(RuleSet, FindByName)
{
    RuleSet rules(ProtocolConfig::correct());
    const Rule *rule = rules.find("InvalidLoad1");
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->dev, 0);
    EXPECT_EQ(rules.find("InvalidLoad3"), nullptr);
    EXPECT_EQ(rules.find(""), nullptr);
}

TEST(RuleSet, SuccessorsEnumeratesEnabledRulesExactly)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[0] = {Instr::Load};

    auto succs = rules.successors(sc.initial, sc);
    ASSERT_EQ(succs.size(), 1u) << "only InvalidLoad1 can fire";
    EXPECT_EQ(succs[0].rule->name, "InvalidLoad1");
    EXPECT_FALSE(succs[0].overflow);
    EXPECT_EQ(succs[0].state.dev[0].state, DState::ISAD);

    // The source state is not modified.
    EXPECT_EQ(sc.initial.dev[0].state, DState::I);
}

TEST(RuleSet, SuccessorsWithCanonicalisation)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc = Scenario::freeRunScenario();
    SystemState s = sc.initial;
    s.counter = 77; // stale counter, no live tids

    auto raw = rules.successors(s, sc, false);
    auto canon = rules.successors(s, sc, true);
    ASSERT_EQ(raw.size(), canon.size());
    for (std::size_t k = 0; k < canon.size(); ++k) {
        SystemState expect = raw[k].state;
        expect.canonicaliseTids();
        EXPECT_EQ(canon[k].state, expect);
    }
}

TEST(RuleSet, FireConvenienceWrapper)
{
    RuleSet rules(ProtocolConfig::correct());
    Scenario sc;
    sc.initial = initialAllInvalid(0);
    sc.program[1] = {Instr::Store};

    SystemState s = sc.initial;
    EXPECT_FALSE(rules.fire("InvalidStore1", s, sc))
        << "device 1 has no program";
    EXPECT_TRUE(rules.fire("InvalidStore2", s, sc));
    EXPECT_FALSE(rules.fire("InvalidStore2", s, sc))
        << "guard no longer holds after firing";
}

TEST(RuleSet, GoSendAllowedImplementsTailgateGuard)
{
    SystemState s;
    EXPECT_TRUE(goSendAllowed(s, 0));
    s.dev[0].h2dReq.pushBack({H2DReqOp::SnpInv, 0});
    EXPECT_FALSE(goSendAllowed(s, 0)) << "snoop outstanding";
    s.dev[0].h2dReq.clear();
    s.dev[0].d2hRsp.pushBack({D2HRspOp::RspIHitSE, 0});
    EXPECT_FALSE(goSendAllowed(s, 0)) << "response uncollected";
    s.dev[0].d2hRsp.clear();
    s.dev[0].d2hData.pushBack({0, 1, 0});
    EXPECT_FALSE(goSendAllowed(s, 0)) << "IWB data uncollected";
}

TEST(RuleSet, TrackingViews)
{
    SystemState s = initialBothShared(0);
    EXPECT_TRUE(sharerView(s, 0));
    EXPECT_TRUE(sharerView(s, 1));
    EXPECT_FALSE(ownerView(s, 0));

    SystemState m = initialOneModified(0, 1, 0);
    EXPECT_TRUE(ownerView(m, 0));
    EXPECT_FALSE(ownerView(m, 1));
    EXPECT_FALSE(sharerView(m, 0));

    // An ISAD device counts as sharer only once its grant is in
    // flight.
    SystemState t;
    t.dev[0].state = DState::ISAD;
    EXPECT_FALSE(sharerView(t, 0));
    t.dev[0].h2dRsp.pushBack({H2DRspOp::GO, DState::S, 0});
    EXPECT_TRUE(sharerView(t, 0));

    // An evicting sharer is discounted once its request is processed.
    SystemState e;
    e.dev[0].state = DState::SIA;
    e.dev[0].d2hReq.pushBack({D2HReqOp::CleanEvict, 0});
    EXPECT_TRUE(sharerView(e, 0));
    e.dev[0].d2hReq.clear();
    EXPECT_FALSE(sharerView(e, 0));
}

} // namespace
} // namespace cxl
