/**
 * @file
 * Backend conformance suite for the layered visited-state store: the
 * four StoreKinds (ram, ram-compact, mmap, mmap-compact) must present
 * identical packed-id semantics through the StateStore façade —
 * insert/lookup/dedup, depth relabeling, seal/retention per kind's
 * contract, the StoreFullError capacity path (store-level and through
 * both engines), forged probe-hash collision detection — and the
 * engines must produce bit-identical state/transition counts on every
 * kind at 2-device and symmetry-reduced 3-device spaces.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "checker/explorer.hh"
#include "checker/state_store.hh"
#include "support/hash.hh"

#if defined(__unix__)
#include <unistd.h>
#endif

namespace cxl
{
namespace
{

struct Kind {
    const char *name;
    StoreMode mode;
    StoreBackend backend;
};

const Kind kKinds[] = {
    {"ram", StoreMode::Full, StoreBackend::InRam},
    {"ram-compact", StoreMode::Compact, StoreBackend::InRam},
    {"mmap", StoreMode::Full, StoreBackend::Mmap},
    {"mmap-compact", StoreMode::Compact, StoreBackend::Mmap},
};

StoreConfig
configOf(const Kind &k, std::uint64_t capacity = 0,
         std::string dir = std::string())
{
    return StoreConfig{1 << 10, k.mode, k.backend, std::move(dir),
                       capacity};
}

/** A distinct, moderately busy state per index. */
SystemState
probeState(int i)
{
    SystemState s;
    s.counter = static_cast<std::uint8_t>(i & 0xff);
    s.dev[0].val = static_cast<Val>((i >> 8) & 0xff);
    s.dev[1].val = static_cast<Val>(i >> 16);
    s.dev[0].d2hReq.pushBack(
        {D2HReqOp::RdShared, static_cast<Tid>(i & 3)});
    s.dev[1].h2dData.pushBack({0, static_cast<Val>(i & 0x7f), 0});
    return s;
}

/** Forged probe hash that routes every index to shard 0, so one
 * shard accumulates enough entries to fill and drop arena blocks. */
std::uint64_t
shardZeroHash(int i)
{
    return mix64(static_cast<std::uint64_t>(i)) >> 4;
}

TEST(StoreBackend, InsertLookupDedupAndBreadcrumbs)
{
    const int n = 2000;
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k));
        std::vector<std::uint32_t> ids;
        for (int i = 0; i < n; ++i) {
            auto [id, fresh] = store.insert(
                probeState(i), StateStore::kNoParent,
                static_cast<std::uint16_t>(i & 0x3f),
                static_cast<std::uint32_t>(i & 7));
            ASSERT_TRUE(fresh) << k.name << " i=" << i;
            ids.push_back(id);
        }
        EXPECT_EQ(store.size(), static_cast<std::size_t>(n))
            << k.name;
        // Re-inserting every state dedups onto the original id.
        for (int i = 0; i < n; ++i) {
            auto [id, fresh] = store.insert(
                probeState(i), StateStore::kNoParent, 0,
                static_cast<std::uint32_t>(i & 7));
            EXPECT_FALSE(fresh) << k.name << " i=" << i;
            EXPECT_EQ(id, ids[static_cast<std::size_t>(i)])
                << k.name << " i=" << i;
        }
        EXPECT_EQ(store.size(), static_cast<std::size_t>(n))
            << k.name;
        // Bytes round-trip and the breadcrumbs stuck.
        for (int i = 0; i < n; i += 97) {
            const std::uint32_t id =
                ids[static_cast<std::size_t>(i)];
            SystemState decoded;
            store.stateInto(id, decoded);
            EXPECT_TRUE(decoded == probeState(i))
                << k.name << " i=" << i;
            EXPECT_EQ(store.ruleAt(id),
                      static_cast<std::uint16_t>(i & 0x3f))
                << k.name;
            EXPECT_EQ(store.depthAt(id),
                      static_cast<std::uint32_t>(i & 7))
                << k.name;
            EXPECT_EQ(store.parentAt(id), StateStore::kNoParent)
                << k.name;
        }
    }
}

TEST(StoreBackend, BatchRelabelImprovesDepthOnEveryKind)
{
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k));
        auto [root, fresh_root] =
            store.insert(probeState(0), StateStore::kNoParent, 0, 0);
        ASSERT_TRUE(fresh_root) << k.name;
        auto [id, fresh] = store.insert(probeState(1), root, 7, 9);
        ASSERT_TRUE(fresh) << k.name;
        EXPECT_EQ(store.depthAt(id), 9u) << k.name;

        // A duplicate at a smaller depth relabels depth, parent and
        // rule in place and reports improved.
        StateStore::BatchItem item;
        item.state = probeState(1);
        item.hash = item.state.hash();
        item.parent = root;
        item.rule = 3;
        item.depth = 2;
        store.insertBatch(&item, 1);
        EXPECT_FALSE(item.inserted) << k.name;
        EXPECT_TRUE(item.improved) << k.name;
        EXPECT_EQ(item.id, id) << k.name;
        EXPECT_EQ(store.depthAt(id), 2u) << k.name;
        EXPECT_EQ(store.parentAt(id), root) << k.name;
        EXPECT_EQ(store.ruleAt(id), 3u) << k.name;

        // A duplicate at a larger depth changes nothing.
        item.depth = 5;
        item.rule = 11;
        store.insertBatch(&item, 1);
        EXPECT_FALSE(item.inserted) << k.name;
        EXPECT_FALSE(item.improved) << k.name;
        EXPECT_EQ(store.depthAt(id), 2u) << k.name;
        EXPECT_EQ(store.ruleAt(id), 3u) << k.name;
    }
}

TEST(StoreBackend, SealRetentionFollowsEachKindsContract)
{
    // Enough shard-0 entries that whole arena blocks fall below two
    // seal boundaries: full blocks hold 2^12..2^13 entries, compact
    // blocks 2^18 bytes of cells.
    const int n = 40000;
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k));
        std::vector<std::uint32_t> ids;
        for (int i = 0; i < n; ++i) {
            ids.push_back(store
                              .insert(probeState(i), shardZeroHash(i),
                                      StateStore::kNoParent, 0, 0)
                              .first);
        }
        store.sealLevel();
        store.sealLevel();

        const bool readable = store.statesAlwaysReadable();
        EXPECT_EQ(readable,
                  k.mode == StoreMode::Full ||
                      k.backend == StoreBackend::Mmap)
            << k.name;
        EXPECT_EQ(store.stateRetained(ids.front()), readable)
            << k.name;
        EXPECT_TRUE(store.stateRetained(ids.back())) << k.name;
        if (readable) {
            // Sealed entries stay decodable — recoverable backends
            // remap the dropped block on demand.
            SystemState decoded;
            store.stateInto(ids.front(), decoded);
            EXPECT_TRUE(decoded == probeState(0)) << k.name;
        }

        // Deduplication survives sealing on every kind (fingerprint
        // identity where the bytes are cold).
        auto [id, fresh] = store.insert(
            probeState(0), shardZeroHash(0), StateStore::kNoParent,
            0, 0);
        EXPECT_FALSE(fresh) << k.name;
        EXPECT_EQ(id, ids.front()) << k.name;
        EXPECT_EQ(store.size(), static_cast<std::size_t>(n))
            << k.name;
    }
}

#if defined(__linux__)
TEST(StoreBackend, MmapKindsReportAndReleaseMappedBytes)
{
    const int n = 40000;
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k));
        for (int i = 0; i < n; ++i) {
            store.insert(probeState(i), shardZeroHash(i),
                         StateStore::kNoParent, 0, 0);
        }
        if (k.backend == StoreBackend::InRam) {
            EXPECT_EQ(store.mappedBytes(), 0u) << k.name;
            EXPECT_EQ(store.backingFileBytes(), 0u) << k.name;
            continue;
        }
        const std::uint64_t mapped = store.mappedBytes();
        EXPECT_GT(mapped, 0u) << k.name;
        EXPECT_GT(store.backingFileBytes(), 0u) << k.name;
        // Two seals drop every full block below the first boundary:
        // the mapped window shrinks, the backing file does not.
        const std::uint64_t file_before = store.backingFileBytes();
        store.sealLevel();
        store.sealLevel();
        EXPECT_LT(store.mappedBytes(), mapped) << k.name;
        EXPECT_GE(store.backingFileBytes(), file_before) << k.name;
    }
}

TEST(StoreBackend, StoreDirBacksShardFiles)
{
    char tmpl[] = "/tmp/cxl-store-XXXXXX";
    char *dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    {
        StateStore store(configOf(kKinds[2], 0, dir)); // mmap full
        for (int i = 0; i < 5000; ++i) {
            store.insert(probeState(i), StateStore::kNoParent, 0, 0);
        }
        EXPECT_GT(store.mappedBytes(), 0u);
        EXPECT_GT(store.backingFileBytes(), 0u);
        SystemState decoded;
        auto [id, fresh] =
            store.insert(probeState(1), StateStore::kNoParent, 0, 0);
        EXPECT_FALSE(fresh);
        store.stateInto(id, decoded);
        EXPECT_TRUE(decoded == probeState(1));
    }
    // Backing files are unlinked (O_TMPFILE/unlinked tempfile), so
    // the directory is removable once the store is gone.
    EXPECT_EQ(rmdir(dir), 0);
}
#endif // __linux__

TEST(StoreBackend, CapacityThrowsStoreFullErrorOnEveryKind)
{
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k, /*capacity=*/16)); // 1 per shard
        bool threw = false;
        try {
            for (int i = 0; i < 64; ++i) {
                store.insert(probeState(i), StateStore::kNoParent, 0,
                             0);
            }
        } catch (const StoreFullError &e) {
            threw = true;
            const std::string what = e.what();
            EXPECT_NE(what.find("per-shard limit 1 entries"),
                      std::string::npos)
                << k.name << ": " << what;
            EXPECT_NE(what.find("--store=ram|ram-compact|mmap|"
                                "mmap-compact"),
                      std::string::npos)
                << k.name << ": " << what;
        }
        EXPECT_TRUE(threw) << k.name;
    }
}

TEST(StoreBackend, ForgedProbeHashCollisionDetectedOnEveryKind)
{
    SystemState a = initialAllInvalid();
    SystemState b = initialBothShared(1);
    ASSERT_FALSE(a == b);
    const std::uint64_t forged = 0x1234567890abcdefull;
    for (const Kind &k : kKinds) {
        StateStore store(configOf(k));
        auto [ia, new_a] =
            store.insert(a, forged, StateStore::kNoParent, 0, 0);
        auto [ib, new_b] =
            store.insert(b, forged, StateStore::kNoParent, 0, 0);
        EXPECT_TRUE(new_a) << k.name;
        EXPECT_TRUE(new_b) << k.name << ": silently merged";
        EXPECT_NE(ia, ib) << k.name;
        EXPECT_GE(store.probeCollisions(), 1u) << k.name;
        // The collision survives a seal: cold-entry identity falls
        // back to the verification fingerprint, which still tells
        // the two states apart.
        store.sealLevel();
        store.sealLevel();
        auto [ia2, dup_a] =
            store.insert(a, forged, StateStore::kNoParent, 0, 0);
        auto [ib2, dup_b] =
            store.insert(b, forged, StateStore::kNoParent, 0, 0);
        EXPECT_FALSE(dup_a) << k.name;
        EXPECT_FALSE(dup_b) << k.name;
        EXPECT_EQ(ia2, ia) << k.name;
        EXPECT_EQ(ib2, ib) << k.name;
    }
}

// ------------------------------------------- engine-level agreement

ExploreResult
runKind(const RuleSet &rules, const Scenario &sc,
        const InvariantSet &inv, ExploreOptions opt, const Kind &k,
        std::size_t threads)
{
    opt.compaction = k.mode == StoreMode::Compact;
    opt.storeBackend = k.backend;
    opt.numThreads = threads;
    Explorer ex(rules, sc, inv);
    return ex.run(opt);
}

void
expectAgreement(const ExploreResult &base, const ExploreResult &run,
                const std::string &what)
{
    EXPECT_EQ(base.numStates, run.numStates) << what;
    EXPECT_EQ(base.numTransitions, run.numTransitions) << what;
    EXPECT_EQ(base.maxDepth, run.maxDepth) << what;
    EXPECT_EQ(base.completed, run.completed) << what;
    EXPECT_EQ(base.ruleFireCounts, run.ruleFireCounts) << what;
    EXPECT_EQ(run.probeCollisions, 0u) << what;
}

TEST(StoreBackend, TwoDeviceCountsBitIdenticalAcrossKinds)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    ExploreResult base =
        runKind(rules, sc, inv, {}, kKinds[0], 1);
    ASSERT_TRUE(base.completed);
    ASSERT_FALSE(base.violation.has_value());
    for (const Kind &k : kKinds) {
        for (std::size_t threads : {1u, 4u}) {
            expectAgreement(base,
                            runKind(rules, sc, inv, {}, k, threads),
                            std::string("2dev ") + k.name + " @" +
                                std::to_string(threads));
        }
    }
}

TEST(StoreBackend, ThreeDeviceSymCountsBitIdenticalAcrossKinds)
{
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config, 3);
    Scenario sc = Scenario::freeRunScenario(3);
    InvariantSet inv = InvariantSet::full(config, 3);
    ExploreOptions opt;
    opt.symmetryReduction = true;

    ExploreResult base = runKind(rules, sc, inv, opt, kKinds[0], 1);
    ASSERT_TRUE(base.completed);
    EXPECT_GT(base.numStates, 100000u); // the 144,294-orbit space
    for (const Kind &k : kKinds) {
        ExploreResult run = runKind(rules, sc, inv, opt, k, 4);
        expectAgreement(base, run,
                        std::string("3dev sym ") + k.name);
#if defined(__linux__)
        if (k.backend == StoreBackend::Mmap) {
            EXPECT_GT(run.storeFileBytes, 0u) << k.name;
            EXPECT_GT(run.storeMappedBytes, 0u) << k.name;
        }
#endif
    }
}

TEST(StoreBackend, ShardFullStopsBothEnginesOnEveryKind)
{
    // A 64-entry store cannot hold the 2-device free-run space; the
    // StoreFullError must become a graceful governed stop on every
    // kind under both schedules, never an escaping exception.
    ProtocolConfig config = ProtocolConfig::correct();
    RuleSet rules(config);
    Scenario sc = Scenario::freeRunScenario();
    InvariantSet inv = InvariantSet::full(config);

    for (const Kind &k : kKinds) {
        for (Schedule sched :
             {Schedule::Bfs, Schedule::WorkSteal}) {
            ExploreOptions opt;
            opt.storeCapacity = 64;
            opt.schedule = sched;
            ExploreResult res;
            ASSERT_NO_THROW(
                res = runKind(rules, sc, inv, opt, k, 4))
                << k.name;
            EXPECT_EQ(res.stopReason, StopReason::ShardFull)
                << k.name << " sched "
                << static_cast<int>(sched);
            EXPECT_FALSE(res.completed) << k.name;
            EXPECT_FALSE(res.violation.has_value()) << k.name;
        }
    }
}

} // namespace
} // namespace cxl
