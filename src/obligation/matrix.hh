/**
 * @file
 * The proof-obligation matrix engine (paper Fig. 1 and Section 7).
 *
 * Cell (i, j) of the matrix is the obligation "rule i preserves
 * conjunct j": for every universe state s satisfying the invariant
 * where rule i is enabled, firing it must yield s' satisfying
 * conjunct j.  The engine discharges all cells, dispatching slices of
 * the universe across a thread pool — the analogue of super_sketch
 * fanning out concurrent sledgehammer instances — and reports every
 * failing cell with a concrete witness, which is exactly the feedback
 * the paper's iterative invariant-strengthening loop ran on.
 */

#ifndef CXL_OBLIGATION_MATRIX_HH
#define CXL_OBLIGATION_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "invariants/invariant.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/** Matrix-run parameters. */
struct MatrixOptions {
    std::size_t threads = 0; ///< 0 = hardware concurrency
};

/** A failed obligation cell with its witness transition. */
struct FailedCell {
    std::string ruleName;
    std::string conjunctName;
    SystemState pre;  ///< invariant-satisfying state
    SystemState post; ///< rule successor violating the conjunct
};

/** Aggregate matrix results. */
struct MatrixResult {
    std::size_t numRules = 0;
    std::size_t numConjuncts = 0;
    std::size_t universeSize = 0;

    /** rules x conjuncts — the paper's 53,332-lemma analogue. */
    std::size_t totalCells() const { return numRules * numConjuncts; }

    /** enabled-state count per rule (coverage of each matrix row). */
    std::vector<std::uint64_t> ruleEnabledCounts;

    /** failure count per cell, row-major [rule][conjunct]. */
    std::vector<std::uint64_t> cellFailures;

    /** distinct failing cells, each with one witness. */
    std::vector<FailedCell> failures;

    std::uint64_t totalFirings = 0;
    double seconds = 0.0;

    std::uint64_t
    failedCellCount() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t f : cellFailures)
            n += f > 0 ? 1 : 0;
        return n;
    }

    /** Rows (rules) that were never enabled in the universe. */
    std::size_t
    uncoveredRules() const
    {
        std::size_t n = 0;
        for (std::uint64_t c : ruleEnabledCounts)
            n += c == 0 ? 1 : 0;
        return n;
    }
};

/**
 * Discharge the whole obligation matrix of @p invariant over
 * @p universe.
 *
 * @param rules     the rule set (matrix rows).
 * @param scenario  evaluation context (free-run for full generality).
 * @param invariant the conjunct set (matrix columns); states in
 *                  @p universe are assumed to satisfy it.
 */
MatrixResult
checkObligationMatrix(const RuleSet &rules, const Scenario &scenario,
                      const InvariantSet &invariant,
                      const std::vector<SystemState> &universe,
                      const MatrixOptions &options = {});

} // namespace cxl

#endif // CXL_OBLIGATION_MATRIX_HH
