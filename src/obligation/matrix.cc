#include "obligation/matrix.hh"

#include <chrono>
#include <functional>
#include <mutex>
#include <vector>

#include "support/thread_pool.hh"

namespace cxl
{
namespace
{

/** Per-thread accumulation, merged under a lock at the end. */
struct LocalTally {
    std::vector<std::uint64_t> ruleEnabled;
    std::vector<std::uint64_t> cellFailures;
    std::vector<FailedCell> witnesses;
    std::uint64_t firings = 0;
};

} // namespace

MatrixResult
checkObligationMatrix(const RuleSet &rules, const Scenario &scenario,
                      const InvariantSet &invariant,
                      const std::vector<SystemState> &universe,
                      const MatrixOptions &options)
{
    auto start = std::chrono::steady_clock::now();

    const auto &rule_vec = rules.rules();
    const auto &conjuncts = invariant.conjuncts();

    MatrixResult result;
    result.numRules = rule_vec.size();
    result.numConjuncts = conjuncts.size();
    result.universeSize = universe.size();
    result.ruleEnabledCounts.assign(rule_vec.size(), 0);
    result.cellFailures.assign(rule_vec.size() * conjuncts.size(), 0);

    std::mutex merge_mutex;

    auto process_slice = [&](std::size_t begin, std::size_t end) {
        LocalTally tally;
        tally.ruleEnabled.assign(rule_vec.size(), 0);
        tally.cellFailures.assign(rule_vec.size() * conjuncts.size(), 0);
        Context ctx{&scenario};

        for (std::size_t s = begin; s < end; ++s) {
            const SystemState &pre = universe[s];
            for (std::size_t r = 0; r < rule_vec.size(); ++r) {
                const Rule &rule = rule_vec[r];
                if (!rule.guard(pre, ctx))
                    continue;
                ++tally.ruleEnabled[r];
                SystemState post = pre;
                if (!rule.apply(post, ctx))
                    continue; // overflow: not an obligation failure
                ++tally.firings;
                for (std::size_t c = 0; c < conjuncts.size(); ++c) {
                    if (conjuncts[c].holds(post, ctx))
                        continue;
                    std::size_t cell = r * conjuncts.size() + c;
                    if (tally.cellFailures[cell]++ == 0) {
                        FailedCell fc;
                        fc.ruleName = rule.name;
                        fc.conjunctName = conjuncts[c].name;
                        fc.pre = pre;
                        fc.post = post;
                        tally.witnesses.push_back(std::move(fc));
                    }
                }
            }
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::size_t r = 0; r < rule_vec.size(); ++r)
            result.ruleEnabledCounts[r] += tally.ruleEnabled[r];
        for (std::size_t cell = 0; cell < result.cellFailures.size();
             ++cell) {
            bool first = result.cellFailures[cell] == 0;
            result.cellFailures[cell] += tally.cellFailures[cell];
            (void)first;
        }
        result.totalFirings += tally.firings;
        for (auto &w : tally.witnesses) {
            // Keep one witness per distinct (rule, conjunct) pair.
            bool seen = false;
            for (const auto &existing : result.failures) {
                if (existing.ruleName == w.ruleName &&
                    existing.conjunctName == w.conjunctName) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                result.failures.push_back(std::move(w));
        }
    };

    std::size_t threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    if (threads == 1 || universe.size() < 2 * threads) {
        process_slice(0, universe.size());
    } else {
        ThreadPool pool(threads);
        std::size_t chunk =
            (universe.size() + 4 * threads - 1) / (4 * threads);
        if (chunk == 0)
            chunk = 1;
        std::vector<std::function<void()>> jobs;
        jobs.reserve(universe.size() / chunk + 1);
        for (std::size_t begin = 0; begin < universe.size();
             begin += chunk) {
            std::size_t end =
                std::min(begin + chunk, universe.size());
            jobs.push_back([=] { process_slice(begin, end); });
        }
        pool.submitBatch(jobs.data(), jobs.size());
        pool.wait();
    }

    auto end_time = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(end_time - start).count();
    return result;
}

} // namespace cxl
