/**
 * @file
 * Universe generation for inductiveness checking.
 *
 * The paper proves, for each of its 796 conjuncts and 68 rules, that
 * `inv(s) ∧ rule(s, s') ⟹ conjunct(s')` — quantified over *all*
 * states satisfying inv, not just reachable ones (Fig. 1).  Our
 * executable counterpart needs a rich set of inv-satisfying states to
 * fire rules from.  We build it from two sources:
 *
 *  1. every reachable state of the free-run model (all of which
 *     satisfy the full invariant), and
 *  2. random perturbations of those states (field flips, message
 *     injections/removals), filtered by the invariant under test —
 *     these probe the inv boundary *beyond* the reachable set, which
 *     is where non-inductiveness hides (e.g. the paper's IMA/GO-M
 *     counterexample showing bare SWMR is not inductive).
 */

#ifndef CXL_OBLIGATION_UNIVERSE_HH
#define CXL_OBLIGATION_UNIVERSE_HH

#include <cstdint>
#include <vector>

#include "invariants/invariant.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/** Universe generation parameters. */
struct UniverseOptions {
    std::uint64_t seed = 42;

    /** Cap on collected reachable seed states. */
    std::size_t maxReachable = 200000;

    /** Perturbed candidates generated per seed state. */
    std::size_t perturbationsPerSeed = 4;

    /** Overall cap on the returned universe. */
    std::size_t maxStates = 500000;
};

/** Universe build statistics. */
struct UniverseStats {
    std::size_t reachableSeeds = 0;
    std::size_t perturbedCandidates = 0;
    std::size_t perturbedAccepted = 0;
};

/**
 * Build a universe of states satisfying @p filter, rooted at the
 * reachable states of (rules, scenario).
 *
 * @param[out] stats generation statistics (optional).
 */
std::vector<SystemState>
buildUniverse(const RuleSet &rules, const Scenario &scenario,
              const InvariantSet &filter, const UniverseOptions &options,
              UniverseStats *stats = nullptr);

/**
 * The paper's Section 6 counterexample to the inductiveness of bare
 * SWMR: device @p d is in IMA with its GO-M in flight while the next
 * device still owns the line (the remaining devices, if any, hold
 * nothing).  Satisfies SWMR; one rule firing violates it.
 */
SystemState swmrNonInductiveWitness(int d = 0,
                                    int num_devices =
                                        kDefaultNumDevices);

} // namespace cxl

#endif // CXL_OBLIGATION_UNIVERSE_HH
