#include "obligation/universe.hh"

#include <deque>

#include "checker/state_store.hh"
#include "support/hash.hh"

namespace cxl
{
namespace
{

/** Collect reachable states of the scenario breadth-first. */
std::vector<SystemState>
collectReachable(const RuleSet &rules, const Scenario &scenario,
                 std::size_t cap)
{
    // Collect states in discovery order alongside the dedup store;
    // packed (shard, offset) store ids are not densely iterable.
    StateStore store;
    std::vector<SystemState> states;
    std::deque<std::size_t> frontier;
    SystemState init = scenario.initial;
    init.canonicaliseTids();
    store.insert(init, StateStore::kNoParent, 0, 0);
    states.push_back(init);
    frontier.push_back(0);

    while (!frontier.empty() && states.size() < cap) {
        const SystemState state = states[frontier.front()];
        frontier.pop_front();
        for (auto &succ : rules.successors(state, scenario, true)) {
            auto [sidx, is_new] = store.insert(
                succ.state, StateStore::kNoParent, succ.rule->id, 0);
            (void)sidx;
            if (is_new && states.size() < cap) {
                states.push_back(succ.state);
                frontier.push_back(states.size() - 1);
            }
        }
    }

    return states;
}

/** Random single-field / single-message perturbations. */
SystemState
perturb(const SystemState &seed, SplitMix64 &rng)
{
    SystemState s = seed;
    // Value perturbations draw from the run's value domain: 0 plus
    // one device-deterministic store value per active device.
    const std::uint32_t val_domain = s.ndev + 1u;
    int edits = 1 + static_cast<int>(rng.below(3));
    for (int e = 0; e < edits; ++e) {
        int d = static_cast<int>(rng.below(s.ndev));
        DeviceState &dev = s.dev[d];
        switch (rng.below(9)) {
          case 0:
            dev.state = dstateFromIndex(
                static_cast<int>(rng.below(kNumDStates)));
            break;
          case 1:
            s.hstate = hstateFromIndex(
                static_cast<int>(rng.below(kNumHStates)));
            // Keep the requester tracking consistent with the flipped
            // directory state, so transient perturbations can pass
            // the host_tracking filter.
            s.hreq = isStable(s.hstate)
                         ? 0
                         : static_cast<std::uint8_t>(
                               1 + rng.below(s.ndev));
            break;
          case 2:
            dev.val = static_cast<Val>(rng.below(val_domain));
            break;
          case 3:
            s.hval = static_cast<Val>(rng.below(val_domain));
            break;
          case 4: // inject or remove an H2D response
            if (!dev.h2dRsp.empty() && rng.chance(1, 2)) {
                dev.h2dRsp.popFront();
            } else if (!dev.h2dRsp.full()) {
                H2DRsp m;
                m.op = static_cast<H2DRspOp>(rng.below(3));
                m.target = rng.chance(1, 2) ? DState::M : DState::S;
                m.tid = static_cast<Tid>(rng.below(4));
                dev.h2dRsp.pushBack(m);
            }
            break;
          case 5: // inject or remove a snoop
            if (!dev.h2dReq.empty() && rng.chance(1, 2)) {
                dev.h2dReq.popFront();
            } else if (!dev.h2dReq.full()) {
                H2DReq m;
                m.op = rng.chance(1, 2) ? H2DReqOp::SnpInv
                                        : H2DReqOp::SnpData;
                m.tid = static_cast<Tid>(rng.below(4));
                dev.h2dReq.pushBack(m);
            }
            break;
          case 6: // inject or remove a device response
            if (!dev.d2hRsp.empty() && rng.chance(1, 2)) {
                dev.d2hRsp.popFront();
            } else if (!dev.d2hRsp.full()) {
                D2HRsp m;
                m.op = static_cast<D2HRspOp>(rng.below(4));
                m.tid = static_cast<Tid>(rng.below(4));
                dev.d2hRsp.pushBack(m);
            }
            break;
          case 7: // inject or remove data
            if (rng.chance(1, 2)) {
                if (!dev.h2dData.empty() && rng.chance(1, 2))
                    dev.h2dData.popFront();
                else if (!dev.h2dData.full())
                    dev.h2dData.pushBack(
                        {static_cast<Tid>(rng.below(4)),
                         static_cast<Val>(rng.below(val_domain)), 0});
            } else {
                if (!dev.d2hData.empty() && rng.chance(1, 2))
                    dev.d2hData.popFront();
                else if (!dev.d2hData.full())
                    dev.d2hData.pushBack(
                        {static_cast<Tid>(rng.below(4)),
                         static_cast<Val>(rng.below(val_domain)),
                         static_cast<std::uint8_t>(rng.below(2))});
            }
            break;
          case 8: // inject or remove a device request
            if (!dev.d2hReq.empty() && rng.chance(1, 2)) {
                dev.d2hReq.popFront();
            } else if (!dev.d2hReq.full()) {
                D2HReq m;
                m.op = static_cast<D2HReqOp>(rng.below(5));
                m.tid = static_cast<Tid>(rng.below(4));
                dev.d2hReq.pushBack(m);
            }
            break;
        }
    }
    if (s.counter < 8)
        s.counter = 8; // keep injected tids below the counter
    return s;
}

} // namespace

std::vector<SystemState>
buildUniverse(const RuleSet &rules, const Scenario &scenario,
              const InvariantSet &filter, const UniverseOptions &options,
              UniverseStats *stats)
{
    Context ctx{&scenario};
    UniverseStats local;

    std::vector<SystemState> universe =
        collectReachable(rules, scenario, options.maxReachable);
    local.reachableSeeds = universe.size();

    SplitMix64 rng(options.seed);
    StateStore dedup;
    for (const SystemState &s : universe)
        dedup.insert(s, StateStore::kNoParent, 0, 0);

    std::size_t seeds = universe.size();
    for (std::size_t i = 0;
         i < seeds && universe.size() < options.maxStates; ++i) {
        for (std::size_t p = 0; p < options.perturbationsPerSeed; ++p) {
            SystemState cand = perturb(universe[i], rng);
            ++local.perturbedCandidates;
            if (!structurallyWellFormed(cand))
                continue;
            if (!filter.holds(cand, ctx))
                continue;
            auto [idx, is_new] =
                dedup.insert(cand, StateStore::kNoParent, 0, 0);
            (void)idx;
            if (!is_new)
                continue;
            ++local.perturbedAccepted;
            universe.push_back(cand);
            if (universe.size() >= options.maxStates)
                break;
        }
    }

    if (stats)
        *stats = local;
    return universe;
}

SystemState
swmrNonInductiveWitness(int d, int num_devices)
{
    // Paper Section 6: Σ = ⟨DCache1 = (0, IMA),
    //                      H2DRsp1 = [(GO, M, t)],
    //                      DCache2 = (0, M)⟩.
    SystemState s = initialAllInvalid(0, num_devices);
    int o = (d + 1) % num_devices;
    s.dev[d].state = DState::IMA;
    s.dev[d].h2dRsp.pushBack({H2DRspOp::GO, DState::M, 0});
    s.dev[o].state = DState::M;
    s.dev[o].val = 0;
    s.hstate = HState::M;
    s.counter = 1;
    return s;
}

} // namespace cxl
