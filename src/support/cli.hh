/**
 * @file
 * A tiny `--flag value` command-line parser shared by the bench and
 * example binaries.  Keeps harnesses dependency-free.
 */

#ifndef CXL_SUPPORT_CLI_HH
#define CXL_SUPPORT_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cxl
{

/**
 * Parses `--name value` and bare `--name` (boolean) options.
 * Unknown options are collected so harnesses can reject typos.
 */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv);

    /** True if `--name` appeared (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of `--name`, or @p fallback if absent. */
    std::string get(const std::string &name,
                    const std::string &fallback) const;

    /** Integer value of `--name`, or @p fallback if absent. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

/**
 * Resolve the shared `--threads N` option used by the bench and
 * example harnesses to size the parallel explorer: 0 (the default)
 * means one worker per hardware thread; negative values clamp to 0.
 */
std::size_t threadCountOption(const CliArgs &args,
                              std::size_t fallback = 0);

/**
 * Resolve the shared `--devices N` option selecting the active
 * device count of the model.  Exits with code 2 (printing the
 * offending value) on anything outside [1, max_devices] rather than
 * silently clamping; callers pass kMaxDevices.
 */
int deviceCountOption(const CliArgs &args, int max_devices,
                      int fallback = 2);

} // namespace cxl

#endif // CXL_SUPPORT_CLI_HH
