/**
 * @file
 * Fixed-capacity inline vector used for the bounded message channels of
 * the CXL.cache model.
 *
 * The model checker stores millions of states, so channel containers
 * must be trivially copyable, comparable and hashable with no heap
 * traffic.  InlineVec stores up to N elements in-place and keeps the
 * unused tail zeroed so that the raw bytes of equal vectors compare
 * equal, which lets the state store hash whole states bytewise.
 */

#ifndef CXL_SUPPORT_INLINE_VEC_HH
#define CXL_SUPPORT_INLINE_VEC_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace cxl
{

/**
 * A bounded, trivially-copyable vector of at most N elements.
 *
 * @tparam T element type; must be trivially copyable.
 * @tparam N compile-time capacity.
 */
template <typename T, std::size_t N>
class InlineVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVec elements must be trivially copyable");
    static_assert(N > 0 && N < 256, "capacity must fit in a byte");

  public:
    constexpr InlineVec() : size_(0), items_{} {}

    constexpr InlineVec(std::initializer_list<T> init) : InlineVec()
    {
        assert(init.size() <= N);
        for (const T &item : init)
            pushBack(item);
    }

    /** Number of live elements. */
    constexpr std::size_t size() const { return size_; }

    /** Compile-time capacity. */
    static constexpr std::size_t capacity() { return N; }

    constexpr bool empty() const { return size_ == 0; }
    constexpr bool full() const { return size_ == N; }

    /**
     * Append an element.
     *
     * @param item the element to append.
     * @retval true on success, false if the vector was full.
     */
    constexpr bool
    pushBack(const T &item)
    {
        if (full())
            return false;
        items_[size_++] = item;
        return true;
    }

    /** First element; vector must be non-empty. */
    constexpr const T &
    front() const
    {
        assert(!empty());
        return items_[0];
    }

    /** Last element; vector must be non-empty. */
    constexpr const T &
    back() const
    {
        assert(!empty());
        return items_[size_ - 1];
    }

    /**
     * Remove the first element, shifting the rest down (FIFO pop).
     * The vacated tail slot is re-zeroed to keep byte-equality exact.
     */
    constexpr void
    popFront()
    {
        assert(!empty());
        for (std::size_t i = 1; i < size_; ++i)
            items_[i - 1] = items_[i];
        --size_;
        items_[size_] = T{};
    }

    /** Remove all elements and re-zero the storage. */
    constexpr void
    clear()
    {
        items_ = {};
        size_ = 0;
    }

    constexpr const T &
    operator[](std::size_t idx) const
    {
        assert(idx < size_);
        return items_[idx];
    }

    constexpr T &
    operator[](std::size_t idx)
    {
        assert(idx < size_);
        return items_[idx];
    }

    constexpr const T *begin() const { return items_.data(); }
    constexpr const T *end() const { return items_.data() + size_; }

    friend constexpr bool
    operator==(const InlineVec &a, const InlineVec &b)
    {
        if (a.size_ != b.size_)
            return false;
        for (std::size_t i = 0; i < a.size_; ++i) {
            if (!(a.items_[i] == b.items_[i]))
                return false;
        }
        return true;
    }

  private:
    std::uint8_t size_;
    std::array<T, N> items_;
};

} // namespace cxl

#endif // CXL_SUPPORT_INLINE_VEC_HH
