/**
 * @file
 * The run governor: one stop word shared by every worker of an
 * exploration, tripped by whichever budget gives out first — the
 * state cap, a wall-clock deadline, a resident-set ceiling, an
 * external CancelToken (the CLIs wire SIGINT/SIGTERM to one), or a
 * full StateStore shard.  Workers poll it at batch-flush granularity
 * (every <= kFlushBatch successors), so a trip drains the run within
 * one batch per worker and the explored prefix stays a valid,
 * reportable partial result.
 *
 * The stop word is a single atomic StopReason with first-trip-wins
 * CAS semantics: concurrent budget exceedances resolve to one
 * deterministic-enough cause (whichever CAS lands first), and
 * stopped() is a relaxed load — cheap enough for the flush path.
 *
 * Deadlines are checked on every poll (a steady_clock read); the RSS
 * probe reads /proc/self/statm, so it is sampled on the first poll
 * (tiny ceilings trip immediately) and then every kRssSampleStride
 * polls.
 */

#ifndef CXL_SUPPORT_GOVERNOR_HH
#define CXL_SUPPORT_GOVERNOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace cxl
{

/** Why a governed run stopped before draining its frontier. */
enum class StopReason : std::uint8_t {
    None = 0,  ///< no governed stop (completed, or violation-stopped)
    StateCap,  ///< ExploreOptions::maxStates reached
    Deadline,  ///< maxSeconds wall-clock budget exhausted
    Memory,    ///< maxRssBytes anonymous-RSS ceiling exceeded
    Cancelled, ///< external CancelToken tripped (SIGINT/SIGTERM)
    ShardFull, ///< a StateStore shard reached its capacity
    /** A worker raised an unexpected exception; only used to drain
     * peers — the exception itself is rethrown from run(). */
    InternalError,
};

/** JSON word for @p r ("state_cap", "deadline", ...); "none" for
 * StopReason::None. */
const char *stopReasonWord(StopReason r);

/** Human phrase for @p r ("state cap", "memory ceiling", ...). */
const char *stopReasonPhrase(StopReason r);

/**
 * A shareable cancellation handle: copies observe one flag, so the
 * CLI (or a future daemon) can hand the same token to many requests
 * and cancel them all.  A default-constructed token is invalid and
 * never reads as cancelled; cancel() and cancelled() are
 * thread-safe (and cancel() is async-signal-safe on lock-free
 * atomic<bool> platforms, which is every platform this builds on).
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** A fresh, uncancelled token. */
    static CancelToken create();

    /** Trip the flag; no-op on an invalid token. */
    void
    cancel() const
    {
        if (flag_)
            flag_->store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    bool valid() const { return flag_ != nullptr; }

  private:
    friend CancelToken installSignalCancel(const CancelToken &);
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * Route SIGINT and SIGTERM to @p token: the first signal trips the
 * token (the engines then stop gracefully and report an Incomplete
 * verdict with stop_reason "cancelled"); the handler re-arms the
 * default disposition, so a second signal kills the process the
 * normal way.  The token is kept alive process-wide.
 *
 * Idempotent and thread-safe: the first installed token wins, and
 * every later call returns that token unchanged instead of re-arming
 * the handlers — so a daemon can claim the bridge for its own drain
 * logic before (or after) api::standardOptions arms the every-CLI
 * one, and both end up watching the same flag.  After
 * uninstallSignalCancel a new token can be installed again.
 *
 * @return the token the bridge is bound to: @p token when this call
 *         installed it, the previously installed token on re-entry
 *         (an invalid @p token installs nothing and is returned
 *         as-is when no bridge is armed).
 */
CancelToken installSignalCancel(const CancelToken &token);

/** Restore the default SIGINT/SIGTERM dispositions and detach the
 * installed token (tests use this to avoid cross-test leakage). */
void uninstallSignalCancel();

/** The budgets a RunGovernor enforces; zero/invalid fields are
 * unlimited. */
struct GovernorLimits {
    double maxSeconds = 0;          ///< wall-clock budget; 0 = none
    std::uint64_t maxRssBytes = 0;  ///< anon-RSS ceiling; 0 = none
    CancelToken cancel;             ///< external cancel; invalid = none
};

/**
 * The per-run stop word plus its budget monitor.  One instance per
 * exploration; every worker polls it at flush granularity and checks
 * stopped() at claim granularity.  All methods are thread-safe.
 */
class RunGovernor
{
  public:
    explicit RunGovernor(const GovernorLimits &limits);

    /** True once any budget tripped; relaxed — hot-path cheap. */
    bool
    stopped() const
    {
        return reason_.load(std::memory_order_relaxed) !=
               StopReason::None;
    }

    StopReason
    reason() const
    {
        return reason_.load(std::memory_order_acquire);
    }

    /** First trip wins; later trips (racing budgets) are dropped. */
    void
    trip(StopReason r)
    {
        StopReason expected = StopReason::None;
        reason_.compare_exchange_strong(expected, r,
                                        std::memory_order_acq_rel);
    }

    /**
     * Check the budgets: the cancel token and the deadline on every
     * call, the RSS probe on the first call and then every
     * kRssSampleStride calls (a /proc read per sample).  Trips the
     * stop word on the first exceeded budget.
     */
    void poll();

  private:
    /** Polls between RSS samples (the probe is a /proc read). */
    static constexpr std::uint32_t kRssSampleStride = 64;

    std::atomic<StopReason> reason_{StopReason::None};
    std::atomic<std::uint32_t> polls_{0};
    std::chrono::steady_clock::time_point deadline_{};
    bool hasDeadline_ = false;
    std::uint64_t maxRssBytes_ = 0;
    CancelToken cancel_;
};

} // namespace cxl

#endif // CXL_SUPPORT_GOVERNOR_HH
