/**
 * @file
 * Minimal recursive-descent JSON reader: the inverse of
 * support/json.hh's emitter, used by the fuzz corpus loader and the
 * tests that round-trip rendered CheckResult / bench JSON.
 *
 * Covers the full JSON value grammar the emitters produce (objects,
 * arrays, strings with the emitter's escape set, numbers, booleans,
 * null).  Object member order is preserved so schema-order tests can
 * use the parsed form too.
 */

#ifndef CXL_SUPPORT_JSON_PARSE_HH
#define CXL_SUPPORT_JSON_PARSE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cxl
{

/** One parsed JSON value (a small immutable tree). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Boolean payload; false for any other kind. */
    bool asBool() const { return kind_ == Kind::Boolean && num_ != 0; }

    /** Numeric payload; 0 for any other kind. */
    double asNumber() const { return kind_ == Kind::Number ? num_ : 0; }

    /** Numeric payload truncated to an unsigned integer. */
    std::uint64_t
    asUint() const
    {
        const double n = asNumber();
        return n > 0 ? static_cast<std::uint64_t>(n) : 0;
    }

    /** String payload; empty for any other kind. */
    const std::string &str() const { return str_; }

    /** Array elements; empty for any other kind. */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in document order; empty for any other kind. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /**
     * Re-emit this value as JSON text.  Parseable by parseJson but
     * not guaranteed byte-identical to the original document
     * (numbers go through double).
     */
    std::string render() const;

    /** Convenience accessors over get(): default on absence. */
    std::string getStr(const std::string &key,
                       const std::string &fallback = "") const;
    double getNum(const std::string &key, double fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    // Builders (used by the parser; tests may construct values too).
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document.
 *
 * @throws std::runtime_error with a byte offset on malformed input
 *         or trailing garbage.
 */
JsonValue parseJson(const std::string &text);

} // namespace cxl

#endif // CXL_SUPPORT_JSON_PARSE_HH
