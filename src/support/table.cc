#include "support/table.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace cxl
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    assert(!header_.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() <= header_.size());
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render(bool markdown) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &out,
                        const std::vector<std::string> &cells) {
        if (markdown)
            out << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << (markdown ? " " : (c == 0 ? "" : "  "));
            out << cells[c]
                << std::string(widths[c] - cells[c].size(), ' ');
            if (markdown)
                out << " |";
        }
        out << "\n";
    };

    std::ostringstream out;
    emit_row(out, header_);

    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule.push_back(std::string(widths[c], '-'));
    emit_row(out, rule);

    for (const auto &row : rows_)
        emit_row(out, row);
    return out.str();
}

} // namespace cxl
