/**
 * @file
 * A small shared-queue thread pool.
 *
 * The obligation-matrix engine dispatches tens of thousands of
 * independent (rule, conjunct) cells, mirroring how the paper's
 * super_sketch utility fans out concurrent sledgehammer instances.
 * A shared FIFO queue is entirely sufficient at that granularity;
 * submitBatch amortises the lock to one acquisition per fan-out.
 * (Fine-grained work *stealing* lives elsewhere: the explorer's
 * async schedule uses per-worker deques, checker/workqueue.hh.)
 */

#ifndef CXL_SUPPORT_THREAD_POOL_HH
#define CXL_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cxl
{

/**
 * Fixed-size pool executing void() jobs from a shared FIFO queue.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(std::size_t num_threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job for asynchronous execution. */
    void submit(std::function<void()> job);

    /**
     * Enqueue @p count jobs under a single lock acquisition and one
     * broadcast — the bulk-dispatch path for fan-outs of thousands of
     * small cells, where per-submit locking measurably serialises the
     * producer.  @p jobs is consumed (moved from).
     */
    void submitBatch(std::function<void()> *jobs, std::size_t count);

    /** Block until every submitted job has completed. */
    void wait();

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

} // namespace cxl

#endif // CXL_SUPPORT_THREAD_POOL_HH
