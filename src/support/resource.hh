/**
 * @file
 * Process resource probes: peak and current RSS, reported in
 * CheckResult JSON and the bench harnesses' memory summaries.
 *
 * Peak RSS is process-lifetime-monotone, so consecutive runs in one
 * process all report the maximum any earlier run reached; per-case
 * memory attribution must sample currentRssBytes() around each run
 * instead (CheckSession::run does, as rss_delta_bytes).
 */

#ifndef CXL_SUPPORT_RESOURCE_HH
#define CXL_SUPPORT_RESOURCE_HH

#include <cstdint>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cxl
{

/** Peak resident set size of this process so far, in bytes (0 when
 * the platform offers no getrusage). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

/**
 * Current resident set size of this process, in bytes (0 when the
 * platform offers no probe).  Unlike peakRssBytes() this can go down
 * when memory is released, so sampling it before and after a run
 * attributes memory to that run rather than to the process maximum.
 */
inline std::uint64_t
currentRssBytes()
{
#if defined(__linux__)
    // /proc/self/statm field 2: resident pages.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return static_cast<std::uint64_t>(resident) *
           static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    // No portable current-RSS probe; fall back to the monotone peak
    // so callers still get a sane upper bound.
    return peakRssBytes();
#endif
}

} // namespace cxl

#endif // CXL_SUPPORT_RESOURCE_HH
