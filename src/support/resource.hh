/**
 * @file
 * Process resource probes: peak RSS, reported in CheckResult JSON and
 * the bench harnesses' memory summaries.
 */

#ifndef CXL_SUPPORT_RESOURCE_HH
#define CXL_SUPPORT_RESOURCE_HH

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cxl
{

/** Peak resident set size of this process so far, in bytes (0 when
 * the platform offers no getrusage). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace cxl

#endif // CXL_SUPPORT_RESOURCE_HH
