/**
 * @file
 * Process resource probes: peak and current RSS, reported in
 * CheckResult JSON and the bench harnesses' memory summaries.
 *
 * Peak RSS is process-lifetime-monotone, so consecutive runs in one
 * process all report the maximum any earlier run reached; per-case
 * memory attribution must sample currentRssBytes() around each run
 * instead (CheckSession::run does, as rss_delta_bytes).
 */

#ifndef CXL_SUPPORT_RESOURCE_HH
#define CXL_SUPPORT_RESOURCE_HH

#include <cstdint>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cxl
{

/** Peak resident set size of this process so far, in bytes (0 when
 * the platform offers no getrusage). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

/**
 * Current resident set size of this process, in bytes (0 when the
 * platform offers no probe).  Unlike peakRssBytes() this can go down
 * when memory is released, so sampling it before and after a run
 * attributes memory to that run rather than to the process maximum.
 */
inline std::uint64_t
currentRssBytes()
{
#if defined(__linux__)
    // /proc/self/statm field 2: resident pages.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return static_cast<std::uint64_t>(resident) *
           static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    // No portable current-RSS probe; fall back to the monotone peak
    // so callers still get a sane upper bound.
    return peakRssBytes();
#endif
}

/**
 * Current file-backed resident bytes of this process (0 when the
 * platform offers no probe).  On Linux this is /proc/self/statm
 * field 3 ("shared"): resident pages backed by a file — which is
 * exactly what the mmap store kinds' mappings are, plus the text
 * segment and shared libraries.  The kernel can reclaim these pages
 * without swap by writing them back, so a memory ceiling should not
 * count them the way it counts anonymous heap.
 */
inline std::uint64_t
currentFileRssBytes()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0, shared = 0;
    const int got =
        std::fscanf(f, "%llu %llu %llu", &size, &resident, &shared);
    std::fclose(f);
    if (got != 3)
        return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return static_cast<std::uint64_t>(shared) *
           static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

/**
 * Current anonymous (non-file-backed) resident bytes: resident minus
 * file-backed.  This is what a --max-rss-mb ceiling should meter —
 * heap, columns, and decode buffers — so a run that pages its sealed
 * levels through file-backed mmaps is not tripped for bytes the
 * kernel can drop at will.  Falls back to currentRssBytes() where
 * the split is unavailable, which only ever over-counts (safe: the
 * ceiling trips earlier, never later).
 */
inline std::uint64_t
currentAnonRssBytes()
{
#if defined(__linux__)
    const std::uint64_t resident = currentRssBytes();
    const std::uint64_t file = currentFileRssBytes();
    return resident > file ? resident - file : 0;
#else
    return currentRssBytes();
#endif
}

} // namespace cxl

#endif // CXL_SUPPORT_RESOURCE_HH
