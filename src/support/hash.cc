#include "support/hash.hh"

namespace cxl
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace cxl
