#include "support/cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cxl
{

CliArgs::CliArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value = "1";
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        options_[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return options_.count(name) != 0;
}

std::string
CliArgs::get(const std::string &name, const std::string &fallback) const
{
    auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return fallback;
    // strtoll with a discarded end pointer silently turns garbage
    // into 0 ("--devices foo" ran the 0-device model); reject
    // non-numeric, trailing-junk and out-of-range values with a
    // diagnostic that names the offending flag.
    const char *text = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,
                     "--%s '%s' is not a valid integer\n",
                     name.c_str(), text);
        std::exit(2);
    }
    return value;
}

std::size_t
threadCountOption(const CliArgs &args, std::size_t fallback)
{
    std::int64_t n =
        args.getInt("threads", static_cast<std::int64_t>(fallback));
    return n <= 0 ? 0 : static_cast<std::size_t>(n);
}

int
deviceCountOption(const CliArgs &args, int max_devices, int fallback)
{
    const std::int64_t n = args.getInt("devices", fallback);
    if (n < 1 || n > max_devices) {
        std::fprintf(stderr,
                     "--devices %lld out of range (want 1..%d)\n",
                     static_cast<long long>(n), max_devices);
        std::exit(2);
    }
    return static_cast<int>(n);
}

} // namespace cxl
