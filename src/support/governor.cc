#include "support/governor.hh"

#include <csignal>
#include <mutex>

#include "support/resource.hh"

namespace cxl
{
namespace
{

/**
 * The signal handler's view of the installed token: a raw pointer to
 * the token's atomic flag (a shared_ptr can't be touched from a
 * handler).  g_signal_keepalive pins the flag's lifetime for the
 * remainder of the process, so the handler can never dangle even if
 * the installing CancelToken goes out of scope.
 *
 * g_install_mutex serializes install/uninstall; g_installed is the
 * token the bridge is currently bound to (invalid when no bridge is
 * armed), handed back verbatim to re-entrant installers.
 */
std::atomic<std::atomic<bool> *> g_signal_flag{nullptr};
std::shared_ptr<std::atomic<bool>> g_signal_keepalive;
std::mutex g_install_mutex;
CancelToken g_installed;

extern "C" void
signalCancelHandler(int sig)
{
    std::atomic<bool> *flag =
        g_signal_flag.load(std::memory_order_relaxed);
    if (flag)
        flag->store(true, std::memory_order_relaxed);
    // One graceful stop per run: re-arm the default disposition so a
    // second ^C kills a wedged process the normal way.
    std::signal(sig, SIG_DFL);
}

} // namespace

const char *
stopReasonWord(StopReason r)
{
    switch (r) {
      case StopReason::None: return "none";
      case StopReason::StateCap: return "state_cap";
      case StopReason::Deadline: return "deadline";
      case StopReason::Memory: return "memory";
      case StopReason::Cancelled: return "cancelled";
      case StopReason::ShardFull: return "shard_full";
      case StopReason::InternalError: return "internal_error";
    }
    return "?";
}

const char *
stopReasonPhrase(StopReason r)
{
    switch (r) {
      case StopReason::None: return "no stop";
      case StopReason::StateCap: return "state cap";
      case StopReason::Deadline: return "wall-clock deadline";
      case StopReason::Memory: return "memory ceiling";
      case StopReason::Cancelled: return "cancellation";
      case StopReason::ShardFull: return "state store shard full";
      case StopReason::InternalError: return "internal error";
    }
    return "?";
}

CancelToken
CancelToken::create()
{
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
}

CancelToken
installSignalCancel(const CancelToken &token)
{
    const std::lock_guard<std::mutex> lock(g_install_mutex);
    if (g_installed.valid())
        return g_installed; // first install wins; bridge untouched
    if (!token.valid())
        return token;
    g_installed = token;
    g_signal_keepalive = token.flag_;
    g_signal_flag.store(token.flag_.get(),
                        std::memory_order_release);
    std::signal(SIGINT, signalCancelHandler);
    std::signal(SIGTERM, signalCancelHandler);
    return token;
}

void
uninstallSignalCancel()
{
    const std::lock_guard<std::mutex> lock(g_install_mutex);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_signal_flag.store(nullptr, std::memory_order_release);
    g_installed = CancelToken();
    // The keepalive stays: a signal delivered between the flag load
    // and the store above may still be writing through the pointer.
}

RunGovernor::RunGovernor(const GovernorLimits &limits)
    : maxRssBytes_(limits.maxRssBytes), cancel_(limits.cancel)
{
    if (limits.maxSeconds > 0) {
        hasDeadline_ = true;
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            limits.maxSeconds));
    }
}

void
RunGovernor::poll()
{
    if (stopped())
        return;
    if (cancel_.cancelled()) {
        trip(StopReason::Cancelled);
        return;
    }
    if (hasDeadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
        trip(StopReason::Deadline);
        return;
    }
    if (maxRssBytes_ != 0) {
        const std::uint32_t n =
            polls_.fetch_add(1, std::memory_order_relaxed);
        // Meter anonymous RSS, not total: the mmap store kinds keep
        // sealed levels in file-backed pages the kernel can reclaim
        // without swap, so counting them would spuriously trip runs
        // whose whole point is to stay under the ceiling.
        if (n % kRssSampleStride == 0 &&
            currentAnonRssBytes() > maxRssBytes_) {
            trip(StopReason::Memory);
        }
    }
}

} // namespace cxl
