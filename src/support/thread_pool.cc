#include "support/thread_pool.hh"

namespace cxl
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::submitBatch(std::function<void()> *jobs,
                        std::size_t count)
{
    if (count == 0)
        return;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < count; ++i)
            queue_.push_back(std::move(jobs[i]));
        inFlight_ += count;
    }
    wake_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace cxl
