#include "support/json_parse.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/json.hh"

namespace cxl
{

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::getStr(const std::string &key,
                  const std::string &fallback) const
{
    const JsonValue *v = get(key);
    return v && v->kind() == Kind::String ? v->str() : fallback;
}

double
JsonValue::getNum(const std::string &key, double fallback) const
{
    const JsonValue *v = get(key);
    return v && v->kind() == Kind::Number ? v->asNumber() : fallback;
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *v = get(key);
    return v && v->kind() == Kind::Boolean ? v->asBool() : fallback;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Boolean;
    v.num_ = b ? 1 : 0;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

std::string
JsonValue::render() const
{
    switch (kind_) {
      case Kind::Null: return "null";
      case Kind::Boolean: return num_ != 0 ? "true" : "false";
      case Kind::Number: {
        char buf[40];
        // Integers (the emitters' common case) come back without an
        // exponent or fraction; %.17g keeps doubles lossless.
        if (num_ == static_cast<double>(
                        static_cast<long long>(num_))) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(num_));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        }
        return buf;
      }
      case Kind::String: return JsonObject::quote(str_);
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ", ";
            out += items_[i].render();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ", ";
            out += JsonObject::quote(members_[i].first) + ": " +
                   members_[i].second.render();
        }
        return out + "}";
      }
    }
    return "null";
}

namespace
{

/** Cursor over the document with shared error reporting. */
struct Parser {
    const std::string &text;
    std::size_t at = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at byte " +
                                 std::to_string(at) + ": " + what);
    }

    void
    skipSpace()
    {
        while (at < text.size() &&
               std::isspace(static_cast<unsigned char>(text[at]))) {
            ++at;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (at >= text.size())
            fail("unexpected end of input");
        return text[at];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++at;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text.compare(at, n, word) != 0)
            return false;
        at += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (at >= text.size())
                fail("unterminated string");
            const char c = text[at++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at >= text.size())
                fail("unterminated escape");
            const char esc = text[at++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (at + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[at++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The emitter only writes \u00xx control bytes;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{') {
            ++at;
            std::vector<std::pair<std::string, JsonValue>> members;
            if (peek() == '}') {
                ++at;
            } else {
                while (true) {
                    std::string key = parseString();
                    expect(':');
                    members.emplace_back(std::move(key), parseValue());
                    const char next = peek();
                    ++at;
                    if (next == '}')
                        break;
                    if (next != ',')
                        fail("expected ',' or '}'");
                }
            }
            return JsonValue::makeObject(std::move(members));
        }
        if (c == '[') {
            ++at;
            std::vector<JsonValue> items;
            if (peek() == ']') {
                ++at;
            } else {
                while (true) {
                    items.push_back(parseValue());
                    const char next = peek();
                    ++at;
                    if (next == ']')
                        break;
                    if (next != ',')
                        fail("expected ',' or ']'");
                }
            }
            return JsonValue::makeArray(std::move(items));
        }
        if (c == '"')
            return JsonValue::makeString(parseString());
        if (literal("true"))
            return JsonValue::makeBool(true);
        if (literal("false"))
            return JsonValue::makeBool(false);
        if (literal("null"))
            return JsonValue::makeNull();
        // Number: delegate validation to strtod over the local span.
        const char *begin = text.c_str() + at;
        char *end = nullptr;
        const double n = std::strtod(begin, &end);
        if (end == begin)
            fail("unexpected token");
        at += static_cast<std::size_t>(end - begin);
        return JsonValue::makeNumber(n);
    }
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue();
    p.skipSpace();
    if (p.at != text.size())
        p.fail("trailing garbage after document");
    return v;
}

} // namespace cxl
