/**
 * @file
 * Minimal JSON emission shared by the CheckResult renderers and the
 * bench harnesses' `--json <path>` outputs (BENCH_*.json).  Insertion
 * order is preserved so emitted schemas are stable and diffable.
 */

#ifndef CXL_SUPPORT_JSON_HH
#define CXL_SUPPORT_JSON_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cxl
{

/**
 * Minimal JSON object builder.  Insertion order is preserved; values
 * are numbers, strings, booleans, or pre-rendered JSON (for nested
 * arrays of row objects).
 */
class JsonObject
{
  public:
    JsonObject &
    num(const std::string &key, double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        return raw(key, buf);
    }

    JsonObject &
    num(const std::string &key, std::uint64_t value)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
        return raw(key, buf);
    }

    JsonObject &
    str(const std::string &key, const std::string &value)
    {
        return raw(key, quote(value));
    }

    JsonObject &
    boolean(const std::string &key, bool value)
    {
        return raw(key, value ? "true" : "false");
    }

    /** Attach an already-rendered JSON value (object/array/null). */
    JsonObject &
    raw(const std::string &key, const std::string &rendered)
    {
        if (!body_.empty())
            body_ += ", ";
        body_ += quote(key) + ": " + rendered;
        return *this;
    }

    std::string render() const { return "{" + body_ + "}"; }

    /** Render a JSON array from pre-rendered element values. */
    static std::string
    array(const std::vector<std::string> &elements)
    {
        std::string txt = "[";
        for (std::size_t i = 0; i < elements.size(); ++i) {
            if (i)
                txt += ", ";
            txt += elements[i];
        }
        return txt + "]";
    }

    /** Quote and escape a string as a standalone JSON value. */
    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              case '\r': out += "\\r"; break;
              case '\b': out += "\\b"; break;
              case '\f': out += "\\f"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    // The cast matters: a plain (signed) char sails
                    // through %x as a sign-extended int for bytes
                    // >= 0x80, and is UB-adjacent for the escape.
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out + "\"";
    }

  private:
    std::string body_;
};

/** Write @p json to @p path; reports failure on stderr. */
inline bool
writeJsonFile(const std::string &path, const JsonObject &json)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    const std::string txt = json.render() + "\n";
    std::fwrite(txt.data(), 1, txt.size(), f);
    std::fclose(f);
    return true;
}

} // namespace cxl

#endif // CXL_SUPPORT_JSON_HH
