/**
 * @file
 * Hashing primitives for the state store.
 *
 * The explorer fingerprints encoded states with a 64-bit hash.  We use
 * FNV-1a over the canonical byte encoding followed by a strong final
 * mix (splitmix64) so that open-addressing probe sequences are well
 * distributed even for states differing in a single byte.
 */

#ifndef CXL_SUPPORT_HASH_HH
#define CXL_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>

namespace cxl
{

/** FNV-1a 64-bit hash over a byte range. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** splitmix64 finaliser; a strong 64-bit bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Hash a byte range to a well-mixed 64-bit value. */
inline std::uint64_t
hashBytes(const void *data, std::size_t len)
{
    return mix64(fnv1a(data, len));
}

/**
 * Deterministic counter-based RNG (splitmix64 stream).  Used by the
 * obligation-universe sampler; seeding is explicit so every experiment
 * is reproducible.
 */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    constexpr std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    constexpr std::uint32_t
    below(std::uint32_t bound)
    {
        return static_cast<std::uint32_t>(next() % bound);
    }

    /** Bernoulli draw with probability num/den. */
    constexpr bool
    chance(std::uint32_t num, std::uint32_t den)
    {
        return below(den) < num;
    }

  private:
    std::uint64_t state_;
};

} // namespace cxl

#endif // CXL_SUPPORT_HASH_HH
