/**
 * @file
 * Hashing primitives for the state store.
 *
 * The explorer fingerprints encoded states with two independent
 * 64-bit hashes:
 *
 *  - hashBytes(): the *probe* hash.  The sharded state store routes
 *    on its top bits and open-addresses on its low bits, and (since
 *    the hash-compaction work) stores it per entry so shard growth
 *    rehashes from eight bytes instead of re-reading state bytes.
 *  - fingerprintBytes(): the *verification* fingerprint.  In
 *    hash-compaction mode the store keeps this value instead of the
 *    state bytes; it is computed with different multipliers and a
 *    different seed so that a probe-hash collision and a fingerprint
 *    collision are independent events.
 *
 * Both walk the input in 8-byte chunks folded through a 64x64->128
 * multiply (the wyhash/mum construction), which hashes the ~240-byte
 * state record roughly an order of magnitude faster than the original
 * byte-at-a-time FNV-1a while mixing well enough for open-addressing
 * probe sequences.  FNV-1a is kept for callers that need a seeded
 * streaming hash.
 */

#ifndef CXL_SUPPORT_HASH_HH
#define CXL_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cxl
{

/** FNV-1a 64-bit hash over a byte range. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** splitmix64 finaliser; a strong 64-bit bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Fold a 64x64-bit product into 64 bits (wyhash's mum primitive). */
inline std::uint64_t
mum(std::uint64_t a, std::uint64_t b)
{
#if defined(__SIZEOF_INT128__)
    const unsigned __int128 m =
        static_cast<unsigned __int128>(a) * b;
    return static_cast<std::uint64_t>(m) ^
           static_cast<std::uint64_t>(m >> 64);
#else
    // Portable fallback: two rounds of splitmix-style mixing.
    return mix64(a ^ mix64(b));
#endif
}

namespace detail
{

/** Load the trailing `len` (< 8) bytes into a zero-padded word. */
inline std::uint64_t
loadTail(const unsigned char *p, std::size_t len)
{
    std::uint64_t word = 0;
    std::memcpy(&word, p, len);
    return word;
}

/** Chunked multiply-fold hash parameterised by the two multipliers. */
inline std::uint64_t
chunkHash(const void *data, std::size_t len, std::uint64_t seed,
          std::uint64_t m1, std::uint64_t m2)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed ^ mum(static_cast<std::uint64_t>(len), m1);
    std::size_t n = len;
    while (n >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        h = mum(h ^ word, m1);
        p += 8;
        n -= 8;
    }
    if (n != 0)
        h = mum(h ^ loadTail(p, n), m2);
    return mix64(h);
}

} // namespace detail

/**
 * Probe hash: a well-mixed 64-bit value over a byte range.  The state
 * store routes shards on the top bits and probes buckets on the low
 * bits of this value.
 */
inline std::uint64_t
hashBytes(const void *data, std::size_t len)
{
    return detail::chunkHash(data, len, 0x9e3779b97f4a7c15ull,
                             0xa0761d6478bd642full,
                             0xe7037ed1a0b428dbull);
}

/**
 * Verification fingerprint: a second 64-bit hash over the same bytes,
 * independent of hashBytes() (different seed and multipliers).  The
 * hash-compaction store keeps this per entry instead of the state
 * bytes, so a probe-hash collision is detected rather than silently
 * merging distinct states; an *undetected* merge requires both values
 * to collide (expected occurrences ~ n^2 / 2^65 for n states).
 */
inline std::uint64_t
fingerprintBytes(const void *data, std::size_t len)
{
    return detail::chunkHash(data, len, 0x589965cc75374cc3ull,
                             0x8bb84b93962eacc9ull,
                             0x2d358dccaa6c78a5ull);
}

/**
 * Deterministic counter-based RNG (splitmix64 stream).  Used by the
 * obligation-universe sampler; seeding is explicit so every experiment
 * is reproducible.
 */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    constexpr std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    constexpr std::uint32_t
    below(std::uint32_t bound)
    {
        return static_cast<std::uint32_t>(next() % bound);
    }

    /** Bernoulli draw with probability num/den. */
    constexpr bool
    chance(std::uint32_t num, std::uint32_t den)
    {
        return below(den) < num;
    }

  private:
    std::uint64_t state_;
};

} // namespace cxl

#endif // CXL_SUPPORT_HASH_HH
