/**
 * @file
 * Minimal ASCII table renderer.
 *
 * The litmus engine and every bench harness print transition tables in
 * the layout of the paper's Tables 1-3, so we need a small column
 * formatter rather than a dependency on a full text-UI library.
 */

#ifndef CXL_SUPPORT_TABLE_HH
#define CXL_SUPPORT_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace cxl
{

/**
 * Accumulates rows of strings and renders them with column-aligned
 * padding, a header separator, and optional markdown-style pipes.
 */
class TextTable
{
  public:
    /** @param header column titles (fixes the column count). */
    explicit TextTable(std::vector<std::string> header);

    /**
     * Append one row.  Rows shorter than the header are padded with
     * empty cells; longer rows are a caller bug.
     */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /**
     * Render the table.
     *
     * @param markdown if true, emit GitHub-style `|`-delimited rows.
     * @return the rendered table, newline terminated.
     */
    std::string render(bool markdown = false) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cxl

#endif // CXL_SUPPORT_TABLE_HH
