/**
 * @file
 * Atomic-free binary reduction tree over a ThreadPool.
 *
 * The asynchronous explorer accumulates counters, rule-fire
 * profiles and violation candidates in per-worker scratch and merges
 * them once, at termination.  A serial fold over N workers puts the
 * whole merge on one thread; global atomics would put it on the
 * per-event hot path.  The tree does neither: ceil(log2(N)) rounds
 * of pairwise merges, each round's merges disjoint (worker i at
 * stride s merges slot i+s into slot i, for i a multiple of 2s), so
 * no merge needs a lock or an atomic, and each round's parallelism
 * halves only as the remaining work does.
 *
 * Merge must be associative over the slot type and is given
 * exclusive access to both slots: merge(into, from) folds `from`
 * into `into` and may gut `from`.
 */

#ifndef CXL_SUPPORT_REDUCE_HH
#define CXL_SUPPORT_REDUCE_HH

#include <cstddef>

#include "support/thread_pool.hh"

namespace cxl
{

/**
 * Fold slots [0, count) into slot 0 with ceil(log2(count)) rounds of
 * pairwise merges.  @p pool may be null (small runs stay serial —
 * the tree then degenerates to an in-order fold with the identical
 * merge sequence, so results cannot depend on whether a pool was
 * spun up).
 */
template <typename Slot, typename Merge>
void
treeReduce(Slot *slots, std::size_t count, ThreadPool *pool,
           Merge &&merge)
{
    for (std::size_t stride = 1; stride < count; stride <<= 1) {
        const std::size_t step = stride << 1;
        if (pool && pool->threadCount() > 1) {
            for (std::size_t i = 0; i + stride < count; i += step) {
                pool->submit([slots, i, stride, &merge] {
                    merge(slots[i], slots[i + stride]);
                });
            }
            pool->wait();
        } else {
            for (std::size_t i = 0; i + stride < count; i += step)
                merge(slots[i], slots[i + stride]);
        }
    }
}

} // namespace cxl

#endif // CXL_SUPPORT_REDUCE_HH
