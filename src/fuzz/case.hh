/**
 * @file
 * The fuzzer's scenario representation: a FuzzCase is a fully
 * serialisable point in the scenario space the generator samples —
 * config bits x invariant-family restriction x device count x inline
 * litmus programs (or a capped free run) — plus the VerdictSignature
 * the differential oracle condenses a CheckResult into.
 *
 * A FuzzCase deliberately carries *data only* (no std::function), so
 * it can round-trip through JSON byte-identically: that is what makes
 * the corpus replayable and the fixed-seed manifest golden-testable.
 */

#ifndef CXL_FUZZ_CASE_HH
#define CXL_FUZZ_CASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/check.hh"
#include "protocol/config.hh"
#include "protocol/scenario.hh"
#include "support/json_parse.hh"

namespace cxl::fuzz
{

/** Initial-state template of a generated scenario. */
enum class InitKind : std::uint8_t {
    AllInvalid, ///< initialAllInvalid(memVal)
    BothShared, ///< initialBothShared(memVal)
    OneModified ///< initialOneModified(owner, ownerVal, memVal)
};

/** One generated scenario, closed under JSON round-tripping. */
struct FuzzCase {
    int devices = kDefaultNumDevices;

    /** Free-run mode explores the whole reachable space under
     * maxStates; program mode runs the inline litmus programs. */
    bool freeRun = false;

    InitKind init = InitKind::AllInvalid;
    std::uint8_t memVal = 0;   ///< host/memory value
    std::uint8_t ownerVal = 0; ///< OneModified owner's value
    std::uint8_t owner = 0;    ///< OneModified owning device

    /** Inline litmus programs, one per device (program mode only). */
    std::vector<std::vector<Instr>> programs;

    ProtocolConfig config;

    /** Invariant-family restriction (empty = full invariant). */
    std::vector<std::string> families;

    /**
     * State cap for free-run exploration (0 = uncapped).  Program
     * scenarios are finite and small, so they always run uncapped
     * and their counts join the cross-check; capped runs exclude
     * schedule-dependent counts from the comparison instead.
     */
    std::uint64_t maxStates = 0;

    /** Content-derived stable identifier: "g" + 16 hex digits. */
    std::string name() const;

    /** The scenario this case describes (programs or free run). */
    Scenario toScenario() const;

    /** A ready-to-run request (engine knobs left to the caller). */
    CheckRequest toRequest() const;

    /** Canonical JSON form (schema "cxl-fuzz-case/v1"). */
    std::string renderJson() const;

    /**
     * Parse a case previously produced by renderJson.
     * @throws std::runtime_error on malformed input.
     */
    static FuzzCase fromJson(const std::string &text);

    friend bool operator==(const FuzzCase &a, const FuzzCase &b);
};

/**
 * The engine-invariant face of a CheckResult, as compared by the
 * differential oracle and stored with each corpus entry.
 *
 * Counts (states, diameter) are meaningful only when exactCounts is
 * set: a run that completed, or stopped at a violation with no state
 * cap in play.  Cap-truncated parallel runs stop at thread-dependent
 * points, so their counts are recorded as zero and excluded from
 * both key() and the cross-check.
 */
struct VerdictSignature {
    std::string verdict;      ///< holds|violation|deadlock|incomplete
    std::string kind = "-";   ///< conjunct|overflow|deadlock|"-"
    std::string conjunct = "-"; ///< conjunct name / overflow rule / "-"
    std::string family = "-"; ///< conjunct family or "-"
    std::uint32_t depth = 0; ///< violation depth (0 otherwise)
    bool exactCounts = false;
    std::uint64_t states = 0;
    std::uint32_t diameter = 0;

    /** Full identity, e.g.
     * "violation/conjunct/swmr_d1/swmr/d7/s312/r7". */
    std::string key() const;

    /**
     * The minimizer-preserved core: verdict kind + violated conjunct
     * + family.  Depth and counts shrink as the minimizer drops
     * steps, so they are deliberately not part of this key.
     */
    std::string classKey() const;

    /**
     * Novelty bucket for corpus promotion: classKey plus the
     * diameter class (floor(log2(diameter + 1)) when counts are
     * exact) — "new verdict, newly violated conjunct, new diameter
     * class" from the tentpole spec.
     */
    std::string noveltyKey() const;

    friend bool
    operator==(const VerdictSignature &a, const VerdictSignature &b)
    {
        return a.key() == b.key();
    }
};

/**
 * Condense a CheckResult.  @p capped marks a run whose scenario
 * carried a state cap: its counts are only exact when the
 * exploration completed below the cap.
 */
VerdictSignature signatureOf(const CheckResult &result, bool capped);

/** Lower-case instruction word used in the JSON form. */
std::string instrWord(Instr i);

/** Inverse of instrWord. @throws std::runtime_error on junk. */
Instr instrFromWord(const std::string &word);

/**
 * The ProtocolConfig switches as a JSON object — the `config` key
 * shared by the cxl-fuzz-case/v1 and cxl-checkd/v1 schemas (one
 * boolean per switch, snake_case names).
 */
std::string configJson(const ProtocolConfig &config);

/** Inverse of configJson over a parsed member; nullptr or missing
 * keys keep the ProtocolConfig defaults. */
ProtocolConfig configFromJsonValue(const JsonValue *cfg);

} // namespace cxl::fuzz

#endif // CXL_FUZZ_CASE_HH
