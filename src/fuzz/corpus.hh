/**
 * @file
 * The persisted fuzz corpus: one JSON file per interesting case
 * (schema "cxl-fuzz-corpus/v1", the case plus its stored reference
 * signature), a MANIFEST.txt listing `<name> <signature-key>` per
 * line in name order, and the promotion hook that registers corpus
 * entries as first-class scenarios (scenarios::registerEntry) so
 * `cxl_check --all` and the equivalence suites pick them up.
 *
 * Files are named `<case-name>.json`; the name is a content hash, so
 * re-saving an identical case is a no-op and the manifest is
 * byte-stable for a fixed corpus — which is what the fixed-seed
 * determinism test and the CI artifact diff rely on.
 */

#ifndef CXL_FUZZ_CORPUS_HH
#define CXL_FUZZ_CORPUS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "fuzz/case.hh"

namespace cxl::fuzz
{

/** One corpus member: the case plus its stored reference signature. */
struct CorpusEntry {
    FuzzCase fuzzCase;
    VerdictSignature signature;
};

/** Canonical JSON form of one entry. */
std::string renderCorpusEntryJson(const CorpusEntry &entry);

/**
 * Parse an entry previously produced by renderCorpusEntryJson.
 * @throws std::runtime_error on malformed input.
 */
CorpusEntry corpusEntryFromJson(const std::string &text);

/**
 * Load every `*.json` case in @p dir, sorted by filename (i.e. by
 * case name).  A missing directory is an empty corpus; a malformed
 * file throws.
 */
std::vector<CorpusEntry> loadCorpus(const std::string &dir);

/**
 * Write @p entry to `<dir>/<case-name>.json` (creating @p dir if
 * needed).  @return false on I/O failure.
 */
bool saveCorpusEntry(const std::string &dir, const CorpusEntry &entry);

/** Remove `<dir>/<case-name>.json` if present. */
void removeCorpusEntry(const std::string &dir, const std::string &name);

/** The manifest text: one `<name> <signature-key>` line per entry,
 * sorted by name. */
std::string renderManifest(const std::vector<CorpusEntry> &entries);

/** Write renderManifest to `<dir>/MANIFEST.txt`. */
bool writeManifest(const std::string &dir,
                   const std::vector<CorpusEntry> &entries);

/**
 * Register every entry in the scenario registry (named by case name,
 * expectation derived from the stored signature).  Entries whose
 * names would alias existing scenarios are skipped.
 *
 * @return how many entries were registered.
 */
std::size_t
promoteToRegistry(const std::vector<CorpusEntry> &entries);

} // namespace cxl::fuzz

#endif // CXL_FUZZ_CORPUS_HH
