/**
 * @file
 * The scenario generator (ROADMAP item 4): seeded, deterministic
 * sampling of the config-bit x invariant-family-restriction x
 * device-count x inline-litmus space, plus mutation-based resampling
 * around interesting corpus entries.
 *
 * Determinism is load-bearing: the same seed and budget must emit the
 * same case sequence on every platform (the fixed-seed CI smoke job
 * and the manifest golden test depend on it), so the generator uses
 * its own splitmix64 stream rather than std:: distributions, whose
 * outputs are implementation-defined.
 */

#ifndef CXL_FUZZ_GEN_HH
#define CXL_FUZZ_GEN_HH

#include <cstdint>
#include <vector>

#include "fuzz/case.hh"

namespace cxl::fuzz
{

/** Deterministic PRNG (splitmix64): identical streams everywhere. */
struct Rng {
    std::uint64_t state;

    explicit Rng(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, bound); bound 0 yields 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        return bound == 0
                   ? 0
                   : static_cast<std::uint32_t>(next() % bound);
    }

    /** True with probability @p percent / 100. */
    bool chance(std::uint32_t percent) { return below(100) < percent; }
};

/** Generator knobs. */
struct GenOptions {
    std::uint64_t seed = 1;

    /** Device-count range sampled for fresh cases. */
    int minDevices = 2;
    int maxDevices = 2;

    /** Longest per-device inline program. */
    std::uint32_t maxProgramLen = 4;

    /** State cap attached to free-run cases (they are the only
     * unbounded ones; program cases always run uncapped). */
    std::uint64_t freeRunCap = 20000;

    /** Probability (percent) that next() mutates a seed case instead
     * of sampling a fresh one, once seeds exist. */
    std::uint32_t mutationPercent = 40;
};

/**
 * The seeded scenario generator.  next() yields an endless
 * deterministic stream: fresh random cases interleaved with
 * mutations of the seed pool (corpus entries and promoted cases).
 */
class ScenarioGen
{
  public:
    explicit ScenarioGen(GenOptions options = {});

    /** Add a mutation seed (typically a loaded corpus case). */
    void addSeed(const FuzzCase &seedCase);

    /** The next generated case. */
    FuzzCase next();

    /**
     * One mutation step over @p base: flip a config bit, edit an
     * instruction, resize the device count, switch the initial
     * state, or adjust the family restriction — then renormalise.
     * Public so tests can drive it directly.
     */
    FuzzCase mutate(FuzzCase base);

    /**
     * Clamp a case back into the generator's invariants: owner below
     * the device count, exactly one program per device (none in free
     * run), free-run cases capped, families sorted and deduplicated.
     */
    void normalise(FuzzCase &c) const;

    const GenOptions &options() const { return options_; }

  private:
    FuzzCase fresh();

    GenOptions options_;
    Rng rng_;
    std::vector<FuzzCase> seeds_;
    std::vector<std::string> familyVocabulary_;
};

} // namespace cxl::fuzz

#endif // CXL_FUZZ_GEN_HH
