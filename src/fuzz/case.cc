#include "fuzz/case.hh"

#include <cstdio>
#include <stdexcept>

#include "support/hash.hh"
#include "support/json.hh"
#include "support/json_parse.hh"

namespace cxl::fuzz
{
namespace
{

const char *
initWord(InitKind k)
{
    switch (k) {
      case InitKind::AllInvalid: return "all_invalid";
      case InitKind::BothShared: return "both_shared";
      case InitKind::OneModified: return "one_modified";
    }
    return "?";
}

InitKind
initFromWord(const std::string &word)
{
    if (word == "all_invalid")
        return InitKind::AllInvalid;
    if (word == "both_shared")
        return InitKind::BothShared;
    if (word == "one_modified")
        return InitKind::OneModified;
    throw std::runtime_error("unknown init kind '" + word + "'");
}

} // namespace

std::string
instrWord(Instr i)
{
    switch (i) {
      case Instr::Load: return "load";
      case Instr::Store: return "store";
      case Instr::Evict: return "evict";
      case Instr::None: return "none";
    }
    return "?";
}

Instr
instrFromWord(const std::string &word)
{
    if (word == "load")
        return Instr::Load;
    if (word == "store")
        return Instr::Store;
    if (word == "evict")
        return Instr::Evict;
    throw std::runtime_error("unknown instruction '" + word + "'");
}

std::string
FuzzCase::name() const
{
    // Content-derived: identical cases get identical names no matter
    // which seed path generated them, which is what deduplicates the
    // corpus and keeps manifests byte-stable across runs.
    const std::string canon = renderJson();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "g%016llx",
                  static_cast<unsigned long long>(
                      hashBytes(canon.data(), canon.size())));
    return buf;
}

Scenario
FuzzCase::toScenario() const
{
    Scenario sc;
    sc.name = name();
    switch (init) {
      case InitKind::AllInvalid:
        sc.initial = initialAllInvalid(memVal, devices);
        break;
      case InitKind::BothShared:
        sc.initial = initialBothShared(memVal, devices);
        break;
      case InitKind::OneModified:
        sc.initial = initialOneModified(owner % devices, ownerVal,
                                        memVal, devices);
        break;
    }
    sc.freeRun = freeRun;
    if (!freeRun) {
        for (std::size_t d = 0;
             d < programs.size() &&
             d < static_cast<std::size_t>(devices);
             ++d) {
            sc.program[d] = programs[d];
        }
    }
    return sc;
}

CheckRequest
FuzzCase::toRequest() const
{
    CheckRequest req;
    req.inlineScenario = toScenario();
    req.devices = devices;
    req.config = config;
    req.families = families;
    return req;
}

std::string
configJson(const ProtocolConfig &config)
{
    JsonObject cfg;
    cfg.boolean("stale_evict_drop", config.staleEvictDrop)
        .boolean("clean_evict_no_data", config.cleanEvictNoData)
        .boolean("host_clean_pull", config.hostCleanPull)
        .boolean("relax_snoop_pushes_go", config.relaxSnoopPushesGo)
        .boolean("relax_smad_snoop_guard", config.relaxSmadSnoopGuard)
        .boolean("relax_go_tailgate", config.relaxGoTailgate)
        .boolean("relax_one_snoop", config.relaxOneSnoop);
    return cfg.render();
}

ProtocolConfig
configFromJsonValue(const JsonValue *cfg)
{
    ProtocolConfig config;
    if (!cfg)
        return config;
    config.staleEvictDrop = cfg->getBool("stale_evict_drop", true);
    config.cleanEvictNoData =
        cfg->getBool("clean_evict_no_data", true);
    config.hostCleanPull = cfg->getBool("host_clean_pull");
    config.relaxSnoopPushesGo =
        cfg->getBool("relax_snoop_pushes_go");
    config.relaxSmadSnoopGuard =
        cfg->getBool("relax_smad_snoop_guard");
    config.relaxGoTailgate = cfg->getBool("relax_go_tailgate");
    config.relaxOneSnoop = cfg->getBool("relax_one_snoop");
    return config;
}

std::string
FuzzCase::renderJson() const
{
    std::vector<std::string> prog_rows;
    for (const std::vector<Instr> &prog : programs) {
        std::vector<std::string> words;
        for (Instr i : prog)
            words.push_back(JsonObject::quote(instrWord(i)));
        prog_rows.push_back(JsonObject::array(words));
    }
    std::vector<std::string> family_rows;
    for (const std::string &f : families)
        family_rows.push_back(JsonObject::quote(f));

    JsonObject json;
    json.str("schema", "cxl-fuzz-case/v1")
        .num("devices", static_cast<std::uint64_t>(devices))
        .boolean("free_run", freeRun)
        .str("init", initWord(init))
        .num("mem_val", static_cast<std::uint64_t>(memVal))
        .num("owner_val", static_cast<std::uint64_t>(ownerVal))
        .num("owner", static_cast<std::uint64_t>(owner))
        .raw("programs", JsonObject::array(prog_rows))
        .raw("config", configJson(config))
        .raw("families", JsonObject::array(family_rows))
        .num("max_states", maxStates);
    return json.render();
}

FuzzCase
FuzzCase::fromJson(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    if (doc.getStr("schema") != "cxl-fuzz-case/v1") {
        throw std::runtime_error("not a cxl-fuzz-case/v1 document");
    }
    FuzzCase c;
    c.devices = static_cast<int>(doc.getNum("devices", 2));
    if (c.devices < 1 || c.devices > kMaxDevices)
        throw std::runtime_error("fuzz case devices out of range");
    c.freeRun = doc.getBool("free_run");
    c.init = initFromWord(doc.getStr("init", "all_invalid"));
    c.memVal = static_cast<std::uint8_t>(doc.getNum("mem_val"));
    c.ownerVal = static_cast<std::uint8_t>(doc.getNum("owner_val"));
    c.owner = static_cast<std::uint8_t>(doc.getNum("owner"));

    if (const JsonValue *progs = doc.get("programs")) {
        for (const JsonValue &row : progs->items()) {
            std::vector<Instr> prog;
            for (const JsonValue &word : row.items())
                prog.push_back(instrFromWord(word.str()));
            c.programs.push_back(std::move(prog));
        }
    }
    c.config = configFromJsonValue(doc.get("config"));
    if (const JsonValue *fams = doc.get("families")) {
        for (const JsonValue &f : fams->items())
            c.families.push_back(f.str());
    }
    c.maxStates = doc.get("max_states")
                      ? doc.get("max_states")->asUint()
                      : 0;
    return c;
}

bool
operator==(const FuzzCase &a, const FuzzCase &b)
{
    // The JSON form covers every field, so it doubles as the
    // equality witness (and keeps the two in lockstep by
    // construction).
    return a.renderJson() == b.renderJson();
}

// -------------------------------------------------- VerdictSignature

std::string
VerdictSignature::key() const
{
    std::string out = classKey() + "/d" + std::to_string(depth);
    if (exactCounts) {
        out += "/s" + std::to_string(states) + "/r" +
               std::to_string(diameter);
    } else {
        out += "/s-/r-";
    }
    return out;
}

std::string
VerdictSignature::classKey() const
{
    return verdict + "/" + kind + "/" + conjunct + "/" + family;
}

std::string
VerdictSignature::noveltyKey() const
{
    int klass = -1;
    if (exactCounts) {
        klass = 0;
        for (std::uint64_t d = diameter + 1; d > 1; d >>= 1)
            ++klass;
    }
    return classKey() + "/D" + std::to_string(klass);
}

VerdictSignature
signatureOf(const CheckResult &result, bool capped)
{
    VerdictSignature sig;
    switch (result.verdict) {
      case CheckResult::Verdict::Holds: sig.verdict = "holds"; break;
      case CheckResult::Verdict::Violated:
        sig.verdict = "violation";
        break;
      case CheckResult::Verdict::Deadlocked:
        sig.verdict = "deadlock";
        break;
      case CheckResult::Verdict::Incomplete:
        sig.verdict = "incomplete";
        break;
    }
    if (result.violation) {
        switch (result.violation->kind) {
          case Violation::Kind::Conjunct:
            sig.kind = "conjunct";
            sig.conjunct = result.violation->conjunctName;
            sig.family = result.violation->conjunctFamily;
            break;
          case Violation::Kind::Overflow:
            sig.kind = "overflow";
            sig.conjunct = result.violation->overflowRule;
            break;
          case Violation::Kind::Deadlock: sig.kind = "deadlock"; break;
        }
        sig.depth = result.violation->depth;
    }
    // Counts are exact run properties when the exploration drained
    // the frontier, or when it stopped at a violation with no cap in
    // play (the engines guarantee BFS-minimal, thread-invariant
    // counts there).  A cap-truncated run stops at a
    // thread-dependent point, so its counts are dropped.
    sig.exactCounts =
        result.completed ||
        (!capped &&
         result.verdict != CheckResult::Verdict::Incomplete);
    if (sig.exactCounts) {
        sig.states = result.states;
        sig.diameter = result.diameter;
    }
    return sig;
}

} // namespace cxl::fuzz
