/**
 * @file
 * The cross-engine differential oracle: run one FuzzCase through a
 * portfolio of engine combinations — {bfs, work-steal} x {por on/off}
 * x {symmetry on/off} x {full/compact store} x thread counts, plus
 * one mmap-backend arm per portfolio — and
 * cross-check the VerdictSignatures under the engines' documented
 * guarantees.  Any disagreement those guarantees forbid is an engine
 * bug, reported as a divergence.
 *
 * What is comparable depends on the run:
 *  - verdict / violation kind / family: always (between decided runs)
 *  - violated conjunct name + violation depth: when neither run was
 *    cap-truncated (capped parallel runs stop at thread-dependent
 *    points, so different combos can surface different witnesses)
 *  - state count + diameter: additionally only within a symmetry
 *    class — symmetry reduction changes counts by design
 *  - across symmetry classes the conjunct *name* may differ by device
 *    index (a symmetric violation can surface on any representative),
 *    so only kind + family + depth are compared there
 *  - symmetry combos run only for free-run (device-symmetric) cases;
 *    forcing symmetry on program scenarios is unsound by contract
 *  - Incomplete runs (cap hit first) are skipped entirely: a capped
 *    combo racing a violation against the cap may legitimately land
 *    on either side.
 */

#ifndef CXL_FUZZ_ORACLE_HH
#define CXL_FUZZ_ORACLE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "api/check.hh"
#include "fuzz/case.hh"

namespace cxl::fuzz
{

/** One engine combination of the portfolio. */
struct ComboDesc {
    Schedule schedule = Schedule::Bfs;
    bool por = false;
    bool sym = false;
    bool compact = false;
    std::size_t threads = 1;

    /** Run this combo on the mmap backend of its compactness — the
     * out-of-core arms that keep the differential oracle honest
     * about backend-independence of verdicts and counts. */
    bool mmapStore = false;

    /** e.g. "ws/por/sym/compact/t4" ("bfs/-/-/full/t1"); mmap arms
     * append "-mmap" to the store segment. */
    std::string label() const;

    EngineOptions engineOptions() const;
};

/**
 * The reference combination: single-threaded BFS, no reduction, full
 * store.  Single-threaded capped runs stop at an exact point, so this
 * signature is deterministic for every case — it is what corpus
 * entries store and what manifests are built from.
 */
ComboDesc referenceCombo();

/** The full 16-combo cross product at one thread count (plus the
 * reference, which the oracle always runs first). */
std::vector<ComboDesc> fullPortfolio(std::size_t threads);

/**
 * The corpus-replay portfolio from the acceptance criteria:
 * {bfs, ws} x {por} x {sym} at each of @p threadCounts, plus a
 * compact-store probe per schedule.
 */
std::vector<ComboDesc>
replayPortfolio(const std::vector<std::size_t> &threadCounts);

/**
 * Run just the reference combination over @p c (fresh session) and
 * condense the result — the signature corpus entries store, manifests
 * list, and the minimizer preserves.
 */
VerdictSignature referenceSignature(const FuzzCase &c);

/** One portfolio member's condensed outcome. */
struct ComboRun {
    ComboDesc combo;
    VerdictSignature sig;
    std::string verdictLine; ///< the run's verdictText()
};

/** The oracle's judgement on one case. */
struct OracleReport {
    std::string caseName;
    VerdictSignature reference; ///< referenceCombo()'s signature
    std::vector<ComboRun> runs; ///< reference first
    std::vector<std::string> divergences;

    /**
     * Arms whose run a resource budget ended (armMaxSeconds, or an
     * inherited memory/cancel limit), as "label: reason" lines.  A
     * quarantined arm is *excluded* from every cross-check — an
     * undecided prefix is not comparable — but never silently: the
     * front-ends surface these lines so a hanging combination reads
     * as "quarantined", not "passed".
     */
    std::vector<std::string> quarantined;

    bool diverged() const { return !divergences.empty(); }
};

/** Oracle knobs. */
struct OracleOptions {
    /** Combinations to run besides the reference. */
    std::vector<ComboDesc> portfolio = fullPortfolio(1);

    /**
     * Independent-implementation probe: when the reference says the
     * space is clean and complete, a RandomWalker samples the same
     * model and must not find a violation either.
     */
    bool randomWalkProbe = true;
    std::uint64_t walkWalks = 32;
    std::uint32_t walkSteps = 128;

    /**
     * Per-arm wall-clock budget in seconds (0 = none).  An arm that
     * exceeds it is quarantined (OracleReport::quarantined) and left
     * out of the cross-checks instead of hanging the whole oracle on
     * one pathological engine combination.  Deadline stops land at
     * wall-clock-dependent points, so any nonzero budget makes the
     * portfolio outcome timing-sensitive — use it as a safety net
     * (seconds, not milliseconds) for fuzzing sweeps, never for the
     * stored reference signatures (referenceSignature() takes no
     * budget and stays deterministic).
     */
    double armMaxSeconds = 0;

    /**
     * Tamper hook for the planted-divergence self-test: called on
     * every fresh per-combo session before its run, so a test can
     * corrupt exactly one combination's model (via mutableRuleSet /
     * RuleSet::addRule) and assert the cross-check catches it.
     */
    std::function<void(CheckSession &, const ComboDesc &)> sessionHook;
};

/** The differential oracle. */
class Oracle
{
  public:
    explicit Oracle(OracleOptions options = {});

    /** Run the portfolio over @p c and cross-check the signatures. */
    OracleReport check(const FuzzCase &c) const;

    const OracleOptions &options() const { return options_; }

  private:
    OracleOptions options_;
};

} // namespace cxl::fuzz

#endif // CXL_FUZZ_ORACLE_HH
