#include "fuzz/oracle.hh"

#include "checker/random_walk.hh"
#include "support/hash.hh"

namespace cxl::fuzz
{

std::string
ComboDesc::label() const
{
    std::string out = schedule == Schedule::WorkSteal ? "ws" : "bfs";
    out += por ? "/por" : "/-";
    out += sym ? "/sym" : "/-";
    out += compact ? "/compact" : "/full";
    if (mmapStore)
        out += "-mmap";
    out += "/t" + std::to_string(threads);
    return out;
}

EngineOptions
ComboDesc::engineOptions() const
{
    EngineOptions opt;
    opt.schedule = schedule;
    opt.por = por;
    opt.symmetry = sym ? SymmetryMode::On : SymmetryMode::Off;
    opt.store = mmapStore
                    ? (compact ? StoreKind::MmapCompact
                               : StoreKind::Mmap)
                    : (compact ? StoreKind::InRamCompact
                               : StoreKind::InRam);
    opt.threads = threads;
    return opt;
}

ComboDesc
referenceCombo()
{
    return ComboDesc{};
}

std::vector<ComboDesc>
fullPortfolio(std::size_t threads)
{
    std::vector<ComboDesc> combos;
    for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
        for (bool por : {false, true}) {
            for (bool sym : {false, true}) {
                for (bool compact : {false, true}) {
                    combos.push_back(
                        ComboDesc{sched, por, sym, compact, threads});
                }
            }
        }
    }
    // One out-of-core arm: the mmap backend must agree bit-for-bit
    // with the reference on verdicts and counts (the paging layer is
    // below the probe algorithm, so any divergence is a store bug).
    combos.push_back(
        ComboDesc{Schedule::Bfs, false, false, false, threads, true});
    return combos;
}

std::vector<ComboDesc>
replayPortfolio(const std::vector<std::size_t> &threadCounts)
{
    std::vector<ComboDesc> combos;
    for (std::size_t threads : threadCounts) {
        for (Schedule sched : {Schedule::Bfs, Schedule::WorkSteal}) {
            for (bool por : {false, true}) {
                for (bool sym : {false, true}) {
                    combos.push_back(
                        ComboDesc{sched, por, sym, false, threads});
                }
            }
        }
        // One compact-store probe per schedule per thread count.
        combos.push_back(ComboDesc{Schedule::Bfs, false, false, true,
                                   threads});
        combos.push_back(ComboDesc{Schedule::WorkSteal, false, false,
                                   true, threads});
        // And one mmap-backend probe, so replay also exercises the
        // out-of-core path against the stored reference signature.
        combos.push_back(ComboDesc{Schedule::Bfs, false, false, false,
                                   threads, true});
    }
    return combos;
}

VerdictSignature
referenceSignature(const FuzzCase &c)
{
    const ComboDesc combo = referenceCombo();
    CheckSession session(combo.engineOptions());
    CheckRequest req = c.toRequest();
    EngineOptions opt = combo.engineOptions();
    opt.maxStates = c.maxStates;
    req.engine = opt;
    return signatureOf(session.run(req), c.maxStates != 0);
}

namespace
{

bool
decided(const VerdictSignature &sig)
{
    return sig.verdict != "incomplete";
}

/**
 * Cross-check one run against the reference of its comparison scope.
 * @p sameSymClass selects the strict rules (conjunct name and counts
 * included) over the symmetry-invariant subset.
 */
void
compareRuns(const ComboRun &ref, const ComboRun &run,
            bool sameSymClass, std::vector<std::string> &out)
{
    const VerdictSignature &a = ref.sig;
    const VerdictSignature &b = run.sig;
    if (!decided(a) || !decided(b))
        return;

    const std::string tag =
        run.combo.label() + " vs " + ref.combo.label() + ": ";
    if (!sameSymClass) {
        // Across symmetry classes only the symmetry-invariant facts
        // are comparable: whether the space is clean, and the minimal
        // depth of the first bad state.  When several bad states share
        // that minimal depth, the deterministic winner is picked by a
        // key that includes the state fingerprint — which the orbit
        // quotient relabels — so verdict kind, conjunct and family are
        // only meaningful within one symmetry class (observed in the
        // wild: a case with a channel_singleton and an ordering
        // violation both at depth 5, the unreduced arms all reporting
        // the former and the reduced arms all the latter).
        const bool aBad = a.verdict != "holds";
        if (aBad != (b.verdict != "holds")) {
            out.push_back(tag + "verdict " + b.verdict + " != " +
                          a.verdict);
            return;
        }
        if (aBad && a.exactCounts && b.exactCounts &&
            a.depth != b.depth) {
            out.push_back(tag + "violation depth " +
                          std::to_string(b.depth) + " != " +
                          std::to_string(a.depth));
        }
        return;
    }
    if (a.verdict != b.verdict) {
        out.push_back(tag + "verdict " + b.verdict + " != " +
                      a.verdict);
        return;
    }
    if (a.kind != b.kind) {
        out.push_back(tag + "violation kind " + b.kind + " != " +
                      a.kind);
        return;
    }
    if (a.family != b.family) {
        out.push_back(tag + "violated family " + b.family + " != " +
                      a.family);
        return;
    }
    // Witness identity and counts only between runs whose numbers are
    // exact (completed, or violation-stopped with no cap in play).
    if (!a.exactCounts || !b.exactCounts)
        return;
    if (a.depth != b.depth) {
        out.push_back(tag + "violation depth " +
                      std::to_string(b.depth) + " != " +
                      std::to_string(a.depth));
    }
    if (sameSymClass && a.conjunct != b.conjunct) {
        out.push_back(tag + "violated conjunct " + b.conjunct +
                      " != " + a.conjunct);
    }
    if (sameSymClass) {
        if (a.states != b.states) {
            out.push_back(tag + "state count " +
                          std::to_string(b.states) + " != " +
                          std::to_string(a.states));
        }
        if (a.diameter != b.diameter) {
            out.push_back(tag + "diameter " +
                          std::to_string(b.diameter) + " != " +
                          std::to_string(a.diameter));
        }
    }
}

} // namespace

Oracle::Oracle(OracleOptions options) : options_(std::move(options)) {}

OracleReport
Oracle::check(const FuzzCase &c) const
{
    OracleReport report;
    report.caseName = c.name();
    const bool capped = c.maxStates != 0;

    auto runCombo = [&](const ComboDesc &combo) {
        // A fresh session per combo keeps runs independent (no shared
        // model state between the arms being differenced) and lets
        // the tamper hook target exactly one combination.
        CheckSession session(combo.engineOptions());
        if (options_.sessionHook)
            options_.sessionHook(session, combo);
        CheckRequest req = c.toRequest();
        EngineOptions opt = combo.engineOptions();
        opt.maxStates = c.maxStates;
        opt.maxSeconds = options_.armMaxSeconds;
        req.engine = opt;
        const CheckResult result = session.run(req);
        ComboRun run;
        run.combo = combo;
        run.sig = signatureOf(result, capped);
        run.verdictLine = result.verdictText();
        // A budget-stopped arm is undecided at a wall-clock-dependent
        // point: its signature already reads "incomplete" (so every
        // cross-check skips it), but record *why* so the front-ends
        // report the arm as quarantined rather than silently passed.
        switch (result.stopReason) {
          case StopReason::Deadline:
          case StopReason::Memory:
          case StopReason::Cancelled:
          case StopReason::ShardFull:
            report.quarantined.push_back(
                combo.label() + ": " +
                stopReasonPhrase(result.stopReason));
            break;
          default:
            break;
        }
        return run;
    };

    const ComboRun refRun = runCombo(referenceCombo());
    report.reference = refRun.sig;
    report.runs.reserve(options_.portfolio.size() + 1);
    report.runs.push_back(refRun);

    // The symmetry-on comparison scope gets its own reference (counts
    // under symmetry differ from unreduced counts by design); the
    // first symmetry run fills it.
    const ComboRun *symRef = nullptr;

    for (const ComboDesc &combo : options_.portfolio) {
        if (combo.sym && !c.freeRun) {
            // Forcing symmetry reduction on program scenarios is
            // unsound by contract; not a comparison arm.
            continue;
        }
        const ComboRun run = runCombo(combo);
        report.runs.push_back(run);
        const ComboRun &stored = report.runs.back();
        if (!combo.sym) {
            compareRuns(refRun, stored, /*sameSymClass=*/true,
                        report.divergences);
        } else if (symRef == nullptr) {
            // First symmetry arm: compare the symmetry-invariant
            // subset against the global reference, then anchor the
            // strict comparisons for later symmetry arms.
            compareRuns(refRun, stored, /*sameSymClass=*/false,
                        report.divergences);
            symRef = &stored;
        } else {
            compareRuns(*symRef, stored, /*sameSymClass=*/true,
                        report.divergences);
        }
    }

    // Independent-implementation probe: the walker shares no explorer
    // code, so a clean complete space it finds dirty (or vice versa a
    // violation it stumbles on) is a genuine disagreement.
    if (options_.randomWalkProbe && refRun.sig.verdict == "holds" &&
        refRun.sig.exactCounts) {
        CheckSession session;
        const Scenario scenario = c.toScenario();
        InvariantSet storage;
        const InvariantSet &invariants = selectFamilies(
            session.invariantSet(c.config, c.devices), c.families,
            storage);
        RandomWalker walker(session.ruleSet(c.config, c.devices),
                            scenario, invariants);
        RandomWalkOptions walkOpt;
        walkOpt.seed = hashBytes(report.caseName.data(),
                                 report.caseName.size());
        walkOpt.walks = options_.walkWalks;
        walkOpt.maxSteps = options_.walkSteps;
        const RandomWalkResult walked = walker.run(walkOpt);
        if (walked.violation) {
            report.divergences.push_back(
                "random-walk probe found a violation in a space the "
                "reference explored completely clean (" +
                walked.violation->describe() + ")");
        }
    }

    return report;
}

} // namespace cxl::fuzz
