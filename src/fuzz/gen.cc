#include "fuzz/gen.hh"

#include <algorithm>

#include "invariants/invariant.hh"

namespace cxl::fuzz
{
namespace
{

/**
 * The invariant-family vocabulary the generator restricts cases to.
 * Some families exist only under particular config bits (e.g. the
 * data-conflict conjuncts need the stale-evict drop), so the
 * vocabulary is the union over the correct config and the
 * all-bits-flipped behavioural config, in first-appearance order.
 */
std::vector<std::string>
familyVocabulary()
{
    std::vector<std::string> vocab =
        InvariantSet::full(ProtocolConfig::correct(), kMaxDevices)
            .families();
    ProtocolConfig flipped;
    flipped.staleEvictDrop = false;
    flipped.cleanEvictNoData = false;
    flipped.hostCleanPull = true;
    for (const std::string &f :
         InvariantSet::full(flipped, kMaxDevices).families()) {
        if (std::find(vocab.begin(), vocab.end(), f) == vocab.end())
            vocab.push_back(f);
    }
    return vocab;
}

} // namespace

ScenarioGen::ScenarioGen(GenOptions options)
    : options_(options),
      rng_(options.seed),
      familyVocabulary_(familyVocabulary())
{
    options_.minDevices = std::max(1, options_.minDevices);
    options_.maxDevices =
        std::min(kMaxDevices,
                 std::max(options_.minDevices, options_.maxDevices));
}

void
ScenarioGen::addSeed(const FuzzCase &seedCase)
{
    seeds_.push_back(seedCase);
}

void
ScenarioGen::normalise(FuzzCase &c) const
{
    c.devices = std::clamp(c.devices, 1, kMaxDevices);
    if (c.devices > 0)
        c.owner = static_cast<std::uint8_t>(c.owner % c.devices);
    if (c.freeRun) {
        // Programs are ignored in free run; drop them so equal
        // behaviours serialise (and hash) identically.  Free runs are
        // the only unbounded cases, so they must carry a cap.
        c.programs.clear();
        if (c.maxStates == 0)
            c.maxStates = options_.freeRunCap;
    } else {
        c.programs.resize(c.devices);
        c.maxStates = 0;
    }
    std::sort(c.families.begin(), c.families.end());
    c.families.erase(
        std::unique(c.families.begin(), c.families.end()),
        c.families.end());
}

FuzzCase
ScenarioGen::next()
{
    if (!seeds_.empty() && rng_.chance(options_.mutationPercent)) {
        FuzzCase base =
            seeds_[rng_.below(static_cast<std::uint32_t>(
                seeds_.size()))];
        // A couple of stacked mutation steps reach further from the
        // seed than a single flip while staying in its neighbourhood.
        const std::uint32_t steps = 1 + rng_.below(3);
        for (std::uint32_t s = 0; s < steps; ++s)
            base = mutate(std::move(base));
        return base;
    }
    return fresh();
}

FuzzCase
ScenarioGen::fresh()
{
    FuzzCase c;
    c.devices =
        options_.minDevices +
        static_cast<int>(rng_.below(static_cast<std::uint32_t>(
            options_.maxDevices - options_.minDevices + 1)));
    c.freeRun = rng_.chance(25);

    // Initial state: bias towards the interesting templates evenly;
    // values stay tiny (stores write device_id + 1, so anything
    // beyond the device count adds no new behaviour).
    switch (rng_.below(3)) {
      case 0: c.init = InitKind::AllInvalid; break;
      case 1: c.init = InitKind::BothShared; break;
      default: c.init = InitKind::OneModified; break;
    }
    c.memVal = static_cast<std::uint8_t>(rng_.below(3));
    c.ownerVal = static_cast<std::uint8_t>(1 + rng_.below(3));
    c.owner = static_cast<std::uint8_t>(
        rng_.below(static_cast<std::uint32_t>(c.devices)));

    // Config bits: behavioural toggles keep their spec-leaning
    // defaults most of the time; each mutation fires rarely so the
    // correct protocol stays well represented in the stream.
    c.config.staleEvictDrop = !rng_.chance(25);
    c.config.cleanEvictNoData = !rng_.chance(25);
    c.config.hostCleanPull = rng_.chance(13);
    c.config.relaxSnoopPushesGo = rng_.chance(16);
    c.config.relaxSmadSnoopGuard = rng_.chance(16);
    c.config.relaxGoTailgate = rng_.chance(16);
    c.config.relaxOneSnoop = rng_.chance(16);

    // Family restriction: usually the full invariant, sometimes a
    // one- or two-family slice (how the paper's Section 5.2 scenarios
    // are phrased).
    if (rng_.chance(30) && !familyVocabulary_.empty()) {
        const std::uint32_t picks = 1 + rng_.below(2);
        for (std::uint32_t i = 0; i < picks; ++i) {
            c.families.push_back(
                familyVocabulary_[rng_.below(
                    static_cast<std::uint32_t>(
                        familyVocabulary_.size()))]);
        }
    }

    if (!c.freeRun) {
        c.programs.resize(c.devices);
        for (int d = 0; d < c.devices; ++d) {
            // Geometric-ish length: most programs stay short, the
            // tail reaches maxProgramLen.
            std::uint32_t len = 0;
            while (len < options_.maxProgramLen && rng_.chance(55))
                ++len;
            for (std::uint32_t i = 0; i < len; ++i) {
                switch (rng_.below(3)) {
                  case 0:
                    c.programs[d].push_back(Instr::Load);
                    break;
                  case 1:
                    c.programs[d].push_back(Instr::Store);
                    break;
                  default:
                    c.programs[d].push_back(Instr::Evict);
                    break;
                }
            }
        }
    }

    normalise(c);
    return c;
}

FuzzCase
ScenarioGen::mutate(FuzzCase base)
{
    switch (rng_.below(8)) {
      case 0: {
        // Flip one config bit.
        switch (rng_.below(7)) {
          case 0:
            base.config.staleEvictDrop = !base.config.staleEvictDrop;
            break;
          case 1:
            base.config.cleanEvictNoData =
                !base.config.cleanEvictNoData;
            break;
          case 2:
            base.config.hostCleanPull = !base.config.hostCleanPull;
            break;
          case 3:
            base.config.relaxSnoopPushesGo =
                !base.config.relaxSnoopPushesGo;
            break;
          case 4:
            base.config.relaxSmadSnoopGuard =
                !base.config.relaxSmadSnoopGuard;
            break;
          case 5:
            base.config.relaxGoTailgate =
                !base.config.relaxGoTailgate;
            break;
          default:
            base.config.relaxOneSnoop = !base.config.relaxOneSnoop;
            break;
        }
        break;
      }
      case 1: {
        // Insert an instruction at a random point of one program.
        if (!base.freeRun && base.devices > 0) {
            base.programs.resize(base.devices);
            std::vector<Instr> &prog =
                base.programs[rng_.below(
                    static_cast<std::uint32_t>(base.devices))];
            const Instr instr =
                rng_.below(3) == 0
                    ? Instr::Load
                    : (rng_.below(2) == 0 ? Instr::Store
                                          : Instr::Evict);
            prog.insert(prog.begin() +
                            rng_.below(static_cast<std::uint32_t>(
                                prog.size() + 1)),
                        instr);
        }
        break;
      }
      case 2: {
        // Delete an instruction.
        if (!base.freeRun && !base.programs.empty()) {
            std::vector<Instr> &prog =
                base.programs[rng_.below(
                    static_cast<std::uint32_t>(
                        base.programs.size()))];
            if (!prog.empty()) {
                prog.erase(prog.begin() +
                           rng_.below(static_cast<std::uint32_t>(
                               prog.size())));
            }
        }
        break;
      }
      case 3: {
        // Grow or shrink the device count.
        const int delta = rng_.chance(50) ? 1 : -1;
        base.devices = std::clamp(base.devices + delta,
                                  options_.minDevices,
                                  options_.maxDevices);
        break;
      }
      case 4: {
        // Switch the initial-state template.
        switch (rng_.below(3)) {
          case 0: base.init = InitKind::AllInvalid; break;
          case 1: base.init = InitKind::BothShared; break;
          default: base.init = InitKind::OneModified; break;
        }
        base.owner = static_cast<std::uint8_t>(
            rng_.below(static_cast<std::uint32_t>(
                std::max(1, base.devices))));
        break;
      }
      case 5: {
        // Toggle free-run mode; normalise() rebuilds the program /
        // cap shape for the new mode.
        base.freeRun = !base.freeRun;
        if (base.freeRun)
            base.maxStates = options_.freeRunCap;
        break;
      }
      case 6: {
        // Adjust the family restriction: clear it, or swap in a
        // random family.
        if (!base.families.empty() && rng_.chance(50)) {
            base.families.clear();
        } else if (!familyVocabulary_.empty()) {
            base.families.push_back(
                familyVocabulary_[rng_.below(
                    static_cast<std::uint32_t>(
                        familyVocabulary_.size()))]);
            while (base.families.size() > 2)
                base.families.erase(base.families.begin());
        }
        break;
      }
      default: {
        // Nudge the initial values.
        base.memVal = static_cast<std::uint8_t>(rng_.below(3));
        base.ownerVal = static_cast<std::uint8_t>(1 + rng_.below(3));
        break;
      }
    }
    normalise(base);
    return base;
}

} // namespace cxl::fuzz
