#include "fuzz/minimize.hh"

#include <algorithm>

#include "fuzz/oracle.hh"

namespace cxl::fuzz
{
namespace
{

/** Keep a candidate structurally well-formed after a shrink. */
void
normalise(FuzzCase &c)
{
    c.devices = std::clamp(c.devices, 1, kMaxDevices);
    c.owner = static_cast<std::uint8_t>(c.owner % c.devices);
    if (c.freeRun)
        c.programs.clear();
    else
        c.programs.resize(c.devices);
}

} // namespace

FuzzCase
minimizeCase(const FuzzCase &input, const VerdictSignature &target,
             MinimizeStats *stats)
{
    FuzzCase current = input;
    normalise(current);

    // Violations shrink towards the smallest scenario that still
    // reproduces the class (conjunct + family); the witness depth may
    // legitimately drop.  A "holds" class carries no conjunct, so it
    // would collapse into the trivial empty scenario — preserving the
    // noveltyKey (diameter class) instead keeps the corpus's clean
    // cases exploration-size-diverse.
    const bool holdsClass = target.verdict == "holds";
    const std::string want =
        holdsClass ? target.noveltyKey() : target.classKey();

    MinimizeStats local;
    MinimizeStats &st = stats ? *stats : local;

    auto accept = [&](const FuzzCase &candidate) {
        ++st.candidates;
        const VerdictSignature sig = referenceSignature(candidate);
        const std::string got =
            holdsClass ? sig.noveltyKey() : sig.classKey();
        if (got != want)
            return false;
        ++st.shrinks;
        return true;
    };

    bool shrunk = true;
    while (shrunk) {
        shrunk = false;

        // Pass 1: fewer devices (BothShared needs two by definition).
        const int minDevices =
            current.init == InitKind::BothShared ? 2 : 1;
        while (current.devices > minDevices) {
            FuzzCase cand = current;
            --cand.devices;
            normalise(cand);
            if (!accept(cand))
                break;
            current = cand;
            shrunk = true;
        }

        // Pass 2: config bits back to the correct-protocol defaults.
        const ProtocolConfig defaults = ProtocolConfig::correct();
        auto tryBit = [&](bool ProtocolConfig::*bit) {
            if (current.config.*bit == defaults.*bit)
                return;
            FuzzCase cand = current;
            cand.config.*bit = defaults.*bit;
            if (accept(cand)) {
                current = cand;
                shrunk = true;
            }
        };
        tryBit(&ProtocolConfig::relaxSnoopPushesGo);
        tryBit(&ProtocolConfig::relaxSmadSnoopGuard);
        tryBit(&ProtocolConfig::relaxGoTailgate);
        tryBit(&ProtocolConfig::relaxOneSnoop);
        tryBit(&ProtocolConfig::hostCleanPull);
        tryBit(&ProtocolConfig::staleEvictDrop);
        tryBit(&ProtocolConfig::cleanEvictNoData);

        // Pass 3: lift the family restriction (entirely, else one
        // family at a time).
        if (!current.families.empty()) {
            FuzzCase cand = current;
            cand.families.clear();
            if (accept(cand)) {
                current = cand;
                shrunk = true;
            }
        }
        for (std::size_t i = 0;
             current.families.size() > 1 && i < current.families.size();) {
            FuzzCase cand = current;
            cand.families.erase(cand.families.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (accept(cand)) {
                current = cand;
                shrunk = true;
            } else {
                ++i;
            }
        }

        // Pass 4: drop litmus instructions, front to back per device.
        for (std::size_t d = 0; d < current.programs.size(); ++d) {
            for (std::size_t i = 0;
                 i < current.programs[d].size();) {
                FuzzCase cand = current;
                cand.programs[d].erase(
                    cand.programs[d].begin() +
                    static_cast<std::ptrdiff_t>(i));
                if (accept(cand)) {
                    current = cand;
                    shrunk = true;
                } else {
                    ++i;
                }
            }
        }

        // Pass 5: smallest initial values that still reproduce.
        auto tryValue = [&](std::uint8_t FuzzCase::*field,
                            std::uint8_t want) {
            if (current.*field == want)
                return;
            FuzzCase cand = current;
            cand.*field = want;
            if (accept(cand)) {
                current = cand;
                shrunk = true;
            }
        };
        tryValue(&FuzzCase::memVal, 0);
        tryValue(&FuzzCase::ownerVal, 1);
        tryValue(&FuzzCase::owner, 0);
    }

    return current;
}

} // namespace cxl::fuzz
