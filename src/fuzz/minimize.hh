/**
 * @file
 * Trace-guided corpus minimizer: greedily shrink a FuzzCase — drop
 * litmus steps, clear config bits, reduce devices, lift the family
 * restriction — while the reference run keeps reproducing the same
 * verdict class (verdict + violation kind + conjunct + family).
 *
 * Depth and state counts are deliberately allowed to change: the
 * point of a minimized corpus entry is the smallest scenario that
 * still witnesses the class, and dropping steps legitimately shortens
 * the witness.  The corpus stores the minimized case's own reference
 * signature, so replay still checks exact counts.  "holds" cases are
 * the exception — with no conjunct to preserve they would all
 * collapse into the empty scenario, so they additionally keep their
 * diameter class (the noveltyKey).
 *
 * The pass order is fixed and each pass runs to a fixpoint, which
 * makes minimization deterministic and idempotent: minimizing an
 * already-minimal case is a no-op (every candidate shrink was already
 * tried and rejected).
 */

#ifndef CXL_FUZZ_MINIMIZE_HH
#define CXL_FUZZ_MINIMIZE_HH

#include <cstddef>

#include "fuzz/case.hh"

namespace cxl::fuzz
{

/** Minimization effort accounting. */
struct MinimizeStats {
    std::size_t candidates = 0; ///< reference runs spent
    std::size_t shrinks = 0;    ///< accepted candidates
};

/**
 * Shrink @p input while its reference signature keeps the classKey of
 * @p target (normally input's own reference signature, computed by
 * the caller).  Returns the fixpoint.
 */
FuzzCase minimizeCase(const FuzzCase &input,
                      const VerdictSignature &target,
                      MinimizeStats *stats = nullptr);

} // namespace cxl::fuzz

#endif // CXL_FUZZ_MINIMIZE_HH
