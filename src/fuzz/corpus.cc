#include "fuzz/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "support/json.hh"
#include "support/json_parse.hh"

namespace cxl::fuzz
{
namespace
{

namespace fs = std::filesystem;

std::string
renderSignatureJson(const VerdictSignature &sig)
{
    JsonObject json;
    json.str("verdict", sig.verdict)
        .str("kind", sig.kind)
        .str("conjunct", sig.conjunct)
        .str("family", sig.family)
        .num("depth", static_cast<std::uint64_t>(sig.depth))
        .boolean("exact_counts", sig.exactCounts)
        .num("states", sig.states)
        .num("diameter", static_cast<std::uint64_t>(sig.diameter));
    return json.render();
}

VerdictSignature
signatureFromJson(const JsonValue &doc)
{
    VerdictSignature sig;
    sig.verdict = doc.getStr("verdict");
    sig.kind = doc.getStr("kind", "-");
    sig.conjunct = doc.getStr("conjunct", "-");
    sig.family = doc.getStr("family", "-");
    sig.depth = static_cast<std::uint32_t>(doc.getNum("depth"));
    sig.exactCounts = doc.getBool("exact_counts");
    sig.states = doc.get("states") ? doc.get("states")->asUint() : 0;
    sig.diameter =
        static_cast<std::uint32_t>(doc.getNum("diameter"));
    return sig;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error("cannot read " + path);
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

std::string
renderCorpusEntryJson(const CorpusEntry &entry)
{
    JsonObject json;
    json.str("schema", "cxl-fuzz-corpus/v1")
        .str("name", entry.fuzzCase.name())
        .raw("case", entry.fuzzCase.renderJson())
        .raw("signature", renderSignatureJson(entry.signature));
    return json.render();
}

CorpusEntry
corpusEntryFromJson(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    if (doc.getStr("schema") != "cxl-fuzz-corpus/v1")
        throw std::runtime_error("not a cxl-fuzz-corpus/v1 document");
    const JsonValue *fuzzCase = doc.get("case");
    const JsonValue *signature = doc.get("signature");
    if (!fuzzCase || !signature)
        throw std::runtime_error("corpus entry missing case/signature");
    CorpusEntry entry;
    entry.fuzzCase = FuzzCase::fromJson(fuzzCase->render());
    entry.signature = signatureFromJson(*signature);
    return entry;
}

std::vector<CorpusEntry>
loadCorpus(const std::string &dir)
{
    std::vector<CorpusEntry> entries;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return entries;

    std::vector<std::string> files;
    for (const fs::directory_entry &de : fs::directory_iterator(dir)) {
        if (de.path().extension() == ".json")
            files.push_back(de.path().string());
    }
    // Directory iteration order is filesystem-dependent; the sort is
    // what makes corpus order (and everything derived from it)
    // deterministic.
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        try {
            entries.push_back(corpusEntryFromJson(readFile(file)));
        } catch (const std::exception &e) {
            throw std::runtime_error(file + ": " + e.what());
        }
    }
    return entries;
}

bool
saveCorpusEntry(const std::string &dir, const CorpusEntry &entry)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string path =
        (fs::path(dir) / (entry.fuzzCase.name() + ".json")).string();
    return writeFile(path, renderCorpusEntryJson(entry) + "\n");
}

void
removeCorpusEntry(const std::string &dir, const std::string &name)
{
    std::error_code ec;
    fs::remove(fs::path(dir) / (name + ".json"), ec);
}

std::string
renderManifest(const std::vector<CorpusEntry> &entries)
{
    std::vector<std::string> lines;
    for (const CorpusEntry &entry : entries) {
        lines.push_back(entry.fuzzCase.name() + " " +
                        entry.signature.key() + "\n");
    }
    std::sort(lines.begin(), lines.end());
    std::string text;
    for (const std::string &line : lines)
        text += line;
    return text;
}

bool
writeManifest(const std::string &dir,
              const std::vector<CorpusEntry> &entries)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    return writeFile((fs::path(dir) / "MANIFEST.txt").string(),
                     renderManifest(entries));
}

std::size_t
promoteToRegistry(const std::vector<CorpusEntry> &entries)
{
    std::size_t registered = 0;
    for (const CorpusEntry &entry : entries) {
        // Registry expectations can only say "holds" or "reaches a
        // violation (family)", and registered scenarios run without
        // the fuzz case's state cap — so deadlock- and
        // incomplete-signature entries stay fuzz-replay-only.
        if (entry.signature.verdict != "holds" &&
            entry.signature.verdict != "violation") {
            continue;
        }
        const FuzzCase &c = entry.fuzzCase;
        scenarios::Entry reg;
        reg.name = c.name();
        reg.description =
            "fuzz-promoted scenario (reference signature " +
            entry.signature.key() + ")";
        reg.config = c.config;
        reg.families = c.families;
        reg.expectViolation = entry.signature.verdict == "violation";
        if (entry.signature.kind == "conjunct")
            reg.expectedViolationFamily = entry.signature.family;
        reg.deviceScalable = false;
        reg.fixedDevices = c.devices;
        reg.build = [scenario = c.toScenario()](int) {
            return scenario;
        };
        if (scenarios::registerEntry(std::move(reg)))
            ++registered;
    }
    return registered;
}

} // namespace cxl::fuzz
