#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "support/json_parse.hh"

namespace cxl::serve
{

ClientResult
requestCheck(const std::string &socketPath, const Request &request,
             const std::function<void(const ProgressSnapshot &)>
                 &onProgress)
{
    ClientResult out;
    const int fd = connectUnixSocket(socketPath);
    if (fd < 0) {
        out.error = "cannot connect to " + socketPath + ": " +
                    std::strerror(errno);
        return out;
    }
    if (!sendFrame(fd, renderRequestJson(request))) {
        out.error = "cannot send request: " +
                    std::string(std::strerror(errno));
        ::close(fd);
        return out;
    }

    FrameReader reader;
    std::string line;
    while (recvFrame(fd, reader, line)) {
        JsonValue frame;
        try {
            frame = parseJson(line);
        } catch (const std::exception &e) {
            out.error = std::string("bad frame from server: ") +
                        e.what();
            ::close(fd);
            return out;
        }
        const std::string type = frame.getStr("type");
        if (type == "progress") {
            ++out.progressFrames;
            if (onProgress) {
                ProgressSnapshot p;
                p.states = frame.get("states")
                               ? frame.get("states")->asUint()
                               : 0;
                p.transitions =
                    frame.get("transitions")
                        ? frame.get("transitions")->asUint()
                        : 0;
                p.depth = static_cast<std::uint32_t>(
                    frame.getNum("depth"));
                p.rssBytes = frame.get("rss_bytes")
                                 ? frame.get("rss_bytes")->asUint()
                                 : 0;
                p.seconds = frame.getNum("seconds");
                onProgress(p);
            }
            continue;
        }
        if (type == "result") {
            out.ok = true;
            out.cached = frame.getBool("cached");
            out.payload.verdictLine = frame.getStr("verdict_line");
            out.payload.text = frame.getStr("text");
            if (const JsonValue *res = frame.get("result")) {
                // Re-rendering must not perturb the served bytes, so
                // relay the raw substring: the result object is the
                // frame's last member, between the "result": marker
                // and the frame's closing brace.
                const std::string marker = "\"result\": ";
                const std::size_t at = line.rfind(marker);
                if (at != std::string::npos &&
                    line.size() > at + marker.size()) {
                    out.payload.resultJson = line.substr(
                        at + marker.size(),
                        line.size() - at - marker.size() - 1);
                } else {
                    out.payload.resultJson = res->render();
                }
            }
            ::close(fd);
            return out;
        }
        if (type == "stats") {
            out.ok = true;
            if (const JsonValue *stats = frame.get("stats"))
                out.payload.resultJson = stats->render();
            ::close(fd);
            return out;
        }
        if (type == "error") {
            out.error = frame.getStr("message", "server error");
            ::close(fd);
            return out;
        }
        // Unknown frame type: tolerate (forward compatibility).
    }
    out.error = "connection closed before a result frame";
    ::close(fd);
    return out;
}

std::string
fetchStats(const std::string &socketPath, std::string &error)
{
    Request req;
    req.type = Request::Type::Stats;
    req.id = "stats";
    const ClientResult res = requestCheck(socketPath, req);
    if (!res.ok) {
        error = res.error;
        return "";
    }
    return res.payload.resultJson;
}

} // namespace cxl::serve
