/**
 * @file
 * Bounded LRU memoization of served CheckResults.
 *
 * Soundness: the engines guarantee that verdicts, state counts and
 * diameters of *uncapped* runs are thread-count- and
 * schedule-deterministic, and renderJson(deterministic) zeroes the
 * wall-clock keys — so replaying the byte-exact first answer for an
 * identical request is indistinguishable from re-exploring.  The two
 * places that could break this are excluded by construction:
 *
 *  - budget-stopped runs (Incomplete verdicts) stop at
 *    wall-clock-/thread-dependent points, so cacheable() rejects
 *    them — every Incomplete is re-run;
 *  - requests that resolve differently must key differently, which
 *    is the canonicalizer's contract (serve/server.cc): the key is
 *    built from *resolved* values (registry-canonical scenario name
 *    or content-hash case name, resolved device count, the 7 config
 *    bits, sorted-deduped families, resolved thread count and
 *    symmetry, schedule, caps, deterministic bit), so knob order and
 *    name aliases collapse and distinct semantics never alias.
 *
 * Thread-safe; one mutex (lookups copy small strings, eviction is
 * O(1) via the list/map classic).
 */

#ifndef CXL_SERVE_CACHE_HH
#define CXL_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "api/check.hh"
#include "serve/protocol.hh"

namespace cxl::serve
{

/** Cache effectiveness counters (monotonic over a server's life). */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0; ///< current population
};

/** True when @p result may be memoized: every verdict except a
 * budget-stopped Incomplete (see the file comment). */
inline bool
cacheable(const CheckResult &result)
{
    return result.verdict != CheckResult::Verdict::Incomplete;
}

class ResultCache
{
  public:
    /** @p maxEntries == 0 disables caching (every lookup misses,
     * inserts are dropped). */
    explicit ResultCache(std::size_t maxEntries)
        : maxEntries_(maxEntries)
    {
    }

    /** The payload cached under @p key, refreshed to most recently
     * used; counts a hit or miss. */
    std::optional<ResultPayload> lookup(const std::string &key);

    /** Memoize @p payload under @p key (refreshes an existing entry),
     * evicting the least recently used entry past capacity. */
    void insert(const std::string &key, const ResultPayload &payload);

    CacheStats stats() const;

  private:
    struct Entry {
        std::string key;
        ResultPayload payload;
    };

    const std::size_t maxEntries_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::map<std::string, std::list<Entry>::iterator> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace cxl::serve

#endif // CXL_SERVE_CACHE_HH
