#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/scenarios.hh"
#include "support/json.hh"

namespace cxl::serve
{
namespace
{

/** The 7 ProtocolConfig switches packed in the api-layer modelKey
 * order (staleEvictDrop most significant). */
std::uint32_t
configBits(const ProtocolConfig &c)
{
    static_assert(sizeof(ProtocolConfig) == 7,
                  "a new ProtocolConfig switch needs a bit() line "
                  "below, or distinct configs alias one cache key");
    std::uint32_t bits = 0;
    auto bit = [&bits](bool b) { bits = (bits << 1) | (b ? 1u : 0u); };
    bit(c.staleEvictDrop);
    bit(c.cleanEvictNoData);
    bit(c.hostCleanPull);
    bit(c.relaxSnoopPushesGo);
    bit(c.relaxSmadSnoopGuard);
    bit(c.relaxGoTailgate);
    bit(c.relaxOneSnoop);
    return bits;
}

std::size_t
resolvedThreads(std::size_t requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

/** True when the client hung up (or errored) on @p fd; a nonblocking
 * one-byte peek — clients send nothing after their request line, so
 * readable-with-zero means EOF. */
bool
peerClosed(int fd)
{
    char b;
    const ssize_t r = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0)
        return true;
    if (r < 0) {
        return !(errno == EAGAIN || errno == EWOULDBLOCK ||
                 errno == EINTR);
    }
    return false;
}

/** Close @p fd on scope exit. */
struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
};

} // namespace

ResolvedRequest
resolveRequest(const Request &request, const EngineOptions &defaults,
               double defaultMaxSeconds)
{
    ResolvedRequest rr;

    // ---- scenario identity ---------------------------------------
    // The key uses resolved names: the registry-canonical entry name
    // (so "clean-evict-test" and "clean_evict" alias one entry and
    // one cache line) or the fuzz case's content hash (which already
    // covers the case's devices/programs/config/families).
    std::string ident;
    int ndev = 0;
    bool free_run = false;
    ProtocolConfig fallback_config;
    std::vector<std::string> fallback_families;

    if (request.inlineCase) {
        const fuzz::FuzzCase &c = *request.inlineCase;
        rr.check = c.toRequest();
        ident = "g:" + c.name();
        ndev = c.devices;
        free_run = c.freeRun;
        fallback_config = c.config;
        fallback_families = c.families;
    } else {
        const scenarios::Entry *entry =
            scenarios::byName(request.scenario);
        if (!entry) {
            throw std::runtime_error("unknown scenario '" +
                                     request.scenario + "'");
        }
        rr.check.scenario = entry->name;
        rr.check.devices = request.devices;
        ident = "s:" + entry->name;
        if (!entry->deviceScalable &&
            request.devices != entry->fixedDevices) {
            throw std::runtime_error(
                "scenario '" + entry->name + "' is pinned to " +
                std::to_string(entry->fixedDevices) + " device(s)");
        }
        ndev = entry->deviceScalable ? request.devices
                                     : entry->fixedDevices;
        if (ndev < 1 || ndev > kMaxDevices) {
            throw std::runtime_error(
                "device count " + std::to_string(ndev) +
                " out of range [1, " + std::to_string(kMaxDevices) +
                "]");
        }
        free_run = entry->build(ndev).freeRun;
        fallback_config = entry->config;
        fallback_families = entry->families;
    }
    if (request.config)
        rr.check.config = *request.config;
    if (request.families)
        rr.check.families = *request.families;
    rr.check.checks = request.checks;

    // ---- engine knobs over the daemon's defaults -----------------
    EngineOptions e = defaults;
    e.cancel = CancelToken();
    e.progress = ProgressFn();
    const EngineKnobs &k = request.engine;
    if (k.threads)
        e.threads = static_cast<std::size_t>(*k.threads);
    if (k.symmetry)
        e.symmetry = *k.symmetry;
    // store picks the backend, then compact toggles the compacted
    // variant of whatever kind is in force — same layering as the
    // CLI's --store/--compact.
    if (k.store)
        e.store = *k.store;
    if (k.compact) {
        e.store = *k.compact
                      ? storeKindCompacted(e.store)
                      : (storeKindMmap(e.store) ? StoreKind::Mmap
                                                : StoreKind::InRam);
    }
    if (k.por)
        e.por = *k.por;
    if (k.schedule)
        e.schedule = *k.schedule;
    if (k.maxStates)
        e.maxStates = *k.maxStates;
    else if (request.inlineCase && request.inlineCase->maxStates != 0)
        e.maxStates = request.inlineCase->maxStates;
    if (k.expectStates)
        e.expectedStates = *k.expectStates;
    if (k.maxSeconds)
        e.maxSeconds = *k.maxSeconds;
    else if (e.maxSeconds <= 0 && defaultMaxSeconds > 0)
        e.maxSeconds = defaultMaxSeconds;
    if (k.maxRssMb)
        e.maxRssBytes = *k.maxRssMb * 1024 * 1024;
    rr.engine = e;

    // ---- cache key over the *resolved* tuple ---------------------
    // Included: everything that changes the served bytes — identity,
    // devices, config bits, families (sorted/deduped; the invariant
    // filter is order- and duplicate-insensitive), check kind, and
    // the engine knobs echoed in the JSON (resolved threads,
    // resolved symmetry, the store's *compact bit*, por, schedule,
    // the effective state cap) plus the deterministic rendering bit.
    // Excluded: budgets (maxSeconds/maxRssBytes/storeCapacity — they
    // only matter to Incomplete results, which are never cached),
    // expectedStates (presizing), the progress knobs (observation
    // only), and the store *backend*: ram and mmap spellings of the
    // same compactness produce byte-identical JSON (the backend is
    // deliberately not echoed there), so they collapse onto one
    // cache entry and a ram-warmed cache serves mmap requests.
    const ProtocolConfig cfg =
        rr.check.config.value_or(fallback_config);
    std::vector<std::string> families =
        rr.check.families.value_or(fallback_families);
    std::sort(families.begin(), families.end());
    families.erase(std::unique(families.begin(), families.end()),
                   families.end());
    const bool sym_on =
        e.symmetry == SymmetryMode::On ||
        (e.symmetry == SymmetryMode::Auto && free_run && ndev > 2);
    const std::uint64_t cap =
        e.maxStates != 0 ? e.maxStates : ExploreOptions{}.maxStates;
    const char *check_word =
        request.checks == CheckKind::Invariants ? "inv"
        : request.checks == CheckKind::Deadlock ? "dl"
                                                : "both";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "|d%d|c%02x|k%s|t%zu|y%d|m%d|p%d|h%s|x%llu|det%d",
                  ndev, configBits(cfg), check_word,
                  resolvedThreads(e.threads), sym_on ? 1 : 0,
                  storeKindCompact(e.store) ? 1 : 0,
                  e.por ? 1 : 0,
                  e.schedule == Schedule::WorkSteal ? "ws" : "bfs",
                  static_cast<unsigned long long>(cap),
                  request.deterministic ? 1 : 0);
    rr.cacheKey = ident + buf + "|f:";
    for (std::size_t i = 0; i < families.size(); ++i) {
        if (i)
            rr.cacheKey += ',';
        rr.cacheKey += families[i];
    }
    return rr;
}

// ------------------------------------------------------ ServerStats

std::string
ServerStats::renderText() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "cxl_checkd stats:\n"
        "  connections accepted   %llu\n"
        "  checks served          %llu\n"
        "  stats served           %llu\n"
        "  errors                 %llu\n"
        "  rejected (busy/drain)  %llu\n"
        "  disconnect cancels     %llu\n"
        "  result cache           %llu hits / %llu misses / "
        "%llu evictions (%llu live)\n"
        "  model cache            %llu reuses / %llu builds\n"
        "  draining               %s\n",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(checksServed),
        static_cast<unsigned long long>(statsServed),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(disconnectCancels),
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.entries),
        static_cast<unsigned long long>(modelReuses),
        static_cast<unsigned long long>(modelBuilds),
        draining ? "yes" : "no");
    return buf;
}

std::string
ServerStats::renderJson() const
{
    JsonObject json;
    json.str("schema", "cxl-checkd-stats/v1")
        .num("accepted", accepted)
        .num("checks_served", checksServed)
        .num("stats_served", statsServed)
        .num("errors", errors)
        .num("rejected", rejected)
        .num("disconnect_cancels", disconnectCancels)
        .num("cache_hits", cache.hits)
        .num("cache_misses", cache.misses)
        .num("cache_evictions", cache.evictions)
        .num("cache_entries", cache.entries)
        .num("model_builds", modelBuilds)
        .num("model_reuses", modelReuses)
        .boolean("draining", draining);
    return json.render();
}

// ----------------------------------------------------------- Server

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cacheEntries)
{
    options_.engine.cancel = CancelToken();
    options_.engine.progress = ProgressFn();
}

Server::~Server()
{
    if (started_)
        drain();
}

void
Server::start()
{
    if (options_.socketPath.empty())
        throw std::runtime_error("server needs a socket path");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: " +
                                 options_.socketPath);
    }
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("socket(): " +
                                 std::string(std::strerror(errno)));

    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE) {
            const std::string why = std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
            throw std::runtime_error(
                "bind(" + options_.socketPath + "): " + why);
        }
        // A socket file exists.  If nobody answers on it, it is a
        // stale leftover of a crashed daemon: unlink and retry.  If
        // a connect succeeds, a live server owns the path — refuse.
        const int probe = connectUnixSocket(options_.socketPath);
        if (probe >= 0) {
            ::close(probe);
            ::close(listenFd_);
            listenFd_ = -1;
            throw std::runtime_error("another server is live on " +
                                     options_.socketPath);
        }
        ::unlink(options_.socketPath.c_str());
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
            throw std::runtime_error(
                "bind(" + options_.socketPath + "): " + why);
        }
    }
    if (::listen(listenFd_, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("listen(): " + why);
    }
    if (::pipe(wakePipe_) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("pipe(): " +
                                 std::string(std::strerror(errno)));
    }

    const std::size_t workers = std::max<std::size_t>(
        1, options_.workers);
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        workers_.push_back(
            std::make_unique<WorkerState>(options_.engine));
    }
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workerThreads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        workerThreads_.emplace_back([this, w] { workerLoop(w); });
}

void
Server::beginDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    if (wakePipe_[1] >= 0) {
        const char byte = 'x';
        while (::write(wakePipe_[1], &byte, 1) < 0 && errno == EINTR) {
        }
    }
    // In-flight runs finish as governed Incompletes; their clients
    // still get the (uncached) partial answer.
    {
        const std::lock_guard<std::mutex> lock(tokensMutex_);
        for (auto &[id, token] : activeTokens_)
            token.cancel();
    }
    queueCv_.notify_all();
}

void
Server::drain()
{
    if (!started_)
        return;
    beginDrain();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &t : workerThreads_) {
        if (t.joinable())
            t.join();
    }
    workerThreads_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::unlink(options_.socketPath.c_str());
    started_ = false;
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.checksServed = checksServed_.load(std::memory_order_relaxed);
    s.statsServed = statsServed_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.disconnectCancels =
        disconnectCancels_.load(std::memory_order_relaxed);
    for (const std::unique_ptr<WorkerState> &w : workers_) {
        s.modelBuilds +=
            w->modelBuilds.load(std::memory_order_relaxed);
        s.modelReuses +=
            w->modelReuses.load(std::memory_order_relaxed);
    }
    s.cache = cache_.stats();
    s.draining = draining();
    return s;
}

void
Server::acceptLoop()
{
    while (!draining()) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int n = ::poll(fds, 2, 500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // drain wake-up
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        bool enqueued = false;
        {
            const std::lock_guard<std::mutex> lock(queueMutex_);
            if (!draining() && queue_.size() < options_.queueDepth) {
                queue_.push_back(fd);
                enqueued = true;
            }
        }
        if (enqueued) {
            queueCv_.notify_one();
        } else {
            // Bounded queue: overload is an immediate, explicit
            // turn-away, not unbounded buffering.
            sendFrame(fd, renderErrorFrame(
                              "", "server busy: request queue full"));
            ::close(fd);
            rejected_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Server::workerLoop(std::size_t w)
{
    WorkerState &state = *workers_[w];
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() || draining();
            });
            if (queue_.empty())
                return; // draining, nothing left to answer
            fd = queue_.front();
            queue_.pop_front();
        }
        handleConnection(state, fd);
    }
}

void
Server::handleConnection(WorkerState &state, int fd)
{
    const FdCloser closer{fd};
    FrameReader reader;
    std::string line;
    if (!recvFrame(fd, reader, line)) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Request wire;
    try {
        wire = requestFromJson(line);
    } catch (const std::exception &e) {
        sendFrame(fd, renderErrorFrame(
                          "", std::string("bad request: ") + e.what()));
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (wire.type == Request::Type::Stats) {
        sendFrame(fd,
                  renderStatsFrame(wire.id, stats().renderJson()));
        statsServed_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (draining()) {
        // Queued behind the drain: turned away, not silently dropped.
        sendFrame(fd, renderErrorFrame(wire.id, "server draining"));
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    serveCheck(state, fd, wire);
}

void
Server::serveCheck(WorkerState &state, int fd, const Request &wire)
{
    ResolvedRequest rr;
    try {
        rr = resolveRequest(wire, options_.engine,
                            options_.defaultMaxSeconds);
    } catch (const std::exception &e) {
        sendFrame(fd, renderErrorFrame(wire.id, e.what()));
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    if (std::optional<ResultPayload> hit = cache_.lookup(rr.cacheKey)) {
        // Bit-identical replay of the first answer.
        if (sendFrame(fd, renderResultFrame(wire.id, true, *hit)))
            checksServed_.fetch_add(1, std::memory_order_relaxed);
        else
            errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    const CancelToken token = CancelToken::create();
    std::uint64_t token_id;
    {
        const std::lock_guard<std::mutex> lock(tokensMutex_);
        token_id = nextTokenId_++;
        activeTokens_.emplace(token_id, token);
        if (draining())
            token.cancel(); // raced beginDrain's sweep
    }

    // Disconnect detection and progress streaming both ride the
    // engine's progress callback (governor-poll granularity, one
    // call at a time by the ticker's emit lock).
    std::atomic<bool> client_gone{false};
    rr.engine.progress = [this, fd, &wire, &client_gone,
                          &token](const ProgressSnapshot &p) {
        if (client_gone.load(std::memory_order_relaxed))
            return;
        const bool gone =
            peerClosed(fd) ||
            (wire.progress &&
             !sendFrame(fd, renderProgressFrame(wire.id, p)));
        if (gone) {
            client_gone.store(true, std::memory_order_relaxed);
            token.cancel();
            disconnectCancels_.fetch_add(1,
                                         std::memory_order_relaxed);
        }
    };
    rr.engine.progressIntervalSeconds = wire.progressInterval;
    rr.engine.cancel = token;
    rr.check.engine = rr.engine;

    CheckResult res;
    bool ran = false;
    std::string run_error;
    try {
        res = state.session.run(rr.check);
        ran = true;
    } catch (const std::exception &e) {
        run_error = e.what();
    }
    {
        const std::lock_guard<std::mutex> lock(tokensMutex_);
        activeTokens_.erase(token_id);
    }
    // Publish the session's model-cache counters where stats() can
    // read them without touching the (single-threaded) session.
    std::uint64_t builds = 0, reuses = 0;
    for (const CheckSession::ModelCacheStat &m :
         state.session.modelCacheStats()) {
        ++builds;
        reuses += m.hits;
    }
    state.modelBuilds.store(builds, std::memory_order_relaxed);
    state.modelReuses.store(reuses, std::memory_order_relaxed);

    if (!ran) {
        sendFrame(fd, renderErrorFrame(wire.id, run_error));
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    ResultPayload payload;
    payload.verdictLine = res.verdictText();
    payload.text = res.renderText();
    payload.resultJson = res.renderJson(wire.deterministic);
    if (cacheable(res))
        cache_.insert(rr.cacheKey, payload);

    if (client_gone.load(std::memory_order_relaxed))
        return; // nobody left to answer; the run is still cached
    if (sendFrame(fd, renderResultFrame(wire.id, false, payload)))
        checksServed_.fetch_add(1, std::memory_order_relaxed);
    else
        errors_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace cxl::serve
