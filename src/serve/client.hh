/**
 * @file
 * Client side of the cxl-checkd/v1 protocol: connect, send one
 * request frame, relay the response stream.  Used by
 * `cxl_check --connect SOCK` (so offline and served output stay
 * byte-comparable) and by the serve tests.
 */

#ifndef CXL_SERVE_CLIENT_HH
#define CXL_SERVE_CLIENT_HH

#include <functional>
#include <string>

#include "serve/protocol.hh"

namespace cxl::serve
{

/** Outcome of one served request. */
struct ClientResult {
    /** A result frame arrived; the payload fields below are valid. */
    bool ok = false;

    /** Connect/protocol failure or the server's error frame. */
    std::string error;

    bool cached = false; ///< answered from the server's result cache
    ResultPayload payload;

    /** Progress frames relayed before the terminal frame. */
    std::uint64_t progressFrames = 0;
};

/**
 * Run one check (or stats) request against the daemon at
 * @p socketPath.  @p onProgress (may be empty) sees every progress
 * frame as it arrives.  Never throws: failures land in
 * ClientResult::error.
 *
 * For a stats request the stats object is returned in
 * payload.resultJson.
 */
ClientResult
requestCheck(const std::string &socketPath, const Request &request,
             const std::function<void(const ProgressSnapshot &)>
                 &onProgress = {});

/** Fetch the server stats object (rendered JSON); empty string on
 * failure with the reason in @p error. */
std::string fetchStats(const std::string &socketPath,
                       std::string &error);

} // namespace cxl::serve

#endif // CXL_SERVE_CLIENT_HH
