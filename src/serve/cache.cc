#include "serve/cache.hh"

namespace cxl::serve
{

std::optional<ResultPayload>
ResultCache::lookup(const std::string &key)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->payload;
}

void
ResultCache::insert(const std::string &key,
                    const ResultPayload &payload)
{
    if (maxEntries_ == 0)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // A racing worker answered the same request first; the
        // payloads are byte-identical by the determinism argument,
        // so keep the incumbent and just refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front({key, payload});
    index_.emplace(key, lru_.begin());
    while (lru_.size() > maxEntries_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
}

CacheStats
ResultCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = lru_.size();
    return s;
}

} // namespace cxl::serve
