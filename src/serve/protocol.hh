/**
 * @file
 * The cxl_checkd wire protocol (`cxl-checkd/v1`): newline-delimited
 * JSON frames over a Unix-domain socket, one request per connection.
 *
 * Request frame (client -> server), one line:
 *
 *   {"schema":"cxl-checkd/v1", "type":"check", "id":"<client id>",
 *    "scenario":"free-run" | "case":{<cxl-fuzz-case/v1>},
 *    "devices":2, "checks":"both|invariants|deadlock",
 *    "config":{<the fuzz-case config keys>}, "families":[...],
 *    "engine":{"threads":N,"sym":"auto|on|off",
 *              "store":"ram|ram-compact|mmap|mmap-compact",
 *              "compact":B,"por":B,
 *              "schedule":"bfs|ws","max_states":N,"expect_states":N,
 *              "max_seconds":S,"max_rss_mb":N},
 *    "deterministic":B, "progress":B, "progress_interval":S}
 *
 * Every key except schema/type/id and exactly one of scenario|case is
 * optional; absent engine knobs fall back to the daemon's own
 * standard-flag defaults.  `{"type":"stats"}` requests the server
 * counters instead of a check.
 *
 * Response stream (server -> client): zero or more progress frames
 *
 *   {"schema":"cxl-checkd/v1","type":"progress","id":...,
 *    "states":N,"transitions":N,"depth":N,"rss_bytes":N,"seconds":S}
 *
 * terminated by exactly one of
 *
 *   {"schema":...,"type":"result","id":...,"cached":B,
 *    "verdict_line":"HOLDS (...)","text":"<renderText>",
 *    "result":{<cxl-check-result/v1>}}
 *   {"schema":...,"type":"error","id":...,"message":"..."}
 *   {"schema":...,"type":"stats","id":...,"stats":{...}}
 *
 * The embedded result object is rendered by the same
 * CheckResult::renderJson the offline CLIs use, so served and
 * offline output are byte-comparable (deterministic mode zeroes the
 * wall-clock keys on both sides).
 */

#ifndef CXL_SERVE_PROTOCOL_HH
#define CXL_SERVE_PROTOCOL_HH

#include <optional>
#include <string>
#include <vector>

#include "api/check.hh"
#include "fuzz/case.hh"

namespace cxl::serve
{

inline constexpr const char *kSchema = "cxl-checkd/v1";

/** Engine-knob overrides a request may carry; absent knobs keep the
 * daemon's standard-flag defaults. */
struct EngineKnobs {
    std::optional<std::uint64_t> threads;
    std::optional<SymmetryMode> symmetry;
    /** Visited-set backend by name.  Applied before `compact`, which
     * then upgrades whichever kind is in force to its compacted
     * variant — so `{"store":"mmap","compact":true}` means
     * mmap-compact, matching the CLI's --store/--compact layering. */
    std::optional<StoreKind> store;
    std::optional<bool> compact;
    std::optional<bool> por;
    std::optional<Schedule> schedule;
    std::optional<std::uint64_t> maxStates;
    std::optional<std::uint64_t> expectStates;
    std::optional<double> maxSeconds;
    std::optional<std::uint64_t> maxRssMb;
};

/** One parsed request frame. */
struct Request {
    enum class Type : std::uint8_t { Check, Stats };

    Type type = Type::Check;
    std::string id; ///< client-chosen, echoed on every response frame

    /** Registered scenario name; empty when inlineCase carries the
     * scenario (exactly one of the two is set for Type::Check). */
    std::string scenario;
    std::optional<fuzz::FuzzCase> inlineCase;

    int devices = kDefaultNumDevices;
    CheckKind checks = CheckKind::Both;
    std::optional<ProtocolConfig> config;
    std::optional<std::vector<std::string>> families;
    EngineKnobs engine;

    /** Render the embedded result with renderJson(deterministic) —
     * part of the cache key, since it changes the cached bytes. */
    bool deterministic = false;

    bool progress = true;           ///< stream progress frames
    double progressInterval = 0.25; ///< seconds between frames
};

/** Canonical JSON form of @p request (one line, no newline). */
std::string renderRequestJson(const Request &request);

/**
 * Parse one request frame.
 * @throws std::runtime_error on malformed input, a schema/type
 *         mismatch, both or neither of scenario|case, or junk knob
 *         words.
 */
Request requestFromJson(const std::string &text);

/** The final payload of a served check, byte-stable for cache
 * replay: the exact strings the first run rendered. */
struct ResultPayload {
    std::string verdictLine; ///< CheckResult::verdictText()
    std::string text;        ///< CheckResult::renderText()
    std::string resultJson;  ///< CheckResult::renderJson(det)
};

// ---- response frames (each one line, no trailing newline) ---------

std::string renderProgressFrame(const std::string &id,
                                const ProgressSnapshot &p);
std::string renderResultFrame(const std::string &id, bool cached,
                              const ResultPayload &payload);
std::string renderErrorFrame(const std::string &id,
                             const std::string &message);
std::string renderStatsFrame(const std::string &id,
                             const std::string &statsJson);

// ---- line framing over stream sockets -----------------------------

/**
 * Connect to the Unix-domain socket at @p path.
 * @return the connected fd, or -1 with errno set.
 */
int connectUnixSocket(const std::string &path);

/** Send @p line plus the terminating newline; false on a closed or
 * failing peer (SIGPIPE suppressed). */
bool sendFrame(int fd, const std::string &line);

/** recvFrame's carry-over buffer (bytes past the last newline). */
struct FrameReader {
    std::string pending;
};

/**
 * Read one newline-terminated frame into @p line (newline stripped).
 * @return false on EOF or error before a full line arrived.
 */
bool recvFrame(int fd, FrameReader &reader, std::string &line);

} // namespace cxl::serve

#endif // CXL_SERVE_PROTOCOL_HH
