#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/json.hh"
#include "support/json_parse.hh"

namespace cxl::serve
{
namespace
{

const char *
checkKindWord(CheckKind k)
{
    switch (k) {
      case CheckKind::Invariants: return "invariants";
      case CheckKind::Deadlock: return "deadlock";
      case CheckKind::Both: return "both";
    }
    return "?";
}

CheckKind
checkKindFromWord(const std::string &word)
{
    if (word == "invariants")
        return CheckKind::Invariants;
    if (word == "deadlock")
        return CheckKind::Deadlock;
    if (word == "both")
        return CheckKind::Both;
    throw std::runtime_error("unknown checks kind '" + word + "'");
}

const char *
symmetryWord(SymmetryMode m)
{
    switch (m) {
      case SymmetryMode::Auto: return "auto";
      case SymmetryMode::On: return "on";
      case SymmetryMode::Off: return "off";
    }
    return "?";
}

SymmetryMode
symmetryFromWord(const std::string &word)
{
    if (word == "auto")
        return SymmetryMode::Auto;
    if (word == "on")
        return SymmetryMode::On;
    if (word == "off")
        return SymmetryMode::Off;
    throw std::runtime_error("unknown sym mode '" + word + "'");
}

Schedule
scheduleFromWord(const std::string &word)
{
    if (word == "bfs")
        return Schedule::Bfs;
    if (word == "ws")
        return Schedule::WorkSteal;
    throw std::runtime_error("unknown schedule '" + word + "'");
}

/** Shared header of every frame this file renders. */
JsonObject
frameHead(const char *type, const std::string &id)
{
    JsonObject json;
    json.str("schema", kSchema).str("type", type).str("id", id);
    return json;
}

} // namespace

std::string
renderRequestJson(const Request &request)
{
    JsonObject json = frameHead(
        request.type == Request::Type::Stats ? "stats" : "check",
        request.id);
    if (request.type == Request::Type::Stats)
        return json.render();

    if (request.inlineCase)
        json.raw("case", request.inlineCase->renderJson());
    else
        json.str("scenario", request.scenario);
    json.num("devices", static_cast<std::uint64_t>(request.devices))
        .str("checks", checkKindWord(request.checks));
    if (request.config)
        json.raw("config", fuzz::configJson(*request.config));
    if (request.families) {
        std::vector<std::string> rows;
        for (const std::string &f : *request.families)
            rows.push_back(JsonObject::quote(f));
        json.raw("families", JsonObject::array(rows));
    }

    JsonObject engine;
    bool any_knob = false;
    auto knob = [&any_knob](bool set) {
        any_knob |= set;
        return set;
    };
    const EngineKnobs &k = request.engine;
    if (knob(k.threads.has_value()))
        engine.num("threads", *k.threads);
    if (knob(k.symmetry.has_value()))
        engine.str("sym", symmetryWord(*k.symmetry));
    if (knob(k.store.has_value()))
        engine.str("store", storeKindWord(*k.store));
    if (knob(k.compact.has_value()))
        engine.boolean("compact", *k.compact);
    if (knob(k.por.has_value()))
        engine.boolean("por", *k.por);
    if (knob(k.schedule.has_value()))
        engine.str("schedule",
                   *k.schedule == Schedule::WorkSteal ? "ws" : "bfs");
    if (knob(k.maxStates.has_value()))
        engine.num("max_states", *k.maxStates);
    if (knob(k.expectStates.has_value()))
        engine.num("expect_states", *k.expectStates);
    if (knob(k.maxSeconds.has_value()))
        engine.num("max_seconds", *k.maxSeconds);
    if (knob(k.maxRssMb.has_value()))
        engine.num("max_rss_mb", *k.maxRssMb);
    if (any_knob)
        json.raw("engine", engine.render());

    if (request.deterministic)
        json.boolean("deterministic", true);
    json.boolean("progress", request.progress);
    if (request.progressInterval != 0.25)
        json.num("progress_interval", request.progressInterval);
    return json.render();
}

Request
requestFromJson(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    if (doc.getStr("schema") != kSchema)
        throw std::runtime_error("not a cxl-checkd/v1 frame");

    Request r;
    r.id = doc.getStr("id");
    const std::string type = doc.getStr("type", "check");
    if (type == "stats") {
        r.type = Request::Type::Stats;
        return r;
    }
    if (type != "check")
        throw std::runtime_error("unknown request type '" + type +
                                 "'");

    r.scenario = doc.getStr("scenario");
    if (const JsonValue *inl = doc.get("case")) {
        if (!r.scenario.empty()) {
            throw std::runtime_error(
                "request carries both a scenario name and an inline "
                "case");
        }
        r.inlineCase = fuzz::FuzzCase::fromJson(inl->render());
    } else if (r.scenario.empty()) {
        throw std::runtime_error(
            "request carries neither a scenario name nor an inline "
            "case");
    }

    r.devices = static_cast<int>(
        doc.getNum("devices", kDefaultNumDevices));
    r.checks = checkKindFromWord(doc.getStr("checks", "both"));
    if (const JsonValue *cfg = doc.get("config"))
        r.config = fuzz::configFromJsonValue(cfg);
    if (const JsonValue *fams = doc.get("families")) {
        std::vector<std::string> families;
        for (const JsonValue &f : fams->items())
            families.push_back(f.str());
        r.families = std::move(families);
    }

    if (const JsonValue *eng = doc.get("engine")) {
        EngineKnobs &k = r.engine;
        if (eng->get("threads"))
            k.threads = eng->get("threads")->asUint();
        if (eng->get("sym"))
            k.symmetry = symmetryFromWord(eng->getStr("sym"));
        if (eng->get("store")) {
            const std::string word = eng->getStr("store");
            const std::optional<StoreKind> kind =
                storeKindFromWord(word);
            if (!kind) {
                throw std::runtime_error(
                    "unknown store kind '" + word +
                    "' (want ram|ram-compact|mmap|mmap-compact)");
            }
            k.store = *kind;
        }
        if (eng->get("compact"))
            k.compact = eng->getBool("compact");
        if (eng->get("por"))
            k.por = eng->getBool("por");
        if (eng->get("schedule"))
            k.schedule = scheduleFromWord(eng->getStr("schedule"));
        if (eng->get("max_states"))
            k.maxStates = eng->get("max_states")->asUint();
        if (eng->get("expect_states"))
            k.expectStates = eng->get("expect_states")->asUint();
        if (eng->get("max_seconds"))
            k.maxSeconds = eng->getNum("max_seconds");
        if (eng->get("max_rss_mb"))
            k.maxRssMb = eng->get("max_rss_mb")->asUint();
    }

    r.deterministic = doc.getBool("deterministic");
    r.progress = doc.getBool("progress", true);
    r.progressInterval = doc.getNum("progress_interval", 0.25);
    return r;
}

std::string
renderProgressFrame(const std::string &id, const ProgressSnapshot &p)
{
    JsonObject json = frameHead("progress", id);
    json.num("states", p.states)
        .num("transitions", p.transitions)
        .num("depth", static_cast<std::uint64_t>(p.depth))
        .num("rss_bytes", p.rssBytes)
        .num("seconds", p.seconds);
    return json.render();
}

std::string
renderResultFrame(const std::string &id, bool cached,
                  const ResultPayload &payload)
{
    JsonObject json = frameHead("result", id);
    json.boolean("cached", cached)
        .str("verdict_line", payload.verdictLine)
        .str("text", payload.text)
        .raw("result", payload.resultJson);
    return json.render();
}

std::string
renderErrorFrame(const std::string &id, const std::string &message)
{
    JsonObject json = frameHead("error", id);
    json.str("message", message);
    return json.render();
}

std::string
renderStatsFrame(const std::string &id, const std::string &statsJson)
{
    JsonObject json = frameHead("stats", id);
    json.raw("stats", statsJson);
    return json.render();
}

int
connectUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

bool
sendFrame(int fd, const std::string &line)
{
    std::string wire = line;
    wire += '\n';
    std::size_t off = 0;
    while (off < wire.size()) {
        // MSG_NOSIGNAL: a disconnected client must surface as a
        // return value, not kill the daemon with SIGPIPE.
        const ssize_t n = ::send(fd, wire.data() + off,
                                 wire.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvFrame(int fd, FrameReader &reader, std::string &line)
{
    for (;;) {
        const std::size_t nl = reader.pending.find('\n');
        if (nl != std::string::npos) {
            line.assign(reader.pending, 0, nl);
            reader.pending.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        reader.pending.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace cxl::serve
