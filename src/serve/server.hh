/**
 * @file
 * The cxl_checkd service core: a Unix-domain-socket accept loop
 * feeding a bounded connection queue multiplexed over a shared pool
 * of CheckSession workers.
 *
 * One connection carries one request and its response stream.  Each
 * check runs under its own CancelToken: a client that disconnects
 * mid-run cancels its exploration (detected from the progress
 * callback, so at governor-poll granularity), and beginDrain()
 * cancels every in-flight token at once — runs then finish as
 * governed Incompletes and are answered to still-connected clients,
 * while queued-but-unstarted connections get an error frame.  The
 * worker-pool size is the global concurrent-run limit; the queue
 * bound turns overload into an immediate "server busy" error instead
 * of unbounded memory growth.
 */

#ifndef CXL_SERVE_SERVER_HH
#define CXL_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/check.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"

namespace cxl::serve
{

/**
 * A wire request resolved against the scenario registry and the
 * daemon's engine defaults: ready to run, and keyed for the cache.
 * The key is built from resolved values only (see cache.hh), so
 * scenario-name aliases and knob spellings that mean the same run
 * collapse to one entry.
 *
 * @throws std::runtime_error on an unknown scenario or out-of-range
 *         values — the server answers those with an error frame.
 */
struct ResolvedRequest {
    CheckRequest check;   ///< engine left unset; the server fills it
    EngineOptions engine; ///< resolved knobs (cancel/progress cleared)
    std::string cacheKey;
};

ResolvedRequest resolveRequest(const Request &request,
                               const EngineOptions &defaults,
                               double defaultMaxSeconds);

struct ServerOptions {
    std::string socketPath;

    /** Worker pool size == the global concurrent-run limit. */
    std::size_t workers = 2;

    std::size_t cacheEntries = 256;

    /** Bounded accept queue; a connection arriving past this depth
     * is answered "server busy" and closed. */
    std::size_t queueDepth = 64;

    /**
     * Wall-clock budget applied to requests that carry no
     * max_seconds of their own (and whose engine defaults carry
     * none): the daemon's safety net against a single request
     * monopolizing a worker forever.  0 = none.
     */
    double defaultMaxSeconds = 0;

    /** Baseline engine knobs (the daemon's standard flags); each
     * request overrides per knob.  cancel/progress are ignored. */
    EngineOptions engine;
};

/** Aggregated server counters (the "stats" response payload). */
struct ServerStats {
    std::uint64_t accepted = 0;     ///< connections accepted
    std::uint64_t checksServed = 0; ///< result frames sent
    std::uint64_t statsServed = 0;
    std::uint64_t errors = 0;   ///< error frames (bad requests, ...)
    std::uint64_t rejected = 0; ///< busy/draining turnaways
    std::uint64_t disconnectCancels = 0; ///< client-gone cancellations
    std::uint64_t modelBuilds = 0; ///< CheckSession model-cache misses
    std::uint64_t modelReuses = 0; ///< CheckSession model-cache hits
    bool draining = false;
    CacheStats cache;

    /** One-line-per-counter human dump (SIGUSR1 / shutdown). */
    std::string renderText() const;

    /** JSON object for the "stats" frame. */
    std::string renderJson() const;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket (replacing a stale file no server answers on),
     * start the accept loop and the worker pool.
     * @throws std::runtime_error on socket/bind/listen failure or if
     *         another server is live on the path.
     */
    void start();

    /** Stop accepting, cancel in-flight runs, wake everyone.
     * Idempotent and non-blocking. */
    void beginDrain();

    /** beginDrain() plus join: returns once every worker has
     * answered or turned away its remaining connections. */
    void drain();

    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    ServerStats stats() const;

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

  private:
    /** One worker's session plus its published model-cache counters
     * (the session itself is single-threaded by design; stats() must
     * not touch it while the worker runs). */
    struct WorkerState {
        CheckSession session;
        std::atomic<std::uint64_t> modelBuilds{0};
        std::atomic<std::uint64_t> modelReuses{0};

        explicit WorkerState(const EngineOptions &defaults)
            : session(defaults)
        {
        }
    };

    void acceptLoop();
    void workerLoop(std::size_t w);
    void handleConnection(WorkerState &state, int fd);
    void serveCheck(WorkerState &state, int fd, const Request &wire);

    ServerOptions options_;
    ResultCache cache_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1}; ///< beginDrain -> accept loop poll
    std::atomic<bool> draining_{false};
    bool started_ = false;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;
    std::vector<std::unique_ptr<WorkerState>> workers_;

    // Bounded connection queue (fds), guarded by queueMutex_.
    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<int> queue_;

    // In-flight run cancellation registry.
    mutable std::mutex tokensMutex_;
    std::uint64_t nextTokenId_ = 0;
    std::map<std::uint64_t, CancelToken> activeTokens_;

    // Counters (atomics: bumped from accept and worker threads).
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> checksServed_{0};
    std::atomic<std::uint64_t> statsServed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> disconnectCancels_{0};
};

} // namespace cxl::serve

#endif // CXL_SERVE_SERVER_HH
