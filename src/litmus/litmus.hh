/**
 * @file
 * Litmus-test engine (paper Section 5).
 *
 * A litmus test pins down an initial state and device programs, then
 * either (a) *guided* — fires an explicit rule sequence to reproduce a
 * specific interleaving, the way the paper's Tables 1-3 walk one path,
 * or (b) *exhaustive* — explores every interleaving, checks the
 * invariant on all intermediate states and a user predicate on all
 * terminal states, the way the paper's Isabelle `value` runs confirm
 * "regardless of how nondeterminism is resolved, the model ends up in
 * an expected final state".
 */

#ifndef CXL_LITMUS_LITMUS_HH
#define CXL_LITMUS_LITMUS_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "protocol/config.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/** Declarative litmus-test definition. */
struct LitmusTest {
    std::string name;
    std::string description;
    Scenario scenario;
    ProtocolConfig config;

    /** Expect the exhaustive run to find an invariant violation. */
    bool expectViolation = false;

    /** If non-empty, the violated conjunct must be in this family. */
    std::string expectedViolationFamily;

    /**
     * If non-empty, only conjuncts of these families are checked —
     * used by relaxation tests that target one property (e.g. pure
     * SWMR for the Table 3 walk) without the strengthened invariant
     * flagging the bug a step earlier.
     */
    std::vector<std::string> restrictToFamilies;

    /**
     * Predicate every terminal state (programs finished, no rule
     * enabled) must satisfy; null accepts anything.
     */
    std::function<bool(const SystemState &)> finalCheck;
    std::string finalCheckDescription;
};

/** Result of an exhaustive litmus run. */
struct LitmusOutcome {
    bool passed = false;
    std::string message;
    ExploreResult explore;
    /** Distinct terminal states (deduplicated). */
    std::vector<SystemState> finals;
};

/**
 * Exhaustively run one litmus test: explore all interleavings, check
 * invariants everywhere, collect terminal states and evaluate the
 * expectations.
 */
LitmusOutcome runLitmus(const LitmusTest &test);

/**
 * As above, with the model prebuilt by the caller: @p rules and
 * @p fullInvariants must match the test's config and device count
 * (the test's restrictToFamilies filter is still applied here).
 * CheckSession uses this to share one model build across a suite.
 */
LitmusOutcome runLitmus(const LitmusTest &test, const RuleSet &rules,
                        const InvariantSet &fullInvariants);

/** One step of a guided run. */
struct GuidedStep {
    std::string ruleName; ///< empty for the initial state
    SystemState state;
};

/**
 * Fire an explicit rule-name sequence from the scenario's initial
 * state (the paper's Tables 1-3 format).
 *
 * @throws std::runtime_error if a named rule is unknown or disabled
 *         in the current state — the harness treats that as a test
 *         failure, not a protocol property.
 */
std::vector<GuidedStep> runGuided(const RuleSet &rules,
                                  const Scenario &scenario,
                                  const std::vector<std::string> &steps);

/** The built-in litmus suite (paper Section 5.1's eight scenarios). */
std::vector<LitmusTest> builtinLitmusSuite();

/** The restriction-relaxation tests of paper Section 5.2. */
std::vector<LitmusTest> restrictionRelaxationSuite();

} // namespace cxl

#endif // CXL_LITMUS_LITMUS_HH
