#include "litmus/msc.hh"

#include <algorithm>
#include <sstream>

namespace cxl
{
namespace
{

/** Messages appended to @p next relative to @p prev. */
template <typename T, std::size_t N>
std::vector<T>
appended(const InlineVec<T, N> &prev, const InlineVec<T, N> &next)
{
    // Channels are FIFO: pops remove from the front, pushes append at
    // the back.  A message in `next` is new if it is beyond the number
    // of surviving prefix messages from `prev`.
    std::vector<T> added;
    // Count how many of prev's messages survive (they form a prefix of
    // next once prev's popped heads are skipped).
    std::size_t survivors = 0;
    for (std::size_t skip = 0; skip <= prev.size(); ++skip) {
        bool match = true;
        std::size_t count = prev.size() - skip;
        if (count > next.size())
            continue;
        for (std::size_t i = 0; i < count; ++i) {
            if (!(prev[skip + i] == next[i])) {
                match = false;
                break;
            }
        }
        if (match) {
            survivors = count;
            break;
        }
    }
    for (std::size_t i = survivors; i < next.size(); ++i)
        added.push_back(next[i]);
    return added;
}

template <typename T, std::size_t N>
bool
popped(const InlineVec<T, N> &prev, const InlineVec<T, N> &next)
{
    if (prev.empty())
        return false;
    // The old head is gone if next doesn't start with it.
    return next.empty() || !(next.front() == prev.front());
}

void
diffDevice(const SystemState &prev, const SystemState &next, int d,
           const std::string &rule, std::vector<MscEvent> &events)
{
    const DeviceState &p = prev.dev[d];
    const DeviceState &n = next.dev[d];

    auto dev_send = [&](const std::string &chan, const std::string &msg) {
        events.push_back({MscEvent::Kind::DeviceSend, d,
                          chan + " " + msg, rule});
    };
    auto host_send = [&](const std::string &chan, const std::string &msg) {
        events.push_back({MscEvent::Kind::HostSend, d, chan + " " + msg,
                          rule});
    };
    auto deliver = [&](const std::string &chan) {
        events.push_back({MscEvent::Kind::Deliver, d, chan, rule});
    };

    for (const auto &m : appended(p.d2hReq, n.d2hReq))
        dev_send("D2HReq", toString(m));
    for (const auto &m : appended(p.d2hRsp, n.d2hRsp))
        dev_send("D2HRsp", toString(m));
    for (const auto &m : appended(p.d2hData, n.d2hData))
        dev_send("D2HData", toString(m));
    for (const auto &m : appended(p.h2dReq, n.h2dReq))
        host_send("H2DReq", toString(m));
    for (const auto &m : appended(p.h2dRsp, n.h2dRsp))
        host_send("H2DRsp", toString(m));
    for (const auto &m : appended(p.h2dData, n.h2dData))
        host_send("H2DData", toString(m));

    if (popped(p.h2dReq, n.h2dReq))
        deliver("takes " + toString(p.h2dReq.front()));
    if (popped(p.h2dRsp, n.h2dRsp))
        deliver("takes " + toString(p.h2dRsp.front()));
    if (popped(p.h2dData, n.h2dData))
        deliver("takes " + toString(p.h2dData.front()));

    auto host_deliver = [&](const std::string &txt) {
        events.push_back({MscEvent::Kind::Deliver, -1, txt, rule});
    };
    if (popped(p.d2hReq, n.d2hReq))
        host_deliver("host takes " + toString(p.d2hReq.front()));
    if (popped(p.d2hRsp, n.d2hRsp))
        host_deliver("host takes " + toString(p.d2hRsp.front()));
    if (popped(p.d2hData, n.d2hData))
        host_deliver("host takes " + toString(p.d2hData.front()));

    if (p.state != n.state) {
        events.push_back({MscEvent::Kind::Note, d,
                          "DCache" + std::to_string(d + 1) + ": " +
                              toString(p.state) + " -> " +
                              toString(n.state),
                          rule});
    }
}

} // namespace

std::vector<MscEvent>
deriveMscEvents(const std::vector<GuidedStep> &steps)
{
    std::vector<MscEvent> events;
    for (std::size_t i = 1; i < steps.size(); ++i) {
        const SystemState &prev = steps[i - 1].state;
        const SystemState &next = steps[i].state;
        for (int d = 0; d < prev.ndev; ++d)
            diffDevice(prev, next, d, steps[i].ruleName, events);
        if (prev.hstate != next.hstate) {
            events.push_back({MscEvent::Kind::Note, -1,
                              "HCache: " + toString(prev.hstate) +
                                  " -> " + toString(next.hstate),
                              steps[i].ruleName});
        }
    }
    return events;
}

std::string
renderMsc(const std::vector<GuidedStep> &steps, const std::string &title)
{
    constexpr int kLane = 26; ///< column width per lifeline

    std::ostringstream out;
    out << title << "\n\n";

    // Lane order keeps the paper's Figure 5 layout for two devices
    // and appends a lane per extra device: d1 | host | d2 | d3 | d4.
    const int ndev = steps.front().state.ndev;
    auto lane_of = [](int device) {
        return device < 0 ? 1 : device == 0 ? 0 : device + 1;
    };

    auto center = [](const std::string &txt, int width) {
        if (static_cast<int>(txt.size()) >= width)
            return txt;
        int pad = width - static_cast<int>(txt.size());
        return std::string(pad / 2, ' ') + txt +
               std::string(pad - pad / 2, ' ');
    };

    const SystemState &init = steps.front().state;
    std::string header, states;
    for (int lane = 0; lane < ndev + 1; ++lane) {
        // Which lifeline occupies this lane (inverse of lane_of).
        const int device = lane == 1 ? -1 : lane == 0 ? 0 : lane - 1;
        header += center(device < 0 ? "host"
                                    : "device " +
                                          std::to_string(device + 1),
                         kLane);
        const std::string st = device < 0
                                   ? toString(init.hstate)
                                   : toString(init.dev[device].state);
        states += center("(" + st + ")", kLane);
    }
    out << header << "\n" << states << "\n";

    // An arrow between the host lane and a device lane spans every
    // lane in between; the head points at the receiving lifeline.
    auto arrow = [&](const std::string &label, int from_lane,
                     int to_lane) {
        const int lo = std::min(from_lane, to_lane);
        const int hi = std::max(from_lane, to_lane);
        const int width = (hi - lo + 1) * kLane;
        std::string line(width, '-');
        std::string txt = label;
        if (static_cast<int>(txt.size()) > width - 4)
            txt = txt.substr(0, width - 4);
        int at = (width - static_cast<int>(txt.size())) / 2;
        line.replace(at, txt.size(), txt);
        if (to_lane > from_lane)
            line.back() = '>';
        else
            line.front() = '<';
        return std::string(lo * kLane, ' ') + line;
    };

    for (const MscEvent &ev : deriveMscEvents(steps)) {
        const int dev_lane = lane_of(ev.device);
        switch (ev.kind) {
          case MscEvent::Kind::DeviceSend:
            out << arrow(ev.text, dev_lane, lane_of(-1));
            break;
          case MscEvent::Kind::HostSend:
            out << arrow(ev.text, lane_of(-1), dev_lane);
            break;
          case MscEvent::Kind::Deliver:
            out << std::string(dev_lane * kLane, ' ') << "* "
                << ev.text;
            break;
          case MscEvent::Kind::Note:
            out << std::string(dev_lane * kLane, ' ') << "["
                << ev.text << "]";
            break;
        }
        out << "   (" << ev.rule << ")\n";
    }
    return out.str();
}

} // namespace cxl
