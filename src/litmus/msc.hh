/**
 * @file
 * Message-sequence-chart renderer (paper Figure 5).
 *
 * Derives send/receive events generically by diffing the channel
 * contents of consecutive trace states, then draws an ASCII chart
 * with one lifeline per active device plus the host (device 1 | host
 * | device 2 | device 3 | ...) with cacheline-state annotations, in
 * the style of the CXL webinar chart the paper reproduces.  The
 * two-device layout is identical to the paper's Figure 5 chart;
 * larger device counts add a lane per device, and arrows between the
 * host and an outer device cross the intermediate lanes.
 */

#ifndef CXL_LITMUS_MSC_HH
#define CXL_LITMUS_MSC_HH

#include <string>
#include <vector>

#include "litmus/litmus.hh"

namespace cxl
{

/** One derived chart event. */
struct MscEvent {
    enum class Kind : std::uint8_t {
        DeviceSend, ///< device pushed a D2H message
        HostSend,   ///< host pushed an H2D message
        Deliver,    ///< a message was consumed off a channel
        Note,       ///< cacheline state change annotation
    };

    Kind kind;
    int device;       ///< device lifeline (0/1); -1 = host lifeline
    std::string text; ///< message or annotation text
    std::string rule; ///< rule that caused the event
};

/** Derive chart events from a guided trace. */
std::vector<MscEvent> deriveMscEvents(const std::vector<GuidedStep> &steps);

/** Render the full chart. @p title is printed above the lifelines. */
std::string renderMsc(const std::vector<GuidedStep> &steps,
                      const std::string &title);

} // namespace cxl

#endif // CXL_LITMUS_MSC_HH
