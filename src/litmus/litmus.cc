#include "litmus/litmus.hh"

#include <deque>
#include <sstream>
#include <stdexcept>

#include "checker/state_store.hh"

namespace cxl
{

LitmusOutcome
runLitmus(const LitmusTest &test)
{
    RuleSet rules(test.config, test.scenario.numDevices());
    InvariantSet invariants =
        InvariantSet::full(test.config, test.scenario.numDevices());
    return runLitmus(test, rules, invariants);
}

LitmusOutcome
runLitmus(const LitmusTest &test, const RuleSet &rules,
          const InvariantSet &fullInvariants)
{
    LitmusOutcome outcome;

    InvariantSet filtered;
    const InvariantSet &invariants = selectFamilies(
        fullInvariants, test.restrictToFamilies, filtered);
    Context ctx{&test.scenario};

    // Exhaustive interleaving walk with terminal-state collection.
    StateStore store;
    std::deque<std::uint32_t> frontier;
    auto [init_idx, ins] = store.insert(test.scenario.initial,
                                        StateStore::kNoParent, 0, 0);
    (void)ins;
    frontier.push_back(init_idx);

    std::optional<Violation> violation;
    auto note_violation = [&](Violation::Kind kind, const Conjunct *c,
                              std::uint32_t idx, std::uint32_t depth) {
        if (violation)
            return;
        Violation v;
        v.kind = kind;
        if (c) {
            v.conjunctName = c->name;
            v.conjunctFamily = c->family;
        }
        v.stateIndex = idx;
        v.depth = depth;
        violation = std::move(v);
    };

    if (const Conjunct *bad =
            invariants.firstFailure(test.scenario.initial, ctx)) {
        note_violation(Violation::Kind::Conjunct, bad, init_idx, 0);
    }

    std::uint64_t transitions = 0;
    std::uint32_t max_depth = 0;
    while (!frontier.empty()) {
        std::uint32_t idx = frontier.front();
        frontier.pop_front();
        // The store's arena blocks never move, so the reference stays
        // valid across the inserts below.
        const SystemState &state = store.stateAt(idx);
        const std::uint32_t depth = store.depthAt(idx);
        max_depth = std::max(max_depth, depth);

        auto succs = rules.successors(state, test.scenario, false);
        if (succs.empty()) {
            if (test.scenario.finished(state)) {
                outcome.finals.push_back(state);
            } else {
                note_violation(Violation::Kind::Deadlock, nullptr, idx,
                               depth);
            }
            continue;
        }
        for (const auto &succ : succs) {
            ++transitions;
            auto [sidx, is_new] =
                store.insert(succ.state, idx, succ.rule->id, depth + 1);
            if (!is_new)
                continue;
            if (succ.overflow)
                note_violation(Violation::Kind::Overflow, nullptr, sidx,
                               depth + 1);
            if (const Conjunct *bad =
                    invariants.firstFailure(succ.state, ctx)) {
                note_violation(Violation::Kind::Conjunct, bad, sidx,
                               depth + 1);
            }
            frontier.push_back(sidx);
        }
    }

    outcome.explore.numStates = store.size();
    outcome.explore.numTransitions = transitions;
    outcome.explore.maxDepth = max_depth;
    outcome.explore.completed = true;
    if (violation) {
        // Rebuild the trace for reporting.
        std::vector<TraceStep> trace;
        std::uint32_t cur = violation->stateIndex;
        while (cur != StateStore::kNoParent) {
            TraceStep step;
            step.state = store.stateAt(cur);
            const std::uint32_t parent = store.parentAt(cur);
            if (parent != StateStore::kNoParent)
                step.ruleName = rules.rules()[store.ruleAt(cur)].name;
            trace.push_back(std::move(step));
            cur = parent;
        }
        std::reverse(trace.begin(), trace.end());
        violation->trace = std::move(trace);
        outcome.explore.violationCount = 1;
        outcome.explore.violation = std::move(violation);
    }

    // Evaluate expectations.
    std::ostringstream msg;
    bool passed = true;

    if (test.expectViolation) {
        if (!outcome.explore.violation) {
            passed = false;
            msg << "expected an invariant violation but none was found; ";
        } else if (!test.expectedViolationFamily.empty() &&
                   outcome.explore.violation->conjunctFamily !=
                       test.expectedViolationFamily) {
            passed = false;
            msg << "expected a violation in family '"
                << test.expectedViolationFamily << "' but got '"
                << outcome.explore.violation->conjunctFamily << "'; ";
        }
    } else {
        if (outcome.explore.violation) {
            passed = false;
            msg << "unexpected violation: "
                << outcome.explore.violation->describe() << "; ";
        }
        if (outcome.finals.empty()) {
            passed = false;
            msg << "no terminal state reached; ";
        }
    }

    if (test.finalCheck) {
        for (const SystemState &fin : outcome.finals) {
            if (!test.finalCheck(fin)) {
                passed = false;
                msg << "terminal state fails check ("
                    << test.finalCheckDescription << "): " << fin.brief()
                    << "; ";
                break;
            }
        }
    }

    outcome.passed = passed;
    outcome.message = passed ? "ok" : msg.str();
    return outcome;
}

std::vector<GuidedStep>
runGuided(const RuleSet &rules, const Scenario &scenario,
          const std::vector<std::string> &steps)
{
    std::vector<GuidedStep> result;
    SystemState state = scenario.initial;
    result.push_back({"", state});

    for (const std::string &name : steps) {
        const Rule *rule = rules.find(name);
        if (!rule)
            throw std::runtime_error("unknown rule: " + name);
        Context ctx{&scenario};
        if (!rule->guard(state, ctx)) {
            throw std::runtime_error("rule " + name +
                                     " not enabled in state: " +
                                     state.brief());
        }
        if (!rule->apply(state, ctx))
            throw std::runtime_error("rule " + name + " overflowed");
        result.push_back({name, state});
    }
    return result;
}

} // namespace cxl
