/**
 * @file
 * The built-in litmus suite (paper Section 5.1) and the
 * restriction-relaxation tests (Section 5.2).
 *
 * The paper's GitHub artifact ships 8 litmus tests covering reads and
 * writes issued concurrently, multiple reads, multiple writes,
 * multiple evicts, and alternating sequences; this suite mirrors that
 * coverage and adds the two table walks (clean/dirty evict) as
 * exhaustive variants.
 */

#include "litmus/litmus.hh"

namespace cxl
{
namespace
{

bool
allDrained(const SystemState &s)
{
    for (const auto &d : s.dev) {
        if (!d.d2hReq.empty() || !d.d2hRsp.empty() ||
            !d.d2hData.empty() || !d.h2dReq.empty() ||
            !d.h2dRsp.empty() || !d.h2dData.empty()) {
            return false;
        }
    }
    return true;
}

bool
devStable(const SystemState &s)
{
    return isStable(s.dev[0].state) && isStable(s.dev[1].state) &&
           isStable(s.hstate);
}

} // namespace

std::vector<LitmusTest>
builtinLitmusSuite()
{
    std::vector<LitmusTest> tests;

    {
        // Table 1: an eviction from a clean cache ends successfully.
        LitmusTest t;
        t.name = "clean_evict_test";
        t.description =
            "Device 1 evicts a clean shared line twice; the line ends "
            "invalid on device 1 and shared on device 2.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(0);
        t.scenario.program[0] = {Instr::Evict, Instr::Evict};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.dev[1].state == DState::S &&
                   s.hstate == HState::S && allDrained(s);
        };
        t.finalCheckDescription = "D1=I, D2=S, H=S, channels drained";
        tests.push_back(std::move(t));
    }

    {
        // Table 2: a dirty eviction writes back through GO_WritePull.
        LitmusTest t;
        t.name = "dirty_evict_test";
        t.description =
            "Device 1 evicts a dirty line; the writeback lands in the "
            "host and the directory drops to I.";
        t.scenario.name = t.name;
        t.scenario.initial = initialOneModified(0, 1, 0);
        t.scenario.program[0] = {Instr::Evict};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.hstate == HState::I && s.hval == 1 && allDrained(s);
        };
        t.finalCheckDescription = "D1=I, H=I with written-back value 1";
        tests.push_back(std::move(t));
    }

    {
        // Concurrent read and write from invalid (the Table 3 programs,
        // but under the *correct* protocol).
        LitmusTest t;
        t.name = "concurrent_read_write";
        t.description =
            "Device 1 stores while device 2 loads; every interleaving "
            "stays coherent.";
        t.scenario.name = t.name;
        t.scenario.initial = initialAllInvalid(0);
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Load};
        t.finalCheck = devStable;
        t.finalCheckDescription = "all caches stable";
        tests.push_back(std::move(t));
    }

    {
        LitmusTest t;
        t.name = "multiple_reads";
        t.description = "Both devices load; both end shared.";
        t.scenario.name = t.name;
        t.scenario.initial = initialAllInvalid(7);
        t.scenario.program[0] = {Instr::Load, Instr::Load};
        t.scenario.program[1] = {Instr::Load, Instr::Load};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::S &&
                   s.dev[1].state == DState::S &&
                   s.hstate == HState::S && s.dev[0].val == 7 &&
                   s.dev[1].val == 7 && allDrained(s);
        };
        t.finalCheckDescription = "both devices S with the memory value";
        tests.push_back(std::move(t));
    }

    {
        LitmusTest t;
        t.name = "multiple_writes";
        t.description =
            "Both devices store twice; exactly one device ends as "
            "owner and the loser is invalid.";
        t.scenario.name = t.name;
        t.scenario.initial = initialAllInvalid(0);
        t.scenario.program[0] = {Instr::Store, Instr::Store};
        t.scenario.program[1] = {Instr::Store, Instr::Store};
        t.finalCheck = [](const SystemState &s) {
            bool one_owner =
                (s.dev[0].state == DState::M) !=
                (s.dev[1].state == DState::M);
            bool loser_invalid = s.dev[0].state == DState::I ||
                                 s.dev[1].state == DState::I;
            return one_owner && loser_invalid && s.hstate == HState::M &&
                   allDrained(s);
        };
        t.finalCheckDescription = "exactly one owner, other invalid";
        tests.push_back(std::move(t));
    }

    {
        LitmusTest t;
        t.name = "multiple_evicts";
        t.description =
            "Both devices evict a shared line; the directory drains to "
            "I.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(3);
        t.scenario.program[0] = {Instr::Evict};
        t.scenario.program[1] = {Instr::Evict};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.dev[1].state == DState::I &&
                   s.hstate == HState::I && allDrained(s);
        };
        t.finalCheckDescription = "everything invalid and drained";
        tests.push_back(std::move(t));
    }

    {
        // Upgrade race: both sharers try to become owner.
        LitmusTest t;
        t.name = "upgrade_race";
        t.description =
            "Both devices hold S and store; one upgrade wins, the "
            "other is invalidated and re-acquires.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(5);
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Store};
        t.finalCheck = [](const SystemState &s) {
            bool one_owner =
                (s.dev[0].state == DState::M) !=
                (s.dev[1].state == DState::M);
            return one_owner && s.hstate == HState::M && allDrained(s);
        };
        t.finalCheckDescription = "exactly one final owner";
        tests.push_back(std::move(t));
    }

    {
        // A dirty owner evicts while the other device reads.
        LitmusTest t;
        t.name = "dirty_evict_vs_read";
        t.description =
            "Device 1 evicts its dirty line while device 2 loads; "
            "device 2 must observe the written-back value.";
        t.scenario.name = t.name;
        t.scenario.initial = initialOneModified(0, 1, 0);
        t.scenario.program[0] = {Instr::Evict};
        t.scenario.program[1] = {Instr::Load};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.dev[1].state == DState::S && s.dev[1].val == 1 &&
                   allDrained(s);
        };
        t.finalCheckDescription =
            "D2 sees the dirty value 1 regardless of interleaving";
        tests.push_back(std::move(t));
    }

    {
        // A dirty owner evicts while the other device writes.
        LitmusTest t;
        t.name = "dirty_evict_vs_write";
        t.description =
            "Device 1 evicts its dirty line while device 2 stores; "
            "device 2 ends as the sole owner.";
        t.scenario.name = t.name;
        t.scenario.initial = initialOneModified(0, 1, 0);
        t.scenario.program[0] = {Instr::Evict};
        t.scenario.program[1] = {Instr::Store};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.dev[1].state == DState::M && s.dev[1].val == 2 &&
                   s.hstate == HState::M && allDrained(s);
        };
        t.finalCheckDescription = "D2 sole owner with its stored value";
        tests.push_back(std::move(t));
    }

    {
        // Alternating reads, writes and evicts on both devices.
        LitmusTest t;
        t.name = "alternating_ops";
        t.description =
            "Load-store-evict sequences race on both devices; all "
            "interleavings stay coherent and terminate cleanly.";
        t.scenario.name = t.name;
        t.scenario.initial = initialAllInvalid(0);
        t.scenario.program[0] = {Instr::Load, Instr::Store, Instr::Evict};
        t.scenario.program[1] = {Instr::Load, Instr::Store, Instr::Evict};
        t.finalCheck = [](const SystemState &s) {
            return s.dev[0].state == DState::I &&
                   s.dev[1].state == DState::I && allDrained(s);
        };
        t.finalCheckDescription = "both devices evicted at the end";
        tests.push_back(std::move(t));
    }

    return tests;
}

std::vector<LitmusTest>
restrictionRelaxationSuite()
{
    std::vector<LitmusTest> tests;

    {
        // Table 3 / Fig. 5: relaxing Snoop-pushes-GO breaks SWMR.
        LitmusTest t;
        t.name = "snoop_pushes_go_test";
        t.description =
            "With the Snoop-pushes-GO restriction relaxed, a store "
            "racing a load reaches a state where both devices hold "
            "valid copies while one is modified (Table 3).";
        t.scenario.name = t.name;
        t.scenario.initial = initialAllInvalid(0);
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Load};
        t.config.relaxSnoopPushesGo = true;
        t.expectViolation = true;
        t.expectedViolationFamily = "swmr";
        // Check pure SWMR, as in the paper's Table 3 walk; the
        // strengthened invariant would flag the bug one step earlier
        // (see the restriction_ablation bench).
        t.restrictToFamilies = {"swmr"};
        tests.push_back(std::move(t));
    }

    {
        // Same restriction, second instance: the SMAD upgrade race.
        // Device 1 is the sole sharer and upgrades; its GO-M is in
        // flight when device 2's competing RdOwn snoops it.  The
        // relaxed device answers the snoop from SMAD, then still
        // consumes the stale ownership grant — its RspIHitSE claim
        // was a lie, which the snoop-honesty conjuncts catch.
        LitmusTest t;
        t.name = "smad_snoop_guard_test";
        t.description =
            "Relaxing the H2DRsp-empty guard on SMADSnpInv lets a "
            "snooped upgrader consume its stale GO-M after claiming "
            "invalidation.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(0);
        t.scenario.initial.dev[1].state = DState::I;
        t.scenario.initial.dev[1].val = 0;
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Store};
        t.config.relaxSmadSnoopGuard = true;
        t.expectViolation = true;
        t.expectedViolationFamily = "snoop_honesty";
        t.restrictToFamilies = {"swmr", "snoop_honesty"};
        tests.push_back(std::move(t));
    }

    {
        // GO-cannot-tailgate-snoop.
        LitmusTest t;
        t.name = "go_tailgate_test";
        t.description =
            "If the host sends the ownership GO together with the "
            "snoop it depends on, the old sharer and the new owner "
            "coexist.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(0);
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Load};
        t.config.relaxGoTailgate = true;
        t.expectViolation = true;
        t.expectedViolationFamily = "swmr";
        t.restrictToFamilies = {"swmr"};
        tests.push_back(std::move(t));
    }

    {
        // One-snoop-pending (CXL 3.1 S3.2.5.5).
        LitmusTest t;
        t.name = "one_snoop_test";
        t.description =
            "A second snoop dispatched before the first response "
            "breaks the singleton-channel discipline the protocol "
            "depends on.";
        t.scenario.name = t.name;
        t.scenario.initial = initialBothShared(0);
        t.scenario.program[0] = {Instr::Store};
        t.scenario.program[1] = {Instr::Load};
        t.config.relaxOneSnoop = true;
        t.expectViolation = true;
        t.expectedViolationFamily = "channel_singleton";
        t.restrictToFamilies = {"swmr", "channel_singleton"};
        tests.push_back(std::move(t));
    }

    return tests;
}

} // namespace cxl
