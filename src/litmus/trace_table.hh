/**
 * @file
 * Renders a guided run as a transition table in the layout of the
 * paper's Tables 1-3: one row per rule firing, one column per selected
 * state component.
 */

#ifndef CXL_LITMUS_TRACE_TABLE_HH
#define CXL_LITMUS_TRACE_TABLE_HH

#include <string>
#include <vector>

#include "litmus/litmus.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/** Identifies one printable component of the system state. */
enum class StateColumn {
    DProg1, DProg2,
    DCache1, DCache2,
    D2HReq1, D2HReq2,
    D2HRsp1, D2HRsp2,
    D2HData1, D2HData2,
    H2DReq1, H2DReq2,
    H2DRsp1, H2DRsp2,
    H2DData1, H2DData2,
    HCache,
    Counter,
};

/** Column header text as used in the paper ("DCache1", ...). */
std::string columnName(StateColumn col);

/** Format one component of @p state (programs need the scenario). */
std::string formatColumn(const SystemState &state,
                         const Scenario &scenario, StateColumn col);

/**
 * Render a guided run as a transition table.
 *
 * @param steps    the guided trace, including the initial state.
 * @param scenario needed to print remaining program text.
 * @param columns  which components to show, in order.
 * @param markdown render GitHub-style.
 */
std::string renderTraceTable(const std::vector<GuidedStep> &steps,
                             const Scenario &scenario,
                             const std::vector<StateColumn> &columns,
                             bool markdown = false);

/** As above, but for explorer traces (e.g. violation witnesses). */
std::string renderTraceTable(const std::vector<TraceStep> &steps,
                             const Scenario &scenario,
                             const std::vector<StateColumn> &columns,
                             bool markdown = false);

} // namespace cxl

#endif // CXL_LITMUS_TRACE_TABLE_HH
