/**
 * @file
 * Renders a guided run as a transition table in the layout of the
 * paper's Tables 1-3: one row per rule firing, one column per selected
 * state component.  Columns exist for every device slot up to
 * kMaxDevices, so 3- and 4-device counterexamples render with one
 * column group per active device (ROADMAP item 1).
 */

#ifndef CXL_LITMUS_TRACE_TABLE_HH
#define CXL_LITMUS_TRACE_TABLE_HH

#include <string>
#include <vector>

#include "litmus/litmus.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/**
 * Identifies one printable component of the system state.  Per-device
 * columns are laid out kind-major: value = kind * kMaxDevices + dev
 * (0-based device), which is what deviceColumn() relies on; the named
 * enumerators keep the paper's two-device spellings at every call
 * site.
 */
enum class StateColumn : std::uint8_t {
    DProg1, DProg2, DProg3, DProg4,
    DCache1, DCache2, DCache3, DCache4,
    D2HReq1, D2HReq2, D2HReq3, D2HReq4,
    D2HRsp1, D2HRsp2, D2HRsp3, D2HRsp4,
    D2HData1, D2HData2, D2HData3, D2HData4,
    H2DReq1, H2DReq2, H2DReq3, H2DReq4,
    H2DRsp1, H2DRsp2, H2DRsp3, H2DRsp4,
    H2DData1, H2DData2, H2DData3, H2DData4,
    HCache,
    Counter,
};

/** The per-device column kinds, indexable by deviceColumn(). */
enum class DeviceColumn : std::uint8_t {
    DProg, DCache,
    D2HReq, D2HRsp, D2HData,
    H2DReq, H2DRsp, H2DData,
};

/** The @p kind column of device @p dev (0-based, < kMaxDevices). */
StateColumn deviceColumn(DeviceColumn kind, int dev);

/**
 * The default column set for rendering explorer witnesses of an
 * @p ndev -device model: caches (device 1, host, devices 2..N) then
 * the snoop/response channels of every active device.
 */
std::vector<StateColumn> defaultTraceColumns(int ndev);

/** Column header text as used in the paper ("DCache1", ...). */
std::string columnName(StateColumn col);

/** Format one component of @p state (programs need the scenario). */
std::string formatColumn(const SystemState &state,
                         const Scenario &scenario, StateColumn col);

/**
 * Render a guided run as a transition table.
 *
 * @param steps    the guided trace, including the initial state.
 * @param scenario needed to print remaining program text.
 * @param columns  which components to show, in order.
 * @param markdown render GitHub-style.
 */
std::string renderTraceTable(const std::vector<GuidedStep> &steps,
                             const Scenario &scenario,
                             const std::vector<StateColumn> &columns,
                             bool markdown = false);

/** As above, but for explorer traces (e.g. violation witnesses). */
std::string renderTraceTable(const std::vector<TraceStep> &steps,
                             const Scenario &scenario,
                             const std::vector<StateColumn> &columns,
                             bool markdown = false);

} // namespace cxl

#endif // CXL_LITMUS_TRACE_TABLE_HH
