#include "litmus/trace_table.hh"

#include <cassert>

#include "support/table.hh"

namespace cxl
{
namespace
{

constexpr int kDeviceColumnKinds = 8;

static_assert(kMaxDevices == 4,
              "the StateColumn enumerator grid spells out 4 device "
              "slots per kind");

template <typename T, std::size_t N>
std::string
chanText(const InlineVec<T, N> &chan)
{
    std::string txt = "[";
    for (std::size_t i = 0; i < chan.size(); ++i) {
        if (i)
            txt += ", ";
        txt += toString(chan[i]);
    }
    return txt + "]";
}

std::string
progText(const SystemState &s, const Scenario &scenario, int dev)
{
    if (scenario.freeRun)
        return "(free)";
    std::string txt = "[";
    const auto &prog = scenario.program[dev];
    for (std::size_t i = s.dev[dev].pc; i < prog.size(); ++i) {
        if (i != s.dev[dev].pc)
            txt += ", ";
        txt += toString(prog[i]);
    }
    return txt + "]";
}

std::string
cacheText(Val v, const std::string &state)
{
    return "(" + std::to_string(v) + ", " + state + ")";
}

template <typename Step>
std::string
renderSteps(const std::vector<Step> &steps, const Scenario &scenario,
            const std::vector<StateColumn> &columns, bool markdown)
{
    std::vector<std::string> header{"transition rule"};
    for (StateColumn col : columns)
        header.push_back(columnName(col));

    TextTable table(header);
    for (const Step &step : steps) {
        std::vector<std::string> row;
        row.push_back(step.ruleName.empty() ? "(initial state)"
                                            : step.ruleName);
        for (StateColumn col : columns)
            row.push_back(formatColumn(step.state, scenario, col));
        table.addRow(std::move(row));
    }
    return table.render(markdown);
}

} // namespace

StateColumn
deviceColumn(DeviceColumn kind, int dev)
{
    assert(dev >= 0 && dev < kMaxDevices);
    return static_cast<StateColumn>(
        static_cast<int>(kind) * kMaxDevices + dev);
}

std::vector<StateColumn>
defaultTraceColumns(int ndev)
{
    std::vector<StateColumn> cols;
    cols.push_back(deviceColumn(DeviceColumn::DCache, 0));
    cols.push_back(StateColumn::HCache);
    for (int d = 1; d < ndev; ++d)
        cols.push_back(deviceColumn(DeviceColumn::DCache, d));
    for (int d = 0; d < ndev; ++d) {
        cols.push_back(deviceColumn(DeviceColumn::H2DReq, d));
        cols.push_back(deviceColumn(DeviceColumn::H2DRsp, d));
        cols.push_back(deviceColumn(DeviceColumn::D2HRsp, d));
    }
    return cols;
}

std::string
columnName(StateColumn col)
{
    switch (col) {
      case StateColumn::HCache: return "HCache";
      case StateColumn::Counter: return "Counter";
      default: break;
    }
    const int v = static_cast<int>(col);
    const int dev = v % kMaxDevices;
    static const char *const kKindNames[kDeviceColumnKinds] = {
        "DProg", "DCache", "D2HReq", "D2HRsp",
        "D2HData", "H2DReq", "H2DRsp", "H2DData",
    };
    const int kind = v / kMaxDevices;
    if (kind >= kDeviceColumnKinds)
        return "?";
    return std::string(kKindNames[kind]) + std::to_string(dev + 1);
}

std::string
formatColumn(const SystemState &s, const Scenario &scenario,
             StateColumn col)
{
    switch (col) {
      case StateColumn::HCache:
        return cacheText(s.hval, toString(s.hstate));
      case StateColumn::Counter: return std::to_string(s.counter);
      default: break;
    }
    const int v = static_cast<int>(col);
    const int dev = v % kMaxDevices;
    const DeviceColumn kind =
        static_cast<DeviceColumn>(v / kMaxDevices);
    const DeviceState &d = s.dev[dev];
    switch (kind) {
      case DeviceColumn::DProg: return progText(s, scenario, dev);
      case DeviceColumn::DCache:
        return cacheText(d.val, toString(d.state));
      case DeviceColumn::D2HReq: return chanText(d.d2hReq);
      case DeviceColumn::D2HRsp: return chanText(d.d2hRsp);
      case DeviceColumn::D2HData: return chanText(d.d2hData);
      case DeviceColumn::H2DReq: return chanText(d.h2dReq);
      case DeviceColumn::H2DRsp: return chanText(d.h2dRsp);
      case DeviceColumn::H2DData: return chanText(d.h2dData);
    }
    return "?";
}

std::string
renderTraceTable(const std::vector<GuidedStep> &steps,
                 const Scenario &scenario,
                 const std::vector<StateColumn> &columns, bool markdown)
{
    return renderSteps(steps, scenario, columns, markdown);
}

std::string
renderTraceTable(const std::vector<TraceStep> &steps,
                 const Scenario &scenario,
                 const std::vector<StateColumn> &columns, bool markdown)
{
    return renderSteps(steps, scenario, columns, markdown);
}

} // namespace cxl
