#include "litmus/trace_table.hh"

#include "support/table.hh"

namespace cxl
{
namespace
{

template <typename T, std::size_t N>
std::string
chanText(const InlineVec<T, N> &chan)
{
    std::string txt = "[";
    for (std::size_t i = 0; i < chan.size(); ++i) {
        if (i)
            txt += ", ";
        txt += toString(chan[i]);
    }
    return txt + "]";
}

std::string
progText(const SystemState &s, const Scenario &scenario, int dev)
{
    if (scenario.freeRun)
        return "(free)";
    std::string txt = "[";
    const auto &prog = scenario.program[dev];
    for (std::size_t i = s.dev[dev].pc; i < prog.size(); ++i) {
        if (i != s.dev[dev].pc)
            txt += ", ";
        txt += toString(prog[i]);
    }
    return txt + "]";
}

std::string
cacheText(Val v, const std::string &state)
{
    return "(" + std::to_string(v) + ", " + state + ")";
}

template <typename Step>
std::string
renderSteps(const std::vector<Step> &steps, const Scenario &scenario,
            const std::vector<StateColumn> &columns, bool markdown)
{
    std::vector<std::string> header{"transition rule"};
    for (StateColumn col : columns)
        header.push_back(columnName(col));

    TextTable table(header);
    for (const Step &step : steps) {
        std::vector<std::string> row;
        row.push_back(step.ruleName.empty() ? "(initial state)"
                                            : step.ruleName);
        for (StateColumn col : columns)
            row.push_back(formatColumn(step.state, scenario, col));
        table.addRow(std::move(row));
    }
    return table.render(markdown);
}

} // namespace

std::string
columnName(StateColumn col)
{
    switch (col) {
      case StateColumn::DProg1: return "DProg1";
      case StateColumn::DProg2: return "DProg2";
      case StateColumn::DCache1: return "DCache1";
      case StateColumn::DCache2: return "DCache2";
      case StateColumn::D2HReq1: return "D2HReq1";
      case StateColumn::D2HReq2: return "D2HReq2";
      case StateColumn::D2HRsp1: return "D2HRsp1";
      case StateColumn::D2HRsp2: return "D2HRsp2";
      case StateColumn::D2HData1: return "D2HData1";
      case StateColumn::D2HData2: return "D2HData2";
      case StateColumn::H2DReq1: return "H2DReq1";
      case StateColumn::H2DReq2: return "H2DReq2";
      case StateColumn::H2DRsp1: return "H2DRsp1";
      case StateColumn::H2DRsp2: return "H2DRsp2";
      case StateColumn::H2DData1: return "H2DData1";
      case StateColumn::H2DData2: return "H2DData2";
      case StateColumn::HCache: return "HCache";
      case StateColumn::Counter: return "Counter";
    }
    return "?";
}

std::string
formatColumn(const SystemState &s, const Scenario &scenario,
             StateColumn col)
{
    switch (col) {
      case StateColumn::DProg1: return progText(s, scenario, 0);
      case StateColumn::DProg2: return progText(s, scenario, 1);
      case StateColumn::DCache1:
        return cacheText(s.dev[0].val, toString(s.dev[0].state));
      case StateColumn::DCache2:
        return cacheText(s.dev[1].val, toString(s.dev[1].state));
      case StateColumn::D2HReq1: return chanText(s.dev[0].d2hReq);
      case StateColumn::D2HReq2: return chanText(s.dev[1].d2hReq);
      case StateColumn::D2HRsp1: return chanText(s.dev[0].d2hRsp);
      case StateColumn::D2HRsp2: return chanText(s.dev[1].d2hRsp);
      case StateColumn::D2HData1: return chanText(s.dev[0].d2hData);
      case StateColumn::D2HData2: return chanText(s.dev[1].d2hData);
      case StateColumn::H2DReq1: return chanText(s.dev[0].h2dReq);
      case StateColumn::H2DReq2: return chanText(s.dev[1].h2dReq);
      case StateColumn::H2DRsp1: return chanText(s.dev[0].h2dRsp);
      case StateColumn::H2DRsp2: return chanText(s.dev[1].h2dRsp);
      case StateColumn::H2DData1: return chanText(s.dev[0].h2dData);
      case StateColumn::H2DData2: return chanText(s.dev[1].h2dData);
      case StateColumn::HCache:
        return cacheText(s.hval, toString(s.hstate));
      case StateColumn::Counter: return std::to_string(s.counter);
    }
    return "?";
}

std::string
renderTraceTable(const std::vector<GuidedStep> &steps,
                 const Scenario &scenario,
                 const std::vector<StateColumn> &columns, bool markdown)
{
    return renderSteps(steps, scenario, columns, markdown);
}

std::string
renderTraceTable(const std::vector<TraceStep> &steps,
                 const Scenario &scenario,
                 const std::vector<StateColumn> &columns, bool markdown)
{
    return renderSteps(steps, scenario, columns, markdown);
}

} // namespace cxl
