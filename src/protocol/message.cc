#include "protocol/message.hh"

namespace cxl
{

std::string
toString(const D2HReq &m)
{
    return "(" + toString(m.op) + ", " + std::to_string(m.tid) + ")";
}

std::string
toString(const D2HRsp &m)
{
    return "(" + toString(m.op) + ", " + std::to_string(m.tid) + ")";
}

std::string
toString(const H2DReq &m)
{
    return "(" + toString(m.op) + ", " + std::to_string(m.tid) + ")";
}

std::string
toString(const H2DRsp &m)
{
    if (m.op == H2DRspOp::GO) {
        return "(GO, " + toString(m.target) + ", " +
               std::to_string(m.tid) + ")";
    }
    return "(" + toString(m.op) + ", " + std::to_string(m.tid) + ")";
}

std::string
toString(const DataMsg &m)
{
    std::string txt = "(Data(" + std::to_string(m.val) + "), " +
                      std::to_string(m.tid) + ")";
    if (m.bogus)
        txt += "!bogus";
    return txt;
}

std::string
toString(const DBuffer &b)
{
    switch (b.kind) {
      case DBuffer::Kind::Empty:
        return "_";
      case DBuffer::Kind::Req:
        return "(" + toString(b.reqOp) + ", " + std::to_string(b.tid) +
               ")";
      case DBuffer::Kind::Rsp:
        return "(" + toString(b.rspOp) + ", " + std::to_string(b.tid) +
               ")";
    }
    return "?";
}

} // namespace cxl
