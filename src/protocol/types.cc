#include "protocol/types.hh"

#include <array>
#include <cassert>

namespace cxl
{

std::string
toString(DState s)
{
    switch (s) {
      case DState::I: return "I";
      case DState::S: return "S";
      case DState::M: return "M";
      case DState::ISAD: return "ISAD";
      case DState::ISD: return "ISD";
      case DState::ISA: return "ISA";
      case DState::IMAD: return "IMAD";
      case DState::IMD: return "IMD";
      case DState::IMA: return "IMA";
      case DState::SMAD: return "SMAD";
      case DState::SMD: return "SMD";
      case DState::SMA: return "SMA";
      case DState::MIA: return "MIA";
      case DState::SIA: return "SIA";
      case DState::SIAC: return "SIAC";
      case DState::IIA: return "IIA";
      case DState::ISDI: return "ISDI";
    }
    return "?";
}

std::string
toString(HState s)
{
    switch (s) {
      case HState::I: return "I";
      case HState::S: return "S";
      case HState::M: return "M";
      case HState::SAD: return "SAD";
      case HState::SD: return "SD";
      case HState::SA: return "SA";
      case HState::MAD: return "MAD";
      case HState::MD: return "MD";
      case HState::MA: return "MA";
      case HState::ID: return "ID";
      case HState::SB: return "SB";
    }
    return "?";
}

std::string
toString(Instr i)
{
    switch (i) {
      case Instr::None: return "None";
      case Instr::Load: return "Load";
      case Instr::Store: return "Store";
      case Instr::Evict: return "Evict";
    }
    return "?";
}

std::string
toString(D2HReqOp op)
{
    switch (op) {
      case D2HReqOp::RdShared: return "RdShared";
      case D2HReqOp::RdOwn: return "RdOwn";
      case D2HReqOp::CleanEvict: return "CleanEvict";
      case D2HReqOp::DirtyEvict: return "DirtyEvict";
      case D2HReqOp::CleanEvictNoData: return "CleanEvictNoData";
    }
    return "?";
}

std::string
toString(D2HRspOp op)
{
    switch (op) {
      case D2HRspOp::RspIHitSE: return "RspIHitSE";
      case D2HRspOp::RspIFwdM: return "RspIFwdM";
      case D2HRspOp::RspSFwdM: return "RspSFwdM";
      case D2HRspOp::RspIHitI: return "RspIHitI";
    }
    return "?";
}

std::string
toString(H2DReqOp op)
{
    switch (op) {
      case H2DReqOp::SnpData: return "SnpData";
      case H2DReqOp::SnpInv: return "SnpInv";
    }
    return "?";
}

std::string
toString(H2DRspOp op)
{
    switch (op) {
      case H2DRspOp::GO: return "GO";
      case H2DRspOp::GO_WritePull: return "GO_WritePull";
      case H2DRspOp::GO_WritePullDrop: return "GO_WritePullDrop";
    }
    return "?";
}

DState
dstateFromIndex(int idx)
{
    assert(idx >= 0 && idx < kNumDStates);
    return static_cast<DState>(idx);
}

HState
hstateFromIndex(int idx)
{
    assert(idx >= 0 && idx < kNumHStates);
    return static_cast<HState>(idx);
}

} // namespace cxl
