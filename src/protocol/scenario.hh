/**
 * @file
 * Scenarios: the device programs (DProg1/DProg2 of paper Fig. 3) plus
 * the initial state they start from.
 *
 * Programs are the paper's invention for steering scenario
 * verification: they only trigger coherence transactions.  A scenario
 * can instead run in *free mode*, where each device may
 * nondeterministically issue any instruction at any time — that is the
 * configuration under which the checker enumerates the full reachable
 * state space for the SWMR theorem.
 *
 * The active device count is carried by the scenario's initial state
 * (SystemState::ndev) and exposed through numDevices(); rule sets and
 * invariant sets are built for a matching count.
 */

#ifndef CXL_PROTOCOL_SCENARIO_HH
#define CXL_PROTOCOL_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protocol/state.hh"
#include "protocol/types.hh"

namespace cxl
{

/** A scenario = initial state + one instruction list per device. */
struct Scenario {
    std::string name = "unnamed";
    SystemState initial;
    std::vector<Instr> program[kMaxDevices];

    /**
     * Free-run mode: ignore the programs; any device whose cacheline
     * state admits an instruction may issue it at any time.  Makes the
     * transition system input-free, so reachability covers *all*
     * protocol behaviours.
     */
    bool freeRun = false;

    /** Active device count, carried by the initial state. */
    int numDevices() const { return initial.ndev; }

    /**
     * The instruction device @p dev would execute at program counter
     * @p pc, or Instr::None when the program is exhausted.  Free-run
     * scenarios return None here; free-run rules use mayIssue().
     */
    Instr
    fetch(int dev, std::uint8_t pc) const
    {
        if (freeRun)
            return Instr::None;
        const auto &prog = program[dev];
        if (pc >= prog.size())
            return Instr::None;
        return prog[pc];
    }

    /** True if device @p dev may issue @p instr at pc @p pc. */
    bool
    mayIssue(int dev, std::uint8_t pc, Instr instr) const
    {
        if (freeRun)
            return true;
        return fetch(dev, pc) == instr;
    }

    /**
     * Whether consuming an instruction advances the pc (program mode)
     * or leaves it untouched (free-run keeps pc at zero so the state
     * space stays finite).
     */
    std::uint8_t
    nextPc(int dev, std::uint8_t pc) const
    {
        (void)dev;
        return freeRun ? pc : static_cast<std::uint8_t>(pc + 1);
    }

    /** True when every device program has fully retired. */
    bool
    finished(const SystemState &s) const
    {
        if (freeRun)
            return false;
        for (int d = 0; d < numDevices(); ++d) {
            if (s.dev[d].pc < program[d].size())
                return false;
        }
        return true;
    }

    /** Canonical free-run scenario from the all-invalid initial state. */
    static Scenario
    freeRunScenario(int num_devices = kDefaultNumDevices)
    {
        Scenario sc;
        sc.name = "free_run";
        sc.initial = initialAllInvalid(0, num_devices);
        sc.freeRun = true;
        return sc;
    }
};

} // namespace cxl

#endif // CXL_PROTOCOL_SCENARIO_HH
