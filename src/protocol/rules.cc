#include "protocol/rules.hh"

#include <algorithm>
#include <cassert>

namespace cxl
{

bool
sharerView(const SystemState &s, int j)
{
    const DeviceState &d = s.dev[j];
    switch (d.state) {
      case DState::S:
      case DState::SMAD:
      case DState::ISD:
      case DState::ISA:
        return true;
      case DState::SIA:
      case DState::SIAC:
        // An evicting sharer counts only while its eviction request is
        // still queued; once the host has processed it the directory
        // has already discounted the device (the GO_WritePull[Drop] is
        // in flight and the line is as good as gone).
        return !d.d2hReq.empty();
      case DState::ISAD:
        // A grant is in flight: the host has already promised S.
        return !d.h2dRsp.empty() || !d.h2dData.empty();
      default:
        return false;
    }
}

bool
ownerView(const SystemState &s, int j)
{
    const DeviceState &d = s.dev[j];
    switch (d.state) {
      case DState::M:
      case DState::IMD:
      case DState::IMA:
      case DState::SMD:
      case DState::SMA:
        return true;
      case DState::MIA:
        // Same discounting as evicting sharers in sharerView().
        return !d.d2hReq.empty();
      case DState::IMAD:
      case DState::SMAD:
        // Ownership grant in flight.
        return !d.h2dRsp.empty() || !d.h2dData.empty();
      default:
        return false;
    }
}

bool
goSendAllowed(const SystemState &s, int i)
{
    const DeviceState &d = s.dev[i];
    return d.h2dReq.empty() && d.d2hRsp.empty() && d.d2hData.empty();
}

bool
anyOtherSharer(const SystemState &s, int i)
{
    for (int k = 0; k < s.ndev; ++k) {
        if (k != i && sharerView(s, k))
            return true;
    }
    return false;
}

bool
otherGrantDataDrained(const SystemState &s, int i)
{
    for (int k = 0; k < s.ndev; ++k) {
        if (k != i && !s.dev[k].h2dData.empty())
            return false;
    }
    return true;
}

namespace
{

/** Lookup key of one template instance: base + device-arg tuple. */
std::string
instanceKey(const std::string &base, const std::array<std::int8_t, 3> &args)
{
    std::string key = base;
    for (std::int8_t a : args) {
        key += '/';
        key += static_cast<char>('0' + (a + 1));
    }
    return key;
}

} // namespace

RuleSet::RuleSet(ProtocolConfig config, int numDevices)
    : config_(config), num_devices_(numDevices)
{
    assert(numDevices >= 1 && numDevices <= kMaxDevices);
    for (int d = 0; d < num_devices_; ++d)
        addDeviceRules(rules_, d, config_);
    for (int d = 0; d < num_devices_; ++d)
        addHostRules(rules_, d, config_, num_devices_);
    for (std::size_t i = 0; i < rules_.size(); ++i)
        rules_[i].id = static_cast<std::uint16_t>(i);
    indexInstances();
}

void
RuleSet::indexInstances()
{
    instances_.clear();
    for (const Rule &r : rules_) {
        if (r.base.empty())
            continue;
        instances_.emplace(instanceKey(r.base, r.args), r.id);
    }
}

int
RuleSet::permutedRuleId(std::uint16_t id,
                        const std::uint8_t *oldToNew) const
{
    const Rule &r = rules_[id];
    if (r.base.empty())
        return -1;
    std::array<std::int8_t, 3> mapped = r.args;
    for (std::int8_t &a : mapped) {
        if (a >= 0) {
            assert(a < num_devices_);
            a = static_cast<std::int8_t>(oldToNew[a]);
        }
    }
    auto it = instances_.find(instanceKey(r.base, mapped));
    return it == instances_.end() ? -1 : static_cast<int>(it->second);
}

std::size_t
RuleSet::baseRuleCount() const
{
    return static_cast<std::size_t>(
        std::count_if(rules_.begin(), rules_.end(),
                      [](const Rule &r) { return !r.mutated; }));
}

void
RuleSet::addRule(Rule rule)
{
    rule.id = static_cast<std::uint16_t>(rules_.size());
    rules_.push_back(std::move(rule));
    const Rule &added = rules_.back();
    if (!added.base.empty())
        instances_.emplace(instanceKey(added.base, added.args),
                           added.id);
}

const Rule *
RuleSet::find(const std::string &name) const
{
    for (const Rule &r : rules_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::vector<RuleSet::Successor>
RuleSet::successors(const SystemState &state, const Scenario &scenario,
                    bool canonicalise) const
{
    std::vector<Successor> result;
    successorsInto(state, scenario, canonicalise, result);
    return result;
}

void
RuleSet::successorsInto(const SystemState &state,
                        const Scenario &scenario, bool canonicalise,
                        std::vector<Successor> &out) const
{
    out.clear();
    Context ctx{&scenario};
    for (const Rule &rule : rules_) {
        if (!rule.guard(state, ctx))
            continue;
        Successor &succ = out.emplace_back(Successor{&rule, state, false});
        succ.overflow = !rule.apply(succ.state, ctx);
        if (canonicalise)
            succ.state.canonicaliseTids();
    }
}

void
RuleSet::successorsPor(const SystemState &state,
                       const Scenario &scenario, bool canonicalise,
                       const std::uint64_t *sleep,
                       std::vector<Successor> &out,
                       std::vector<std::uint16_t> &slept) const
{
    out.clear();
    slept.clear();
    Context ctx{&scenario};
    for (const Rule &rule : rules_) {
        if (!rule.guard(state, ctx))
            continue;
        if (sleep[rule.id >> 6] & (1ull << (rule.id & 63))) {
            slept.push_back(rule.id);
            continue;
        }
        Successor &succ =
            out.emplace_back(Successor{&rule, state, false});
        succ.overflow = !rule.apply(succ.state, ctx);
        if (canonicalise)
            succ.state.canonicaliseTids();
    }
}

bool
RuleSet::fire(const std::string &name, SystemState &state,
              const Scenario &scenario) const
{
    const Rule *rule = find(name);
    if (!rule)
        return false;
    Context ctx{&scenario};
    if (!rule->guard(state, ctx))
        return false;
    return rule->apply(state, ctx);
}

} // namespace cxl
