/**
 * @file
 * Protocol configuration: spec-fix toggles (paper Section 4) and rule
 * relaxations / mutations (paper Section 5.2).
 *
 * The correct model is the default-constructed config.  Each mutation
 * weakens exactly one restriction the CXL.cache standard imposes, so
 * the restriction-ablation experiments can show which invariant each
 * restriction protects.
 */

#ifndef CXL_PROTOCOL_CONFIG_HH
#define CXL_PROTOCOL_CONFIG_HH

#include <string>
#include <vector>

namespace cxl
{

/** Behavioural switches of the modelled protocol. */
struct ProtocolConfig {
    // ---- Spec-conformant behavioural choices -------------------------

    /**
     * Paper Section 4.4 proposed optimisation: when a snoop has already
     * invalidated an evicting line, respond with GO_WritePullDrop
     * (no data transferred) instead of the standard GO_WritePull to
     * which the device must answer with Bogus-flagged data.
     */
    bool staleEvictDrop = true;

    /** Devices may issue CleanEvictNoData as well as CleanEvict. */
    bool cleanEvictNoData = true;

    /**
     * The host may answer a (plain) CleanEvict with GO_WritePull and
     * absorb the clean writeback, in addition to GO_WritePullDrop.
     * Off by default for parity with the paper's model, where clean
     * evictions always complete with a drop (Table 1).
     */
    bool hostCleanPull = false;

    // ---- Mutations: relaxations of CXL.cache restrictions ------------

    /**
     * Table 3 / Fig. 5: devices may process a snoop while a GO response
     * is pending (adds the ISADSnpInv / IMADSnpInv rules and drops the
     * H2DRsp-empty guard from snoop rules).
     */
    bool relaxSnoopPushesGo = false;

    /**
     * Second instance of the same restriction: only the SMADSnpInv
     * rule loses its H2DRsp-empty guard.
     */
    bool relaxSmadSnoopGuard = false;

    /**
     * GO-cannot-tailgate-snoop: the host may send the GO for an
     * ownership grant together with (rather than after) the snoop it
     * depends on.
     */
    bool relaxGoTailgate = false;

    /**
     * One-snoop-pending (CXL 3.1 Section 3.2.5.5): the host may
     * dispatch a second snoop before collecting the response to the
     * first.
     */
    bool relaxOneSnoop = false;

    /** True iff any mutation flag is set. */
    bool
    mutated() const
    {
        return relaxSnoopPushesGo || relaxSmadSnoopGuard ||
               relaxGoTailgate || relaxOneSnoop;
    }

    /** Canonical correct-protocol configuration. */
    static ProtocolConfig
    correct()
    {
        return ProtocolConfig{};
    }

    /** Names of the active mutations (empty for the correct model). */
    std::vector<std::string>
    activeMutations() const
    {
        std::vector<std::string> names;
        if (relaxSnoopPushesGo)
            names.push_back("relax_snoop_pushes_go");
        if (relaxSmadSnoopGuard)
            names.push_back("relax_smad_snoop_guard");
        if (relaxGoTailgate)
            names.push_back("relax_go_tailgate");
        if (relaxOneSnoop)
            names.push_back("relax_one_snoop");
        return names;
    }
};

} // namespace cxl

#endif // CXL_PROTOCOL_CONFIG_HH
