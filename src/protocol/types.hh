/**
 * @file
 * Core enumerations of the CXL.cache model (paper Figure 3).
 *
 * Device and host cacheline states, message opcodes and device
 * instructions.  All enums are 8-bit so that the whole system state is
 * a padding-free byte record that can be hashed and compared bytewise.
 *
 * Naming follows the paper: stable states M/S/I, device transients in
 * Sorin-et-al. notation (IMAD = Invalid-to-Modified awaiting
 * Acknowledgement and Data, ...), host transients named by target
 * stable state plus what the host still awaits.  `ISDI` is included
 * although the paper's Fig. 3 omits it: the paper's own
 * "snoop responses need to be honest" invariant (Section 6) refers to
 * it, and it is required for the ISD + SnpInv race.
 */

#ifndef CXL_PROTOCOL_TYPES_HH
#define CXL_PROTOCOL_TYPES_HH

#include <cstdint>
#include <string>

namespace cxl
{

/** Cache value. Stores write `device_id + 1`, so the domain is tiny. */
using Val = std::uint8_t;

/** Transaction identifier (paper: Tid = N, allocated from Counter). */
using Tid = std::uint8_t;

/** Device cacheline states: 3 stable + 14 transient. */
enum class DState : std::uint8_t {
    I,    ///< invalid
    S,    ///< shared (read access)
    M,    ///< modified/exclusive collapsed (write access), as in paper
    ISAD, ///< I->S, awaiting GO (Ack) and Data
    ISD,  ///< I->S, GO consumed, awaiting Data
    ISA,  ///< I->S, Data consumed, awaiting GO
    IMAD, ///< I->M, awaiting GO and Data
    IMD,  ///< I->M, GO consumed, awaiting Data
    IMA,  ///< I->M, Data consumed, awaiting GO
    SMAD, ///< S->M upgrade, awaiting GO and Data
    SMD,  ///< S->M, GO consumed, awaiting Data
    SMA,  ///< S->M, Data consumed, awaiting GO
    MIA,  ///< M->I dirty eviction, awaiting GO_WritePull
    SIA,  ///< S->I clean eviction, awaiting GO_WritePull(Drop)
    SIAC, ///< S->I via CleanEvictNoData; host must not pull data
    IIA,  ///< eviction hit by a snoop; line dead, awaiting GO
    ISDI, ///< was ISD, invalidated by snoop; reads in-flight data once
};

/** Number of DState values (for iteration in sweeps). */
constexpr int kNumDStates = 17;

/** Host-side states. The host acts as directory + home (Section 3). */
enum class HState : std::uint8_t {
    I,   ///< no device holds the line
    S,   ///< one or more devices hold (or are being granted) S
    M,   ///< one device owns (or is being granted) the line
    SAD, ///< granting S: SnpData sent, awaiting response and data
    SD,  ///< granting S: snoop response consumed, awaiting dirty data
    SA,  ///< granting S: data consumed, awaiting response (unused by
         ///< our decomposition; kept for Fig. 3 parity)
    MAD, ///< granting M: SnpInv sent to dirty owner, awaiting rsp+data
    MD,  ///< granting M: response consumed, awaiting dirty data
    MA,  ///< granting M: SnpInv sent to clean sharer, awaiting response
    ID,  ///< dirty eviction: GO_WritePull sent, awaiting writeback
    SB,  ///< clean-evict data pull outstanding; host remains sharer
};

/** Number of HState values. */
constexpr int kNumHStates = 11;

/** Device program instructions (paper Fig. 3: Load/Store/Evict). */
enum class Instr : std::uint8_t {
    None, ///< program exhausted
    Load,
    Store,
    Evict,
};

/** Device-to-host request opcodes (modelled subset, Section 3.2). */
enum class D2HReqOp : std::uint8_t {
    RdShared,
    RdOwn,
    CleanEvict,
    DirtyEvict,
    CleanEvictNoData,
};

/**
 * Device-to-host response opcodes.  RspIHitI is never emitted by the
 * correct model (perfect tracking means the host never snoops an
 * invalid line); it exists for the mutated ISADSnpInv rule of Table 3.
 */
enum class D2HRspOp : std::uint8_t {
    RspIHitSE,
    RspIFwdM,
    RspSFwdM,
    RspIHitI,
};

/** Host-to-device request (snoop) opcodes. */
enum class H2DReqOp : std::uint8_t {
    SnpData,
    SnpInv,
};

/** Host-to-device response opcodes. */
enum class H2DRspOp : std::uint8_t {
    GO,
    GO_WritePull,
    GO_WritePullDrop,
};

/** @return true for M/S/I. */
constexpr bool
isStable(DState s)
{
    return s == DState::I || s == DState::S || s == DState::M;
}

/** @return true for host M/S/I. */
constexpr bool
isStable(HState s)
{
    return s == HState::I || s == HState::S || s == HState::M;
}

/**
 * @return true if the device holds (or is committed to holding)
 * readable data: the states the SWMR "reader" side ranges over.
 */
constexpr bool
hasReadAccess(DState s)
{
    return s == DState::S || s == DState::M;
}

/** @return true if the device has write access. */
constexpr bool
hasWriteAccess(DState s)
{
    return s == DState::M;
}

std::string toString(DState s);
std::string toString(HState s);
std::string toString(Instr i);
std::string toString(D2HReqOp op);
std::string toString(D2HRspOp op);
std::string toString(H2DReqOp op);
std::string toString(H2DRspOp op);

/** DState from dense index [0, kNumDStates); for sweeps. */
DState dstateFromIndex(int idx);

/** HState from dense index [0, kNumHStates); for sweeps. */
HState hstateFromIndex(int idx);

} // namespace cxl

#endif // CXL_PROTOCOL_TYPES_HH
