/**
 * @file
 * Host-side transition rules, generalised to N devices.
 *
 * The host is home agent and perfect-tracking directory (paper
 * Section 8): HCache.State mirrors the collective device-side state
 * (I = nobody holds the line, S = sharers exist, M = a device owns
 * it), and transient host states gate the emission of GO messages,
 * which is how the GO-cannot-tailgate-snoop restriction of CXL 3.1
 * Section 3.2.5.2 is realised.
 *
 * In the paper's two-device model the requester of the in-flight
 * transaction is always "the other device" and lives implicitly in
 * the rule instantiation; with N devices it is tracked explicitly in
 * SystemState::hreq (set when a transient host state is entered,
 * cleared when the directory returns to a stable state).  Rules that
 * interact with a snooped peer are instantiated once per ordered
 * (requester, target) pair; for more than two devices an ownership
 * grant chains one SnpInv per remaining sharer (one snoop pending at
 * a time, CXL 3.1 Section 3.2.5.5) before the GO is finally sent.
 *
 * Rules are named by the *requesting / evicting* device, exactly as
 * in the two-device model (HostMA_RspIHitSE1 consumes the snooped
 * peer's response and grants device 1); with more than two devices a
 * "_s<target>" (and, for chained snoops, "_n<next>") suffix keeps the
 * per-pair instances distinct.
 */

#include <cassert>

#include "protocol/rules.hh"

namespace cxl
{
namespace
{

bool
headReqIs(const DeviceState &d, D2HReqOp op)
{
    return !d.d2hReq.empty() && d.d2hReq.front().op == op;
}

bool
headRspIs(const DeviceState &d, D2HRspOp op)
{
    return !d.d2hRsp.empty() && d.d2hRsp.front().op == op;
}

bool
headDataClean(const DeviceState &d)
{
    return !d.d2hData.empty() && !d.d2hData.front().bogus;
}

/** The requester byte encoding device @p i (hreq is 1-based). */
constexpr std::uint8_t
asReq(int i)
{
    return static_cast<std::uint8_t>(i + 1);
}

/**
 * A sharer other than requester @p i and just-collected target @p o
 * remains to be invalidated.  Vacuously false in the two-device
 * model, where the MA acknowledgement always completes the grant.
 */
bool
anyThirdSharer(const SystemState &s, int i, int o)
{
    for (int k = 0; k < s.ndev; ++k) {
        if (k != i && k != o && sharerView(s, k))
            return true;
    }
    return false;
}

struct HostRuleBuilder {
    std::vector<Rule> &rules;
    int i;           ///< requester / evicter device (0-based)
    int numDevices;  ///< active device count

    /** Single construction site for every host rule. */
    void
    addNamed(std::string name, const std::string &base,
             std::array<std::int8_t, 3> args, bool mutated,
             fp::Footprint footprint,
             std::function<bool(const SystemState &, const Context &)>
                 guard,
             std::function<bool(SystemState &, const Context &)> apply)
    {
        Rule r;
        r.name = std::move(name);
        r.dev = i;
        r.mutated = mutated;
        r.footprint = footprint;
        r.base = base;
        r.args = args;
        r.guard = std::move(guard);
        r.apply = std::move(apply);
        rules.push_back(std::move(r));
    }

    void
    add(const std::string &base, bool mutated, fp::Footprint footprint,
        std::function<bool(const SystemState &, const Context &)> guard,
        std::function<bool(SystemState &, const Context &)> apply)
    {
        addNamed(base + std::to_string(i + 1), base,
                 {static_cast<std::int8_t>(i), -1, -1}, mutated,
                 footprint, std::move(guard), std::move(apply));
    }

    /**
     * A rule instantiated per (requester i, snoop target o) pair.
     * Two-device rule sets keep the paper's plain names (the target
     * is determined); larger ones disambiguate with a suffix.
     */
    void
    addPair(const std::string &base, int o, bool mutated,
            fp::Footprint footprint,
            std::function<bool(const SystemState &, const Context &)>
                guard,
            std::function<bool(SystemState &, const Context &)> apply)
    {
        std::string name = base + std::to_string(i + 1);
        if (numDevices > 2)
            name += "_s" + std::to_string(o + 1);
        addNamed(std::move(name), base,
                 {static_cast<std::int8_t>(i),
                  static_cast<std::int8_t>(o), -1},
                 mutated, footprint, std::move(guard),
                 std::move(apply));
    }

    /**
     * A chained-snoop rule instance (requester i, just-collected
     * target o, next target o2); only meaningful with three or more
     * devices, so the suffix is always fully qualified.
     */
    void
    addChained(const std::string &base, int o, int o2, bool mutated,
               fp::Footprint footprint,
               std::function<bool(const SystemState &, const Context &)>
                   guard,
               std::function<bool(SystemState &, const Context &)>
                   apply)
    {
        addNamed(base + std::to_string(i + 1) + "_s" +
                     std::to_string(o + 1) + "_n" +
                     std::to_string(o2 + 1),
                 base,
                 {static_cast<std::int8_t>(i),
                  static_cast<std::int8_t>(o),
                  static_cast<std::int8_t>(o2)},
                 mutated, footprint, std::move(guard),
                 std::move(apply));
    }

    /** Snoop targets: every active device other than the requester. */
    std::vector<int>
    others() const
    {
        std::vector<int> o;
        for (int k = 0; k < numDevices; ++k) {
            if (k != i)
                o.push_back(k);
        }
        return o;
    }
};

/** Push a (GO, target, tid) grant plus its data message to device i. */
bool
pushGrant(SystemState &s, int i, DState target, Tid tid, Val v)
{
    bool ok = s.dev[i].h2dRsp.pushBack({H2DRspOp::GO, target, tid});
    return s.dev[i].h2dData.pushBack({tid, v, 0}) && ok;
}

/** Room for one more response and one more data message to device i. */
bool
grantRoom(const SystemState &s, int i)
{
    return !s.dev[i].h2dRsp.full() && !s.dev[i].h2dData.full();
}

/** Read-request processing (RdShared / RdOwn). */
void
addReadRequestRules(HostRuleBuilder &b, const ProtocolConfig &config)
{
    const int i = b.i;
    const int nd = b.numDevices;
    const bool relax_tailgate = config.relaxGoTailgate;

    auto go_ok = [relax_tailgate](const SystemState &s, int dev) {
        return relax_tailgate || goSendAllowed(s, dev);
    };

    // Shared footprint pieces (see fp::).  go_ok is declared as a
    // read even when the tailgate mutation ignores it — extra reads
    // only cost reduction, never soundness.  A direct grant to
    // requester i reads the directory, the request head, the GO gate
    // and the grant headroom, and writes the directory, the request
    // channel and the grant channels.
    const std::uint32_t grant_reads = fp::kHost | fp::d2hReq(i) |
                                      fp::goSend(i) | fp::grantRoom(i);
    const std::uint32_t grant_writes = fp::kHost | fp::d2hReq(i) |
                                       fp::h2dRsp(i) | fp::h2dData(i);
    const std::uint32_t others_sharer =
        fp::allOthers(i, nd, fp::trackView);

    // Nobody holds the line: grant S directly from memory.
    b.add("HostInvalidRdShared", false, {grant_reads, grant_writes},
        [i, go_ok](const SystemState &s, const Context &) {
            return s.hstate == HState::I &&
                   headReqIs(s.dev[i], D2HReqOp::RdShared) &&
                   go_ok(s, i) && grantRoom(s, i);
        },
        [i](SystemState &s, const Context &) {
            Tid t = s.dev[i].d2hReq.front().tid;
            s.dev[i].d2hReq.popFront();
            s.hstate = HState::S;
            return pushGrant(s, i, DState::S, t, s.hval);
        });

    // Sharers already exist: grant another S copy.
    b.add("HostSharedRdShared", false,
        {grant_reads,
         fp::d2hReq(i) | fp::h2dRsp(i) | fp::h2dData(i)},
        [i, go_ok](const SystemState &s, const Context &) {
            return s.hstate == HState::S &&
                   headReqIs(s.dev[i], D2HReqOp::RdShared) &&
                   go_ok(s, i) && grantRoom(s, i);
        },
        [i](SystemState &s, const Context &) {
            Tid t = s.dev[i].d2hReq.front().tid;
            s.dev[i].d2hReq.popFront();
            return pushGrant(s, i, DState::S, t, s.hval);
        });

    // Some other device owns the line: snoop it down to S first.
    for (int o : b.others()) {
        b.addPair("HostModifiedRdShared", o, false,
            {fp::kHost | fp::d2hReq(i) | fp::trackView(o) |
                 fp::h2dReq(o),
             fp::kHost | fp::d2hReq(i) | fp::h2dReq(o)},
            [i, o](const SystemState &s, const Context &) {
                return s.hstate == HState::M &&
                       headReqIs(s.dev[i], D2HReqOp::RdShared) &&
                       ownerView(s, o) && !s.dev[o].h2dReq.full();
            },
            [i, o](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.hstate = HState::SAD;
                s.hreq = asReq(i);
                return s.dev[o].h2dReq.pushBack({H2DReqOp::SnpData, t});
            });

        b.addPair("HostSAD_RspSFwdM", o, false,
            {fp::kHost | fp::d2hRsp(o),
             fp::kHost | fp::d2hRsp(o)},
            [i, o](const SystemState &s, const Context &) {
                return s.hstate == HState::SAD && s.hreq == asReq(i) &&
                       headRspIs(s.dev[o], D2HRspOp::RspSFwdM);
            },
            [o](SystemState &s, const Context &) {
                s.dev[o].d2hRsp.popFront();
                s.hstate = HState::SD;
                return true;
            });

        // Forwarded dirty data arrives; memory is updated and the
        // original requester is granted S.
        b.addPair("HostSD_Data", o, false,
            {fp::kHost | fp::d2hData(o) | fp::goSend(i) |
                 fp::grantRoom(i),
             fp::kHost | fp::d2hData(o) | fp::h2dRsp(i) |
                 fp::h2dData(i)},
            [i, o, go_ok](const SystemState &s, const Context &) {
                return s.hstate == HState::SD && s.hreq == asReq(i) &&
                       headDataClean(s.dev[o]) && go_ok(s, i) &&
                       grantRoom(s, i);
            },
            [i, o](SystemState &s, const Context &) {
                DataMsg data = s.dev[o].d2hData.front();
                s.dev[o].d2hData.popFront();
                s.hval = data.val;
                s.hstate = HState::S;
                s.hreq = 0;
                return pushGrant(s, i, DState::S, data.tid, data.val);
            });
    }

    // Nobody holds the line: grant ownership directly.
    b.add("HostInvalidRdOwn", false, {grant_reads, grant_writes},
        [i, go_ok](const SystemState &s, const Context &) {
            return s.hstate == HState::I &&
                   headReqIs(s.dev[i], D2HReqOp::RdOwn) && go_ok(s, i) &&
                   grantRoom(s, i);
        },
        [i](SystemState &s, const Context &) {
            Tid t = s.dev[i].d2hReq.front().tid;
            s.dev[i].d2hReq.popFront();
            s.hstate = HState::M;
            return pushGrant(s, i, DState::M, t, s.hval);
        });

    // The requester is the sole sharer (an SMAD upgrade): no snoop
    // needed — the shortcut discussed in paper Section 8, with "the
    // other device is no sharer" generalised to all peers.
    b.add("HostSharedRdOwnUpgrade", false,
        {grant_reads | others_sharer, grant_writes},
        [i, go_ok](const SystemState &s, const Context &) {
            return s.hstate == HState::S &&
                   headReqIs(s.dev[i], D2HReqOp::RdOwn) &&
                   !anyOtherSharer(s, i) && go_ok(s, i) &&
                   grantRoom(s, i);
        },
        [i](SystemState &s, const Context &) {
            Tid t = s.dev[i].d2hReq.front().tid;
            s.dev[i].d2hReq.popFront();
            s.hstate = HState::M;
            return pushGrant(s, i, DState::M, t, s.hval);
        });

    // A clean sharer must be invalidated first.  Data can be sent to
    // the requester immediately (Table 3's SharedRdOwn1 step); the GO
    // follows once every sharer's snoop response has arrived.
    for (int o : b.others()) {
        b.addPair("HostSharedRdOwnSnp", o, false,
            {fp::kHost | fp::d2hReq(i) | fp::trackView(o) |
                 fp::h2dReq(o) | fp::h2dData(i),
             fp::kHost | fp::d2hReq(i) | fp::h2dReq(o) |
                 fp::h2dData(i)},
            [i, o](const SystemState &s, const Context &) {
                return s.hstate == HState::S &&
                       headReqIs(s.dev[i], D2HReqOp::RdOwn) &&
                       sharerView(s, o) && !s.dev[o].h2dReq.full() &&
                       !s.dev[i].h2dData.full();
            },
            [i, o](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.hstate = HState::MA;
                s.hreq = asReq(i);
                bool ok = s.dev[o].h2dReq.pushBack({H2DReqOp::SnpInv, t});
                return s.dev[i].h2dData.pushBack({t, s.hval, 0}) && ok;
            });
    }

    // Clean-sharer invalidation acknowledged.  If no sharer remains,
    // complete the grant (Table 3's MARspIHitI1, with the honest
    // RspIHitSE); the grant additionally waits until stale grant data
    // to any peer has drained (ISDI read-once), so that ownership is
    // never granted while shareable data is still in flight — the
    // paper's first Section 6 sample conjunct.  With more than two
    // devices a further sharer may remain, in which case the next
    // SnpInv is dispatched instead and the host stays in MA.
    auto add_ma_ack = [&](const std::string &base, D2HRspOp rsp,
                          bool mutated) {
        for (int o : b.others()) {
            // The completing acknowledgement quantifies over every
            // peer: anyThirdSharer tracks all k != i, o and
            // otherGrantDataDrained reads h2dData of all k != i.
            const std::uint32_t third_sharer = fp::allOthers(
                i, nd, [o](int k) {
                    return k == o ? 0u : fp::trackView(k);
                });
            const std::uint32_t peer_grant_data =
                fp::allOthers(i, nd, fp::h2dData);
            b.addPair(base, o, mutated,
                {fp::kHost | fp::d2hRsp(o) | third_sharer |
                     peer_grant_data | fp::goSend(i) | fp::h2dRsp(i),
                 fp::kHost | fp::d2hRsp(o) | fp::h2dRsp(i)},
                [i, o, rsp, go_ok](const SystemState &s,
                                   const Context &) {
                    return s.hstate == HState::MA &&
                           s.hreq == asReq(i) &&
                           headRspIs(s.dev[o], rsp) &&
                           !anyThirdSharer(s, i, o) && go_ok(s, i) &&
                           otherGrantDataDrained(s, i) &&
                           !s.dev[i].h2dRsp.full();
                },
                [i, o](SystemState &s, const Context &) {
                    Tid t = s.dev[o].d2hRsp.front().tid;
                    s.dev[o].d2hRsp.popFront();
                    s.hstate = HState::M;
                    s.hreq = 0;
                    return s.dev[i].h2dRsp.pushBack(
                        {H2DRspOp::GO, DState::M, t});
                });

            // Chained invalidation: another sharer remains, so the
            // collected response triggers the next SnpInv rather than
            // the GO.  Unreachable (and not generated) with fewer
            // than three devices.
            for (int o2 = 0; o2 < b.numDevices; ++o2) {
                if (o2 == i || o2 == o)
                    continue;
                b.addChained(base, o, o2, mutated,
                    {fp::kHost | fp::d2hRsp(o) | fp::trackView(o2) |
                         fp::h2dReq(o2),
                     fp::d2hRsp(o) | fp::h2dReq(o2)},
                    [i, o, o2, rsp](const SystemState &s,
                                    const Context &) {
                        return s.hstate == HState::MA &&
                               s.hreq == asReq(i) &&
                               headRspIs(s.dev[o], rsp) &&
                               sharerView(s, o2) &&
                               !s.dev[o2].h2dReq.full();
                    },
                    [o, o2](SystemState &s, const Context &) {
                        Tid t = s.dev[o].d2hRsp.front().tid;
                        s.dev[o].d2hRsp.popFront();
                        return s.dev[o2].h2dReq.pushBack(
                            {H2DReqOp::SnpInv, t});
                    });
            }
        }
    };
    add_ma_ack("HostMA_RspIHitSE", D2HRspOp::RspIHitSE, false);
    // Only reachable when a mutated device lies with RspIHitI.
    add_ma_ack("HostMA_RspIHitI", D2HRspOp::RspIHitI, false);

    // Some other device owns the line dirty: invalidate and collect.
    for (int o : b.others()) {
        b.addPair("HostModifiedRdOwn", o, false,
            {fp::kHost | fp::d2hReq(i) | fp::trackView(o) |
                 fp::h2dReq(o),
             fp::kHost | fp::d2hReq(i) | fp::h2dReq(o)},
            [i, o](const SystemState &s, const Context &) {
                return s.hstate == HState::M &&
                       headReqIs(s.dev[i], D2HReqOp::RdOwn) &&
                       ownerView(s, o) && !s.dev[o].h2dReq.full();
            },
            [i, o](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.hstate = HState::MAD;
                s.hreq = asReq(i);
                return s.dev[o].h2dReq.pushBack({H2DReqOp::SnpInv, t});
            });

        b.addPair("HostMAD_RspIFwdM", o, false,
            {fp::kHost | fp::d2hRsp(o),
             fp::kHost | fp::d2hRsp(o)},
            [i, o](const SystemState &s, const Context &) {
                return s.hstate == HState::MAD && s.hreq == asReq(i) &&
                       headRspIs(s.dev[o], D2HRspOp::RspIFwdM);
            },
            [o](SystemState &s, const Context &) {
                s.dev[o].d2hRsp.popFront();
                s.hstate = HState::MD;
                return true;
            });

        b.addPair("HostMD_Data", o, false,
            {fp::kHost | fp::d2hData(o) | fp::goSend(i) |
                 fp::grantRoom(i),
             fp::kHost | fp::d2hData(o) | fp::h2dRsp(i) |
                 fp::h2dData(i)},
            [i, o, go_ok](const SystemState &s, const Context &) {
                return s.hstate == HState::MD && s.hreq == asReq(i) &&
                       headDataClean(s.dev[o]) && go_ok(s, i) &&
                       grantRoom(s, i);
            },
            [i, o](SystemState &s, const Context &) {
                DataMsg data = s.dev[o].d2hData.front();
                s.dev[o].d2hData.popFront();
                s.hval = data.val;
                s.hstate = HState::M;
                s.hreq = 0;
                return pushGrant(s, i, DState::M, data.tid, data.val);
            });
    }
}

/** Eviction processing. */
void
addEvictionRules(HostRuleBuilder &b, const ProtocolConfig &config)
{
    const int i = b.i;
    const int nd = b.numDevices;
    const bool relax_tailgate = config.relaxGoTailgate;
    const bool stale_drop = config.staleEvictDrop;

    auto go_ok = [relax_tailgate](const SystemState &s, int dev) {
        return relax_tailgate || goSendAllowed(s, dev);
    };

    auto push_go = [](SystemState &s, int dev, H2DRspOp op, Tid t) {
        return s.dev[dev].h2dRsp.pushBack({op, DState::I, t});
    };

    // Eviction processing reads the request head, the evicting
    // device's core (its cacheline state gates the flavour) and the
    // GO gate, and answers on h2dRsp; the apply also clears the
    // device buffer (core).
    const std::uint32_t evict_reads = fp::d2hReq(i) | fp::core(i) |
                                      fp::goSend(i) | fp::h2dRsp(i);
    const std::uint32_t evict_writes =
        fp::d2hReq(i) | fp::core(i) | fp::h2dRsp(i);
    const std::uint32_t others_sharer =
        fp::allOthers(i, nd, fp::trackView);

    // Paper Fig. 4's HostModifiedDirtyEvict1: pull the dirty line.
    b.add("HostModifiedDirtyEvict", false,
        {fp::kHost | evict_reads, fp::kHost | evict_writes},
        [i, go_ok](const SystemState &s, const Context &) {
            return s.hstate == HState::M &&
                   headReqIs(s.dev[i], D2HReqOp::DirtyEvict) &&
                   s.dev[i].state == DState::MIA && go_ok(s, i) &&
                   !s.dev[i].h2dRsp.full();
        },
        [i, push_go](SystemState &s, const Context &) {
            Tid t = s.dev[i].d2hReq.front().tid;
            s.dev[i].d2hReq.popFront();
            s.hstate = HState::ID;
            s.hreq = asReq(i);
            s.dev[i].buffer = DBuffer::empty();
            return push_go(s, i, H2DRspOp::GO_WritePull, t);
        });

    // Writeback data lands: memory updated, line dead (Table 2's
    // IDData1 step).
    b.add("HostID_Data", false,
        {fp::kHost | fp::d2hData(i), fp::kHost | fp::d2hData(i)},
        [i](const SystemState &s, const Context &) {
            return s.hstate == HState::ID && s.hreq == asReq(i) &&
                   headDataClean(s.dev[i]);
        },
        [i](SystemState &s, const Context &) {
            s.hval = s.dev[i].d2hData.front().val;
            s.dev[i].d2hData.popFront();
            s.hstate = HState::I;
            s.hreq = 0;
            return true;
        });

    // Clean-evict data pull completes; host remains a sharer.
    b.add("HostSB_Data", false,
        {fp::kHost | fp::d2hData(i), fp::kHost | fp::d2hData(i)},
        [i](const SystemState &s, const Context &) {
            return s.hstate == HState::SB && s.hreq == asReq(i) &&
                   headDataClean(s.dev[i]);
        },
        [i](SystemState &s, const Context &) {
            s.hval = s.dev[i].d2hData.front().val;
            s.dev[i].d2hData.popFront();
            s.hstate = HState::S;
            s.hreq = 0;
            return true;
        });

    /**
     * Clean evictions (CleanEvict from SIA, CleanEvictNoData from
     * SIAC, and a DirtyEvict whose line a SnpData has already cleaned
     * to SIA).  "Last" means no other sharer remains, in which case
     * the directory drops to I (Table 1's NotLastDrop naming).
     */
    struct CleanFlavor {
        const char *base;
        D2HReqOp req;
        DState devState;
        bool allowPull;
    };
    const CleanFlavor flavors[] = {
        {"HostSharedCleanEvict", D2HReqOp::CleanEvict, DState::SIA,
         config.hostCleanPull},
        {"HostSharedCleanEvictNoData", D2HReqOp::CleanEvictNoData,
         DState::SIAC, false},
        {"HostDirtyEvictCleaned", D2HReqOp::DirtyEvict, DState::SIA,
         !stale_drop},
    };

    for (const CleanFlavor &f : flavors) {
        const D2HReqOp req = f.req;
        const DState dev_state = f.devState;

        auto guard_common = [i, req, dev_state,
                             go_ok](const SystemState &s) {
            return s.hstate == HState::S && headReqIs(s.dev[i], req) &&
                   s.dev[i].state == dev_state && go_ok(s, i) &&
                   !s.dev[i].h2dRsp.full();
        };

        b.add(std::string(f.base) + "NotLastDrop", false,
            {fp::kHost | evict_reads | others_sharer, evict_writes},
            [i, guard_common](const SystemState &s, const Context &) {
                return guard_common(s) && anyOtherSharer(s, i);
            },
            [i, push_go](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.dev[i].buffer = DBuffer::empty();
                return push_go(s, i, H2DRspOp::GO_WritePullDrop, t);
            });

        b.add(std::string(f.base) + "LastDrop", false,
            {fp::kHost | evict_reads | others_sharer,
             fp::kHost | evict_writes},
            [i, guard_common](const SystemState &s, const Context &) {
                return guard_common(s) && !anyOtherSharer(s, i);
            },
            [i, push_go](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.dev[i].buffer = DBuffer::empty();
                s.hstate = HState::I;
                return push_go(s, i, H2DRspOp::GO_WritePullDrop, t);
            });

        if (!f.allowPull)
            continue;

        b.add(std::string(f.base) + "NotLastPull", false,
            {fp::kHost | evict_reads | others_sharer,
             fp::kHost | evict_writes},
            [i, guard_common](const SystemState &s, const Context &) {
                return guard_common(s) && anyOtherSharer(s, i);
            },
            [i, push_go](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.dev[i].buffer = DBuffer::empty();
                s.hstate = HState::SB;
                s.hreq = asReq(i);
                return push_go(s, i, H2DRspOp::GO_WritePull, t);
            });

        b.add(std::string(f.base) + "LastPull", false,
            {fp::kHost | evict_reads | others_sharer,
             fp::kHost | evict_writes},
            [i, guard_common](const SystemState &s, const Context &) {
                return guard_common(s) && !anyOtherSharer(s, i);
            },
            [i, push_go](SystemState &s, const Context &) {
                Tid t = s.dev[i].d2hReq.front().tid;
                s.dev[i].d2hReq.popFront();
                s.dev[i].buffer = DBuffer::empty();
                s.hstate = HState::ID;
                s.hreq = asReq(i);
                return push_go(s, i, H2DRspOp::GO_WritePull, t);
            });
    }

    /**
     * Stale evictions: a snoop already invalidated the evicting line
     * (device sits in IIA).  Standard behaviour pulls and receives
     * Bogus data; the paper's Section 4.4 proposal drops instead.
     */
    auto add_stale = [&](const char *base, D2HReqOp req) {
        // CleanEvictNoData promised no data: always drop.
        const bool drop_legal =
            stale_drop || req == D2HReqOp::CleanEvictNoData;
        const bool pull_legal =
            !stale_drop && req != D2HReqOp::CleanEvictNoData;

        if (drop_legal) {
            b.add(std::string(base) + "Drop", false,
                {evict_reads, evict_writes},
                [i, req, go_ok](const SystemState &s, const Context &) {
                    return headReqIs(s.dev[i], req) &&
                           s.dev[i].state == DState::IIA && go_ok(s, i) &&
                           !s.dev[i].h2dRsp.full();
                },
                [i, push_go](SystemState &s, const Context &) {
                    Tid t = s.dev[i].d2hReq.front().tid;
                    s.dev[i].d2hReq.popFront();
                    s.dev[i].buffer = DBuffer::empty();
                    return push_go(s, i, H2DRspOp::GO_WritePullDrop, t);
                });
        }

        if (pull_legal) {
            b.add(std::string(base) + "Pull", false,
                {evict_reads, evict_writes},
                [i, req, go_ok](const SystemState &s, const Context &) {
                    return headReqIs(s.dev[i], req) &&
                           s.dev[i].state == DState::IIA && go_ok(s, i) &&
                           !s.dev[i].h2dRsp.full();
                },
                [i, push_go](SystemState &s, const Context &) {
                    Tid t = s.dev[i].d2hReq.front().tid;
                    s.dev[i].d2hReq.popFront();
                    s.dev[i].buffer = DBuffer::empty();
                    return push_go(s, i, H2DRspOp::GO_WritePull, t);
                });
        }
    };
    add_stale("HostStaleCleanEvict", D2HReqOp::CleanEvict);
    add_stale("HostStaleCleanEvictNoData", D2HReqOp::CleanEvictNoData);
    add_stale("HostStaleDirtyEvict", D2HReqOp::DirtyEvict);

    // Bogus-flagged eviction data is discarded (CXL 3.1 S3.2.5.4).
    b.add("HostBogusData", false,
        {fp::d2hData(i), fp::d2hData(i)},
        [i](const SystemState &s, const Context &) {
            return !s.dev[i].d2hData.empty() &&
                   s.dev[i].d2hData.front().bogus;
        },
        [i](SystemState &s, const Context &) {
            s.dev[i].d2hData.popFront();
            return true;
        });
}

/** Mutation-only host rules (Section 5.2 relaxations). */
void
addMutatedHostRules(HostRuleBuilder &b, const ProtocolConfig &config)
{
    const int i = b.i;

    if (config.relaxGoTailgate) {
        // The GO tailgates the snoop it depends on: sent in the same
        // step, before any response is collected.
        for (int o : b.others()) {
            b.addPair("HostEagerGoRdOwn", o, true,
                {fp::kHost | fp::d2hReq(i) | fp::trackView(o) |
                     fp::h2dReq(o) | fp::grantRoom(i),
                 fp::kHost | fp::d2hReq(i) | fp::h2dReq(o) |
                     fp::h2dRsp(i) | fp::h2dData(i)},
                [i, o](const SystemState &s, const Context &) {
                    return s.hstate == HState::S &&
                           headReqIs(s.dev[i], D2HReqOp::RdOwn) &&
                           sharerView(s, o) &&
                           !s.dev[o].h2dReq.full() && grantRoom(s, i);
                },
                [i, o](SystemState &s, const Context &) {
                    Tid t = s.dev[i].d2hReq.front().tid;
                    s.dev[i].d2hReq.popFront();
                    s.hstate = HState::M;
                    bool ok =
                        s.dev[o].h2dReq.pushBack({H2DReqOp::SnpInv, t});
                    return pushGrant(s, i, DState::M, t, s.hval) && ok;
                });
        }
    }

    if (config.relaxOneSnoop) {
        // A second snoop is dispatched before the response to the
        // first is collected (violates CXL 3.1 Section 3.2.5.5).
        for (int o : b.others()) {
            b.addPair("HostSecondSnoop", o, true,
                {fp::kHost | fp::h2dReq(o) | fp::kCounter,
                 fp::kCounter | fp::h2dReq(o)},
                [i, o](const SystemState &s, const Context &) {
                    return (s.hstate == HState::MA ||
                            s.hstate == HState::MAD) &&
                           s.hreq == asReq(i) &&
                           s.dev[o].h2dReq.size() == 1 &&
                           s.counter < 250;
                },
                [o](SystemState &s, const Context &) {
                    Tid t = s.counter;
                    s.counter = static_cast<std::uint8_t>(s.counter + 1);
                    return s.dev[o].h2dReq.pushBack(
                        {H2DReqOp::SnpInv, t});
                });
        }
    }
}

} // namespace

void
addHostRules(std::vector<Rule> &rules, int d, const ProtocolConfig &config,
             int num_devices)
{
    assert(d >= 0 && d < num_devices && num_devices <= kMaxDevices);
    HostRuleBuilder b{rules, d, num_devices};
    addReadRequestRules(b, config);
    addEvictionRules(b, config);
    addMutatedHostRules(b, config);
}

} // namespace cxl
