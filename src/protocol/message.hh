/**
 * @file
 * Message records carried by the twelve channels of the model
 * (paper Fig. 3).  Every struct is built solely from 8-bit fields so
 * the containing system state has no padding bytes.
 */

#ifndef CXL_PROTOCOL_MESSAGE_HH
#define CXL_PROTOCOL_MESSAGE_HH

#include <string>

#include "protocol/types.hh"

namespace cxl
{

/** D2H Request: (RdShared | RdOwn | *Evict*, tid). */
struct D2HReq {
    D2HReqOp op = D2HReqOp::RdShared;
    Tid tid = 0;

    friend constexpr bool
    operator==(const D2HReq &a, const D2HReq &b)
    {
        return a.op == b.op && a.tid == b.tid;
    }
};

/** D2H Response: (Rsp*, tid). */
struct D2HRsp {
    D2HRspOp op = D2HRspOp::RspIHitSE;
    Tid tid = 0;

    friend constexpr bool
    operator==(const D2HRsp &a, const D2HRsp &b)
    {
        return a.op == b.op && a.tid == b.tid;
    }
};

/** H2D Request (snoop): (SnpData | SnpInv, tid). */
struct H2DReq {
    H2DReqOp op = H2DReqOp::SnpData;
    Tid tid = 0;

    friend constexpr bool
    operator==(const H2DReq &a, const H2DReq &b)
    {
        return a.op == b.op && a.tid == b.tid;
    }
};

/**
 * H2D Response: (GO | GO_WritePull | GO_WritePullDrop, target DState,
 * tid).  As in the paper, every H2D response carries the new device
 * state the cacheline should enter.
 */
struct H2DRsp {
    H2DRspOp op = H2DRspOp::GO;
    DState target = DState::I;
    Tid tid = 0;

    friend constexpr bool
    operator==(const H2DRsp &a, const H2DRsp &b)
    {
        return a.op == b.op && a.target == b.target && a.tid == b.tid;
    }
};

/**
 * Data message: (tid, value, bogus).  The Bogus flag models
 * CXL 3.1 Section 3.2.5.4: data sent for an eviction that a snoop has
 * already invalidated must be marked stale.
 */
struct DataMsg {
    Tid tid = 0;
    Val val = 0;
    std::uint8_t bogus = 0;

    friend constexpr bool
    operator==(const DataMsg &a, const DataMsg &b)
    {
        return a.tid == b.tid && a.val == b.val && a.bogus == b.bogus;
    }
};

/**
 * The per-device buffer of paper Fig. 2/3: holds the single in-flight
 * H2D message most recently taken off a channel (a snoop being
 * processed, per Fig. 4's SharedSnpInv rule), or is empty.  Rules that
 * complete a device-side transaction clear it.
 */
struct DBuffer {
    enum class Kind : std::uint8_t { Empty, Req, Rsp };

    Kind kind = Kind::Empty;
    /// Valid iff kind == Req.
    H2DReqOp reqOp = H2DReqOp::SnpData;
    /// Valid iff kind == Rsp.
    H2DRspOp rspOp = H2DRspOp::GO;
    DState target = DState::I;
    Tid tid = 0;

    static constexpr DBuffer
    empty()
    {
        return DBuffer{};
    }

    static constexpr DBuffer
    fromReq(const H2DReq &req)
    {
        DBuffer b;
        b.kind = Kind::Req;
        b.reqOp = req.op;
        b.tid = req.tid;
        return b;
    }

    static constexpr DBuffer
    fromRsp(const H2DRsp &rsp)
    {
        DBuffer b;
        b.kind = Kind::Rsp;
        b.rspOp = rsp.op;
        b.target = rsp.target;
        b.tid = rsp.tid;
        return b;
    }

    constexpr bool isEmpty() const { return kind == Kind::Empty; }

    /** True iff the buffer holds the given snoop kind. */
    constexpr bool
    holdsSnoop(H2DReqOp op) const
    {
        return kind == Kind::Req && reqOp == op;
    }

    friend constexpr bool
    operator==(const DBuffer &a, const DBuffer &b)
    {
        return a.kind == b.kind && a.reqOp == b.reqOp &&
               a.rspOp == b.rspOp && a.target == b.target &&
               a.tid == b.tid;
    }
};

std::string toString(const D2HReq &m);
std::string toString(const D2HRsp &m);
std::string toString(const H2DReq &m);
std::string toString(const H2DRsp &m);
std::string toString(const DataMsg &m);
std::string toString(const DBuffer &b);

} // namespace cxl

#endif // CXL_PROTOCOL_MESSAGE_HH
