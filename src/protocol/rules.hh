/**
 * @file
 * The transition rules of the CXL.cache model (paper Section 3.3).
 *
 * Each rule is a guarded command `(name, device, guard, action)`
 * exactly in the style of paper Fig. 4: the guard is a predicate over
 * the full system state; the action updates the state atomically.
 *
 * A RuleSet is built from a ProtocolConfig: spec-conformant toggles
 * select optional flows (CleanEvictNoData, host clean-data pulls, the
 * Section 4.4 stale-evict optimisation), and mutation flags add the
 * deliberately-broken rules (e.g. Table 3's ISADSnpInv) or strip
 * guards (Snoop-pushes-GO) for the restriction-relaxation experiments
 * of Section 5.2.
 */

#ifndef CXL_PROTOCOL_RULES_HH
#define CXL_PROTOCOL_RULES_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/config.hh"
#include "protocol/scenario.hh"
#include "protocol/state.hh"

namespace cxl
{

/** Evaluation context handed to guards and actions. */
struct Context {
    const Scenario *scenario;
};

// --- Static dependency footprints (partial-order reduction) ---------
//
// Every rule declares which *atoms* of the system state its guard and
// action read and which its action writes.  Atoms are coarse,
// disjoint slices of SystemState chosen so that footprint disjointness
// implies true commutation: the transaction counter, the host
// directory block (hval + hstate + hreq), and per device slot the
// cacheline core (val + state + buffer + pc) and each of the six
// message channels.  The checker derives a conservative independence
// relation from these masks — two rules are independent iff neither
// writes an atom the other reads or writes — which is what the
// sleep-set partial-order reduction prunes interleavings with.
namespace fp
{

/** Transaction-identifier counter (tid allocation). */
constexpr std::uint32_t kCounter = 1u << 0;

/** Host directory block: hval, hstate and the hreq requester byte. */
constexpr std::uint32_t kHost = 1u << 1;

/** Atoms per device slot: core plus the six channels. */
constexpr int kAtomsPerDevice = 7;

/** First atom bit of device slot @p d. */
constexpr int
devShift(int d)
{
    return 2 + d * kAtomsPerDevice;
}

/** Device cacheline core: val, state, buffer and pc. */
constexpr std::uint32_t
core(int d)
{
    return 1u << devShift(d);
}
constexpr std::uint32_t
d2hReq(int d)
{
    return 1u << (devShift(d) + 1);
}
constexpr std::uint32_t
d2hRsp(int d)
{
    return 1u << (devShift(d) + 2);
}
constexpr std::uint32_t
d2hData(int d)
{
    return 1u << (devShift(d) + 3);
}
constexpr std::uint32_t
h2dReq(int d)
{
    return 1u << (devShift(d) + 4);
}
constexpr std::uint32_t
h2dRsp(int d)
{
    return 1u << (devShift(d) + 5);
}
constexpr std::uint32_t
h2dData(int d)
{
    return 1u << (devShift(d) + 6);
}

/** Every atom of device slot @p d. */
constexpr std::uint32_t
devAll(int d)
{
    return ((1u << kAtomsPerDevice) - 1) << devShift(d);
}

/** Total atom count and the all-atoms mask (the conservative
 * default: a rule without a tighter annotation conflicts with
 * everything and is never reduced against). */
constexpr int kNumAtoms = 2 + kMaxDevices * kAtomsPerDevice;
constexpr std::uint32_t kAll = (1u << kNumAtoms) - 1;

/** Read set of sharerView()/ownerView() for device @p d. */
constexpr std::uint32_t
trackView(int d)
{
    return core(d) | d2hReq(d) | h2dRsp(d) | h2dData(d);
}

/** Read set of goSendAllowed() for device @p d. */
constexpr std::uint32_t
goSend(int d)
{
    return h2dReq(d) | d2hRsp(d) | d2hData(d);
}

/** Read set of grantRoom() (pushGrant headroom) for device @p d. */
constexpr std::uint32_t
grantRoom(int d)
{
    return h2dRsp(d) | h2dData(d);
}

/** OR of @p atom_of(k) over every active device k != i. */
template <typename AtomOf>
constexpr std::uint32_t
allOthers(int i, int ndev, AtomOf atom_of)
{
    std::uint32_t m = 0;
    for (int k = 0; k < ndev; ++k) {
        if (k != i)
            m |= atom_of(k);
    }
    return m;
}

/** A rule's declared read/write atom sets. */
struct Footprint {
    std::uint32_t reads = kAll;
    std::uint32_t writes = kAll;

    /**
     * The rule's only counter access is allocating a fresh tid (plus
     * the canonicalisation-stable `counter < kCounterMax` guard).
     * Two such rules on otherwise-disjoint footprints commute
     * *modulo tid canonicalisation*: swapping the allocation order
     * permutes the raw tid values, and first-appearance relabelling
     * maps both orders to the same canonical state.  The checker may
     * therefore ignore the counter atom between two alloc-only rules
     * when it canonicalises tids (which every exploration does).
     */
    bool counterAllocOnly = false;

    /** Neither rule writes an atom the other touches. */
    friend constexpr bool
    independent(const Footprint &a, const Footprint &b)
    {
        return (a.writes & (b.reads | b.writes)) == 0 &&
               (b.writes & (a.reads | a.writes)) == 0;
    }

    /**
     * Independence under tid canonicalisation: as independent(), but
     * the counter conflict between two alloc-only rules is forgiven
     * (see counterAllocOnly).
     */
    friend constexpr bool
    independentCanonical(const Footprint &a, const Footprint &b)
    {
        if (a.counterAllocOnly && b.counterAllocOnly) {
            const std::uint32_t drop = ~kCounter;
            return ((a.writes & drop) &
                    ((b.reads | b.writes) & drop)) == 0 &&
                   ((b.writes & drop) &
                    ((a.reads | a.writes) & drop)) == 0;
        }
        return independent(a, b);
    }
};

} // namespace fp

/**
 * One transition rule.  `apply` returns false iff a channel push
 * overflowed physical capacity — reachable only in mutated models and
 * reported by the explorer as a structural violation.
 */
struct Rule {
    std::uint16_t id = 0;
    std::string name;
    int dev = 0;          ///< primary device (0-based)
    bool mutated = false; ///< rule exists only because of a mutation

    /**
     * Static dependency footprint (see fp::Footprint).  Defaults to
     * the all-atoms footprint, which is always sound: an unannotated
     * rule (e.g. an addRule test hook) conflicts with every rule and
     * is simply never reduced against.
     */
    fp::Footprint footprint;

    /**
     * Instantiation template identity, for mapping a rule to its
     * image under a device permutation: `base` names the rule
     * template (the name without device suffixes) and `args` holds
     * the 0-based device indices it was instantiated over (device
     * rules: (d); host pair rules: (i, o); chained snoops:
     * (i, o, o2)).  Empty base = not permutation-mappable (custom
     * rules), which only costs reduction, never soundness.
     */
    std::string base;
    std::array<std::int8_t, 3> args{-1, -1, -1};

    std::function<bool(const SystemState &, const Context &)> guard;
    std::function<bool(SystemState &, const Context &)> apply;
};

/**
 * The complete rule set for one protocol configuration.
 */
class RuleSet
{
  public:
    /** Successor state produced by firing one rule. */
    struct Successor {
        const Rule *rule;
        SystemState state;
        bool overflow;
    };

    explicit RuleSet(ProtocolConfig config,
                     int numDevices = kDefaultNumDevices);

    const std::vector<Rule> &rules() const { return rules_; }
    const ProtocolConfig &config() const { return config_; }

    /** Device count the rules were instantiated for. */
    int numDevices() const { return num_devices_; }

    /** Number of rules excluding mutation-only rules. */
    std::size_t baseRuleCount() const;

    /** Find a rule by exact name; nullptr when absent. */
    const Rule *find(const std::string &name) const;

    /**
     * Append a custom rule (id assigned by the set).  Extension point
     * for experiments and tests that need behaviour outside the
     * ProtocolConfig space — e.g. deliberately overflowing a channel
     * to exercise the checker's structural-violation reporting.
     */
    void addRule(Rule rule);

    /**
     * Enumerate all successors of @p state.
     *
     * @param canonicalise relabel tids in each successor (used by the
     *        explorer to keep free-run state spaces finite).
     */
    std::vector<Successor>
    successors(const SystemState &state, const Scenario &scenario,
               bool canonicalise = false) const;

    /**
     * Enumerate successors into a caller-owned buffer (cleared first).
     * The parallel explorer reuses one buffer per worker so the hot
     * path performs no allocation once buffer capacity has warmed up.
     */
    void successorsInto(const SystemState &state,
                        const Scenario &scenario, bool canonicalise,
                        std::vector<Successor> &out) const;

    /**
     * Partial-order-reduced successor enumeration: every guard is
     * still evaluated (the enabled set must be exact for deadlock
     * detection and sleep-set bookkeeping), but rules whose bit is
     * set in @p sleep are not fired — their ids are appended to
     * @p slept instead of producing a successor.  @p sleep points at
     * ceil(rules()/64) little-endian words.
     */
    void successorsPor(const SystemState &state,
                       const Scenario &scenario, bool canonicalise,
                       const std::uint64_t *sleep,
                       std::vector<Successor> &out,
                       std::vector<std::uint16_t> &slept) const;

    /**
     * The rule implementing the same template as rule @p id after the
     * device relabelling old index -> @p oldToNew[old].  Returns -1
     * when the rule carries no template identity (custom rules) or
     * the image instance does not exist.  Used by the checker to
     * remap sleep-set masks when symmetry canonicalisation permutes
     * device slots.
     */
    int permutedRuleId(std::uint16_t id,
                       const std::uint8_t *oldToNew) const;

    /**
     * Fire the named rule on @p state if enabled.
     *
     * @retval true if the rule was enabled and applied.
     */
    bool fire(const std::string &name, SystemState &state,
              const Scenario &scenario) const;

  private:
    /** (base, args) -> rule id, for permutedRuleId. */
    void indexInstances();

    ProtocolConfig config_;
    int num_devices_;
    std::vector<Rule> rules_;
    std::unordered_map<std::string, std::uint16_t> instances_;
};

/// Internal: populate device-side rules for device @p d (0-based).
void addDeviceRules(std::vector<Rule> &rules, int d,
                    const ProtocolConfig &config);

/// Internal: populate host-side rules serving requester/evicter
/// @p d (0-based), with snoop targets ranging over the other
/// @p num_devices - 1 devices.
void addHostRules(std::vector<Rule> &rules, int d,
                  const ProtocolConfig &config, int num_devices);

// --- Tracking-view helpers (paper Section 8, "perfect tracking") ----

/**
 * The host's perfect-tracking view of whether device @p j holds, or is
 * in the middle of being granted, a shared copy.
 */
bool sharerView(const SystemState &s, int j);

/**
 * The host's perfect-tracking view of whether device @p j owns, or is
 * being granted ownership of, the line.
 */
bool ownerView(const SystemState &s, int j);

/**
 * GO-cannot-tailgate-snoop (CXL 3.1 Section 3.2.5.2): the host may
 * send a GO-class message to device @p i only when the H2D Request,
 * D2H Response and D2H Data channels of @p i are all empty.
 */
bool goSendAllowed(const SystemState &s, int i);

/** True iff any active device other than @p i is a tracked sharer. */
bool anyOtherSharer(const SystemState &s, int i);

/**
 * True iff no grant/forward data is in flight to any active device
 * other than @p i.  Gates ownership grants: a GO-M must not be sent
 * while shareable data still travels to some other device (the
 * paper's first Section 6 sample conjunct, generalised from "the
 * snooped device" to all peers).
 */
bool otherGrantDataDrained(const SystemState &s, int i);

} // namespace cxl

#endif // CXL_PROTOCOL_RULES_HH
