/**
 * @file
 * The transition rules of the CXL.cache model (paper Section 3.3).
 *
 * Each rule is a guarded command `(name, device, guard, action)`
 * exactly in the style of paper Fig. 4: the guard is a predicate over
 * the full system state; the action updates the state atomically.
 *
 * A RuleSet is built from a ProtocolConfig: spec-conformant toggles
 * select optional flows (CleanEvictNoData, host clean-data pulls, the
 * Section 4.4 stale-evict optimisation), and mutation flags add the
 * deliberately-broken rules (e.g. Table 3's ISADSnpInv) or strip
 * guards (Snoop-pushes-GO) for the restriction-relaxation experiments
 * of Section 5.2.
 */

#ifndef CXL_PROTOCOL_RULES_HH
#define CXL_PROTOCOL_RULES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "protocol/config.hh"
#include "protocol/scenario.hh"
#include "protocol/state.hh"

namespace cxl
{

/** Evaluation context handed to guards and actions. */
struct Context {
    const Scenario *scenario;
};

/**
 * One transition rule.  `apply` returns false iff a channel push
 * overflowed physical capacity — reachable only in mutated models and
 * reported by the explorer as a structural violation.
 */
struct Rule {
    std::uint16_t id = 0;
    std::string name;
    int dev = 0;          ///< primary device (0-based)
    bool mutated = false; ///< rule exists only because of a mutation

    std::function<bool(const SystemState &, const Context &)> guard;
    std::function<bool(SystemState &, const Context &)> apply;
};

/**
 * The complete rule set for one protocol configuration.
 */
class RuleSet
{
  public:
    /** Successor state produced by firing one rule. */
    struct Successor {
        const Rule *rule;
        SystemState state;
        bool overflow;
    };

    explicit RuleSet(ProtocolConfig config,
                     int numDevices = kDefaultNumDevices);

    const std::vector<Rule> &rules() const { return rules_; }
    const ProtocolConfig &config() const { return config_; }

    /** Device count the rules were instantiated for. */
    int numDevices() const { return num_devices_; }

    /** Number of rules excluding mutation-only rules. */
    std::size_t baseRuleCount() const;

    /** Find a rule by exact name; nullptr when absent. */
    const Rule *find(const std::string &name) const;

    /**
     * Append a custom rule (id assigned by the set).  Extension point
     * for experiments and tests that need behaviour outside the
     * ProtocolConfig space — e.g. deliberately overflowing a channel
     * to exercise the checker's structural-violation reporting.
     */
    void addRule(Rule rule);

    /**
     * Enumerate all successors of @p state.
     *
     * @param canonicalise relabel tids in each successor (used by the
     *        explorer to keep free-run state spaces finite).
     */
    std::vector<Successor>
    successors(const SystemState &state, const Scenario &scenario,
               bool canonicalise = false) const;

    /**
     * Enumerate successors into a caller-owned buffer (cleared first).
     * The parallel explorer reuses one buffer per worker so the hot
     * path performs no allocation once buffer capacity has warmed up.
     */
    void successorsInto(const SystemState &state,
                        const Scenario &scenario, bool canonicalise,
                        std::vector<Successor> &out) const;

    /**
     * Fire the named rule on @p state if enabled.
     *
     * @retval true if the rule was enabled and applied.
     */
    bool fire(const std::string &name, SystemState &state,
              const Scenario &scenario) const;

  private:
    ProtocolConfig config_;
    int num_devices_;
    std::vector<Rule> rules_;
};

/// Internal: populate device-side rules for device @p d (0-based).
void addDeviceRules(std::vector<Rule> &rules, int d,
                    const ProtocolConfig &config);

/// Internal: populate host-side rules serving requester/evicter
/// @p d (0-based), with snoop targets ranging over the other
/// @p num_devices - 1 devices.
void addHostRules(std::vector<Rule> &rules, int d,
                  const ProtocolConfig &config, int num_devices);

// --- Tracking-view helpers (paper Section 8, "perfect tracking") ----

/**
 * The host's perfect-tracking view of whether device @p j holds, or is
 * in the middle of being granted, a shared copy.
 */
bool sharerView(const SystemState &s, int j);

/**
 * The host's perfect-tracking view of whether device @p j owns, or is
 * being granted ownership of, the line.
 */
bool ownerView(const SystemState &s, int j);

/**
 * GO-cannot-tailgate-snoop (CXL 3.1 Section 3.2.5.2): the host may
 * send a GO-class message to device @p i only when the H2D Request,
 * D2H Response and D2H Data channels of @p i are all empty.
 */
bool goSendAllowed(const SystemState &s, int i);

/** True iff any active device other than @p i is a tracked sharer. */
bool anyOtherSharer(const SystemState &s, int i);

/**
 * True iff no grant/forward data is in flight to any active device
 * other than @p i.  Gates ownership grants: a GO-M must not be sent
 * while shareable data still travels to some other device (the
 * paper's first Section 6 sample conjunct, generalised from "the
 * snooped device" to all peers).
 */
bool otherGrantDataDrained(const SystemState &s, int i);

} // namespace cxl

#endif // CXL_PROTOCOL_RULES_HH
