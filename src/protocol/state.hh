/**
 * @file
 * The whole-system state of the CXL.cache model (paper Fig. 2/3):
 * two devices (cacheline + six channels + buffer + program counter),
 * the host cacheline/directory, and the transaction counter.
 *
 * The record is built exclusively from byte-sized fields, so it is
 * padding-free, trivially copyable and can be hashed/compared bytewise
 * by the model checker.
 */

#ifndef CXL_PROTOCOL_STATE_HH
#define CXL_PROTOCOL_STATE_HH

#include <cstdint>
#include <string>

#include "protocol/message.hh"
#include "protocol/types.hh"
#include "support/hash.hh"
#include "support/inline_vec.hh"

namespace cxl
{

/**
 * Channel capacity.  Reachable states keep every channel at length
 * <= 1 (the paper's "channels are singleton lists" invariant); the
 * extra slots guarantee mutated models overflow an invariant before
 * they would overflow storage.
 */
constexpr std::size_t kChanCap = 3;

/** Per-device portion of the system state. */
struct DeviceState {
    Val val = 0;                ///< cacheline value
    DState state = DState::I;   ///< cacheline state

    InlineVec<D2HReq, kChanCap> d2hReq;   ///< device -> host requests
    InlineVec<D2HRsp, kChanCap> d2hRsp;   ///< device -> host responses
    InlineVec<DataMsg, kChanCap> d2hData; ///< device -> host data
    InlineVec<H2DReq, kChanCap> h2dReq;   ///< host -> device snoops
    InlineVec<H2DRsp, kChanCap> h2dRsp;   ///< host -> device responses
    InlineVec<DataMsg, kChanCap> h2dData; ///< host -> device data

    DBuffer buffer;             ///< in-flight H2D message (Fig. 2)
    std::uint8_t pc = 0;        ///< next instruction in the program

    friend bool
    operator==(const DeviceState &a, const DeviceState &b)
    {
        return a.val == b.val && a.state == b.state &&
               a.d2hReq == b.d2hReq && a.d2hRsp == b.d2hRsp &&
               a.d2hData == b.d2hData && a.h2dReq == b.h2dReq &&
               a.h2dRsp == b.h2dRsp && a.h2dData == b.h2dData &&
               a.buffer == b.buffer && a.pc == b.pc;
    }
};

/** Number of devices. Fixed to two, as in the paper (Section 3.1). */
constexpr int kNumDevices = 2;

/** Complete system state. */
struct SystemState {
    DeviceState dev[kNumDevices];
    Val hval = 0;               ///< host/memory value of the location
    HState hstate = HState::I;  ///< host directory state
    std::uint8_t counter = 0;   ///< transaction-identifier counter

    /** The other device's index. */
    static constexpr int
    other(int d)
    {
        return 1 - d;
    }

    friend bool
    operator==(const SystemState &a, const SystemState &b)
    {
        return a.dev[0] == b.dev[0] && a.dev[1] == b.dev[1] &&
               a.hval == b.hval && a.hstate == b.hstate &&
               a.counter == b.counter;
    }

    /**
     * 64-bit fingerprint of the canonical byte encoding.  Inline: the
     * explorer hashes every generated successor, and the sharded
     * state store routes on the top bits and probes on the low bits
     * of this value.
     */
    std::uint64_t
    hash() const
    {
        return hashBytes(this, sizeof(SystemState));
    }

    /**
     * Relabel transaction identifiers in first-appearance order and
     * set the counter to the number of live tids.  Sound for all
     * properties we check (tids are only ever compared for equality);
     * makes the free-run state space finite (Section 3 of DESIGN.md).
     */
    void canonicaliseTids();

    /**
     * The device-permuted image of this state: devices 1 and 2
     * exchanged, and the device-deterministic store values relabelled
     * with them (stores write device_id + 1, so values 1 and 2 swap).
     * This is an automorphism of the free-run transition system; the
     * explorer's symmetry reduction identifies each state with the
     * lexicographically smaller of {s, s.swappedDevices()}.
     */
    SystemState swappedDevices() const;

    /** Bytewise lexicographic order (total; used by symmetry reduction). */
    bool bytewiseLess(const SystemState &other) const;

    /** One-line summary used in traces and error messages. */
    std::string brief() const;

    /** Multi-line dump of every component. */
    std::string dump() const;
};

static_assert(sizeof(SystemState) ==
                  2 * (2 +            // val + state
                       (2 * 3 + 1) +  // d2hReq
                       (2 * 3 + 1) +  // d2hRsp
                       (3 * 3 + 1) +  // d2hData
                       (2 * 3 + 1) +  // h2dReq
                       (3 * 3 + 1) +  // h2dRsp
                       (3 * 3 + 1) +  // h2dData
                       5 +            // buffer
                       1) +           // pc
                  3,
              "SystemState must stay padding-free for bytewise hashing");

/**
 * Builders for the initial states used by litmus tests and the
 * explorer.  All caches invalid, channels empty, counter zero.
 */
SystemState initialAllInvalid(Val memory_val = 0);

/**
 * Both devices and the host share the line with value @p v
 * (the Table 1 starting point).
 */
SystemState initialBothShared(Val v = 0);

/**
 * Device @p owner holds the line modified with value @p v; the host
 * directory records M (the Table 2 starting point).
 */
SystemState initialOneModified(int owner, Val owner_val,
                               Val memory_val);

/**
 * Structural sanity: channel sizes within capacity, enum fields in
 * range.  This is *well-formedness*, not protocol correctness; the
 * invariant library handles the latter.
 */
bool structurallyWellFormed(const SystemState &s);

} // namespace cxl

#endif // CXL_PROTOCOL_STATE_HH
