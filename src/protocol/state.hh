/**
 * @file
 * The whole-system state of the CXL.cache model (paper Fig. 2/3),
 * generalised from the paper's fixed two-device configuration to a
 * runtime-selected device count: up to kMaxDevices devices (cacheline
 * + six channels + buffer + program counter each), the host
 * cacheline/directory, and the transaction counter.
 *
 * The record is built exclusively from byte-sized fields, so it is
 * padding-free, trivially copyable and can be hashed/compared bytewise
 * by the model checker.  The host-side fields come *first* so that a
 * state with numDevices active devices occupies one contiguous prefix
 * of the record; hashing and comparison cover only that prefix, and
 * the unused device slots stay default-initialised in every state of
 * a run.
 */

#ifndef CXL_PROTOCOL_STATE_HH
#define CXL_PROTOCOL_STATE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "protocol/message.hh"
#include "protocol/types.hh"
#include "support/hash.hh"
#include "support/inline_vec.hh"

namespace cxl
{

/**
 * Channel capacity.  Reachable states keep every channel at length
 * <= 1 (the paper's "channels are singleton lists" invariant); the
 * extra slots guarantee mutated models overflow an invariant before
 * they would overflow storage.
 */
constexpr std::size_t kChanCap = 3;

/** Per-device portion of the system state. */
struct DeviceState {
    Val val = 0;                ///< cacheline value
    DState state = DState::I;   ///< cacheline state

    InlineVec<D2HReq, kChanCap> d2hReq;   ///< device -> host requests
    InlineVec<D2HRsp, kChanCap> d2hRsp;   ///< device -> host responses
    InlineVec<DataMsg, kChanCap> d2hData; ///< device -> host data
    InlineVec<H2DReq, kChanCap> h2dReq;   ///< host -> device snoops
    InlineVec<H2DRsp, kChanCap> h2dRsp;   ///< host -> device responses
    InlineVec<DataMsg, kChanCap> h2dData; ///< host -> device data

    DBuffer buffer;             ///< in-flight H2D message (Fig. 2)
    std::uint8_t pc = 0;        ///< next instruction in the program

    friend bool
    operator==(const DeviceState &a, const DeviceState &b)
    {
        return a.val == b.val && a.state == b.state &&
               a.d2hReq == b.d2hReq && a.d2hRsp == b.d2hRsp &&
               a.d2hData == b.d2hData && a.h2dReq == b.h2dReq &&
               a.h2dRsp == b.h2dRsp && a.h2dData == b.h2dData &&
               a.buffer == b.buffer && a.pc == b.pc;
    }
};

/**
 * Compile-time cap on the device count.  The paper fixes two devices
 * (Section 3.1); this reproduction selects the active count per run
 * (SystemState::ndev / Scenario::numDevices()) up to this cap, which
 * is where device-permutation symmetry reduction keeps 3-4 device
 * free-run spaces enumerable.
 */
constexpr int kMaxDevices = 4;

/** The paper's configuration, and the default everywhere. */
constexpr int kDefaultNumDevices = 2;

/** Complete system state. */
struct SystemState {
    // Host-side fields first: together with the first `ndev` device
    // slots they form the contiguous "active prefix" that hashing and
    // comparison cover.
    Val hval = 0;               ///< host/memory value of the location
    HState hstate = HState::I;  ///< host directory state
    std::uint8_t counter = 0;   ///< transaction-identifier counter

    /** Active device count (1..kMaxDevices); fixed per run. */
    std::uint8_t ndev = kDefaultNumDevices;

    /**
     * Requester tracking: while the host directory is mid-transaction
     * (hstate transient), the 1-based index of the device whose
     * request/eviction is being served; 0 otherwise.  In the paper's
     * two-device model the requester is always "the other device" and
     * needs no state; with N devices the transient host rules must
     * know whom to grant/collect from.
     */
    std::uint8_t hreq = 0;

    DeviceState dev[kMaxDevices];

    /**
     * The other device's index in the two-device configuration (used
     * by the paper-facing witnesses and two-device tests; N-device
     * code quantifies over device indices instead).
     */
    static constexpr int
    other(int d)
    {
        return 1 - d;
    }

    /** 1-based requester index as a 0-based device index (-1: none). */
    int requester() const { return static_cast<int>(hreq) - 1; }

    /**
     * Bytes covered by hashing/comparison: the host fields plus the
     * active device slots.  Inactive slots stay default-initialised
     * in every state of a run, so excluding them is sound and keeps
     * two-device runs from paying for the four-device capacity.
     */
    std::size_t
    activeBytes() const
    {
        return offsetof(SystemState, dev) +
               static_cast<std::size_t>(ndev) * sizeof(DeviceState);
    }

    friend bool
    operator==(const SystemState &a, const SystemState &b)
    {
        // All fields are bytes and InlineVec zeroes its tail, so the
        // raw prefix comparison is exact.
        return a.ndev == b.ndev &&
               std::memcmp(&a, &b, a.activeBytes()) == 0;
    }

    /**
     * 64-bit probe hash of the canonical byte encoding (active prefix
     * only).  Inline: the explorer hashes every generated successor,
     * and the sharded state store routes on the top bits and probes on
     * the low bits of this value.
     */
    std::uint64_t
    hash() const
    {
        return hashBytes(this, activeBytes());
    }

    /**
     * Independent 64-bit verification fingerprint over the same bytes
     * (different seed and multipliers than hash()).  The
     * hash-compaction state store keeps this value per entry instead
     * of the state itself; two states are merged only when *both*
     * hash() and fingerprint() collide.
     */
    std::uint64_t
    fingerprint() const
    {
        return fingerprintBytes(this, activeBytes());
    }

    /**
     * Relabel transaction identifiers in first-appearance order and
     * set the counter to the number of live tids.  Sound for all
     * properties we check (tids are only ever compared for equality);
     * makes the free-run state space finite (Section 3 of DESIGN.md).
     */
    void canonicaliseTids();

    /**
     * The image of this state under a device permutation: active
     * device slot n takes the contents of slot perm[n], and the
     * device-deterministic store values are relabelled to match
     * (stores write device_id + 1, so value perm[n]+1 becomes n+1 in
     * cachelines, host memory and every data message).  The host
     * requester index hreq is remapped the same way.  Every such
     * image is an automorphism of the free-run transition system.
     *
     * @param perm maps new index -> old index; entries [0, ndev) must
     *        be a permutation of [0, ndev).
     */
    SystemState permutedDevices(const std::uint8_t *perm) const;

    /**
     * The two-device special case: devices 1 and 2 exchanged (kept
     * for the paper-facing tests; implemented via permutedDevices).
     */
    SystemState swappedDevices() const;

    /**
     * Canonical representative of this state's device-permutation
     * orbit: the bytewise-least image over all ndev! permutations,
     * with tids re-canonicalised after each permutation when
     * @p canon_tids is set (permuting devices changes the
     * first-appearance order that tid relabelling scans in).  The
     * explorer's symmetryReduction maps every state through this
     * before lookup/insert.
     *
     * @param input_tid_canonical the caller guarantees this state's
     *        tids are already canonical, so the identity image needs
     *        no rescan (the explorer canonicalises every successor
     *        before reducing; arbitrary test inputs must pass false).
     * @param winning_perm if non-null, receives the first permutation
     *        (in next_permutation enumeration order; new index -> old
     *        index, ndev entries) whose image is the returned
     *        representative — the identity when the input already is.
     *        Deterministic, so the partial-order reduction can remap
     *        its rule masks through the same relabelling on every
     *        thread.
     */
    SystemState
    deviceCanonical(bool canon_tids, bool input_tid_canonical = false,
                    std::uint8_t *winning_perm = nullptr) const;

    /** Bytewise lexicographic order (total; used by symmetry reduction). */
    bool bytewiseLess(const SystemState &other) const;

    /** One-line summary used in traces and error messages. */
    std::string brief() const;

    /** Multi-line dump of every component. */
    std::string dump() const;
};

static_assert(sizeof(DeviceState) ==
                  2 +            // val + state
                      (2 * 3 + 1) +  // d2hReq
                      (2 * 3 + 1) +  // d2hRsp
                      (3 * 3 + 1) +  // d2hData
                      (2 * 3 + 1) +  // h2dReq
                      (3 * 3 + 1) +  // h2dRsp
                      (3 * 3 + 1) +  // h2dData
                      5 +            // buffer
                      1,             // pc
              "DeviceState must stay padding-free for bytewise hashing");

static_assert(sizeof(SystemState) ==
                  5 + kMaxDevices * sizeof(DeviceState),
              "SystemState must stay padding-free for bytewise hashing");

/**
 * Builders for the initial states used by litmus tests and the
 * explorer.  All caches invalid, channels empty, counter zero.
 */
SystemState initialAllInvalid(Val memory_val = 0,
                              int num_devices = kDefaultNumDevices);

/**
 * Every device and the host share the line with value @p v
 * (the Table 1 starting point).
 */
SystemState initialBothShared(Val v = 0,
                              int num_devices = kDefaultNumDevices);

/**
 * Device @p owner holds the line modified with value @p v; the host
 * directory records M (the Table 2 starting point).
 */
SystemState initialOneModified(int owner, Val owner_val, Val memory_val,
                               int num_devices = kDefaultNumDevices);

/**
 * Structural sanity: device count and requester index in range,
 * channel sizes within capacity, enum fields in range.  This is
 * *well-formedness*, not protocol correctness; the invariant library
 * handles the latter.
 */
bool structurallyWellFormed(const SystemState &s);

} // namespace cxl

#endif // CXL_PROTOCOL_STATE_HH
