#include "protocol/state.hh"

#include <array>
#include <sstream>

namespace cxl
{
namespace
{

/**
 * Tid-relabelling helper: maps each distinct tid to a dense id in
 * first-appearance order.
 */
class TidRenamer
{
  public:
    TidRenamer() { map_.fill(kUnmapped); }

    Tid
    rename(Tid tid)
    {
        if (map_[tid] == kUnmapped)
            map_[tid] = next_++;
        return map_[tid];
    }

    Tid liveCount() const { return next_; }

  private:
    static constexpr Tid kUnmapped = 0xff;
    std::array<Tid, 256> map_;
    Tid next_ = 0;
};

template <typename T, std::size_t N>
void
renameChannel(InlineVec<T, N> &chan, TidRenamer &renamer)
{
    for (std::size_t i = 0; i < chan.size(); ++i)
        chan[i].tid = renamer.rename(chan[i].tid);
}

template <typename T, std::size_t N>
std::string
channelText(const InlineVec<T, N> &chan)
{
    std::string txt = "[";
    for (std::size_t i = 0; i < chan.size(); ++i) {
        if (i)
            txt += ", ";
        txt += toString(chan[i]);
    }
    return txt + "]";
}

} // namespace

void
SystemState::canonicaliseTids()
{
    TidRenamer renamer;
    for (auto &d : dev) {
        renameChannel(d.d2hReq, renamer);
        renameChannel(d.d2hRsp, renamer);
        renameChannel(d.d2hData, renamer);
        renameChannel(d.h2dReq, renamer);
        renameChannel(d.h2dRsp, renamer);
        renameChannel(d.h2dData, renamer);
        if (!d.buffer.isEmpty())
            d.buffer.tid = renamer.rename(d.buffer.tid);
    }
    counter = renamer.liveCount();
}

namespace
{

/** Exchange the two device-deterministic store values. */
constexpr Val
swapVal(Val v)
{
    if (v == 1)
        return 2;
    if (v == 2)
        return 1;
    return v;
}

void
swapDeviceVals(DeviceState &d)
{
    d.val = swapVal(d.val);
    for (std::size_t i = 0; i < d.d2hData.size(); ++i)
        d.d2hData[i].val = swapVal(d.d2hData[i].val);
    for (std::size_t i = 0; i < d.h2dData.size(); ++i)
        d.h2dData[i].val = swapVal(d.h2dData[i].val);
}

} // namespace

SystemState
SystemState::swappedDevices() const
{
    SystemState t = *this;
    std::swap(t.dev[0], t.dev[1]);
    swapDeviceVals(t.dev[0]);
    swapDeviceVals(t.dev[1]);
    t.hval = swapVal(t.hval);
    return t;
}

bool
SystemState::bytewiseLess(const SystemState &other) const
{
    return std::memcmp(this, &other, sizeof(SystemState)) < 0;
}

std::string
SystemState::brief() const
{
    std::ostringstream out;
    out << "D1=(" << int(dev[0].val) << "," << toString(dev[0].state)
        << ") H=(" << int(hval) << "," << toString(hstate) << ") D2=("
        << int(dev[1].val) << "," << toString(dev[1].state)
        << ") ctr=" << int(counter);
    return out.str();
}

std::string
SystemState::dump() const
{
    std::ostringstream out;
    out << "HCache   = (" << int(hval) << ", " << toString(hstate)
        << "), Counter = " << int(counter) << "\n";
    for (int d = 0; d < kNumDevices; ++d) {
        const DeviceState &ds = dev[d];
        out << "Device " << (d + 1) << ": DCache = (" << int(ds.val)
            << ", " << toString(ds.state) << "), pc = " << int(ds.pc)
            << ", DBuffer = " << toString(ds.buffer) << "\n"
            << "  D2HReq  = " << channelText(ds.d2hReq) << "\n"
            << "  D2HRsp  = " << channelText(ds.d2hRsp) << "\n"
            << "  D2HData = " << channelText(ds.d2hData) << "\n"
            << "  H2DReq  = " << channelText(ds.h2dReq) << "\n"
            << "  H2DRsp  = " << channelText(ds.h2dRsp) << "\n"
            << "  H2DData = " << channelText(ds.h2dData) << "\n";
    }
    return out.str();
}

SystemState
initialAllInvalid(Val memory_val)
{
    SystemState s;
    s.hval = memory_val;
    return s;
}

SystemState
initialBothShared(Val v)
{
    SystemState s;
    s.hval = v;
    s.hstate = HState::S;
    for (auto &d : s.dev) {
        d.val = v;
        d.state = DState::S;
    }
    return s;
}

SystemState
initialOneModified(int owner, Val owner_val, Val memory_val)
{
    SystemState s;
    s.hval = memory_val;
    s.hstate = HState::M;
    s.dev[owner].val = owner_val;
    s.dev[owner].state = DState::M;
    return s;
}

bool
structurallyWellFormed(const SystemState &s)
{
    if (static_cast<int>(s.hstate) >= kNumHStates)
        return false;
    for (const auto &d : s.dev) {
        if (static_cast<int>(d.state) >= kNumDStates)
            return false;
        if (d.d2hReq.size() > kChanCap || d.d2hRsp.size() > kChanCap ||
            d.d2hData.size() > kChanCap || d.h2dReq.size() > kChanCap ||
            d.h2dRsp.size() > kChanCap || d.h2dData.size() > kChanCap) {
            return false;
        }
    }
    return true;
}

} // namespace cxl
