#include "protocol/state.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <sstream>

namespace cxl
{
namespace
{

/**
 * Tid-relabelling helper: maps each distinct tid to a dense id in
 * first-appearance order.
 */
class TidRenamer
{
  public:
    TidRenamer() { map_.fill(kUnmapped); }

    Tid
    rename(Tid tid)
    {
        if (map_[tid] == kUnmapped)
            map_[tid] = next_++;
        return map_[tid];
    }

    Tid liveCount() const { return next_; }

  private:
    static constexpr Tid kUnmapped = 0xff;
    std::array<Tid, 256> map_;
    Tid next_ = 0;
};

template <typename T, std::size_t N>
void
renameChannel(InlineVec<T, N> &chan, TidRenamer &renamer)
{
    for (std::size_t i = 0; i < chan.size(); ++i)
        chan[i].tid = renamer.rename(chan[i].tid);
}

/**
 * Relabel one device's tids through @p renamer, in the fixed channel
 * order shared by SystemState::canonicaliseTids and the incremental
 * per-device renaming of deviceCanonical (the two must agree, or
 * permuted images of one state would canonicalise differently).
 */
void
renameDeviceTids(DeviceState &d, TidRenamer &renamer)
{
    renameChannel(d.d2hReq, renamer);
    renameChannel(d.d2hRsp, renamer);
    renameChannel(d.d2hData, renamer);
    renameChannel(d.h2dReq, renamer);
    renameChannel(d.h2dRsp, renamer);
    renameChannel(d.h2dData, renamer);
    if (!d.buffer.isEmpty())
        d.buffer.tid = renamer.rename(d.buffer.tid);
}

template <typename T, std::size_t N>
std::string
channelText(const InlineVec<T, N> &chan)
{
    std::string txt = "[";
    for (std::size_t i = 0; i < chan.size(); ++i) {
        if (i)
            txt += ", ";
        txt += toString(chan[i]);
    }
    return txt + "]";
}

} // namespace

void
SystemState::canonicaliseTids()
{
    TidRenamer renamer;
    for (int i = 0; i < ndev; ++i)
        renameDeviceTids(dev[i], renamer);
    counter = renamer.liveCount();
}

namespace
{

/**
 * Relabel one device-deterministic store value under a device
 * permutation: value v > 0 names old device v-1, which the inverse
 * permutation sends to its new index.
 */
Val
remapVal(Val v, const std::uint8_t *inv, int ndev)
{
    if (v >= 1 && v <= ndev)
        return static_cast<Val>(inv[v - 1] + 1);
    return v;
}

void
remapDeviceVals(DeviceState &d, const std::uint8_t *inv, int ndev)
{
    d.val = remapVal(d.val, inv, ndev);
    for (std::size_t i = 0; i < d.d2hData.size(); ++i)
        d.d2hData[i].val = remapVal(d.d2hData[i].val, inv, ndev);
    for (std::size_t i = 0; i < d.h2dData.size(); ++i)
        d.h2dData[i].val = remapVal(d.h2dData[i].val, inv, ndev);
}

} // namespace

SystemState
SystemState::permutedDevices(const std::uint8_t *perm) const
{
    // Inverse permutation: old index -> new index, for relabelling
    // the device ids embedded in store values and in hreq.
    std::uint8_t inv[kMaxDevices] = {};
    for (int n = 0; n < ndev; ++n) {
        assert(perm[n] < ndev);
        inv[perm[n]] = static_cast<std::uint8_t>(n);
    }

    SystemState t = *this;
    for (int n = 0; n < ndev; ++n) {
        t.dev[n] = dev[perm[n]];
        remapDeviceVals(t.dev[n], inv, ndev);
    }
    t.hval = remapVal(hval, inv, ndev);
    if (hreq != 0)
        t.hreq = static_cast<std::uint8_t>(inv[hreq - 1] + 1);
    return t;
}

SystemState
SystemState::swappedDevices() const
{
    assert(ndev >= 2);
    std::uint8_t perm[kMaxDevices] = {1, 0, 2, 3};
    return permutedDevices(perm);
}

SystemState
SystemState::deviceCanonical(bool canon_tids, bool input_tid_canonical,
                             std::uint8_t *winning_perm) const
{
    std::uint8_t perm[kMaxDevices] = {0, 1, 2, 3};
    if (winning_perm) {
        for (int n = 0; n < ndev; ++n)
            winning_perm[n] = perm[n];
    }

    // The identity candidate gets the same tid treatment as every
    // other image so that permuted copies of one state always land on
    // the same representative; a caller-certified canonical input
    // skips the (idempotent) rescan.
    SystemState best = *this;
    if (canon_tids && !input_tid_canonical)
        best.canonicaliseTids();

    // Each non-identity image is built incrementally — host prefix
    // first, then one device block at a time (value remap + streaming
    // tid rename) — and compared against `best` as it grows, so a
    // losing permutation is abandoned at its first greater byte
    // instead of paying for a full permute + tid rescan + compare.
    // This is the symmetry-reduction hot path: the explorer maps every
    // generated successor through here, ndev! images each.
    //
    // The transaction counter needs no per-image recomputation: it is
    // the live-tid count, which is invariant under device relabelling,
    // so every image shares best's value.
    SystemState cand;
    cand.hstate = hstate;
    cand.counter = best.counter;
    cand.ndev = ndev;
    while (std::next_permutation(perm, perm + ndev)) {
        // Inverse permutation: old index -> new index, for the device
        // ids embedded in store values and in hreq.
        std::uint8_t inv[kMaxDevices] = {};
        for (int n = 0; n < ndev; ++n)
            inv[perm[n]] = static_cast<std::uint8_t>(n);

        cand.hval = remapVal(hval, inv, ndev);
        cand.hreq =
            hreq ? static_cast<std::uint8_t>(inv[hreq - 1] + 1) : 0;

        int cmp = std::memcmp(&cand, &best, offsetof(SystemState, dev));
        if (cmp > 0)
            continue;
        bool decided_less = cmp < 0;

        TidRenamer renamer;
        bool losing = false;
        for (int n = 0; n < ndev; ++n) {
            DeviceState &d = cand.dev[n];
            d = dev[perm[n]];
            remapDeviceVals(d, inv, ndev);
            if (canon_tids)
                renameDeviceTids(d, renamer);
            if (!decided_less) {
                cmp = std::memcmp(&d, &best.dev[n], sizeof(DeviceState));
                if (cmp > 0) {
                    losing = true;
                    break;
                }
                decided_less = cmp < 0;
            }
        }
        if (!losing && decided_less) {
            best = cand;
            if (winning_perm) {
                for (int n = 0; n < ndev; ++n)
                    winning_perm[n] = perm[n];
            }
        }
    }
    return best;
}

bool
SystemState::bytewiseLess(const SystemState &other) const
{
    assert(ndev == other.ndev);
    return std::memcmp(this, &other, activeBytes()) < 0;
}

std::string
SystemState::brief() const
{
    std::ostringstream out;
    for (int d = 0; d < ndev; ++d) {
        out << "D" << (d + 1) << "=(" << int(dev[d].val) << ","
            << toString(dev[d].state) << ") ";
    }
    out << "H=(" << int(hval) << "," << toString(hstate)
        << ") ctr=" << int(counter);
    return out.str();
}

std::string
SystemState::dump() const
{
    std::ostringstream out;
    out << "HCache   = (" << int(hval) << ", " << toString(hstate)
        << "), Counter = " << int(counter) << ", Requester = "
        << (hreq ? "D" + std::to_string(int(hreq)) : std::string("-"))
        << ", Devices = " << int(ndev) << "\n";
    for (int d = 0; d < ndev; ++d) {
        const DeviceState &ds = dev[d];
        out << "Device " << (d + 1) << ": DCache = (" << int(ds.val)
            << ", " << toString(ds.state) << "), pc = " << int(ds.pc)
            << ", DBuffer = " << toString(ds.buffer) << "\n"
            << "  D2HReq  = " << channelText(ds.d2hReq) << "\n"
            << "  D2HRsp  = " << channelText(ds.d2hRsp) << "\n"
            << "  D2HData = " << channelText(ds.d2hData) << "\n"
            << "  H2DReq  = " << channelText(ds.h2dReq) << "\n"
            << "  H2DRsp  = " << channelText(ds.h2dRsp) << "\n"
            << "  H2DData = " << channelText(ds.h2dData) << "\n";
    }
    return out.str();
}

SystemState
initialAllInvalid(Val memory_val, int num_devices)
{
    assert(num_devices >= 1 && num_devices <= kMaxDevices);
    SystemState s;
    s.ndev = static_cast<std::uint8_t>(num_devices);
    s.hval = memory_val;
    return s;
}

SystemState
initialBothShared(Val v, int num_devices)
{
    SystemState s = initialAllInvalid(v, num_devices);
    s.hstate = HState::S;
    for (int d = 0; d < s.ndev; ++d) {
        s.dev[d].val = v;
        s.dev[d].state = DState::S;
    }
    return s;
}

SystemState
initialOneModified(int owner, Val owner_val, Val memory_val,
                   int num_devices)
{
    assert(owner >= 0 && owner < num_devices);
    SystemState s = initialAllInvalid(memory_val, num_devices);
    s.hstate = HState::M;
    s.dev[owner].val = owner_val;
    s.dev[owner].state = DState::M;
    return s;
}

bool
structurallyWellFormed(const SystemState &s)
{
    if (s.ndev < 1 || s.ndev > kMaxDevices)
        return false;
    if (s.hreq > s.ndev)
        return false;
    if (static_cast<int>(s.hstate) >= kNumHStates)
        return false;
    for (int i = 0; i < s.ndev; ++i) {
        const DeviceState &d = s.dev[i];
        if (static_cast<int>(d.state) >= kNumDStates)
            return false;
        if (d.d2hReq.size() > kChanCap || d.d2hRsp.size() > kChanCap ||
            d.d2hData.size() > kChanCap || d.h2dReq.size() > kChanCap ||
            d.h2dRsp.size() > kChanCap || d.h2dData.size() > kChanCap) {
            return false;
        }
    }
    return true;
}

} // namespace cxl
