/**
 * @file
 * Device-side transition rules (paper Fig. 4, left-hand components).
 *
 * Each rule template is instantiated once per active device.  Names
 * carry a 1-based device suffix to match the paper's tables
 * (InvalidLoad1, SharedSnpInv1, MIA_GO_WritePull1, ...).
 */

#include <cassert>

#include "protocol/rules.hh"

namespace cxl
{
namespace
{

/** Store data written by device d (0-based): a distinct non-zero Val. */
constexpr Val
storeValue(int d)
{
    return static_cast<Val>(d + 1);
}

/** Counter ceiling; keeps uint8 tids collision-free. */
constexpr std::uint8_t kCounterMax = 250;

/** Allocate a fresh transaction id from the global counter. */
Tid
allocTid(SystemState &s)
{
    Tid t = s.counter;
    s.counter = static_cast<std::uint8_t>(s.counter + 1);
    return t;
}

/** Retire the current instruction of device @p d and clear its buffer. */
void
completeInstr(SystemState &s, int d, const Context &ctx)
{
    s.dev[d].pc = ctx.scenario->nextPc(d, s.dev[d].pc);
    s.dev[d].buffer = DBuffer::empty();
}

/** Head of the device's H2D response channel is (GO, target). */
bool
headIsGo(const DeviceState &d, DState target)
{
    return !d.h2dRsp.empty() && d.h2dRsp.front().op == H2DRspOp::GO &&
           d.h2dRsp.front().target == target;
}

/** Head of the device's H2D response channel has the given opcode. */
bool
headIsRsp(const DeviceState &d, H2DRspOp op)
{
    return !d.h2dRsp.empty() && d.h2dRsp.front().op == op;
}

/** Head of the device's H2D request (snoop) channel has the opcode. */
bool
headIsSnoop(const DeviceState &d, H2DReqOp op)
{
    return !d.h2dReq.empty() && d.h2dReq.front().op == op;
}

/**
 * Snoop-pushes-GO (CXL 3.1 Section 3.2.5.2): a device may only process
 * a snoop when it has no pending H2D responses — unless the
 * corresponding mutation has relaxed the restriction.
 */
bool
snoopAllowed(const DeviceState &d, bool relaxed)
{
    return relaxed || d.h2dRsp.empty();
}

struct RuleBuilder {
    std::vector<Rule> &rules;
    int d;

    void
    add(const std::string &base, bool mutated, fp::Footprint footprint,
        std::function<bool(const SystemState &, const Context &)> guard,
        std::function<bool(SystemState &, const Context &)> apply)
    {
        Rule r;
        r.name = base + std::to_string(d + 1);
        r.dev = d;
        r.mutated = mutated;
        r.footprint = footprint;
        r.base = base;
        r.args = {static_cast<std::int8_t>(d), -1, -1};
        r.guard = std::move(guard);
        r.apply = std::move(apply);
        rules.push_back(std::move(r));
    }
};

/** Program-driven rules: Load/Store/Evict issue or hit (Fig. 4). */
void
addProgramRules(RuleBuilder &b, const ProtocolConfig &config)
{
    const int d = b.d;

    // Issue rules read/write the device core (state, pc), push onto
    // the device's own D2H request channel and allocate a tid from
    // the shared counter; purely local hit/retire rules touch only
    // the core.  The counter atom is what makes issue rules by
    // *different* devices conflict (tid allocation orders them).
    const fp::Footprint issue_fp{
        fp::core(d) | fp::d2hReq(d) | fp::kCounter,
        fp::core(d) | fp::d2hReq(d) | fp::kCounter,
        /*counterAllocOnly=*/true};
    const fp::Footprint local_fp{fp::core(d), fp::core(d)};

    b.add("InvalidLoad", false, issue_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::I &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Load) &&
                   !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
        },
        [d](SystemState &s, const Context &) {
            Tid t = allocTid(s);
            s.dev[d].state = DState::ISAD;
            return s.dev[d].d2hReq.pushBack({D2HReqOp::RdShared, t});
        });

    b.add("InvalidStore", false, issue_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::I &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Store) &&
                   !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
        },
        [d](SystemState &s, const Context &) {
            Tid t = allocTid(s);
            s.dev[d].state = DState::IMAD;
            return s.dev[d].d2hReq.pushBack({D2HReqOp::RdOwn, t});
        });

    // Evicting an invalid line has no effect beyond retiring the
    // instruction (paper Section 5.1, clean_evict_test discussion).
    b.add("InvalidEvict", false, local_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::I && !ctx.scenario->freeRun &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Evict);
        },
        [d](SystemState &s, const Context &ctx) {
            completeInstr(s, d, ctx);
            return true;
        });

    b.add("SharedLoad", false, local_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::S && !ctx.scenario->freeRun &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Load);
        },
        [d](SystemState &s, const Context &ctx) {
            completeInstr(s, d, ctx);
            return true;
        });

    b.add("SharedStore", false, issue_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::S &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Store) &&
                   !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
        },
        [d](SystemState &s, const Context &) {
            Tid t = allocTid(s);
            s.dev[d].state = DState::SMAD;
            return s.dev[d].d2hReq.pushBack({D2HReqOp::RdOwn, t});
        });

    b.add("SharedEvict", false, issue_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::S &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Evict) &&
                   !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
        },
        [d](SystemState &s, const Context &) {
            Tid t = allocTid(s);
            s.dev[d].state = DState::SIA;
            return s.dev[d].d2hReq.pushBack({D2HReqOp::CleanEvict, t});
        });

    if (config.cleanEvictNoData) {
        b.add("SharedEvictNoData", false, issue_fp,
            [d](const SystemState &s, const Context &ctx) {
                return s.dev[d].state == DState::S &&
                       ctx.scenario->mayIssue(d, s.dev[d].pc,
                                              Instr::Evict) &&
                       !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
            },
            [d](SystemState &s, const Context &) {
                Tid t = allocTid(s);
                s.dev[d].state = DState::SIAC;
                return s.dev[d].d2hReq.pushBack(
                    {D2HReqOp::CleanEvictNoData, t});
            });
    }

    b.add("ModifiedLoad", false, local_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::M && !ctx.scenario->freeRun &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Load);
        },
        [d](SystemState &s, const Context &ctx) {
            completeInstr(s, d, ctx);
            return true;
        });

    b.add("ModifiedStore", false, local_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::M &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Store);
        },
        [d](SystemState &s, const Context &ctx) {
            s.dev[d].val = storeValue(d);
            completeInstr(s, d, ctx);
            return true;
        });

    b.add("ModifiedEvict", false, issue_fp,
        [d](const SystemState &s, const Context &ctx) {
            return s.dev[d].state == DState::M &&
                   ctx.scenario->mayIssue(d, s.dev[d].pc, Instr::Evict) &&
                   !s.dev[d].d2hReq.full() && s.counter < kCounterMax;
        },
        [d](SystemState &s, const Context &) {
            Tid t = allocTid(s);
            s.dev[d].state = DState::MIA;
            return s.dev[d].d2hReq.pushBack({D2HReqOp::DirtyEvict, t});
        });
}

/**
 * GO / Data consumption rules for one in-flight upgrade.
 *
 * @param awaiting  transient awaiting both GO and Data (e.g. ISAD)
 * @param go_taken  transient after consuming GO (e.g. ISD)
 * @param data_taken transient after consuming Data (e.g. ISA)
 * @param final_state stable state reached (S or M)
 * @param is_store  final step performs the pending store
 */
void
addGrantConsumptionRules(RuleBuilder &b, DState awaiting, DState go_taken,
                         DState data_taken, DState final_state,
                         bool is_store)
{
    const int d = b.d;
    const std::string prefix = toString(awaiting);
    const DState go_target = final_state;

    // Consumption rules are what partial-order reduction thrives on:
    // each touches only its own device's core plus the channel(s) it
    // pops, so consumptions by distinct devices always commute.
    const fp::Footprint go_fp{fp::core(d) | fp::h2dRsp(d),
                              fp::core(d) | fp::h2dRsp(d)};
    const fp::Footprint data_fp{fp::core(d) | fp::h2dData(d),
                                fp::core(d) | fp::h2dData(d)};
    const fp::Footprint go_data_fp{
        fp::core(d) | fp::h2dRsp(d) | fp::h2dData(d),
        fp::core(d) | fp::h2dRsp(d) | fp::h2dData(d)};

    auto finish = [d, final_state, is_store](SystemState &s,
                                             const Context &ctx) {
        s.dev[d].state = final_state;
        if (is_store)
            s.dev[d].val = storeValue(d);
        completeInstr(s, d, ctx);
    };

    b.add(prefix + "_GO", false, go_fp,
        [d, awaiting, go_target](const SystemState &s, const Context &) {
            return s.dev[d].state == awaiting &&
                   headIsGo(s.dev[d], go_target);
        },
        [d, go_taken](SystemState &s, const Context &) {
            s.dev[d].h2dRsp.popFront();
            s.dev[d].state = go_taken;
            return true;
        });

    b.add(prefix + "_Data", false, data_fp,
        [d, awaiting](const SystemState &s, const Context &) {
            return s.dev[d].state == awaiting && !s.dev[d].h2dData.empty();
        },
        [d, data_taken](SystemState &s, const Context &) {
            s.dev[d].val = s.dev[d].h2dData.front().val;
            s.dev[d].h2dData.popFront();
            s.dev[d].state = data_taken;
            return true;
        });

    b.add(prefix + "_GO_Data", false, go_data_fp,
        [d, awaiting, go_target](const SystemState &s, const Context &) {
            return s.dev[d].state == awaiting &&
                   headIsGo(s.dev[d], go_target) &&
                   !s.dev[d].h2dData.empty();
        },
        [d, finish](SystemState &s, const Context &ctx) {
            s.dev[d].val = s.dev[d].h2dData.front().val;
            s.dev[d].h2dRsp.popFront();
            s.dev[d].h2dData.popFront();
            finish(s, ctx);
            return true;
        });

    b.add(toString(go_taken) + "_Data", false, data_fp,
        [d, go_taken](const SystemState &s, const Context &) {
            return s.dev[d].state == go_taken && !s.dev[d].h2dData.empty();
        },
        [d, finish](SystemState &s, const Context &ctx) {
            s.dev[d].val = s.dev[d].h2dData.front().val;
            s.dev[d].h2dData.popFront();
            finish(s, ctx);
            return true;
        });

    b.add(toString(data_taken) + "_GO", false, go_fp,
        [d, data_taken, go_target](const SystemState &s, const Context &) {
            return s.dev[d].state == data_taken &&
                   headIsGo(s.dev[d], go_target);
        },
        [d, finish](SystemState &s, const Context &ctx) {
            s.dev[d].h2dRsp.popFront();
            finish(s, ctx);
            return true;
        });
}

/** Eviction-completion rules (GO_WritePull / GO_WritePullDrop). */
void
addEvictionCompletionRules(RuleBuilder &b)
{
    const int d = b.d;

    // Pulls consume the GO and emit writeback data; drops consume the
    // GO only.  All device-local: core + the channels named.
    const fp::Footprint pull_fp{
        fp::core(d) | fp::h2dRsp(d) | fp::d2hData(d),
        fp::core(d) | fp::h2dRsp(d) | fp::d2hData(d)};
    const fp::Footprint drop_fp{fp::core(d) | fp::h2dRsp(d),
                                fp::core(d) | fp::h2dRsp(d)};
    const fp::Footprint h2ddata_fp{fp::core(d) | fp::h2dData(d),
                                   fp::core(d) | fp::h2dData(d)};

    // Dirty eviction: the pull triggers the implicit writeback
    // (Table 2's MIA_GO_WritePull step).
    b.add("MIA_GO_WritePull", false, pull_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::MIA &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePull) &&
                   !s.dev[d].d2hData.full();
        },
        [d](SystemState &s, const Context &ctx) {
            Tid t = s.dev[d].h2dRsp.front().tid;
            s.dev[d].h2dRsp.popFront();
            bool ok = s.dev[d].d2hData.pushBack({t, s.dev[d].val, 0});
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return ok;
        });

    // Clean eviction completes with a drop (Table 1's
    // SIA_GO_WritePullDrop step).
    b.add("SIA_GO_WritePullDrop", false, drop_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::SIA &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePullDrop);
        },
        [d](SystemState &s, const Context &ctx) {
            s.dev[d].h2dRsp.popFront();
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return true;
        });

    // The host may pull the clean line instead.
    b.add("SIA_GO_WritePull", false, pull_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::SIA &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePull) &&
                   !s.dev[d].d2hData.full();
        },
        [d](SystemState &s, const Context &ctx) {
            Tid t = s.dev[d].h2dRsp.front().tid;
            s.dev[d].h2dRsp.popFront();
            bool ok = s.dev[d].d2hData.pushBack({t, s.dev[d].val, 0});
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return ok;
        });

    // CleanEvictNoData promised no data, so only a drop is legal.
    b.add("SIAC_GO_WritePullDrop", false, drop_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::SIAC &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePullDrop);
        },
        [d](SystemState &s, const Context &ctx) {
            s.dev[d].h2dRsp.popFront();
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return true;
        });

    // A snoop hit the writeback: any data the device still sends for
    // the eviction must carry the Bogus flag (CXL 3.1 Section 3.2.5.4).
    b.add("IIA_GO_WritePull", false, pull_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::IIA &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePull) &&
                   !s.dev[d].d2hData.full();
        },
        [d](SystemState &s, const Context &ctx) {
            Tid t = s.dev[d].h2dRsp.front().tid;
            s.dev[d].h2dRsp.popFront();
            bool ok = s.dev[d].d2hData.pushBack({t, s.dev[d].val, 1});
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return ok;
        });

    // Section 4.4 proposed fix: the host may drop instead, saving the
    // bogus data transfer entirely.
    b.add("IIA_GO_WritePullDrop", false, drop_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::IIA &&
                   headIsRsp(s.dev[d], H2DRspOp::GO_WritePullDrop);
        },
        [d](SystemState &s, const Context &ctx) {
            s.dev[d].h2dRsp.popFront();
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return true;
        });

    // Read-once completion after an ISD-state snoop invalidation.
    b.add("ISDI_Data", false, h2ddata_fp,
        [d](const SystemState &s, const Context &) {
            return s.dev[d].state == DState::ISDI &&
                   !s.dev[d].h2dData.empty();
        },
        [d](SystemState &s, const Context &ctx) {
            s.dev[d].h2dData.popFront();
            s.dev[d].state = DState::I;
            completeInstr(s, d, ctx);
            return true;
        });
}

/** Snoop-processing rules (Fig. 4's SharedSnpInv and friends). */
void
addSnoopRules(RuleBuilder &b, const ProtocolConfig &config)
{
    const int d = b.d;
    const bool relax_all = config.relaxSnoopPushesGo;
    const bool relax_smad = config.relaxSmadSnoopGuard || relax_all;

    /**
     * Generic snoop rule: when in @p from and the head snoop is @p op,
     * move to @p to, respond with @p rsp, and forward the (dirty) line
     * if @p fwd_data.
     */
    auto add_snoop = [&](const char *base, DState from, H2DReqOp op,
                         DState to, D2HRspOp rsp, bool fwd_data,
                         bool relaxed) {
        // Guard reads the snoop channel, the response channel
        // (snoopAllowed) and the d2hRsp/d2hData headroom; the action
        // pops the snoop, moves the core and pushes the response
        // (plus forwarded data).  h2dRsp is read-only.
        fp::Footprint snoop_fp{fp::core(d) | fp::h2dReq(d) |
                                   fp::h2dRsp(d) | fp::d2hRsp(d) |
                                   fp::d2hData(d),
                               fp::core(d) | fp::h2dReq(d) |
                                   fp::d2hRsp(d)};
        if (fwd_data)
            snoop_fp.writes |= fp::d2hData(d);
        b.add(base, false, snoop_fp,
            [d, from, op, relaxed](const SystemState &s, const Context &) {
                return s.dev[d].state == from &&
                       headIsSnoop(s.dev[d], op) &&
                       snoopAllowed(s.dev[d], relaxed) &&
                       !s.dev[d].d2hRsp.full() &&
                       !s.dev[d].d2hData.full();
            },
            [d, to, rsp, fwd_data](SystemState &s, const Context &) {
                H2DReq snoop = s.dev[d].h2dReq.front();
                s.dev[d].h2dReq.popFront();
                s.dev[d].buffer = DBuffer::fromReq(snoop);
                s.dev[d].state = to;
                bool ok = s.dev[d].d2hRsp.pushBack({rsp, snoop.tid});
                if (fwd_data) {
                    ok = s.dev[d].d2hData.pushBack(
                             {snoop.tid, s.dev[d].val, 0}) &&
                         ok;
                }
                return ok;
            });
    };

    add_snoop("SharedSnpInv", DState::S, H2DReqOp::SnpInv, DState::I,
              D2HRspOp::RspIHitSE, false, relax_all);
    add_snoop("ModifiedSnpInv", DState::M, H2DReqOp::SnpInv, DState::I,
              D2HRspOp::RspIFwdM, true, relax_all);
    add_snoop("ModifiedSnpData", DState::M, H2DReqOp::SnpData, DState::S,
              D2HRspOp::RspSFwdM, true, relax_all);
    add_snoop("MIASnpInv", DState::MIA, H2DReqOp::SnpInv, DState::IIA,
              D2HRspOp::RspIFwdM, true, relax_all);
    add_snoop("MIASnpData", DState::MIA, H2DReqOp::SnpData, DState::SIA,
              D2HRspOp::RspSFwdM, true, relax_all);
    add_snoop("SIASnpInv", DState::SIA, H2DReqOp::SnpInv, DState::IIA,
              D2HRspOp::RspIHitSE, false, relax_all);
    add_snoop("SIACSnpInv", DState::SIAC, H2DReqOp::SnpInv, DState::IIA,
              D2HRspOp::RspIHitSE, false, relax_all);
    add_snoop("ISDSnpInv", DState::ISD, H2DReqOp::SnpInv, DState::ISDI,
              D2HRspOp::RspIHitSE, false, relax_all);
    add_snoop("SMADSnpInv", DState::SMAD, H2DReqOp::SnpInv, DState::IMAD,
              D2HRspOp::RspIHitSE, false, relax_smad);

    if (config.relaxSnoopPushesGo) {
        // The deliberately-broken rule of Table 3: an ISAD line
        // processes a SnpInv ahead of its pending GO and answers
        // RspIHitI while *remaining in ISAD*, so it will later accept
        // the stale grant.
        auto add_broken = [&](const char *base, DState from) {
            const fp::Footprint broken_fp{
                fp::core(d) | fp::h2dReq(d) | fp::d2hRsp(d),
                fp::core(d) | fp::h2dReq(d) | fp::d2hRsp(d)};
            b.add(base, true, broken_fp,
                [d, from](const SystemState &s, const Context &) {
                    return s.dev[d].state == from &&
                           headIsSnoop(s.dev[d], H2DReqOp::SnpInv) &&
                           !s.dev[d].d2hRsp.full();
                },
                [d](SystemState &s, const Context &) {
                    H2DReq snoop = s.dev[d].h2dReq.front();
                    s.dev[d].h2dReq.popFront();
                    s.dev[d].buffer = DBuffer::fromReq(snoop);
                    return s.dev[d].d2hRsp.pushBack(
                        {D2HRspOp::RspIHitI, snoop.tid});
                });
        };
        add_broken("ISADSnpInv", DState::ISAD);
        add_broken("IMADSnpInv", DState::IMAD);
    }
}

} // namespace

void
addDeviceRules(std::vector<Rule> &rules, int d,
               const ProtocolConfig &config)
{
    assert(d >= 0 && d < kMaxDevices);
    RuleBuilder b{rules, d};

    addProgramRules(b, config);

    addGrantConsumptionRules(b, DState::ISAD, DState::ISD, DState::ISA,
                             DState::S, false);
    addGrantConsumptionRules(b, DState::IMAD, DState::IMD, DState::IMA,
                             DState::M, true);
    addGrantConsumptionRules(b, DState::SMAD, DState::SMD, DState::SMA,
                             DState::M, true);

    addEvictionCompletionRules(b);
    addSnoopRules(b, config);
}

} // namespace cxl
