#include "api/scenarios.hh"

#include <algorithm>

#include "litmus/litmus.hh"

namespace cxl::scenarios
{
namespace
{

Entry
fromLitmus(const LitmusTest &test)
{
    Entry e;
    e.name = test.name;
    e.description = test.description;
    e.config = test.config;
    e.families = test.restrictToFamilies;
    e.expectViolation = test.expectViolation;
    e.expectedViolationFamily = test.expectedViolationFamily;
    e.deviceScalable = false;
    e.fixedDevices = test.scenario.numDevices();
    e.build = [scenario = test.scenario](int) { return scenario; };
    return e;
}

std::vector<Entry>
buildRegistry()
{
    std::vector<Entry> entries;

    {
        Entry e;
        e.name = "free-run";
        e.description =
            "Every device may issue any instruction at any time; the "
            "reachable closure covers all protocol behaviours "
            "(Theorem 6.2's space).";
        e.deviceScalable = true;
        e.build = [](int ndev) {
            return Scenario::freeRunScenario(ndev);
        };
        entries.push_back(std::move(e));
    }

    for (const LitmusTest &test : builtinLitmusSuite())
        entries.push_back(fromLitmus(test));
    for (const LitmusTest &test : restrictionRelaxationSuite())
        entries.push_back(fromLitmus(test));

    {
        // The Section 4.4 / S3.2.5.4 eviction races measured by the
        // WritePullDrop ablation.
        Entry e;
        e.name = "eviction_race";
        e.description =
            "A clean sharer evicts while the other device upgrades "
            "(the S3.2.5.4 stale-eviction race).";
        e.build = [](int) {
            Scenario sc;
            sc.name = "eviction_race";
            sc.initial = initialBothShared(0);
            sc.program[0] = {Instr::Evict};
            sc.program[1] = {Instr::Store};
            return sc;
        };
        entries.push_back(std::move(e));
    }
    {
        Entry e;
        e.name = "dirty_eviction_race";
        e.description =
            "The dirty owner evicts while the other device stores.";
        e.build = [](int) {
            Scenario sc;
            sc.name = "dirty_eviction_race";
            sc.initial = initialOneModified(0, 1, 0);
            sc.program[0] = {Instr::Evict};
            sc.program[1] = {Instr::Store};
            return sc;
        };
        entries.push_back(std::move(e));
    }

    return entries;
}

/** The mutable registry behind all(); built once, appended to by
 * registerEntry. */
std::vector<Entry> &
registry()
{
    static std::vector<Entry> entries = buildRegistry();
    return entries;
}

} // namespace

std::string
normalisedName(const std::string &name)
{
    std::string out = name;
    std::replace(out.begin(), out.end(), '-', '_');
    return out;
}

const std::vector<Entry> &
all()
{
    return registry();
}

const Entry *
byName(const std::string &name)
{
    const std::string want = normalisedName(name);
    for (const Entry &e : all()) {
        const std::string have = normalisedName(e.name);
        if (have == want || have == want + "_test")
            return &e;
    }
    return nullptr;
}

bool
registerEntry(Entry entry)
{
    // Reject anything that would alias an existing entry under the
    // forgiving lookup: an exact normalised match, or a "_test"
    // suffix bridging the two names in either direction.
    const std::string want = normalisedName(entry.name);
    for (const Entry &e : all()) {
        const std::string have = normalisedName(e.name);
        if (have == want || have == want + "_test" ||
            want == have + "_test") {
            return false;
        }
    }
    registry().push_back(std::move(entry));
    return true;
}

} // namespace cxl::scenarios
