/**
 * @file
 * The scenario registry: every named scenario the front-ends can
 * request from a CheckSession — the free-run space of the SWMR
 * theorem, the Section 5.1 litmus programs, the Section 5.2
 * restriction-relaxation scenarios, and the Section 4.4 eviction
 * races — each carrying the protocol configuration, invariant-family
 * restriction and expectation it is meant to run under.
 *
 * The registry is what lets a front-end say
 * `scenarios::byName("free-run")` instead of hand-assembling a
 * Scenario + ProtocolConfig + InvariantSet; the unified CLI
 * (`cxl_check --list`) and the CI smoke matrix enumerate it via
 * all().
 */

#ifndef CXL_API_SCENARIOS_HH
#define CXL_API_SCENARIOS_HH

#include <functional>
#include <string>
#include <vector>

#include "protocol/config.hh"
#include "protocol/scenario.hh"

namespace cxl::scenarios
{

/** One registered scenario. */
struct Entry {
    std::string name;        ///< canonical lookup key
    std::string description;

    /** Configuration the scenario is meant to run under. */
    ProtocolConfig config;

    /**
     * Invariant families to check (empty = the full strengthened
     * invariant).  Relaxation scenarios restrict to the family the
     * paper's walk targets, e.g. pure SWMR for Table 3.
     */
    std::vector<std::string> families;

    /** The scenario is expected to reach an invariant violation. */
    bool expectViolation = false;

    /** Family the expected violation must belong to (may be empty). */
    std::string expectedViolationFamily;

    /**
     * True when the scenario builds for any active device count in
     * [1, kMaxDevices] (free-run); false pins it to the device count
     * its programs were written for (the litmus scenarios).
     */
    bool deviceScalable = false;

    /** Device count non-scalable entries are pinned to. */
    int fixedDevices = kDefaultNumDevices;

    /** Build the scenario for @p ndev active devices. */
    std::function<Scenario(int ndev)> build;
};

/** Every registered scenario, in a stable listing order. */
const std::vector<Entry> &all();

/**
 * Look up a scenario by name.  Lookup is forgiving about the two
 * spelling families in circulation: '-' and '_' are interchangeable
 * and a missing "_test" suffix is supplied ("clean-evict" finds
 * "clean_evict_test").
 *
 * @return the entry, or nullptr when nothing matches.
 */
const Entry *byName(const std::string &name);

/**
 * The normalisation byName matches under: '-' folded to '_' (the
 * optional "_test" suffix is handled separately).  Public so the
 * registry-hygiene test and registerEntry enforce the same aliasing
 * rule the lookup applies.
 */
std::string normalisedName(const std::string &name);

/**
 * Append a scenario to the registry at runtime — the promotion hook
 * the fuzz corpus uses to surface auto-discovered scenarios to every
 * registry consumer (cxl_check --all, the CI smoke matrix, the
 * equivalence test suites).
 *
 * Registration may grow the underlying vector, so Entry pointers
 * obtained from byName() before a registerEntry() call must not be
 * retained across it.
 *
 * @return false (registry unchanged) when the entry's name would
 *         alias an existing entry under byName's normalisation —
 *         matching it directly, or via the "_test" suffix in either
 *         direction.
 */
bool registerEntry(Entry entry);

} // namespace cxl::scenarios

#endif // CXL_API_SCENARIOS_HH
