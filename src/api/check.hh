/**
 * @file
 * The unified checker API: one façade over scenarios, engines and
 * verdicts for every front-end.
 *
 * A CheckRequest names what to verify (a registered scenario or an
 * inline program spec, the device count, which checks to run and
 * under which engine knobs); a CheckSession owns the construction of
 * rule sets, invariant sets and explorers — cached and shared across
 * requests — and turns each request into a structured CheckResult
 * (verdict, counts, per-conjunct status, timing, optional trace)
 * with renderText()/renderJson(), so callers never printf engine
 * internals or hand-assemble RuleSet + Scenario + InvariantSet +
 * Explorer themselves.
 *
 * The session also fronts the other two engines behind the same
 * model caches: guided rule-sequence walks (the paper's Tables 1-3
 * format), exhaustive litmus runs with expectations, and the
 * obligation-matrix engine (paper Fig. 1).  The Explorer is an
 * implementation detail behind run(); an mmap-backed or
 * partial-order-reduced engine can replace it without touching any
 * front-end.
 */

#ifndef CXL_API_CHECK_HH
#define CXL_API_CHECK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/scenarios.hh"
#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "litmus/litmus.hh"
#include "obligation/matrix.hh"
#include "obligation/universe.hh"
#include "protocol/config.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"

namespace cxl
{

/** Which properties a check runs. */
enum class CheckKind : std::uint8_t {
    Invariants, ///< evaluate the invariant set on every state
    Deadlock,   ///< report stuck states before program completion
    Both,
};

/** Device-permutation symmetry reduction policy. */
enum class SymmetryMode : std::uint8_t {
    /**
     * On exactly when it is sound and pays: free-run scenarios with
     * more than two devices (the swmr_statespace default since PR 2).
     */
    Auto,
    On,
    Off,
};

/**
 * Visited-state store kind (`--store=ram|ram-compact|mmap|mmap-compact`):
 * the cross product of the storage mode (full states vs Murphi hash
 * compaction; see ExploreOptions::compaction) and the memory backend
 * (heap vs per-shard file-backed mappings whose sealed BFS levels are
 * unmapped — the out-of-core mode; see StoreBackend).  The backend
 * never changes verdicts, counts or diameters; the serve layer's
 * cache key keeps only the compact bit.
 *
 * Full/Compact are back-compat aliases for the two classic in-RAM
 * kinds (`--compact` upgrades whichever backend is selected).
 */
enum class StoreKind : std::uint8_t {
    InRam,         ///< heap, full states (the classic default)
    InRamCompact,  ///< heap, hash compaction
    Mmap,          ///< file-backed, full states, out-of-core sealing
    MmapCompact,   ///< file-backed, hash compaction
    Full = InRam,  ///< legacy spelling
    Compact = InRamCompact, ///< legacy spelling
};

/** Whether a store kind uses hash compaction. */
constexpr bool
storeKindCompact(StoreKind k)
{
    return k == StoreKind::InRamCompact || k == StoreKind::MmapCompact;
}

/** Whether a store kind uses the file-backed (mmap) backend. */
constexpr bool
storeKindMmap(StoreKind k)
{
    return k == StoreKind::Mmap || k == StoreKind::MmapCompact;
}

/** The compact variant of @p k's backend (what `--compact` selects). */
constexpr StoreKind
storeKindCompacted(StoreKind k)
{
    return storeKindMmap(k) ? StoreKind::MmapCompact
                            : StoreKind::InRamCompact;
}

/** Canonical flag spelling of a store kind. */
constexpr const char *
storeKindWord(StoreKind k)
{
    switch (k) {
    case StoreKind::InRam:
        return "ram";
    case StoreKind::InRamCompact:
        return "ram-compact";
    case StoreKind::Mmap:
        return "mmap";
    case StoreKind::MmapCompact:
        return "mmap-compact";
    }
    return "ram";
}

/** Parse a `--store` word; nullopt on an unknown spelling. */
std::optional<StoreKind> storeKindFromWord(const std::string &word);

/** Engine knobs shared by every request of a session (overridable
 * per request). */
struct EngineOptions {
    /** Worker threads; 0 = one per hardware thread. */
    std::size_t threads = 0;

    SymmetryMode symmetry = SymmetryMode::Auto;
    StoreKind store = StoreKind::InRam;

    /** Mmap store kinds: directory for the backing files
     * (`--store-dir`; "" = anonymous in-memory files). */
    std::string storeDir;

    /**
     * Exploration schedule (`--ws` / `--bfs`): Schedule::Bfs is the
     * depth-synchronized baseline; Schedule::WorkSteal replaces the
     * depth barrier with per-worker work-stealing deques.  Verdicts,
     * state counts and diameters are identical either way (and across
     * thread counts); transition/slept counts are schedule-dependent
     * under WorkSteal.
     */
    Schedule schedule = Schedule::Bfs;

    /**
     * Partial-order reduction (sleep sets over static rule
     * footprints; `--por`).  Off by default.  Prunes commuting
     * interleavings: every reachable state is still visited at its
     * minimal BFS depth, so verdicts, violated-conjunct sets, state
     * counts and diameters are identical to an unreduced run — only
     * the transition count (and time) drops.  Composes with both
     * symmetry modes and StoreKind::Compact.
     */
    bool por = false;

    /** State cap; 0 = the explorer's built-in default. */
    std::uint64_t maxStates = 0;

    /** Pre-size the visited set (0 = default sizing). */
    std::uint64_t expectedStates = 0;

    bool stopAtFirstViolation = true;

    /** Wall-clock budget in seconds (`--max-seconds`; 0 = none).
     * Exceeding it ends the run gracefully as Incomplete with
     * stopReason Deadline. */
    double maxSeconds = 0;

    /** Process anonymous-RSS ceiling in bytes (`--max-rss-mb`;
     * 0 = none); crossing it ends the run as Incomplete with
     * stopReason Memory.  File-backed pages (the mmap store kinds'
     * mappings) are excluded so out-of-core runs are not tripped
     * for bytes the kernel can drop at will. */
    std::uint64_t maxRssBytes = 0;

    /** Cooperative cancellation (the CLIs wire SIGINT/SIGTERM to
     * this); an invalid token means not cancellable. */
    CancelToken cancel;

    /** Visited-set capacity ceiling (0 = architectural); hitting it
     * stops gracefully with stopReason ShardFull. */
    std::uint64_t storeCapacity = 0;

    /** Periodic mid-run progress observer (empty = none); see
     * ExploreOptions::progress.  The serve layer streams these as
     * wire frames. */
    ProgressFn progress;

    /** Minimum seconds between progress calls; <= 0 reports at every
     * batch flush. */
    double progressIntervalSeconds = 0.25;
};

/** One verification request. */
struct CheckRequest {
    /** Registered scenario name (see scenarios::byName); empty means
     * inlineScenario carries the program spec. */
    std::string scenario;

    /** Inline scenario; its initial state fixes the device count. */
    std::optional<Scenario> inlineScenario;

    /** Device count for device-scalable named scenarios; must match
     * the pinned count of non-scalable ones. */
    int devices = kDefaultNumDevices;

    /** Protocol configuration; defaults to the registry entry's
     * (inline scenarios default to ProtocolConfig::correct()). */
    std::optional<ProtocolConfig> config;

    /** Invariant families to check; defaults to the registry entry's
     * restriction (empty = the full strengthened invariant). */
    std::optional<std::vector<std::string>> families;

    CheckKind checks = CheckKind::Both;

    /** Per-request engine override of the session defaults. */
    std::optional<EngineOptions> engine;
};

/** Status of one invariant conjunct after a run. */
struct ConjunctStatus {
    std::string name;
    std::string family;

    /**
     * False iff this is the conjunct the run's violation names.  In
     * stop-at-first-violation mode the other conjuncts held on every
     * state explored up to the violation's BFS level; on a capped run
     * they held on the explored prefix.
     */
    bool held = true;
};

/** Firing count of one rule over a run. */
struct RuleFire {
    std::string name;
    bool mutated = false;
    std::uint64_t fires = 0;
    /** Enabled firings pruned by partial-order reduction (0 when
     * POR is off). */
    std::uint64_t slept = 0;
};

/** Structured result of one CheckSession::run. */
struct CheckResult {
    enum class Verdict : std::uint8_t {
        Holds,      ///< exploration complete, no violation
        Violated,   ///< an invariant conjunct or channel cap failed
        Deadlocked, ///< a program wedged before retiring
        Incomplete, ///< a budget stopped the run (see stopReason)
    };

    // ---- request echo (resolved) -------------------------------------
    std::string scenario;     ///< name, or the inline scenario's name
    Scenario scenarioSpec;    ///< the scenario actually explored
    int devices = 0;
    ProtocolConfig config;
    std::size_t numRules = 0;
    std::size_t numConjuncts = 0;

    // ---- engine echo (resolved) --------------------------------------
    std::size_t threads = 0;  ///< resolved worker count (never 0)
    bool symmetryReduction = false;
    bool compaction = false;
    bool mmapStore = false;   ///< file-backed (out-of-core) store
    bool por = false;
    Schedule schedule = Schedule::Bfs;
    std::uint64_t maxStates = 0;

    // ---- measurements ------------------------------------------------
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint32_t diameter = 0;
    bool completed = false;
    double seconds = 0.0;
    std::uint64_t probeCollisions = 0;

    /**
     * Resident-set growth across this run (current RSS sampled before
     * and after; 0 when the run released as much as it allocated).
     * Unlike the process-lifetime peak_rss_bytes this is a per-run
     * number, so consecutive cases in one bench process don't all
     * repeat the earlier maximum.
     */
    std::uint64_t rssDeltaBytes = 0;

    /** Bytes still mapped by the store's file-backed shard memory
     * when the run ended (0 for in-RAM kinds) — the out-of-core
     * mapped window, reported next to RSS because `ulimit -v` style
     * budgets cap mapped bytes, not residency. */
    std::uint64_t mappedFileBytes = 0;

    /** Total size of the store's backing files at the end of the run
     * (0 for in-RAM kinds); how much the run spilled. */
    std::uint64_t storeFileBytes = 0;

    /** Firings pruned by POR; transitions + sleptTransitions is the
     * unreduced fan-out of the same state space. */
    std::uint64_t sleptTransitions = 0;

    /** Why the governor ended the run early (None when it completed
     * or stopped at a violation); see ExploreResult::stopReason. */
    StopReason stopReason = StopReason::None;

    /** Deepest BFS level known fully expanded when the run ended;
     * see ExploreResult::deepestCompleteLevel. */
    std::uint32_t deepestCompleteLevel = 0;

    // ---- verdict -----------------------------------------------------
    Verdict verdict = Verdict::Incomplete;
    std::optional<Violation> violation; ///< includes the trace
    std::vector<ConjunctStatus> conjuncts;
    std::vector<RuleFire> ruleFires;

    bool holds() const { return verdict == Verdict::Holds; }

    /**
     * Deterministic one-line verdict: identical across thread counts
     * and machines for complete (or violation-stopped) runs — the
     * line the CI smoke matrix diffs against its goldens.
     */
    std::string verdictText() const;

    /** Multi-line human report; @p withTrace appends the witness
     * transition table and bad-state dump when a trace exists. */
    std::string renderText(bool withTrace = true) const;

    /**
     * Machine-readable result (schema "cxl-check-result/v1"): every
     * key is always present; violation fields are null when the run
     * held.  Benches embed these objects in their BENCH_*.json.
     *
     * @p deterministic zeroes the wall-clock- and allocator-dependent
     * keys (seconds, states_per_sec, peak_rss_bytes, rss_delta_bytes,
     * mapped_file_bytes, store_file_bytes) so two runs of the same request render
     * byte-identical JSON — the form the serve layer caches and the
     * served-vs-offline determinism checks diff.  Key set and order
     * are unchanged.
     */
    std::string renderJson(bool deterministic = false) const;
};

/** One obligation-matrix request (paper Fig. 1 / Section 7). */
struct ObligationRequest {
    int devices = kDefaultNumDevices;
    ProtocolConfig config = ProtocolConfig::correct();

    /** Invariant families forming the matrix columns (empty = full). */
    std::vector<std::string> families;

    UniverseOptions universe;
    MatrixOptions matrix;
};

/** Structured result of one CheckSession::obligations run. */
struct ObligationResult {
    int devices = 0;
    std::size_t numRules = 0;
    std::size_t numConjuncts = 0;
    std::size_t universeSize = 0;
    UniverseStats universeStats;
    MatrixResult matrix;

    std::string renderJson() const;
};

/** A guided rule-sequence walk plus the scenario it ran under. */
struct GuidedRun {
    Scenario scenario;
    std::vector<GuidedStep> steps;
};

/**
 * A verification session: shared engine defaults plus caches of the
 * per-(configuration, device-count) rule and invariant sets, so many
 * requests — a config table, a thread sweep, a litmus suite — reuse
 * one model build.  Not thread-safe; run requests sequentially (the
 * engines parallelise internally).
 *
 * Methods throw std::runtime_error on request errors (unknown
 * scenario name, device count out of range or mismatching a pinned
 * scenario, a guided step naming an unknown or disabled rule).
 */
class CheckSession
{
  public:
    explicit CheckSession(EngineOptions defaults = {});

    /** Explore the requested scenario and check the requested
     * properties. */
    CheckResult run(const CheckRequest &request);

    /** Fire an explicit rule-name sequence from the scenario's
     * initial state (the paper's Tables 1-3 walks). */
    GuidedRun guided(const CheckRequest &request,
                     const std::vector<std::string> &steps);

    /** Exhaustive litmus run with expectations, through the session's
     * model caches. */
    LitmusOutcome litmus(const LitmusTest &test);

    /** Discharge the obligation matrix.  The boundary universe is
     * cached, so re-running with different MatrixOptions (e.g. a
     * thread sweep) rebuilds nothing. */
    ObligationResult obligations(const ObligationRequest &request);

    /**
     * The cached rule / invariant sets for a configuration — the
     * extension point for harnesses (microbenchmarks, new engines)
     * that need the model without an exploration.
     */
    const RuleSet &ruleSet(const ProtocolConfig &config,
                           int devices = kDefaultNumDevices);
    const InvariantSet &invariantSet(const ProtocolConfig &config,
                                     int devices = kDefaultNumDevices);

    /**
     * Mutable access to the cached rule set — the tamper hook for
     * harnesses that need behaviour outside the ProtocolConfig space
     * (RuleSet::addRule experiments, and the fuzz oracle's
     * planted-divergence self-test, which corrupts exactly one
     * engine combination's session and asserts the cross-check flags
     * it).  Every later request of this session for the same
     * (config, devices) sees the modification.
     */
    RuleSet &mutableRuleSet(const ProtocolConfig &config,
                            int devices = kDefaultNumDevices);

    const EngineOptions &defaults() const { return defaults_; }

    /**
     * Reuse accounting of one cached (config-bits, devices) model.
     * Each live cache entry cost exactly one build (its miss); hits
     * count the later requests it served without rebuilding the
     * RuleSet/InvariantSet pair.
     */
    struct ModelCacheStat {
        int devices = 0;
        /** The 7 ProtocolConfig switches packed in modelKey order
         * (staleEvictDrop is the most significant bit). */
        std::uint32_t configBits = 0;
        std::uint64_t hits = 0;
    };

    /** Snapshot of the model cache's per-key reuse counters, in
     * ascending (devices, config-bits) key order. */
    std::vector<ModelCacheStat> modelCacheStats() const;

  private:
    struct Model {
        RuleSet rules;
        InvariantSet invariants; ///< the full strengthened set
        std::uint64_t hits = 0;  ///< cache-served requests after build
    };
    struct Resolved {
        Scenario scenario;
        ProtocolConfig config;
        std::vector<std::string> families;
        std::string name;
    };

    Model &modelFor(const ProtocolConfig &config, int devices);
    Resolved resolve(const CheckRequest &request) const;

    EngineOptions defaults_;
    std::map<std::uint32_t, std::unique_ptr<Model>> models_;

    // Most-recent boundary universe (they are hundreds of MB at
    // super_sketch scale, so only one is retained).
    std::string universeKey_;
    std::vector<SystemState> universe_;
    UniverseStats universeStats_;
};

} // namespace cxl

#endif // CXL_API_CHECK_HH
