#include "api/options.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "fuzz/corpus.hh"

namespace cxl::api
{

void
corpusOption(const CliArgs &args)
{
    const std::string dir = args.get("corpus", "");
    if (dir.empty())
        return;
    try {
        fuzz::promoteToRegistry(fuzz::loadCorpus(dir));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot load corpus: %s\n", e.what());
        std::exit(2);
    }
}

StandardOptions
standardOptions(const CliArgs &args, const char *defaultJsonPath)
{
    StandardOptions opt;
    opt.devices = deviceCountOption(args, kMaxDevices);
    opt.engine.threads = threadCountOption(args);

    if (args.has("no-sym"))
        opt.engine.symmetry = SymmetryMode::Off;
    else if (args.has("sym"))
        opt.engine.symmetry = SymmetryMode::On;

    // --store picks the visited-set backend by name; --compact then
    // upgrades whichever backend is selected to its hash-compacted
    // variant (order-independent, so sweep scripts can append either
    // flag as an override).
    if (args.has("store")) {
        const std::string word = args.get("store", "");
        const std::optional<StoreKind> kind = storeKindFromWord(word);
        if (!kind) {
            std::fprintf(stderr,
                         "--store '%s' unknown (want "
                         "ram|ram-compact|mmap|mmap-compact)\n",
                         word.c_str());
            std::exit(2);
        }
        opt.engine.store = *kind;
    }
    if (args.has("compact"))
        opt.engine.store = storeKindCompacted(opt.engine.store);
    opt.engine.storeDir = args.get("store-dir", "");

    // Partial-order reduction is opt-in; --no-por wins when both
    // appear (sweep scripts append overrides).
    if (args.has("no-por"))
        opt.engine.por = false;
    else if (args.has("por"))
        opt.engine.por = true;

    // Exploration schedule: --bfs wins when both appear (same
    // sweep-script override convention as --no-por).
    if (args.has("bfs"))
        opt.engine.schedule = Schedule::Bfs;
    else if (args.has("ws"))
        opt.engine.schedule = Schedule::WorkSteal;

    if (args.has("max-states")) {
        const std::int64_t n = args.getInt("max-states", 0);
        if (n < 1) {
            std::fprintf(stderr,
                         "--max-states %lld out of range (want >= 1)\n",
                         static_cast<long long>(n));
            std::exit(2);
        }
        opt.engine.maxStates = static_cast<std::uint64_t>(n);
        opt.userCapped = true;
    }

    const std::int64_t expect = args.getInt("expect-states", 0);
    if (expect > 0)
        opt.engine.expectedStates =
            static_cast<std::uint64_t>(expect);

    if (args.has("max-seconds")) {
        const std::string raw = args.get("max-seconds", "");
        char *end = nullptr;
        const double secs = std::strtod(raw.c_str(), &end);
        if (raw.empty() || end == raw.c_str() || *end != '\0' ||
            !(secs > 0)) {
            std::fprintf(stderr,
                         "--max-seconds '%s' out of range (want a "
                         "positive number of seconds)\n",
                         raw.c_str());
            std::exit(2);
        }
        opt.engine.maxSeconds = secs;
        opt.userBudgeted = true;
    }

    if (args.has("max-rss-mb")) {
        const std::int64_t mb = args.getInt("max-rss-mb", 0);
        if (mb < 1) {
            std::fprintf(stderr,
                         "--max-rss-mb %lld out of range (want >= 1)\n",
                         static_cast<long long>(mb));
            std::exit(2);
        }
        opt.engine.maxRssBytes =
            static_cast<std::uint64_t>(mb) * 1024 * 1024;
        opt.userBudgeted = true;
    }

    // One process-wide token shared by every standardOptions call:
    // re-parsing (sweep harnesses build several sessions) must not
    // orphan the token the signal handler is bound to.  The bridge
    // is first-install-wins, so a front-end that armed its own token
    // earlier (cxl_checkd's drain) keeps it — the returned token is
    // whichever one the handler actually trips.
    static const CancelToken process_cancel = CancelToken::create();
    opt.engine.cancel = installSignalCancel(process_cancel);

    if (args.has("json")) {
        opt.json = true;
        opt.jsonPath = args.get("json", "1");
        // A bare `--json` parses as the value "1"; fall back to the
        // harness's BENCH_*.json default.
        if (opt.jsonPath == "1")
            opt.jsonPath = defaultJsonPath ? defaultJsonPath : "";
        if (opt.jsonPath.empty()) {
            std::fprintf(stderr,
                         "--json needs a path for this harness\n");
            std::exit(2);
        }
    }
    return opt;
}

} // namespace cxl::api
