#include "api/check.hh"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "litmus/trace_table.hh"
#include "support/json.hh"
#include "support/resource.hh"

namespace cxl
{
namespace
{

/** Cache key over every behavioural switch plus the device count. */
std::uint32_t
modelKey(const ProtocolConfig &c, int devices)
{
    static_assert(sizeof(ProtocolConfig) == 7,
                  "a new ProtocolConfig switch needs a bit() line "
                  "below, or distinct configs alias one cache key");
    std::uint32_t key = static_cast<std::uint32_t>(devices);
    auto bit = [&key](bool b) { key = (key << 1) | (b ? 1u : 0u); };
    bit(c.staleEvictDrop);
    bit(c.cleanEvictNoData);
    bit(c.hostCleanPull);
    bit(c.relaxSnoopPushesGo);
    bit(c.relaxSmadSnoopGuard);
    bit(c.relaxGoTailgate);
    bit(c.relaxOneSnoop);
    return key;
}

std::size_t
resolvedThreads(std::size_t requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

const char *
verdictWord(CheckResult::Verdict v)
{
    switch (v) {
      case CheckResult::Verdict::Holds: return "holds";
      case CheckResult::Verdict::Violated: return "violation";
      case CheckResult::Verdict::Deadlocked: return "deadlock";
      case CheckResult::Verdict::Incomplete: return "incomplete";
    }
    return "?";
}

} // namespace

std::optional<StoreKind>
storeKindFromWord(const std::string &word)
{
    if (word == "ram")
        return StoreKind::InRam;
    if (word == "ram-compact")
        return StoreKind::InRamCompact;
    if (word == "mmap")
        return StoreKind::Mmap;
    if (word == "mmap-compact")
        return StoreKind::MmapCompact;
    return std::nullopt;
}

// ------------------------------------------------------ CheckResult

std::string
CheckResult::verdictText() const
{
    char buf[160];
    switch (verdict) {
      case Verdict::Holds:
        std::snprintf(buf, sizeof(buf),
                      "HOLDS (%llu states, %llu transitions, "
                      "diameter %u)",
                      static_cast<unsigned long long>(states),
                      static_cast<unsigned long long>(transitions),
                      diameter);
        break;
      case Verdict::Violated:
        if (!violation) {
            std::snprintf(buf, sizeof(buf),
                          "VIOLATION (details not carried)");
        } else if (violation->kind == Violation::Kind::Overflow) {
            std::snprintf(buf, sizeof(buf),
                          "VIOLATION channel overflow by %s at "
                          "depth %u",
                          violation->overflowRule.c_str(),
                          violation->depth);
        } else {
            std::snprintf(buf, sizeof(buf),
                          "VIOLATION %s (%s) at depth %u",
                          violation->conjunctName.c_str(),
                          violation->conjunctFamily.c_str(),
                          violation->depth);
        }
        break;
      case Verdict::Deadlocked:
        std::snprintf(buf, sizeof(buf), "DEADLOCK at depth %u",
                      violation ? violation->depth : 0);
        break;
      case Verdict::Incomplete:
        // Results that predate the governor carry StopReason::None;
        // the only early stop back then was the state cap.
        std::snprintf(buf, sizeof(buf), "INCOMPLETE (stopped: %s)",
                      stopReasonPhrase(stopReason == StopReason::None
                                           ? StopReason::StateCap
                                           : stopReason));
        break;
    }
    return buf;
}

std::string
CheckResult::renderText(bool withTrace) const
{
    std::string out;
    char line[256];

    std::snprintf(line, sizeof(line),
                  "scenario '%s' — %d device(s), %zu rules, %zu "
                  "conjuncts\n",
                  scenario.c_str(), devices, numRules, numConjuncts);
    out += line;
    std::snprintf(line, sizeof(line),
                  "engine: %zu thread(s), symmetry %s, %s store, "
                  "por %s, %s schedule\n",
                  threads, symmetryReduction ? "on" : "off",
                  storeKindWord(
                      mmapStore
                          ? (compaction ? StoreKind::MmapCompact
                                        : StoreKind::Mmap)
                          : (compaction ? StoreKind::InRamCompact
                                        : StoreKind::InRam)),
                  por ? "on" : "off",
                  schedule == Schedule::WorkSteal ? "work-stealing"
                                                  : "bfs");
    out += line;
    std::snprintf(
        line, sizeof(line),
        "explored %llu states / %llu transitions, diameter %u, "
        "%.3f s (%.0f states/s)\n",
        static_cast<unsigned long long>(states),
        static_cast<unsigned long long>(transitions), diameter,
        seconds,
        seconds > 0 ? static_cast<double>(states) / seconds : 0.0);
    out += line;
    if (verdict == Verdict::Incomplete) {
        std::snprintf(
            line, sizeof(line),
            "partial run: stopped by %s; levels 0..%u fully "
            "expanded\n",
            stopReasonPhrase(stopReason == StopReason::None
                                 ? StopReason::StateCap
                                 : stopReason),
            deepestCompleteLevel);
        out += line;
    }
    if (verdict == Verdict::Incomplete && threads > 1) {
        // A parallel capped run stops at a thread-dependent point:
        // the soft maxStates cap may be overshot by up to one state
        // per worker, so the counts above are not exact run
        // properties.  (A single-threaded capped run is exact and
        // reproducible, so it carries no qualifier.)
        out += "(capped run: counts are thread-dependent — the "
               "maxStates soft cap can overshoot by up to one state "
               "per worker; re-run uncapped for comparable counts)\n";
    }
    if (por) {
        const std::uint64_t candidates =
            transitions + sleptTransitions;
        std::snprintf(
            line, sizeof(line),
            "por: slept %llu of %llu enabled firings (%.1f%%)\n",
            static_cast<unsigned long long>(sleptTransitions),
            static_cast<unsigned long long>(candidates),
            candidates > 0 ? 100.0 *
                                 static_cast<double>(sleptTransitions) /
                                 static_cast<double>(candidates)
                           : 0.0);
        out += line;
    }

    std::size_t exercised = 0;
    for (const RuleFire &rf : ruleFires)
        exercised += rf.fires > 0 ? 1 : 0;
    std::snprintf(line, sizeof(line),
                  "rules exercised: %zu / %zu\n", exercised,
                  ruleFires.size());
    out += line;
    if (probeCollisions != 0) {
        std::snprintf(line, sizeof(line),
                      "probe-hash collisions kept separate: %llu\n",
                      static_cast<unsigned long long>(probeCollisions));
        out += line;
    }

    out += "verdict: " + verdictText() + "\n";

    if (violation && !violation->traceNote.empty())
        out += "(" + violation->traceNote + ")\n";
    if (withTrace && violation && violation->trace.size() > 1) {
        out += schedule == Schedule::WorkSteal
                   ? "\nwitness trace (shortest known):\n"
                   : "\nwitness trace (shortest, by BFS):\n";
        out += renderTraceTable(violation->trace, scenarioSpec,
                                defaultTraceColumns(devices));
        out += "\nbad state:\n" +
               violation->trace.back().state.dump();
    }
    return out;
}

std::string
CheckResult::renderJson(bool deterministic) const
{
    // Deterministic mode zeroes the wall-clock/allocator keys — and
    // nothing else — so the key set and order stay schema-stable.
    // The store *backend* is deliberately not a key: verdicts and
    // counts are backend-independent, the serve cache collapses ram
    // and mmap spellings onto one entry, and a cached in-RAM result
    // must stay byte-identical to an offline mmap run (only the
    // compact bit, which seals semantics, is echoed).
    const double secs = deterministic ? 0.0 : seconds;
    JsonObject json;
    json.str("schema", "cxl-check-result/v1")
        .str("scenario", scenario)
        .num("devices", static_cast<std::uint64_t>(devices))
        .num("threads", static_cast<std::uint64_t>(threads))
        .boolean("symmetry_reduction", symmetryReduction)
        .boolean("compact", compaction)
        .boolean("por", por)
        .str("schedule",
             schedule == Schedule::WorkSteal ? "ws" : "bfs")
        .num("max_states", maxStates)
        .num("rules", static_cast<std::uint64_t>(numRules))
        .num("conjuncts", static_cast<std::uint64_t>(numConjuncts))
        .num("states", states)
        .num("transitions", transitions)
        .num("slept_transitions", sleptTransitions)
        .num("diameter", static_cast<std::uint64_t>(diameter))
        .boolean("completed", completed)
        .raw("stop_reason",
             stopReason == StopReason::None
                 ? "null"
                 : JsonObject::quote(stopReasonWord(stopReason)))
        .num("deepest_complete_level",
             static_cast<std::uint64_t>(deepestCompleteLevel))
        .num("seconds", secs)
        .num("states_per_sec",
             secs > 0 ? static_cast<double>(states) / secs : 0.0)
        .str("verdict", verdictWord(verdict));
    if (violation) {
        const bool conj = violation->kind == Violation::Kind::Conjunct;
        json.str("violation_kind",
                 violation->kind == Violation::Kind::Deadlock
                     ? "deadlock"
                 : conj ? "conjunct"
                        : "overflow")
            .raw("violated_conjunct",
                 conj ? JsonObject::quote(violation->conjunctName)
                      : "null")
            .raw("violated_family",
                 conj ? JsonObject::quote(violation->conjunctFamily)
                      : "null")
            .num("violation_depth",
                 static_cast<std::uint64_t>(violation->depth));
    } else {
        json.raw("violation_kind", "null")
            .raw("violated_conjunct", "null")
            .raw("violated_family", "null")
            .raw("violation_depth", "null");
    }
    json.num("probe_hash_collisions", probeCollisions)
        .num("peak_rss_bytes",
             deterministic ? 0 : peakRssBytes())
        .num("rss_delta_bytes", deterministic ? 0 : rssDeltaBytes)
        .num("mapped_file_bytes", deterministic ? 0 : mappedFileBytes)
        .num("store_file_bytes", deterministic ? 0 : storeFileBytes);
    return json.render();
}

// ------------------------------------------------- ObligationResult

std::string
ObligationResult::renderJson() const
{
    JsonObject json;
    json.str("schema", "cxl-obligation-result/v1")
        .num("devices", static_cast<std::uint64_t>(devices))
        .num("rules", static_cast<std::uint64_t>(numRules))
        .num("conjuncts", static_cast<std::uint64_t>(numConjuncts))
        .num("universe", static_cast<std::uint64_t>(universeSize))
        .num("reachable_seeds",
             static_cast<std::uint64_t>(universeStats.reachableSeeds))
        .num("perturbed_accepted",
             static_cast<std::uint64_t>(
                 universeStats.perturbedAccepted))
        .num("cells", static_cast<std::uint64_t>(matrix.totalCells()))
        .num("rule_firings", matrix.totalFirings)
        .num("failing_cells", matrix.failedCellCount())
        .num("uncovered_rules",
             static_cast<std::uint64_t>(matrix.uncoveredRules()))
        .num("seconds", matrix.seconds);
    return json.render();
}

// ------------------------------------------------------ CheckSession

CheckSession::CheckSession(EngineOptions defaults)
    : defaults_(defaults)
{
}

CheckSession::Model &
CheckSession::modelFor(const ProtocolConfig &config, int devices)
{
    const std::uint32_t key = modelKey(config, devices);
    auto it = models_.find(key);
    if (it == models_.end()) {
        auto model = std::make_unique<Model>(Model{
            RuleSet(config, devices),
            InvariantSet::full(config, devices),
            0,
        });
        it = models_.emplace(key, std::move(model)).first;
    } else {
        ++it->second->hits;
    }
    return *it->second;
}

std::vector<CheckSession::ModelCacheStat>
CheckSession::modelCacheStats() const
{
    std::vector<ModelCacheStat> stats;
    stats.reserve(models_.size());
    for (const auto &[key, model] : models_) {
        // Inverse of modelKey: devices above the 7 config bits.
        stats.push_back({static_cast<int>(key >> 7), key & 0x7Fu,
                         model->hits});
    }
    return stats;
}

const RuleSet &
CheckSession::ruleSet(const ProtocolConfig &config, int devices)
{
    return modelFor(config, devices).rules;
}

RuleSet &
CheckSession::mutableRuleSet(const ProtocolConfig &config, int devices)
{
    return modelFor(config, devices).rules;
}

const InvariantSet &
CheckSession::invariantSet(const ProtocolConfig &config, int devices)
{
    return modelFor(config, devices).invariants;
}

CheckSession::Resolved
CheckSession::resolve(const CheckRequest &request) const
{
    Resolved r;
    if (!request.scenario.empty()) {
        const scenarios::Entry *entry =
            scenarios::byName(request.scenario);
        if (!entry) {
            throw std::runtime_error("unknown scenario '" +
                                     request.scenario + "'");
        }
        int ndev = request.devices;
        if (!entry->deviceScalable) {
            if (ndev != kDefaultNumDevices &&
                ndev != entry->fixedDevices) {
                throw std::runtime_error(
                    "scenario '" + entry->name + "' is pinned to " +
                    std::to_string(entry->fixedDevices) +
                    " device(s)");
            }
            ndev = entry->fixedDevices;
        }
        if (ndev < 1 || ndev > kMaxDevices) {
            throw std::runtime_error(
                "device count " + std::to_string(ndev) +
                " out of range [1, " + std::to_string(kMaxDevices) +
                "]");
        }
        r.scenario = entry->build(ndev);
        r.config = request.config.value_or(entry->config);
        r.families = request.families.value_or(entry->families);
        r.name = entry->name;
    } else if (request.inlineScenario) {
        r.scenario = *request.inlineScenario;
        const int ndev = r.scenario.numDevices();
        if (ndev < 1 || ndev > kMaxDevices) {
            throw std::runtime_error(
                "inline scenario device count " +
                std::to_string(ndev) + " out of range [1, " +
                std::to_string(kMaxDevices) + "]");
        }
        r.config = request.config.value_or(ProtocolConfig::correct());
        r.families =
            request.families.value_or(std::vector<std::string>{});
        r.name = r.scenario.name;
    } else {
        throw std::runtime_error(
            "CheckRequest carries neither a scenario name nor an "
            "inline scenario");
    }
    return r;
}

CheckResult
CheckSession::run(const CheckRequest &request)
{
    const Resolved resolved = resolve(request);
    const int devices = resolved.scenario.numDevices();
    const EngineOptions engine = request.engine.value_or(defaults_);

    Model &model = modelFor(resolved.config, devices);
    InvariantSet filtered;
    const InvariantSet &invariants =
        selectFamilies(model.invariants, resolved.families, filtered);

    ExploreOptions opt;
    opt.numThreads = engine.threads;
    if (engine.maxStates != 0)
        opt.maxStates = engine.maxStates;
    opt.expectedStates = engine.expectedStates;
    opt.compaction = storeKindCompact(engine.store);
    opt.storeBackend = storeKindMmap(engine.store)
                           ? StoreBackend::Mmap
                           : StoreBackend::InRam;
    opt.storeDir = engine.storeDir;
    opt.por = engine.por;
    opt.schedule = engine.schedule;
    opt.symmetryReduction =
        engine.symmetry == SymmetryMode::On ||
        (engine.symmetry == SymmetryMode::Auto &&
         resolved.scenario.freeRun && devices > 2);
    opt.checkInvariants = request.checks != CheckKind::Deadlock;
    opt.checkDeadlock = request.checks != CheckKind::Invariants;
    opt.stopAtFirstViolation = engine.stopAtFirstViolation;
    opt.maxSeconds = engine.maxSeconds;
    opt.maxRssBytes = engine.maxRssBytes;
    opt.cancel = engine.cancel;
    opt.storeCapacity = engine.storeCapacity;
    opt.progress = engine.progress;
    opt.progressIntervalSeconds = engine.progressIntervalSeconds;

    Explorer explorer(model.rules, resolved.scenario, invariants);
    const std::uint64_t rss_before = currentRssBytes();
    ExploreResult res = explorer.run(opt);
    const std::uint64_t rss_after = currentRssBytes();

    CheckResult out;
    out.scenario = resolved.name;
    out.scenarioSpec = resolved.scenario;
    out.devices = devices;
    out.config = resolved.config;
    out.numRules = model.rules.rules().size();
    out.numConjuncts = invariants.size();
    out.threads = resolvedThreads(engine.threads);
    out.symmetryReduction = opt.symmetryReduction;
    out.compaction = opt.compaction;
    out.mmapStore = storeKindMmap(engine.store);
    out.por = opt.por;
    out.schedule = opt.schedule;
    out.maxStates = opt.maxStates;
    out.states = res.numStates;
    out.transitions = res.numTransitions;
    out.diameter = res.maxDepth;
    out.completed = res.completed;
    out.seconds = res.seconds;
    out.probeCollisions = res.probeCollisions;
    out.sleptTransitions = res.sleptTransitions;
    out.stopReason = res.stopReason;
    out.deepestCompleteLevel = res.deepestCompleteLevel;
    out.rssDeltaBytes =
        rss_after > rss_before ? rss_after - rss_before : 0;
    out.mappedFileBytes = res.storeMappedBytes;
    out.storeFileBytes = res.storeFileBytes;

    if (res.violation) {
        out.verdict = res.violation->kind == Violation::Kind::Deadlock
                          ? CheckResult::Verdict::Deadlocked
                          : CheckResult::Verdict::Violated;
    } else {
        out.verdict = res.completed ? CheckResult::Verdict::Holds
                                    : CheckResult::Verdict::Incomplete;
    }

    out.conjuncts.reserve(invariants.size());
    for (const Conjunct &c : invariants.conjuncts()) {
        const bool violated =
            res.violation &&
            res.violation->kind == Violation::Kind::Conjunct &&
            res.violation->conjunctName == c.name;
        out.conjuncts.push_back({c.name, c.family, !violated});
    }
    out.ruleFires.reserve(model.rules.rules().size());
    for (const Rule &rule : model.rules.rules()) {
        const std::uint64_t fires =
            rule.id < res.ruleFireCounts.size()
                ? res.ruleFireCounts[rule.id]
                : 0;
        const std::uint64_t slept =
            rule.id < res.ruleSleptCounts.size()
                ? res.ruleSleptCounts[rule.id]
                : 0;
        out.ruleFires.push_back(
            {rule.name, rule.mutated, fires, slept});
    }
    out.violation = std::move(res.violation);
    return out;
}

GuidedRun
CheckSession::guided(const CheckRequest &request,
                     const std::vector<std::string> &steps)
{
    const Resolved resolved = resolve(request);
    Model &model =
        modelFor(resolved.config, resolved.scenario.numDevices());
    GuidedRun run;
    run.scenario = resolved.scenario;
    run.steps = runGuided(model.rules, run.scenario, steps);
    return run;
}

LitmusOutcome
CheckSession::litmus(const LitmusTest &test)
{
    Model &model =
        modelFor(test.config, test.scenario.numDevices());
    return runLitmus(test, model.rules, model.invariants);
}

ObligationResult
CheckSession::obligations(const ObligationRequest &request)
{
    if (request.devices < 1 || request.devices > kMaxDevices) {
        throw std::runtime_error(
            "device count " + std::to_string(request.devices) +
            " out of range [1, " + std::to_string(kMaxDevices) + "]");
    }
    Model &model = modelFor(request.config, request.devices);
    InvariantSet filtered;
    const InvariantSet &invariants =
        selectFamilies(model.invariants, request.families, filtered);

    Scenario scenario = Scenario::freeRunScenario(request.devices);

    // One universe is cached (they are large); the key covers every
    // input that shapes it.
    std::string key =
        std::to_string(modelKey(request.config, request.devices));
    for (const std::string &f : request.families)
        key += "|" + f;
    key += "#" + std::to_string(request.universe.seed) + ":" +
           std::to_string(request.universe.maxReachable) + ":" +
           std::to_string(request.universe.perturbationsPerSeed) +
           ":" + std::to_string(request.universe.maxStates);
    if (key != universeKey_) {
        universeStats_ = {};
        universe_ = buildUniverse(model.rules, scenario, invariants,
                                  request.universe, &universeStats_);
        universeKey_ = key;
    }

    ObligationResult out;
    out.devices = request.devices;
    out.numRules = model.rules.rules().size();
    out.numConjuncts = invariants.size();
    out.universeSize = universe_.size();
    out.universeStats = universeStats_;
    out.matrix = checkObligationMatrix(model.rules, scenario,
                                       invariants, universe_,
                                       request.matrix);
    return out;
}

} // namespace cxl
