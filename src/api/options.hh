/**
 * @file
 * Shared command-line surface of the bench/example front-ends: one
 * helper resolves the flags every binary used to re-plumb by hand —
 * `--devices`, `--threads`, `--sym`/`--no-sym`,
 * `--store=ram|ram-compact|mmap|mmap-compact`, `--store-dir`,
 * `--compact` (upgrades the chosen backend to its compacted
 * variant), `--por`/`--no-por`, `--ws`/`--bfs`, `--max-states`,
 * `--expect-states`, `--max-seconds`, `--max-rss-mb`, `--json` —
 * into a device count plus the EngineOptions a CheckSession is
 * constructed with.  It also arms the process-wide SIGINT/SIGTERM →
 * CancelToken bridge, so every front-end gets graceful Ctrl-C for
 * free: the run ends as Incomplete (stop_reason "cancelled") with
 * its explored-prefix counts instead of dying mid-print.
 */

#ifndef CXL_API_OPTIONS_HH
#define CXL_API_OPTIONS_HH

#include <string>

#include "api/check.hh"
#include "support/cli.hh"

namespace cxl::api
{

/** The resolved standard flag set. */
struct StandardOptions {
    int devices = kDefaultNumDevices;
    EngineOptions engine;

    /**
     * True when the user passed an explicit `--max-states`: capped
     * runs then report the verdict for the explored prefix rather
     * than failing for not finishing (swmr_statespace semantics).
     */
    bool userCapped = false;

    /**
     * True when the user passed `--max-seconds` or `--max-rss-mb`:
     * like userCapped, a budget-stopped Incomplete verdict is then
     * the requested behaviour, not a failure.  Kept separate from
     * userCapped because harnesses use that flag to substitute the
     * explicit cap into engine defaults (cxl_fuzz's freeRunCap).
     */
    bool userBudgeted = false;

    /** `--json [PATH]` given; path defaults per harness. */
    bool json = false;
    std::string jsonPath;
};

/**
 * Parse the standard flags from @p args.  Prints a diagnostic and
 * exits with status 2 on out-of-range values — the front-ends treat
 * flag errors as usage errors, not verification results.
 *
 * @param defaultJsonPath the BENCH_*.json path used when `--json`
 *        appears without a value (nullptr: harness has no JSON drop).
 */
StandardOptions standardOptions(const CliArgs &args,
                                const char *defaultJsonPath = nullptr);

/**
 * Handle the shared `--corpus DIR` flag: promote every fuzz case in
 * DIR into the scenario registry, so --list/--all/--scenario (and a
 * daemon's request resolution) cover the auto-discovered scenarios
 * too.  No-op when the flag is absent.  A malformed case file prints
 * the loader's filename-naming diagnostic and exits 2 — the same
 * usage-error path as a bad flag, shared by every front-end instead
 * of re-implemented per binary.
 */
void corpusOption(const CliArgs &args);

} // namespace cxl::api

#endif // CXL_API_OPTIONS_HH
