/**
 * @file
 * Shared command-line surface of the bench/example front-ends: one
 * helper resolves the flags every binary used to re-plumb by hand —
 * `--devices`, `--threads`, `--sym`/`--no-sym`, `--compact`,
 * `--por`/`--no-por`, `--ws`/`--bfs`, `--max-states`,
 * `--expect-states`, `--json` —
 * into a device count plus the EngineOptions a CheckSession is
 * constructed with.
 */

#ifndef CXL_API_OPTIONS_HH
#define CXL_API_OPTIONS_HH

#include <string>

#include "api/check.hh"
#include "support/cli.hh"

namespace cxl::api
{

/** The resolved standard flag set. */
struct StandardOptions {
    int devices = kDefaultNumDevices;
    EngineOptions engine;

    /**
     * True when the user passed an explicit `--max-states`: capped
     * runs then report the verdict for the explored prefix rather
     * than failing for not finishing (swmr_statespace semantics).
     */
    bool userCapped = false;

    /** `--json [PATH]` given; path defaults per harness. */
    bool json = false;
    std::string jsonPath;
};

/**
 * Parse the standard flags from @p args.  Prints a diagnostic and
 * exits with status 2 on out-of-range values — the front-ends treat
 * flag errors as usage errors, not verification results.
 *
 * @param defaultJsonPath the BENCH_*.json path used when `--json`
 *        appears without a value (nullptr: harness has no JSON drop).
 */
StandardOptions standardOptions(const CliArgs &args,
                                const char *defaultJsonPath = nullptr);

} // namespace cxl::api

#endif // CXL_API_OPTIONS_HH
