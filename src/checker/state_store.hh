/**
 * @file
 * Visited-state store of the explicit-state checker.
 *
 * The store is sharded for concurrency: a state's 64-bit probe hash
 * routes it (top bits) to one of kNumShards lock-striped shards, each
 * a power-of-two open-addressing table over a flat uint32_t bucket
 * array.  Entry data is struct-of-arrays: parallel per-shard columns
 * for the probe hash, the verification fingerprint (compact mode),
 * parent/rule/depth breadcrumbs, and the state bytes themselves in a
 * chunked arena of fixed-size blocks whose addresses never move.
 * Shard growth rehashes from the stored probe hashes, never from
 * state bytes.
 *
 * Two storage modes (StoreMode):
 *
 *  - Full: the classic Murphi layout.  States are kept verbatim, so
 *    deduplication is exact and counterexample traces can be rebuilt
 *    from the breadcrumbs.
 *  - Compact: Murphi hash compaction.  Only a second 64-bit
 *    verification fingerprint is kept per entry; the frontier's state
 *    bytes live zero-RLE-compressed in a transient byte arena whose
 *    old BFS levels are released (sealLevel), cutting memory per
 *    state by roughly an order of magnitude.  A probe-hash collision
 *    is *detected* by the fingerprint mismatch (counted in
 *    probeCollisions()) and the states stay distinct; an undetected
 *    merge requires both 64-bit values to collide — expected
 *    occurrences ~ n^2 / 2^65 for n states.  Traces cannot be
 *    rebuilt in this mode.
 *
 * State identifiers are (shard, offset) pairs packed into a u32:
 * the top kShardBits select the shard, the low kOffsetBits index the
 * shard's entry columns.  Packed ids are stable for the lifetime of
 * the store and never collide with kNoParent.
 *
 * Thread-safety: insert() and insertBatch() may be called
 * concurrently from any number of threads.  stateAt()/stateInto()
 * are safe concurrently with inserts *for ids published before the
 * current expansion phase began* (the arena blocks holding them are
 * fixed, and the block/offset spines never reallocate).  The depth
 * column is chunked atomics: depthAt() may be read lock-free at any
 * time (the work-stealing explorer's stale-task check depends on
 * this), while parentAt()/ruleAt() and sealLevel() must only be used
 * while the store is quiescent — the explorers call them between
 * depth barriers or after termination.
 *
 * Duplicate inserts carrying a *smaller* depth than the stored entry
 * relabel the entry's breadcrumbs (depth, parent, rule) in place and
 * report BatchItem::improved — the label-correcting step of the
 * work-stealing schedule's shortest-path convergence.  Under the
 * depth-synchronized BFS schedule duplicates never arrive with a
 * smaller depth, so the update is exercised only by the async
 * engine.
 */

#ifndef CXL_CHECKER_STATE_STORE_HH
#define CXL_CHECKER_STATE_STORE_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "protocol/state.hh"

namespace cxl
{

/** Storage policy of a StateStore. */
enum class StoreMode : std::uint8_t {
    Full,    ///< keep every state; exact dedup; traces reconstructible
    Compact, ///< hash compaction: 64-bit fingerprints instead of states
};

/**
 * A StateStore shard ran out of room: its entry count reached the
 * capacity limit (architectural 2^28 per shard, or the smaller
 * per-run limit derived from ExploreOptions::storeCapacity), or a
 * compact-mode shard exhausted its 32-bit arena offset space.  The
 * explorers catch this and convert it into a graceful governed stop
 * (StopReason::ShardFull) — the explored prefix stays a valid
 * partial result.  what() names the shard and suggests
 * `--expect-states`/`--compact`.
 */
class StoreFullError : public std::length_error
{
  public:
    StoreFullError(std::uint32_t shard, const std::string &what)
        : std::length_error(what), shard_(shard)
    {
    }

    /** Index of the shard that filled first. */
    std::uint32_t shard() const { return shard_; }

  private:
    std::uint32_t shard_;
};

/** Sharded dense store of deduplicated states with BFS breadcrumbs. */
class StateStore
{
  public:
    /** Sentinel parent index for root states. */
    static constexpr std::uint32_t kNoParent = 0xffffffffu;

    /** log2 of the shard count. */
    static constexpr std::uint32_t kShardBits = 4;
    /** Number of lock-striped shards. */
    static constexpr std::uint32_t kNumShards = 1u << kShardBits;
    /** Bits of a packed id addressing within a shard. */
    static constexpr std::uint32_t kOffsetBits = 32 - kShardBits;
    /** Mask extracting the offset from a packed id. */
    static constexpr std::uint32_t kOffsetMask =
        (1u << kOffsetBits) - 1;

    /** log2 of the states per full-mode arena block (~2 MB). */
    static constexpr std::uint32_t kBlockBits = 13;
    /** States per full-mode arena block. */
    static constexpr std::uint32_t kBlockSize = 1u << kBlockBits;

    /** log2 of the compact-mode byte-arena block size (256 KiB). */
    static constexpr std::uint32_t kByteBlockBits = 18;
    /** Compact-mode byte-arena block size. */
    static constexpr std::uint32_t kByteBlockSize =
        1u << kByteBlockBits;

    /**
     * Upper bound on one zero-RLE-encoded state cell: 2-byte payload
     * length plus, in the worst (incompressible) case, the literal
     * bytes emitted in <=255-byte chunks with 2 bytes of pair
     * overhead each.
     */
    static constexpr std::size_t kMaxEncodedState =
        2 + sizeof(SystemState) + 2 * (sizeof(SystemState) / 255 + 1);

    /**
     * One pending insert of a batched flush.  The caller fills state,
     * hash (the state's probe hash) and the breadcrumbs; insertBatch
     * fills id, inserted and improved.
     */
    struct BatchItem {
        SystemState state;
        std::uint64_t hash = 0;
        std::uint32_t parent = kNoParent;
        std::uint32_t depth = 0;
        std::uint16_t rule = 0;
        // Filled by insertBatch:
        std::uint32_t id = 0;
        bool inserted = false;
        /** Known state relabelled to a smaller depth (see the class
         * comment); the async explorer re-expands it. */
        bool improved = false;

      private:
        friend class StateStore;
        std::uint64_t verify_ = 0; ///< fingerprint (compact mode)
        std::uint32_t next_ = 0;   ///< shard-chain scratch
    };

    /**
     * @param initial_buckets total bucket hint, split across shards.
     * @param mode Full (default) or Compact storage.
     * @param capacity_limit total-state ceiling enforced per shard
     *        (each shard holds at most
     *        max(1, capacity_limit / kNumShards) entries; inserts
     *        beyond that throw StoreFullError).  0 means the
     *        architectural per-shard maximum.  Exists so the
     *        shard-full path is testable without 2^28 inserts, and
     *        as the contract point for out-of-core stores.
     */
    explicit StateStore(std::size_t initial_buckets = 1 << 16,
                        StoreMode mode = StoreMode::Full,
                        std::uint64_t capacity_limit = 0);

    StateStore(const StateStore &) = delete;
    StateStore &operator=(const StateStore &) = delete;

    /**
     * Pre-size every shard for ~expected/kNumShards entries: bucket
     * arrays sized for <= 0.5 load at the hint and entry columns
     * reserved, so a run of the expected size performs no rehash and
     * no column reallocation.  Callable only while quiescent.
     */
    void reserveStates(std::uint64_t expected);

    /**
     * Insert a state if new (probe hash computed internally).
     *
     * @return (packed id, inserted): id of the canonical entry for the
     *         state, and whether this call created it.
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint32_t parent,
           std::uint16_t rule_id, std::uint32_t depth)
    {
        return insert(state, state.hash(), parent, rule_id, depth);
    }

    /**
     * Insert with a precomputed probe hash.  Parallel workers hash
     * outside the shard lock and pass the value here so the lock only
     * covers the probe/append.  (In compact mode the verification
     * fingerprint is always computed internally from the state bytes —
     * it is the identity, not a routing hint, so it cannot be forged.)
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint64_t hash,
           std::uint32_t parent, std::uint16_t rule_id,
           std::uint32_t depth);

    /**
     * Batched insert: deduplicate/insert every item, taking each
     * destination shard's lock once per batch instead of once per
     * item.  Items are grouped by shard (counting sort on the hash's
     * top bits) and processed in batch order within a shard, so
     * duplicate items inside one batch resolve exactly as sequential
     * inserts would.  Results are returned through item.id /
     * item.inserted.
     */
    void insertBatch(BatchItem *items, std::size_t count);

    /**
     * Reference to the state bytes for a packed id; full mode only
     * (compact-mode cells are compressed — use stateInto).  See the
     * class comment for thread-safety.
     */
    const SystemState &
    stateAt(std::uint32_t id) const
    {
        assert(mode_ == StoreMode::Full &&
               "stateAt needs verbatim states; use stateInto");
        return *blockState(shards_[shardOf(id)], id & kOffsetMask);
    }

    /**
     * Copy/decode the state bytes for a packed id into @p out.  Works
     * in both modes; in compact mode the entry must still be retained
     * (the explorer only reads ids of the frontier being expanded,
     * which always are).
     */
    void stateInto(std::uint32_t id, SystemState &out) const;

    /** True iff the state bytes of @p id are still readable (always,
     * in full mode; in compact mode, until sealLevel releases the
     * enclosing arena block). */
    bool
    stateRetained(std::uint32_t id) const
    {
        if (mode_ == StoreMode::Full)
            return true;
        const Shard &shard = shards_[shardOf(id)];
        return stateOffAt(shard, id & kOffsetMask) >= shard.byteFloor;
    }

    /** Breadcrumb accessors; quiescent use only (the columns may
     * reallocate during concurrent inserts). */
    std::uint32_t
    parentAt(std::uint32_t id) const
    {
        return shards_[shardOf(id)].parents[id & kOffsetMask];
    }
    std::uint16_t
    ruleAt(std::uint32_t id) const
    {
        return shards_[shardOf(id)].rules[id & kOffsetMask];
    }

    /**
     * Current depth label of @p id.  Safe concurrently with inserts
     * and improvements (chunked atomic column, relaxed load): a racy
     * read may be stale, but depths only ever decrease, so a stale
     * value is an upper bound — exactly what the async explorer's
     * stale-task check needs.  Exact once quiescent.
     */
    std::uint32_t
    depthAt(std::uint32_t id) const
    {
        return depthCell(shards_[shardOf(id)], id & kOffsetMask)
            .load(std::memory_order_relaxed);
    }

    /** Largest depth label over all entries; quiescent use only. */
    std::uint32_t maxDepthQuiescent() const;

    /** Number of entries with depth <= @p depth; quiescent use only.
     * The async explorer uses this to reproduce the BFS
     * stop-at-level state count on violation-stopped runs. */
    std::uint64_t countDepthAtMost(std::uint32_t depth) const;

    /**
     * BFS level barrier hook; call only while quiescent.  In compact
     * mode, releases the arena blocks of states older than the level
     * that just finished expanding (their ids will never be read
     * again) and records the new level boundary.  No-op in full mode.
     *
     * Sealing is a property of the depth-synchronized schedule only:
     * the work-stealing explorer expands depths out of order and so
     * never calls this — under it every compact-mode cell stays
     * retained (costing the memory the seal would have freed, but
     * making counterexample traces reconstructible even in compact
     * mode).
     */
    void sealLevel();

    /** Total states across all shards. */
    std::size_t
    size() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** Storage mode selected at construction. */
    StoreMode mode() const { return mode_; }

    /**
     * Probe-hash collisions observed so far: inserts whose 64-bit
     * probe hash matched an existing entry holding a different state
     * (full mode: state bytes differed; compact mode: verification
     * fingerprint differed).  Each one is a state pair that
     * probe-hash-only compaction would have merged silently.
     * Quiescent use only.
     */
    std::uint64_t probeCollisions() const;

    /** Shard a packed id belongs to. */
    static constexpr std::uint32_t
    shardOf(std::uint32_t id)
    {
        return id >> kOffsetBits;
    }

  private:
    /** log2 of entries per chunk of the compact state-offset column. */
    static constexpr std::uint32_t kOffChunkBits = 16;

    struct alignas(64) Shard {
        mutable std::mutex mutex;
        // SoA entry columns, indexed by offset.
        std::vector<std::uint64_t> hashes;   ///< probe hashes
        std::vector<std::uint64_t> verifies; ///< fingerprints (compact)
        std::vector<std::uint32_t> parents;
        std::vector<std::uint16_t> rules;
        /**
         * Depth column, in fixed chunks of atomics: the spine is
         * fully reserved and the chunks never move, so depthAt() can
         * read lock-free while peers insert and improve.  Cells are
         * written under the shard mutex with relaxed stores.
         */
        std::vector<std::unique_ptr<std::atomic<std::uint32_t>[]>>
            depths;
        /**
         * State arena.  Full mode: fixed-slot blocks of kBlockSize
         * verbatim states.  Compact mode: kByteBlockSize byte blocks
         * holding zero-RLE cells located by the stateOffs column.
         * Both spines are reserved to their maximum size up front so
         * they never reallocate — concurrent readers may index them
         * lock-free for entries published before their expansion
         * phase began.
         */
        std::vector<std::unique_ptr<std::byte[]>> blocks;
        /**
         * Compact mode: per-entry arena byte offset, in fixed chunks
         * (never reallocated) because workers read frontier offsets
         * while peers append.
         */
        std::vector<std::unique_ptr<std::uint32_t[]>> stateOffs;
        std::uint64_t byteCursor = 0; ///< compact: next free arena byte
        std::uint64_t byteFloor = 0;  ///< compact: freed below this
        std::uint64_t levelBoundaryByte = 0; ///< cursor at last seal
        /// Bucket content is entry offset + 1; 0 means empty.
        std::vector<std::uint32_t> buckets;
        std::uint64_t mask = 0;
        std::uint32_t count = 0;
        /** Entry ceiling; inserting past it throws StoreFullError. */
        std::uint32_t limit = kOffsetMask;
        std::uint64_t collisions = 0;
    };

    static const SystemState *
    blockState(const Shard &shard, std::uint32_t off)
    {
        const std::byte *base = shard.blocks[off >> kBlockBits].get();
        return std::launder(reinterpret_cast<const SystemState *>(
            base + static_cast<std::size_t>(off & (kBlockSize - 1)) *
                       sizeof(SystemState)));
    }

    static std::uint32_t
    stateOffAt(const Shard &shard, std::uint32_t off)
    {
        return shard.stateOffs[off >> kOffChunkBits]
                              [off & ((1u << kOffChunkBits) - 1)];
    }

    static std::atomic<std::uint32_t> &
    depthCell(const Shard &shard, std::uint32_t off)
    {
        return shard.depths[off >> kOffChunkBits]
                           [off & ((1u << kOffChunkBits) - 1)];
    }

    struct InsertOutcome {
        std::uint32_t id;
        bool inserted;
        bool improved;
    };

    InsertOutcome
    probeInsertLocked(std::uint32_t shard_idx, Shard &shard,
                      const SystemState &state, std::uint64_t hash,
                      std::uint64_t verify, std::uint32_t parent,
                      std::uint16_t rule_id, std::uint32_t depth);

    static void growShard(Shard &shard);
    static void sizeBuckets(Shard &shard, std::size_t cap);

    Shard shards_[kNumShards];
    std::atomic<std::uint64_t> total_{0};
    StoreMode mode_;
};

} // namespace cxl

#endif // CXL_CHECKER_STATE_STORE_HH
