/**
 * @file
 * Visited-state store of the explicit-state checker: the engine-facing
 * façade over three layers.
 *
 * The store is sharded for concurrency: a state's 64-bit probe hash
 * routes it (top bits) to one of kNumShards lock-striped shards, each
 * a power-of-two open-addressing table.  This façade owns the
 * probe/insert/batch algorithm, packed-id semantics and the
 * per-shard locks; the data lives in two layers below it, both
 * allocated from a per-shard memory backend:
 *
 *  - ShardColumns (store_columns.hh): the struct-of-arrays entry
 *    columns — probe hash, verification fingerprint, parent, rule,
 *    chunked atomic depth — plus the bucket array.  Shard growth
 *    rehashes from the stored probe hashes, never from state bytes.
 *  - StateArena (store_arena.hh): the state bytes, as verbatim
 *    full-mode blocks or zero-RLE compact cells, with the
 *    sealLevel() block-release machinery.
 *  - ShardMem (store_mem.hh): where both layers get memory.  InRam
 *    is the classic heap layout; Mmap gives every shard file-backed
 *    growable mappings (anonymous memfd, or files under an explicit
 *    directory) so sealed BFS levels can be unmapped — address space
 *    and residency track the frontier window, the backing file keeps
 *    every byte, and dropped blocks are remapped on demand.
 *
 * Two storage modes (StoreMode, declared with the arena):
 *
 *  - Full: the classic Murphi layout.  States are kept verbatim, so
 *    deduplication is exact and counterexample traces can be rebuilt
 *    from the breadcrumbs.  (On the Mmap backend, entries whose
 *    blocks have been sealed cold are deduplicated by their stored
 *    64-bit verification fingerprint instead of refaulting the block
 *    — detected-collision semantics identical to compact mode for
 *    exactly those entries; the mapped window still compares bytes.)
 *  - Compact: Murphi hash compaction.  Only a second 64-bit
 *    verification fingerprint is kept per entry; the frontier's state
 *    bytes live zero-RLE-compressed in a transient byte arena whose
 *    old BFS levels are released (sealLevel), cutting memory per
 *    state by roughly an order of magnitude.  A probe-hash collision
 *    is *detected* by the fingerprint mismatch (counted in
 *    probeCollisions()) and the states stay distinct; an undetected
 *    merge requires both 64-bit values to collide — expected
 *    occurrences ~ n^2 / 2^65 for n states.  Traces cannot be
 *    rebuilt in this mode on the InRam backend; on Mmap the sealed
 *    cells persist in the backing file, so they can.
 *
 * State identifiers are (shard, offset) pairs packed into a u32:
 * the top kShardBits select the shard, the low kOffsetBits index the
 * shard's entry columns.  Packed ids are stable for the lifetime of
 * the store, identical across backends, and never collide with
 * kNoParent.
 *
 * Thread-safety: insert() and insertBatch() may be called
 * concurrently from any number of threads.  stateAt()/stateInto()
 * are safe concurrently with inserts *for ids published before the
 * current expansion phase began* (the arena blocks holding them are
 * fixed, and the block/offset spines never reallocate).  The depth
 * column is chunked atomics: depthAt() may be read lock-free at any
 * time (the work-stealing explorer's stale-task check depends on
 * this), while parentAt()/ruleAt() and sealLevel() must only be used
 * while the store is quiescent — the explorers call them between
 * depth barriers or after termination.
 *
 * Duplicate inserts carrying a *smaller* depth than the stored entry
 * relabel the entry's breadcrumbs (depth, parent, rule) in place and
 * report BatchItem::improved — the label-correcting step of the
 * work-stealing schedule's shortest-path convergence.  Under the
 * depth-synchronized BFS schedule duplicates never arrive with a
 * smaller depth, so the update is exercised only by the async
 * engine.
 */

#ifndef CXL_CHECKER_STATE_STORE_HH
#define CXL_CHECKER_STATE_STORE_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "checker/store_arena.hh"
#include "checker/store_columns.hh"
#include "checker/store_mem.hh"
#include "protocol/state.hh"

namespace cxl
{

/**
 * A StateStore shard ran out of room: its entry count reached the
 * capacity limit (architectural 2^28 per shard, or the smaller
 * per-run limit derived from ExploreOptions::storeCapacity), or a
 * compact-mode shard exhausted its 32-bit arena offset space.  The
 * explorers catch this and convert it into a graceful governed stop
 * (StopReason::ShardFull) — the explored prefix stays a valid
 * partial result.  what() names the shard, its computed entry limit
 * and the available --store kinds.
 */
class StoreFullError : public std::length_error
{
  public:
    StoreFullError(std::uint32_t shard, const std::string &what)
        : std::length_error(what), shard_(shard)
    {
    }

    /** Index of the shard that filled first. */
    std::uint32_t shard() const { return shard_; }

  private:
    std::uint32_t shard_;
};

/** Construction parameters of a StateStore (see the file comment for
 * what each axis selects). */
struct StoreConfig {
    /** Total bucket hint, split across shards. */
    std::size_t initialBuckets = 1 << 16;
    /** Full (verbatim states) or Compact (hash compaction). */
    StoreMode mode = StoreMode::Full;
    /** Heap or file-backed (out-of-core) shard memory. */
    StoreBackend backend = StoreBackend::InRam;
    /** Mmap backend: backing directory; "" = anonymous in-memory
     * files (memfd). */
    std::string dir;
    /**
     * Total-state ceiling enforced per shard (each shard holds at
     * most max(1, capacityLimit / kNumShards) entries; inserts beyond
     * that throw StoreFullError).  0 means the architectural
     * per-shard maximum.  Exists so the shard-full path is testable
     * without 2^28 inserts, and as the contract point for bounded
     * runs.
     */
    std::uint64_t capacityLimit = 0;
};

/** Sharded dense store of deduplicated states with BFS breadcrumbs. */
class StateStore
{
  public:
    /** Sentinel parent index for root states. */
    static constexpr std::uint32_t kNoParent = 0xffffffffu;

    /** log2 of the shard count. */
    static constexpr std::uint32_t kShardBits = 4;
    /** Number of lock-striped shards. */
    static constexpr std::uint32_t kNumShards = 1u << kShardBits;
    /** Bits of a packed id addressing within a shard. */
    static constexpr std::uint32_t kOffsetBits = 32 - kShardBits;
    /** Mask extracting the offset from a packed id. */
    static constexpr std::uint32_t kOffsetMask =
        (1u << kOffsetBits) - 1;

    /** Layer constants re-exported for existing callers/tests. */
    static constexpr std::uint32_t kBlockBits =
        StateArena::kFullBlockBitsRam;
    static constexpr std::uint32_t kBlockSize = 1u << kBlockBits;
    static constexpr std::uint32_t kByteBlockBits =
        StateArena::kByteBlockBits;
    static constexpr std::uint32_t kByteBlockSize =
        1u << kByteBlockBits;
    static constexpr std::size_t kMaxEncodedState =
        StateArena::kMaxEncodedState;

    /**
     * One pending insert of a batched flush.  The caller fills state,
     * hash (the state's probe hash) and the breadcrumbs; insertBatch
     * fills id, inserted and improved.
     */
    struct BatchItem {
        SystemState state;
        std::uint64_t hash = 0;
        std::uint32_t parent = kNoParent;
        std::uint32_t depth = 0;
        std::uint16_t rule = 0;
        // Filled by insertBatch:
        std::uint32_t id = 0;
        bool inserted = false;
        /** Known state relabelled to a smaller depth (see the class
         * comment); the async explorer re-expands it. */
        bool improved = false;

      private:
        friend class StateStore;
        std::uint64_t verify_ = 0; ///< fingerprint (compact/mmap)
        std::uint32_t next_ = 0;   ///< shard-chain scratch
    };

    explicit StateStore(const StoreConfig &config);

    /** Legacy convenience: InRam backend with the given knobs. */
    explicit StateStore(std::size_t initial_buckets = 1 << 16,
                        StoreMode mode = StoreMode::Full,
                        std::uint64_t capacity_limit = 0)
        : StateStore(StoreConfig{initial_buckets, mode,
                                 StoreBackend::InRam, std::string(),
                                 capacity_limit})
    {
    }

    StateStore(const StateStore &) = delete;
    StateStore &operator=(const StateStore &) = delete;

    /**
     * Pre-size every shard for ~expected/kNumShards entries: bucket
     * arrays sized for <= 0.5 load at the hint and entry columns
     * reserved, so a run of the expected size performs no rehash and
     * no column reallocation.  Callable only while quiescent.
     */
    void reserveStates(std::uint64_t expected);

    /**
     * Insert a state if new (probe hash computed internally).
     *
     * @return (packed id, inserted): id of the canonical entry for the
     *         state, and whether this call created it.
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint32_t parent,
           std::uint16_t rule_id, std::uint32_t depth)
    {
        return insert(state, state.hash(), parent, rule_id, depth);
    }

    /**
     * Insert with a precomputed probe hash.  Parallel workers hash
     * outside the shard lock and pass the value here so the lock only
     * covers the probe/append.  (The verification fingerprint, where
     * kept, is always computed internally from the state bytes — it
     * is the identity, not a routing hint, so it cannot be forged.)
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint64_t hash,
           std::uint32_t parent, std::uint16_t rule_id,
           std::uint32_t depth);

    /**
     * Batched insert: deduplicate/insert every item, taking each
     * destination shard's lock once per batch instead of once per
     * item.  Items are grouped by shard (counting sort on the hash's
     * top bits) and processed in batch order within a shard, so
     * duplicate items inside one batch resolve exactly as sequential
     * inserts would.  Results are returned through item.id /
     * item.inserted.
     */
    void insertBatch(BatchItem *items, std::size_t count);

    /**
     * Reference to the state bytes for a packed id; full mode only
     * (compact-mode cells are compressed — use stateInto), and only
     * for ids whose arena block is still mapped (all of them on
     * InRam; the frontier window on Mmap — sealed ids go through
     * stateInto).  See the class comment for thread-safety.
     */
    const SystemState &
    stateAt(std::uint32_t id) const
    {
        assert(mode_ == StoreMode::Full &&
               "stateAt needs verbatim states; use stateInto");
        return *shards_[shardOf(id)].arena.fullAt(id & kOffsetMask);
    }

    /**
     * Copy/decode the state bytes for a packed id into @p out.  Works
     * in both modes; the entry must still be retained (see
     * stateRetained — on recoverable backends every entry is, with
     * sealed blocks remapped on demand, in which case the call must
     * hold no expectation of lock-freedom: quiescent or shard-lock
     * use only).
     */
    void stateInto(std::uint32_t id, SystemState &out) const;

    /** True iff the state bytes of @p id are still readable: always
     * in full mode and on recoverable (Mmap) backends; in InRam
     * compact mode, until sealLevel releases the enclosing arena
     * block. */
    bool
    stateRetained(std::uint32_t id) const
    {
        if (mode_ == StoreMode::Full)
            return true;
        return shards_[shardOf(id)].arena.cellRetained(id &
                                                       kOffsetMask);
    }

    /** True iff stateInto works for *every* id ever returned — i.e.
     * counterexample traces are reconstructible: full mode, or a
     * recoverable backend whose sealed cells persist in the backing
     * file. */
    bool
    statesAlwaysReadable() const
    {
        return mode_ == StoreMode::Full ||
               shards_[0].arena.recoverable();
    }

    /** Breadcrumb accessors; quiescent use only (the columns may
     * reallocate during concurrent inserts). */
    std::uint32_t
    parentAt(std::uint32_t id) const
    {
        return shards_[shardOf(id)].cols.parentAt(id & kOffsetMask);
    }
    std::uint16_t
    ruleAt(std::uint32_t id) const
    {
        return shards_[shardOf(id)].cols.ruleAt(id & kOffsetMask);
    }

    /**
     * Current depth label of @p id.  Safe concurrently with inserts
     * and improvements (chunked atomic column, relaxed load): a racy
     * read may be stale, but depths only ever decrease, so a stale
     * value is an upper bound — exactly what the async explorer's
     * stale-task check needs.  Exact once quiescent.
     */
    std::uint32_t
    depthAt(std::uint32_t id) const
    {
        return shards_[shardOf(id)]
            .cols.depthCell(id & kOffsetMask)
            .load(std::memory_order_relaxed);
    }

    /** Largest depth label over all entries; quiescent use only. */
    std::uint32_t maxDepthQuiescent() const;

    /** Number of entries with depth <= @p depth; quiescent use only.
     * The async explorer uses this to reproduce the BFS
     * stop-at-level state count on violation-stopped runs. */
    std::uint64_t countDepthAtMost(std::uint32_t depth) const;

    /**
     * BFS level barrier hook; call only while quiescent.  Releases
     * the arena blocks of states older than the level that just
     * finished expanding (their bytes are no longer on the hot path)
     * and records the new level boundary.  InRam compact mode frees
     * them for good; Mmap backends unmap them — file keeps the bytes,
     * reads recover them — in both modes.  No-op for InRam full.
     *
     * Sealing is a property of the depth-synchronized schedule only:
     * the work-stealing explorer expands depths out of order and so
     * never calls this — under it every arena block stays mapped
     * (costing the memory the seal would have freed, but making
     * counterexample traces reconstructible even in InRam compact
     * mode).
     */
    void sealLevel();

    /** Total states across all shards. */
    std::size_t
    size() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** Storage mode selected at construction. */
    StoreMode mode() const { return mode_; }

    /** Memory backend selected at construction. */
    StoreBackend backend() const { return backend_; }

    /** Bytes currently mapped by file-backed shard memory (0 on
     * InRam).  Readable from any thread (relaxed counters). */
    std::uint64_t mappedBytes() const;

    /** Total size of the shards' backing files (0 on InRam). */
    std::uint64_t backingFileBytes() const;

    /**
     * Probe-hash collisions observed so far: inserts whose 64-bit
     * probe hash matched an existing entry holding a different state
     * (full mode: state bytes differed; compact mode: verification
     * fingerprint differed).  Each one is a state pair that
     * probe-hash-only compaction would have merged silently.
     * Quiescent use only.
     */
    std::uint64_t probeCollisions() const;

    /** Shard a packed id belongs to. */
    static constexpr std::uint32_t
    shardOf(std::uint32_t id)
    {
        return id >> kOffsetBits;
    }

  private:
    struct alignas(64) Shard {
        mutable std::mutex mutex;
        std::unique_ptr<ShardMem> mem;
        ShardColumns cols;
        StateArena arena;
        /** Entry ceiling; inserting past it throws StoreFullError. */
        std::uint32_t limit = kOffsetMask;
    };

    struct InsertOutcome {
        std::uint32_t id;
        bool inserted;
        bool improved;
    };

    InsertOutcome
    probeInsertLocked(std::uint32_t shard_idx, Shard &shard,
                      const SystemState &state, std::uint64_t hash,
                      std::uint64_t verify, std::uint32_t parent,
                      std::uint16_t rule_id, std::uint32_t depth);

    /** Whether entries carry a verification fingerprint (compact
     * mode, and full mode on recoverable backends — see the file
     * comment). */
    bool needsVerify() const { return needsVerify_; }

    Shard shards_[kNumShards];
    std::atomic<std::uint64_t> total_{0};
    StoreMode mode_;
    StoreBackend backend_;
    bool needsVerify_;
};

} // namespace cxl

#endif // CXL_CHECKER_STATE_STORE_HH
