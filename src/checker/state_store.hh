/**
 * @file
 * Visited-state store of the explicit-state checker.
 *
 * The store is sharded for concurrency: a state's 64-bit fingerprint
 * routes it (top bits) to one of kNumShards lock-striped shards, each
 * of which is the classic Murphi layout — an open-addressing hash
 * table mapping fingerprints to indices in a dense per-shard entry
 * array, every entry keeping the state itself plus parent/rule
 * breadcrumbs so counterexample traces can be reconstructed.
 *
 * State identifiers are (shard, offset) pairs packed into a u32:
 * the top kShardBits select the shard, the low kOffsetBits index the
 * shard's entry array.  Packed ids are stable for the lifetime of the
 * store and never collide with kNoParent.
 *
 * Thread-safety: insert() may be called concurrently from any number
 * of threads.  entry() and the id-returning contract of insert() are
 * safe to use concurrently with inserts *to observe ids*, but the
 * returned Entry reference is only safe to dereference while no other
 * thread is inserting into the same shard (the dense entry array may
 * reallocate).  The parallel explorer therefore never reads entries
 * during a parallel expansion phase; traces are rebuilt between
 * depth barriers when the store is quiescent.
 */

#ifndef CXL_CHECKER_STATE_STORE_HH
#define CXL_CHECKER_STATE_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "protocol/state.hh"

namespace cxl
{

/** Sharded dense store of deduplicated states with BFS breadcrumbs. */
class StateStore
{
  public:
    /** Sentinel parent index for root states. */
    static constexpr std::uint32_t kNoParent = 0xffffffffu;

    /** log2 of the shard count. */
    static constexpr std::uint32_t kShardBits = 4;
    /** Number of lock-striped shards. */
    static constexpr std::uint32_t kNumShards = 1u << kShardBits;
    /** Bits of a packed id addressing within a shard. */
    static constexpr std::uint32_t kOffsetBits = 32 - kShardBits;
    /** Mask extracting the offset from a packed id. */
    static constexpr std::uint32_t kOffsetMask =
        (1u << kOffsetBits) - 1;

    struct Entry {
        SystemState state;
        std::uint32_t parent = kNoParent;
        std::uint32_t depth = 0;  ///< BFS depth from the initial state
        std::uint16_t ruleId = 0; ///< rule that produced this state
    };

    /** @param initial_buckets total bucket hint, split across shards. */
    explicit StateStore(std::size_t initial_buckets = 1 << 16);

    /**
     * Insert a state if new (fingerprint computed internally).
     *
     * @return (packed id, inserted): id of the canonical entry for the
     *         state, and whether this call created it.
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint32_t parent,
           std::uint16_t rule_id, std::uint32_t depth)
    {
        return insert(state, state.hash(), parent, rule_id, depth);
    }

    /**
     * Insert with a precomputed fingerprint.  Parallel workers hash
     * outside the shard lock and pass the value here so the lock only
     * covers the probe/append.
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint64_t hash,
           std::uint32_t parent, std::uint16_t rule_id,
           std::uint32_t depth);

    /** Entry for a packed id (see class comment for thread-safety). */
    const Entry &
    entry(std::uint32_t id) const
    {
        return shards_[shardOf(id)].entries[id & kOffsetMask];
    }

    /** Total states across all shards. */
    std::size_t
    size() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** Shard a packed id belongs to. */
    static constexpr std::uint32_t
    shardOf(std::uint32_t id)
    {
        return id >> kOffsetBits;
    }

  private:
    struct alignas(64) Shard {
        mutable std::mutex mutex;
        std::vector<Entry> entries;
        /// Bucket content is entry offset + 1; 0 means empty.
        std::vector<std::uint32_t> buckets;
        std::uint64_t mask = 0;
    };

    static void growShard(Shard &shard);

    Shard shards_[kNumShards];
    std::atomic<std::uint64_t> total_{0};
};

} // namespace cxl

#endif // CXL_CHECKER_STATE_STORE_HH
