/**
 * @file
 * Visited-state store of the explicit-state checker.
 *
 * An open-addressing hash table maps state fingerprints to indices in
 * a dense entry array; each entry keeps the state itself plus
 * parent/rule breadcrumbs so that counterexample traces can be
 * reconstructed Murphi-style.
 */

#ifndef CXL_CHECKER_STATE_STORE_HH
#define CXL_CHECKER_STATE_STORE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "protocol/state.hh"

namespace cxl
{

/** Dense store of deduplicated states with BFS parent pointers. */
class StateStore
{
  public:
    /** Sentinel parent index for root states. */
    static constexpr std::uint32_t kNoParent = 0xffffffffu;

    struct Entry {
        SystemState state;
        std::uint32_t parent = kNoParent;
        std::uint16_t ruleId = 0; ///< rule that produced this state
        std::uint16_t depth = 0;  ///< BFS depth from the initial state
    };

    explicit StateStore(std::size_t initial_buckets = 1 << 16);

    /**
     * Insert a state if new.
     *
     * @return (index, inserted): index of the canonical entry for the
     *         state, and whether this call created it.
     */
    std::pair<std::uint32_t, bool>
    insert(const SystemState &state, std::uint32_t parent,
           std::uint16_t rule_id, std::uint16_t depth);

    const Entry &
    entry(std::uint32_t idx) const
    {
        return entries_[idx];
    }

    std::size_t size() const { return entries_.size(); }

  private:
    void grow();

    std::vector<Entry> entries_;
    /// Bucket content is entry index + 1; 0 means empty.
    std::vector<std::uint32_t> buckets_;
    std::uint64_t mask_ = 0;
};

} // namespace cxl

#endif // CXL_CHECKER_STATE_STORE_HH
