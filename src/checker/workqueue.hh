/**
 * @file
 * Per-worker work-stealing deque for the asynchronous explorer.
 *
 * A Chase-Lev deque in the C11 formulation of Lê, Pop, Cohen and
 * Nardelli ("Correct and Efficient Work-Stealing for Weak Memory
 * Models", PPoPP'13): the owning worker pushes and pops at the
 * bottom (LIFO, so it keeps working on the subtree it just
 * produced), thieves claim from the top (FIFO, so they take the
 * oldest — typically shallowest and largest — pending task).  Tasks
 * are plain 64-bit payloads; the explorer packs a state id and the
 * depth the task was enqueued at into one.
 *
 * Memory-ordering notes:
 *
 *  - The implementation avoids standalone atomic_thread_fence: the
 *    owner's bottom decrement in pop() and the top accesses race
 *    with thieves through seq_cst operations on `top_`/`bottom_`
 *    instead.  Equally correct (the original algorithm is specified
 *    under SC; the fence formulation is an optimisation), and —
 *    deliberately — fully visible to ThreadSanitizer, which does not
 *    model standalone fences and would report false races against
 *    the fence-based variant.  The deque is on the explorer's
 *    per-*batch* path, not its per-state path, so the cost of the
 *    stronger orders is noise.
 *
 *  - Ring slots are atomics accessed relaxed; the claim CAS on
 *    `top_` decides ownership of the value read.  Retired rings are
 *    kept alive until the deque is destroyed, so a thief holding a
 *    stale ring pointer only ever reads stale *values*, which its
 *    failing CAS then discards.
 *
 * Owner-only calls: push(), pop().  Any thread: steal().
 */

#ifndef CXL_CHECKER_WORKQUEUE_HH
#define CXL_CHECKER_WORKQUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cxl
{

/** Single-owner, multi-thief Chase-Lev deque of u64 tasks. */
class WorkDeque
{
  public:
    enum class Steal : std::uint8_t {
        Success, ///< @p out holds a claimed task
        Empty,   ///< nothing to take at the time of the attempt
        Abort,   ///< lost a race; retry (possibly elsewhere) is fine
    };

    /** @param initial_capacity ring size; rounded up to a power of 2. */
    explicit WorkDeque(std::size_t initial_capacity = 256);

    WorkDeque(const WorkDeque &) = delete;
    WorkDeque &operator=(const WorkDeque &) = delete;

    /** Owner only: enqueue a task at the bottom (grows as needed). */
    void push(std::uint64_t task);

    /**
     * Owner only: take the most recently pushed task.
     * @return false when the deque is empty.
     */
    bool pop(std::uint64_t &out);

    /** Any thread: try to claim the oldest task. */
    Steal steal(std::uint64_t &out);

    /**
     * Approximate size (racy snapshot); exact once the deque is
     * quiescent.  Termination detection must not rely on this — the
     * explorer keeps a global pending-task count instead.
     */
    std::size_t
    sizeApprox() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

  private:
    struct Ring {
        explicit Ring(std::size_t capacity);
        std::int64_t cap;  ///< power of two
        std::int64_t mask; ///< cap - 1
        std::unique_ptr<std::atomic<std::uint64_t>[]> slots;

        std::atomic<std::uint64_t> &
        at(std::int64_t i)
        {
            return slots[static_cast<std::size_t>(i & mask)];
        }
    };

    /** Owner only: double the ring, copying the live range [t, b). */
    Ring *grow(Ring *old, std::int64_t bottom, std::int64_t top);

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring *> ring_;
    /** Every ring ever allocated; index 0 onward, freed at once in
     * the destructor (thieves may hold stale pointers until then). */
    std::vector<std::unique_ptr<Ring>> rings_;
};

} // namespace cxl

#endif // CXL_CHECKER_WORKQUEUE_HH
