#include "checker/por.hh"

#include <algorithm>
#include <stdexcept>

namespace cxl
{

PorContext::PorContext(const RuleSet &rules, bool symmetry,
                       bool tid_canonical)
    : num_rules_(rules.rules().size()), ndev_(rules.numDevices())
{
    if (num_rules_ > kMaxPorRules) {
        throw std::runtime_error(
            "partial-order reduction supports at most " +
            std::to_string(kMaxPorRules) + " rules (set has " +
            std::to_string(num_rules_) + ")");
    }

    // Pairwise independence from the declared footprints.  The
    // relation is symmetric; rules with the default all-atoms
    // footprint (custom addRule hooks) end up dependent on
    // everything, which is exactly the conservative fallback.
    indep_.assign(num_rules_, RuleMask{});
    const std::vector<Rule> &all = rules.rules();
    for (std::size_t a = 0; a < num_rules_; ++a) {
        for (std::size_t b = a + 1; b < num_rules_; ++b) {
            const bool ind =
                tid_canonical
                    ? independentCanonical(all[a].footprint,
                                           all[b].footprint)
                    : independent(all[a].footprint, all[b].footprint);
            if (ind) {
                indep_[a].set(b);
                indep_[b].set(a);
            }
        }
    }

    table_index_.fill(-1);
    if (!symmetry)
        return;

    // One remap table per permutation of the active devices,
    // including the identity (callers usually skip it via
    // identity()).
    std::uint8_t perm[kMaxDevices] = {0, 1, 2, 3};
    do {
        std::vector<std::int16_t> map(num_rules_, -1);
        // deviceCanonical reports perm as new->old; permutedRuleId
        // wants the old->new relabelling of the rules' device args.
        std::uint8_t old_to_new[kMaxDevices] = {};
        for (int n = 0; n < ndev_; ++n)
            old_to_new[perm[n]] = static_cast<std::uint8_t>(n);
        for (std::size_t r = 0; r < num_rules_; ++r) {
            map[r] = static_cast<std::int16_t>(rules.permutedRuleId(
                static_cast<std::uint16_t>(r), old_to_new));
        }
        table_index_[permKey(perm, ndev_)] =
            static_cast<std::int16_t>(tables_.size());
        tables_.push_back(std::move(map));
    } while (std::next_permutation(perm, perm + ndev_));
}

RuleMask
PorContext::remap(const RuleMask &mask, const std::uint8_t *perm) const
{
    return remapByKey(mask, permKey(perm, ndev_));
}

RuleMask
PorContext::remapByKey(const RuleMask &mask, std::uint8_t key) const
{
    const std::int16_t idx = table_index_[key];
    if (idx < 0)
        return RuleMask{}; // unknown permutation: drop everything
    const std::vector<std::int16_t> &map = tables_[idx];

    RuleMask out;
    for (std::size_t w = 0; w < kRuleMaskWords; ++w) {
        std::uint64_t bits = mask.words[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            const std::size_t r = 64 * w + static_cast<std::size_t>(b);
            if (r < num_rules_ && map[r] >= 0)
                out.set(static_cast<std::size_t>(map[r]));
        }
    }
    return out;
}

} // namespace cxl
