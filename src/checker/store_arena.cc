#include "checker/store_arena.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "checker/state_store.hh"

namespace cxl
{
namespace
{

/**
 * Zero-RLE codec for compact-mode state cells.  Reachable states are
 * sparse — most channel slots are empty and InlineVec zeroes its
 * tail — so run-length-eliding the zero bytes shrinks a ~240-byte
 * record to a few tens of bytes.  Cell layout:
 *
 *   [payload_len:u16] ([zero_run:u8][lit_len:u8][lit bytes...])*
 *
 * Decoding starts from an all-zero record, so a cell reproduces the
 * active prefix bit-exactly.  If the greedy pair encoding would ever
 * exceed the all-literal fallback (pathologically alternating bytes),
 * the cell is emitted as plain <=255-byte literal chunks instead,
 * which is what bounds StateArena::kMaxEncodedState.
 */
std::uint16_t
encodeCell(const SystemState &state, std::byte *dst)
{
    const auto *src = reinterpret_cast<const unsigned char *>(&state);
    const std::size_t len = state.activeBytes();

    // Worst-case greedy output: 2 bytes of pair overhead per literal
    // island; islands are at least 1 byte, so 3x the input bounds it.
    unsigned char tmp[2 + 3 * sizeof(SystemState) + 8];
    std::size_t pos = 0;
    std::size_t i = 0;
    while (i < len) {
        std::size_t zeros = 0;
        while (i + zeros < len && src[i + zeros] == 0)
            ++zeros;
        if (i + zeros == len)
            break; // trailing zeros are implicit
        std::size_t lit = 0;
        while (i + zeros + lit < len && src[i + zeros + lit] != 0)
            ++lit;
        std::size_t z = zeros, l = lit, at = i + zeros;
        while (z > 255) {
            tmp[pos++] = 255;
            tmp[pos++] = 0;
            z -= 255;
        }
        while (l > 255) {
            tmp[pos++] = static_cast<unsigned char>(z);
            tmp[pos++] = 255;
            std::memcpy(tmp + pos, src + at, 255);
            pos += 255;
            at += 255;
            l -= 255;
            z = 0;
        }
        tmp[pos++] = static_cast<unsigned char>(z);
        tmp[pos++] = static_cast<unsigned char>(l);
        std::memcpy(tmp + pos, src + at, l);
        pos += l;
        i += zeros + lit;
    }

    // All-literal fallback size (the kMaxEncodedState bound).
    const std::size_t fallback = len + 2 * (len / 255 + 1);
    if (pos > fallback) {
        pos = 0;
        std::size_t at = 0, rest = len;
        while (rest > 0) {
            const std::size_t l = std::min<std::size_t>(rest, 255);
            tmp[pos++] = 0;
            tmp[pos++] = static_cast<unsigned char>(l);
            std::memcpy(tmp + pos, src + at, l);
            pos += l;
            at += l;
            rest -= l;
        }
    }

    const auto payload = static_cast<std::uint16_t>(pos);
    std::memcpy(dst, &payload, 2);
    std::memcpy(dst + 2, tmp, pos);
    return static_cast<std::uint16_t>(2 + pos);
}

/** Inverse of encodeCell; @p out is fully overwritten. */
void
decodeCell(const std::byte *cell, SystemState &out)
{
    std::memset(static_cast<void *>(&out), 0, sizeof(SystemState));
    auto *dst = reinterpret_cast<unsigned char *>(&out);
    std::uint16_t payload = 0;
    std::memcpy(&payload, cell, 2);
    const auto *src = reinterpret_cast<const unsigned char *>(cell) + 2;
    std::size_t pos = 0, at = 0;
    while (pos < payload) {
        at += src[pos];
        const std::size_t lit = src[pos + 1];
        std::memcpy(dst + at, src + pos + 2, lit);
        at += lit;
        pos += 2 + lit;
    }
}

} // namespace

void
StateArena::init(ShardMem *mem, StoreMode mode,
                 std::uint32_t max_entries)
{
    mem_ = mem;
    mode_ = mode;
    if (mode_ == StoreMode::Full) {
        blockBits_ = mem_->recoverable() ? kFullBlockBitsMmap
                                         : kFullBlockBitsRam;
        blockBytes_ = static_cast<std::size_t>(1u << blockBits_) *
                      sizeof(SystemState);
        // Fully reserve the block spine: it must never reallocate,
        // because readers index it lock-free (see the class comment).
        blocks_.reserve((max_entries >> blockBits_) + 1);
    } else {
        // Compact cells are offset-addressed with 32 bits per shard:
        // up to 4 GiB of compressed frontier per shard, far beyond
        // the retained working set of any feasible run.
        blockBits_ = kByteBlockBits;
        blockBytes_ = std::size_t{1} << kByteBlockBits;
        blocks_.reserve((std::uint64_t{1} << 32) >> kByteBlockBits);
        stateOffs_.reserve((max_entries >> kOffChunkBits) + 1);
    }
}

std::byte *
StateArena::recoverBlock(std::uint32_t block) const
{
    auto *p = static_cast<std::byte *>(mem_->blockRecover(block));
    assert(p && "sealed state block unrecoverable on this backend");
    blocks_[block] = p;
    return p;
}

const SystemState *
StateArena::fullAtCold(std::uint32_t off) const
{
    const std::uint32_t block = off >> blockBits_;
    const std::byte *base = blocks_[block];
    if (!base)
        base = recoverBlock(block);
    return slotAt(base, off);
}

void
StateArena::placeFull(std::uint32_t off, const SystemState &state)
{
    const std::uint32_t block = off >> blockBits_;
    if (block == blocks_.size()) {
        blocks_.push_back(static_cast<std::byte *>(
            mem_->blockAlloc(block, blockBytes_)));
    }
    new (blocks_[block] +
         static_cast<std::size_t>(off & ((1u << blockBits_) - 1)) *
             sizeof(SystemState)) SystemState(state);
}

void
StateArena::appendCell(std::uint32_t shard_idx, std::uint32_t off,
                       const SystemState &state)
{
    std::byte enc[kMaxEncodedState];
    const std::uint16_t enc_len = encodeCell(state, enc);
    // A cell never straddles byte blocks; skip a too-small tail.
    std::uint64_t at = byteCursor_;
    if ((at & (blockBytes_ - 1)) + enc_len > blockBytes_)
        at = (at | (blockBytes_ - 1)) + 1;
    if (at + enc_len > (std::uint64_t{1} << 32)) {
        throw StoreFullError(
            shard_idx,
            "StateStore shard " + std::to_string(shard_idx) +
                " compact arena offset space exhausted (4 GiB of "
                "encoded frontier); pre-size with --expect-states so "
                "sealing keeps up, or lower the run's budgets");
    }
    const auto block = static_cast<std::uint32_t>(at >> blockBits_);
    while (block >= blocks_.size()) {
        blocks_.push_back(static_cast<std::byte *>(mem_->blockAlloc(
            static_cast<std::uint32_t>(blocks_.size()), blockBytes_)));
    }
    std::memcpy(blocks_[block] + (at & (blockBytes_ - 1)), enc,
                enc_len);
    const std::uint32_t chunk = off >> kOffChunkBits;
    if (chunk == stateOffs_.size()) {
        stateOffs_.push_back(static_cast<std::uint32_t *>(
            mem_->chunkAlloc(kOffChunkSize * sizeof(std::uint32_t))));
    }
    stateOffs_[chunk][off & (kOffChunkSize - 1)] =
        static_cast<std::uint32_t>(at);
    byteCursor_ = at + enc_len;
}

void
StateArena::cellInto(std::uint32_t off, SystemState &out) const
{
    const std::uint32_t byte_off = stateOffAt(off);
    assert(cellRetained(off) && "state released by sealLevel");
    const std::uint32_t block = byte_off >> blockBits_;
    const std::byte *base = blocks_[block];
    if (!base)
        base = recoverBlock(block);
    decodeCell(base + (byte_off & (blockBytes_ - 1)), out);
}

void
StateArena::seal(std::uint32_t entry_count)
{
    if (mode_ == StoreMode::Full && !mem_->recoverable())
        return; // classic full store: nothing is ever released
    // Blocks wholly below the previous level boundary belong to
    // levels whose expansion has finished; the frontier no longer
    // reads them.  Release whole blocks only — a partial tail block
    // is shared with the still-needed frontier.  The loop rescans
    // from zero so blocks recovered since the last seal go cold
    // again.
    const std::uint64_t floor_block = levelBoundary_ >> blockBits_;
    for (std::uint64_t b = 0; b < floor_block; ++b) {
        if (blocks_[b]) {
            mem_->blockDrop(static_cast<std::uint32_t>(b));
            blocks_[b] = nullptr;
        }
    }
    if (mode_ == StoreMode::Compact) {
        if (!mem_->recoverable()) {
            byteFloor_ =
                std::max(byteFloor_, floor_block << blockBits_);
        }
        levelBoundary_ = byteCursor_;
    } else {
        levelBoundary_ = entry_count;
    }
}

} // namespace cxl
