/**
 * @file
 * Partial-order reduction support: rule bitmasks, the static
 * independence relation, and device-permutation remapping of sleep
 * sets.
 *
 * The explorer's reduction is a *sleep-set* scheme (Godefroid/Peled
 * family) driven by the static dependency footprints every rule
 * declares (fp::Footprint in protocol/rules.hh): two rules are
 * independent iff neither writes an atom the other reads or writes,
 * which guarantees they commute and cannot enable/disable each other.
 * At each expanded state the explorer skips firing the enabled rules
 * in the state's sleep mask; a successor reached by rule t inherits
 * `(sleep ∪ {rules fired before t}) ∩ indep(t)`.  Unlike ample-set
 * reduction this prunes *edges only*: every reachable state is still
 * visited at its minimal BFS depth (see the soundness argument in
 * docs/ARCHITECTURE.md), so state counts, diameters, verdicts and
 * violated-conjunct sets are bit-identical to an unreduced run — only
 * the transition count drops.
 *
 * When device-permutation symmetry reduction is also on, successor
 * states are canonicalised before insertion; the sleep mask must then
 * be relabelled through the same permutation (rule -> its image
 * instance, via RuleSet::permutedRuleId).  PorContext precomputes one
 * rule remap table per permutation of the active devices.
 */

#ifndef CXL_CHECKER_POR_HH
#define CXL_CHECKER_POR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "protocol/rules.hh"
#include "protocol/state.hh"

namespace cxl
{

/**
 * Rule-count ceiling of the POR engine.  The largest generated set
 * (4 devices, every mutation on) stays well below this; custom rule
 * sets beyond it simply cannot enable POR.
 */
constexpr std::size_t kMaxPorRules = 768;
constexpr std::size_t kRuleMaskWords = kMaxPorRules / 64;

/** Fixed-width bitset over rule ids (the sleep-set currency). */
struct RuleMask {
    std::array<std::uint64_t, kRuleMaskWords> words{};

    void
    set(std::size_t bit)
    {
        words[bit >> 6] |= 1ull << (bit & 63);
    }

    bool
    test(std::size_t bit) const
    {
        return (words[bit >> 6] >> (bit & 63)) & 1u;
    }

    bool
    none() const
    {
        for (std::uint64_t w : words) {
            if (w)
                return false;
        }
        return true;
    }

    RuleMask &
    operator&=(const RuleMask &o)
    {
        for (std::size_t i = 0; i < kRuleMaskWords; ++i)
            words[i] &= o.words[i];
        return *this;
    }

    RuleMask &
    operator|=(const RuleMask &o)
    {
        for (std::size_t i = 0; i < kRuleMaskWords; ++i)
            words[i] |= o.words[i];
        return *this;
    }

    friend RuleMask
    operator&(RuleMask a, const RuleMask &b)
    {
        a &= b;
        return a;
    }

    friend bool
    operator==(const RuleMask &a, const RuleMask &b)
    {
        return a.words == b.words;
    }

    /** Mask with the low @p n bits set. */
    static RuleMask
    firstN(std::size_t n)
    {
        RuleMask m;
        for (std::size_t i = 0; i < kRuleMaskWords; ++i) {
            if (n >= 64 * (i + 1))
                m.words[i] = ~0ull;
            else if (n > 64 * i)
                m.words[i] = (1ull << (n - 64 * i)) - 1;
        }
        return m;
    }
};

/**
 * Precomputed reduction context for one (RuleSet, symmetry) pair:
 * the pairwise independence masks and, under symmetry, the rule
 * remap table for every device permutation.
 */
class PorContext
{
  public:
    /**
     * @param symmetry build the permutation remap tables (the rule
     *        set's device count fixes the permutation group).
     * @param tid_canonical successors are tid-canonicalised, so
     *        alloc-only counter conflicts may be forgiven (see
     *        fp::Footprint::counterAllocOnly).
     */
    PorContext(const RuleSet &rules, bool symmetry,
               bool tid_canonical = true);

    /** Rules statically independent of @p rule. */
    const RuleMask &
    independentOf(std::uint16_t rule) const
    {
        return indep_[rule];
    }

    std::size_t numRules() const { return num_rules_; }

    /** True iff @p perm (new index -> old index) is the identity. */
    bool
    identity(const std::uint8_t *perm) const
    {
        for (int n = 0; n < ndev_; ++n) {
            if (perm[n] != n)
                return false;
        }
        return true;
    }

    /**
     * The image of @p mask under device permutation @p perm (new
     * index -> old index, as reported by deviceCanonical): every rule
     * in the mask is mapped to the instance acting on the relabelled
     * devices.  Rules without a mappable image are dropped — always
     * sound, it only forgoes reduction.
     */
    RuleMask remap(const RuleMask &mask, const std::uint8_t *perm) const;

    /** As remap(), keyed by a packed permKey() byte — the explorer
     * records one byte per edge and resolves masks at the barrier. */
    RuleMask remapByKey(const RuleMask &mask, std::uint8_t key) const;

    /** Packed lookup key of a new->old permutation (2 bits/slot). */
    static std::uint8_t
    permKey(const std::uint8_t *perm, int ndev)
    {
        unsigned key = 0;
        for (int n = 0; n < kMaxDevices; ++n)
            key |= static_cast<unsigned>(n < ndev ? perm[n] : n)
                   << (2 * n);
        return static_cast<std::uint8_t>(key);
    }

    /** permKey() of the identity permutation (any device count). */
    static constexpr std::uint8_t kIdentityPermKey =
        0 | (1u << 2) | (2u << 4) | (3u << 6);

  private:

    std::size_t num_rules_ = 0;
    int ndev_ = 0;
    std::vector<RuleMask> indep_;

    /** permKey -> index into tables_ (-1: not a valid permutation). */
    std::array<std::int16_t, 256> table_index_;
    /** Per-permutation rule remap (-1: no image instance). */
    std::vector<std::vector<std::int16_t>> tables_;
};

} // namespace cxl

#endif // CXL_CHECKER_POR_HH
