#include "checker/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>

#include "checker/por.hh"
#include "checker/progress.hh"
#include "support/thread_pool.hh"

namespace cxl
{
namespace
{

/**
 * Successors a worker accumulates before flushing them into the store
 * in one batched, shard-grouped pass.  Bounds both the batch buffer
 * and, together with the soft cap margin, the maxStates overshoot.
 */
constexpr std::size_t kFlushBatch = 512;

/**
 * A violation observed during one parallel level.  Candidates are
 * collected per worker and the winner is selected at the level
 * barrier by a thread-count-independent key, so the reported verdict
 * is deterministic.
 */
struct Candidate {
    Violation::Kind kind;
    const Conjunct *conjunct; ///< non-null only for Kind::Conjunct
    std::uint32_t idx;
    std::uint32_t depth;
    std::uint64_t stateHash;
    // Overflow only: the violating edge itself (rule, source state),
    // so the reported trace can end with the actual overflowing rule
    // even when the target state was already known.
    std::uint16_t edgeRule = 0;
    std::uint32_t edgeParent = StateStore::kNoParent;
    std::uint64_t parentHash = 0;
};

/**
 * Deterministic candidate order: shallowest first, then by state
 * fingerprint, then overflow before conjunct (matching the sequential
 * per-state check order), then by the violating edge (rule id, source
 * state hash) so racing overflow edges into one target resolve the
 * same way for every thread count.
 */
bool
candidateLess(const Candidate &a, const Candidate &b)
{
    auto rank = [](Violation::Kind k) {
        switch (k) {
          case Violation::Kind::Overflow: return 0;
          case Violation::Kind::Conjunct: return 1;
          case Violation::Kind::Deadlock: return 2;
        }
        return 3;
    };
    return std::make_tuple(a.depth, a.stateHash, rank(a.kind),
                           a.edgeRule, a.parentHash) <
           std::make_tuple(b.depth, b.stateHash, rank(b.kind),
                           b.edgeRule, b.parentHash);
}

/** An overflow edge waiting for its batch flush to learn its id. */
struct PendingOverflow {
    std::uint32_t batchIndex;
    std::uint64_t parentHash;
};

/**
 * POR: one generated edge, recorded compactly (12 bytes, not the
 * 96-byte mask) so a whole BFS level's edges fit in scratch at
 * 4-device scale.  The edge's sleep-mask contribution is re-derived
 * at the quiescent barrier from the source state's frontier mask,
 * the within-node fired order (edges of one node are contiguous in a
 * worker's log, in ascending rule order) and the recorded
 * canonicalisation permutation.
 */
struct MaskEdge {
    std::uint32_t id;      ///< target store id (filled post-flush)
    std::uint32_t nodePos; ///< source position in the frontier
    std::uint16_t rule;
    std::uint8_t permKey;  ///< PorContext::permKey of the canon perm
};

/** Per-successor metadata staged alongside the insert batch. */
struct EdgeMeta {
    std::uint32_t nodePos;
    std::uint8_t permKey;
};

/** Per-worker scratch, reused across levels so the hot path stays
 * allocation-free once capacities have warmed up. */
struct WorkerScratch {
    std::vector<RuleSet::Successor> succs;
    std::vector<StateStore::BatchItem> batch;
    std::vector<PendingOverflow> overflows;
    std::vector<std::uint32_t> next;
    std::vector<Candidate> candidates;
    std::vector<std::uint64_t> ruleFires;
    std::uint64_t transitions = 0;

    // Partial-order reduction bookkeeping (unused when por is off).
    std::vector<std::uint16_t> sleptRules; ///< per-node scratch
    std::vector<EdgeMeta> batchMeta;       ///< aligned with batch
    /** Every generated edge this level, resolved into sleep masks at
     * the barrier (same-level edges into one state merge by
     * intersection; deterministic for any thread count). */
    std::vector<MaskEdge> maskEdges;
    std::vector<std::uint64_t> ruleSlept;
    std::uint64_t slept = 0;
};

} // namespace

std::string
Violation::describe() const
{
    std::string txt;
    switch (kind) {
      case Kind::Conjunct:
        txt = "conjunct '" + conjunctName + "' (family " +
              conjunctFamily + ") violated";
        break;
      case Kind::Overflow:
        txt = "channel overflow";
        if (!overflowRule.empty())
            txt += " (rule " + overflowRule + ")";
        break;
      case Kind::Deadlock:
        txt = "deadlock before program completion";
        break;
    }
    txt += " at depth " + std::to_string(depth);
    return txt;
}

Explorer::Explorer(const RuleSet &rules, const Scenario &scenario,
                   const InvariantSet &invariants)
    : rules_(rules), scenario_(scenario), invariants_(invariants)
{
}

std::vector<TraceStep>
Explorer::rebuildTrace(const StateStore &store, std::uint32_t idx) const
{
    std::vector<TraceStep> trace;
    std::uint32_t cur = idx;
    while (cur != StateStore::kNoParent) {
        TraceStep step;
        // stateInto works in both store modes; compact-mode callers
        // are responsible for only rebuilding retained entries (BFS
        // calls this under compaction only when the backend retains
        // everything — see StateStore::statesAlwaysReadable — and
        // the work-stealing schedule never seals).
        store.stateInto(cur, step.state);
        const std::uint32_t parent = store.parentAt(cur);
        if (parent != StateStore::kNoParent)
            step.ruleName = rules_.rules()[store.ruleAt(cur)].name;
        trace.push_back(std::move(step));
        cur = parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
}

ExploreResult
Explorer::run(const ExploreOptions &options)
{
    return options.schedule == Schedule::WorkSteal
               ? runWorkSteal(options)
               : runBfs(options);
}

ExploreResult
Explorer::runBfs(const ExploreOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    auto finish = [&start](ExploreResult &r) -> ExploreResult & {
        auto end = std::chrono::steady_clock::now();
        r.seconds = std::chrono::duration<double>(end - start).count();
        return r;
    };

    std::size_t threads = options.numThreads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // A per-worker scratch (and an OS thread) is allocated for each
    // worker, so clamp runaway requests to something a machine could
    // plausibly have.
    threads = std::min<std::size_t>(threads, 1024);

    ExploreResult result;
    result.ruleFireCounts.assign(rules_.rules().size(), 0);
    result.ruleSleptCounts.assign(rules_.rules().size(), 0);

    // Sleep-set reduction context: the pairwise independence relation
    // from the rules' static footprints and, under symmetry, the
    // per-permutation rule remap tables.  Throws when the rule set
    // exceeds the POR engine's mask width.
    std::optional<PorContext> por;
    if (options.por)
        por.emplace(rules_, options.symmetryReduction,
                    options.canonicaliseTids);

    StateStore store(StoreConfig{
        1 << 16,
        options.compaction ? StoreMode::Compact : StoreMode::Full,
        options.storeBackend, options.storeDir,
        options.storeCapacity});
    if (options.expectedStates != 0)
        store.reserveStates(options.expectedStates);
    Context ctx{&scenario_};

    // finish() is declared before the store exists; every return of
    // this function goes through here so the out-of-core byte
    // counters ride along.
    auto finishRun = [&](ExploreResult &r) -> ExploreResult & {
        r.storeMappedBytes = store.mappedBytes();
        r.storeFileBytes = store.backingFileBytes();
        return finish(r);
    };

    // One stop word for the whole run: maxStates, the wall-clock and
    // RSS budgets, external cancellation and shard-full all trip it,
    // and workers drain within one batch of a trip.
    RunGovernor governor(
        {options.maxSeconds, options.maxRssBytes, options.cancel});

    // Progress samples ride the same flush cadence as the budget
    // polls; with no observer installed the ticker is counter folds
    // only.
    ProgressTicker progress(options.progress,
                            options.progressIntervalSeconds);

    auto symmetry_canon = [&options](SystemState &s) {
        if (!options.symmetryReduction)
            return;
        // Map the state to the bytewise-least member of its
        // device-permutation orbit (all ndev! relabelings, device ids
        // in store values and tids remapped along).  Successors (and
        // the initial state) were already tid-canonicalised whenever
        // the option is on, so the identity image skips the rescan.
        s = s.deviceCanonical(options.canonicaliseTids,
                              options.canonicaliseTids);
    };

    SystemState init = scenario_.initial;
    if (options.canonicaliseTids)
        init.canonicaliseTids();
    symmetry_canon(init);

    auto [init_idx, inserted] =
        store.insert(init, StateStore::kNoParent, 0, 0);
    (void)inserted;

    auto record = [&](const Candidate &c) {
        Violation v;
        v.kind = c.kind;
        if (c.conjunct) {
            v.conjunctName = c.conjunct->name;
            v.conjunctFamily = c.conjunct->family;
        }
        v.stateIndex = c.idx;
        v.depth = c.depth;
        if (c.kind == Violation::Kind::Overflow)
            v.overflowRule = rules_.rules()[c.edgeRule].name;
        if (!store.statesAlwaysReadable()) {
            // Breadcrumb states are not retained (in-RAM compact
            // mode; an mmap-backed compact store keeps every sealed
            // cell in its backing file and rebuilds the full path
            // below).  The bad state itself is still in the arena
            // when it was first discovered this level; show it alone.
            v.traceNote =
                "trace unavailable: hash-compaction mode stores "
                "fingerprints, not states; re-run without compaction "
                "(or with --store=mmap-compact) to rebuild the full "
                "path";
            if (store.depthAt(c.idx) == c.depth &&
                store.stateRetained(c.idx)) {
                TraceStep step;
                step.ruleName = v.overflowRule;
                store.stateInto(c.idx, step.state);
                v.trace.push_back(std::move(step));
            }
        } else if (c.kind == Violation::Kind::Overflow) {
            // Overflow is an edge property: rebuild the path to the
            // edge's *source* and append the edge itself, so the
            // printed trace ends with the overflowing rule even when
            // the target state was first reached some other way.
            v.trace = rebuildTrace(store, c.edgeParent);
            TraceStep step;
            step.ruleName = v.overflowRule;
            store.stateInto(c.idx, step.state);
            v.trace.push_back(std::move(step));
        } else {
            v.trace = rebuildTrace(store, c.idx);
        }
        result.violation = std::move(v);
    };

    // Check the initial state itself.
    if (options.checkInvariants) {
        if (const Conjunct *bad = invariants_.firstFailure(init, ctx)) {
            ++result.violationCount;
            record({Violation::Kind::Conjunct, bad, init_idx, 0,
                    init.hash()});
            if (options.stopAtFirstViolation) {
                result.numStates = store.size();
                result.probeCollisions = store.probeCollisions();
                return finishRun(result);
            }
        }
    }

    // The frontier holds packed store ids only; workers read the
    // state bytes straight out of the store's pointer-stable arena,
    // so states are never copied into per-level queues.  Under POR a
    // parallel vector carries each frontier state's sleep mask (the
    // initial state sleeps nothing).
    std::vector<std::uint32_t> frontier, next_frontier;
    std::vector<RuleMask> frontier_masks, next_masks;
    frontier.push_back(init_idx);
    if (options.por)
        frontier_masks.emplace_back();
    const RuleMask all_rules_mask =
        RuleMask::firstN(rules_.rules().size());
    store.sealLevel(); // establish the level-0 boundary

    std::vector<WorkerScratch> scratch(threads);
    for (WorkerScratch &s : scratch) {
        s.ruleFires.assign(rules_.rules().size(), 0);
        if (options.por)
            s.ruleSlept.assign(rules_.rules().size(), 0);
    }

    // Constructed lazily at the first level that actually goes
    // parallel: small explorations (e.g. the deadlock grid's hundreds
    // of tiny program-pair runs) never pay for spawning workers.
    std::optional<ThreadPool> pool;

    std::uint32_t depth = 0;
    bool governed_stop = false;
    bool violation_stopped = false;

    // Batches this close to maxStates flush per successor, which
    // restores the old check-after-every-insert behaviour and bounds
    // the cap overshoot at one state per worker.
    const std::uint64_t soft_cap =
        options.maxStates > threads * kFlushBatch
            ? options.maxStates - threads * kFlushBatch
            : 0;

    // First exception thrown by any worker (e.g. a full shard); it
    // is rethrown at the level barrier so errors surface as a
    // catchable exception from run() in parallel mode too.
    std::mutex error_mutex;
    std::exception_ptr worker_error;

    while (!frontier.empty()) {
        result.maxDepth = std::max(result.maxDepth, depth);
        if (depth >= options.maxDepth) {
            // Depth-capped states count toward the diameter but are
            // not expanded; the walk still counts as completed.
            frontier.clear();
            break;
        }

        // Budgets can expire between levels too (tiny levels flush
        // rarely), and a pre-cancelled token must stop before any
        // expansion.
        governor.poll();
        progress.tick(store.size(), 0, depth);
        if (governor.stopped()) {
            governed_stop = true;
            break;
        }

        std::atomic<std::size_t> cursor{0};

        // Claim granularity: fine enough that a level spreads over
        // all workers, coarse enough that the claim counter is not a
        // contention point (per-state work is microseconds).
        const std::size_t grain = std::max<std::size_t>(
            1, std::min<std::size_t>(
                   64, frontier.size() / (8 * threads)));

        // Flush a worker's pending successor batch: one store pass
        // grouped by shard (a single lock acquisition per shard per
        // batch), then the post-insert work — overflow candidates,
        // invariant checks on fresh states, frontier growth — all
        // outside any lock.
        auto flushBatch = [&](WorkerScratch &ws, Context &wctx) {
            if (ws.batch.empty())
                return;
            const std::size_t flushed = ws.batch.size();
            store.insertBatch(ws.batch.data(), ws.batch.size());
            for (const PendingOverflow &po : ws.overflows) {
                const StateStore::BatchItem &item =
                    ws.batch[po.batchIndex];
                ws.candidates.push_back(
                    {Violation::Kind::Overflow, nullptr, item.id,
                     item.depth, item.hash, item.rule, item.parent,
                     po.parentHash});
            }
            ws.overflows.clear();
            for (std::size_t bi = 0; bi < ws.batch.size(); ++bi) {
                const StateStore::BatchItem &item = ws.batch[bi];
                // Every edge is logged, including edges landing on
                // already-known states: if the target turns out to
                // sit in the level being built, the barrier
                // intersects all its incoming masks (breadcrumb
                // columns cannot be read here — peers are still
                // inserting).
                if (options.por) {
                    ws.maskEdges.push_back(
                        {item.id, ws.batchMeta[bi].nodePos, item.rule,
                         ws.batchMeta[bi].permKey});
                }
                if (!item.inserted)
                    continue;
                if (options.checkInvariants) {
                    if (const Conjunct *bad = invariants_.firstFailure(
                            item.state, wctx)) {
                        ws.candidates.push_back(
                            {Violation::Kind::Conjunct, bad, item.id,
                             item.depth, item.hash});
                    }
                }
                ws.next.push_back(item.id);
            }
            ws.batch.clear();
            ws.batchMeta.clear();
            // Budget check rides the flush: once per <= kFlushBatch
            // successors per worker.
            governor.poll();
            progress.tick(store.size(), flushed, depth + 1);
        };

        auto workLevel = [&](WorkerScratch &ws) {
            Context wctx{&scenario_};
            // Compact-mode cells are decompressed into this per-call
            // buffer; full mode reads the arena slot in place.
            SystemState decode_buf;
            for (;;) {
                if (governor.stopped())
                    return;
                std::size_t begin =
                    cursor.fetch_add(grain, std::memory_order_relaxed);
                if (begin >= frontier.size())
                    return;
                std::size_t end =
                    std::min(begin + grain, frontier.size());
                for (std::size_t i = begin; i < end; ++i) {
                    const std::uint32_t node_idx = frontier[i];
                    const SystemState *node_ptr;
                    if (options.compaction) {
                        store.stateInto(node_idx, decode_buf);
                        node_ptr = &decode_buf;
                    } else {
                        node_ptr = &store.stateAt(node_idx);
                    }
                    const SystemState &node_state = *node_ptr;
                    if (options.por) {
                        rules_.successorsPor(
                            node_state, scenario_,
                            options.canonicaliseTids,
                            frontier_masks[i].words.data(), ws.succs,
                            ws.sleptRules);
                        ws.slept += ws.sleptRules.size();
                        for (std::uint16_t r : ws.sleptRules)
                            ++ws.ruleSlept[r];
                    } else {
                        rules_.successorsInto(node_state, scenario_,
                                              options.canonicaliseTids,
                                              ws.succs);
                    }

                    // Deadlock = no *enabled* rule; slept rules are
                    // enabled, merely not fired from here.
                    if (ws.succs.empty() &&
                        (!options.por || ws.sleptRules.empty()) &&
                        options.checkDeadlock && !scenario_.freeRun &&
                        !scenario_.finished(node_state)) {
                        ws.candidates.push_back(
                            {Violation::Kind::Deadlock, nullptr,
                             node_idx, depth, node_state.hash()});
                    }

                    // The source state's hash is only needed to order
                    // racing overflow edges; computed at most once
                    // per node, and only for mutated models.
                    std::uint64_t node_hash = 0;
                    bool node_hash_valid = false;

                    for (auto &succ : ws.succs) {
                        ++ws.transitions;
                        ++ws.ruleFires[succ.rule->id];
                        // Under POR only the edge descriptor is
                        // recorded here; its sleep-mask contribution
                        // — (node sleep ∪ {rules fired before it}) ∩
                        // indep(rule), relabelled through the
                        // canonicalising permutation — is re-derived
                        // at the barrier, where the store is
                        // quiescent and the masks need not be
                        // materialised per edge.
                        std::uint8_t perm_key =
                            PorContext::kIdentityPermKey;
                        if (options.symmetryReduction) {
                            std::uint8_t perm[kMaxDevices];
                            succ.state = succ.state.deviceCanonical(
                                options.canonicaliseTids,
                                options.canonicaliseTids,
                                options.por ? perm : nullptr);
                            if (options.por) {
                                perm_key = PorContext::permKey(
                                    perm, rules_.numDevices());
                            }
                        }
                        if (options.por) {
                            ws.batchMeta.push_back(
                                {static_cast<std::uint32_t>(i),
                                 perm_key});
                        }

                        StateStore::BatchItem item;
                        item.hash = succ.state.hash();
                        item.state = std::move(succ.state);
                        item.parent = node_idx;
                        item.depth = depth + 1;
                        item.rule = succ.rule->id;
                        ws.batch.push_back(std::move(item));

                        if (succ.overflow) {
                            if (!node_hash_valid) {
                                node_hash = node_state.hash();
                                node_hash_valid = true;
                            }
                            ws.overflows.push_back(
                                {static_cast<std::uint32_t>(
                                     ws.batch.size() - 1),
                                 node_hash});
                        }

                        if (store.size() + ws.batch.size() >=
                                soft_cap ||
                            ws.batch.size() >= kFlushBatch) {
                            flushBatch(ws, wctx);
                            if (store.size() >= options.maxStates)
                                governor.trip(StopReason::StateCap);
                            if (governor.stopped())
                                return;
                        }
                    }
                }
                flushBatch(ws, wctx);
            }
        };

        auto work = [&](WorkerScratch &ws) {
            try {
                workLevel(ws);
            } catch (const StoreFullError &) {
                // A full shard is a governed stop, not an error: the
                // store still holds a valid explored prefix.  The
                // interrupted batch is dropped whole (insertBatch may
                // have stopped mid-way, leaving item ids half
                // filled), so no post-insert work runs on it.
                ws.batch.clear();
                ws.batchMeta.clear();
                ws.overflows.clear();
                governor.trip(StopReason::ShardFull);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!worker_error)
                    worker_error = std::current_exception();
                // Make peers drain their claims promptly; the rethrow
                // below surfaces the real error before the stop
                // reason could be reported.
                governor.trip(StopReason::InternalError);
            }
        };

        // Small levels are expanded inline: the result is identical
        // by construction and the dispatch overhead is skipped.
        const bool parallel =
            threads > 1 && frontier.size() >= 2 * threads;
        if (parallel) {
            if (!pool)
                pool.emplace(threads);
            for (std::size_t t = 0; t < threads; ++t)
                pool->submit([&, t] { work(scratch[t]); });
            pool->wait();
        } else {
            work(scratch[0]);
        }
        if (worker_error)
            std::rethrow_exception(worker_error);

        // Depth barrier: merge per-worker scratch into the result.
        next_frontier.clear();
        std::optional<Candidate> best;
        for (WorkerScratch &ws : scratch) {
            result.numTransitions += ws.transitions;
            ws.transitions = 0;
            result.sleptTransitions += ws.slept;
            ws.slept = 0;
            for (std::size_t r = 0; r < ws.ruleFires.size(); ++r) {
                result.ruleFireCounts[r] += ws.ruleFires[r];
                ws.ruleFires[r] = 0;
            }
            for (std::size_t r = 0; r < ws.ruleSlept.size(); ++r) {
                result.ruleSleptCounts[r] += ws.ruleSlept[r];
                ws.ruleSlept[r] = 0;
            }
            next_frontier.insert(next_frontier.end(), ws.next.begin(),
                                 ws.next.end());
            ws.next.clear();
            for (const Candidate &c : ws.candidates) {
                ++result.violationCount;
                if (!best || candidateLess(c, *best))
                    best = c;
            }
            ws.candidates.clear();
        }

        if (best && !result.violation) {
            record(*best); // store is quiescent at the barrier
            if (options.stopAtFirstViolation)
                violation_stopped = true;
        }
        if (governor.stopped())
            governed_stop = true;
        if (violation_stopped || governed_stop)
            break;

        if (options.por) {
            // Resolve the next level's sleep masks from the edge
            // logs: walk each worker's log (edges of one node are
            // contiguous, in fired order), rebuild the accumulator
            // (node sleep ∪ fired-so-far), and intersect each
            // same-level edge's contribution into its target — a
            // state inserted this level sleeps the intersection over
            // every same-level edge into it (intersection is
            // order-free, so the result is thread-count-independent).
            // Edges into older states carry no information forward.
            std::sort(next_frontier.begin(), next_frontier.end());
            next_masks.assign(next_frontier.size(), all_rules_mask);
            for (WorkerScratch &ws : scratch) {
                std::size_t j = 0;
                while (j < ws.maskEdges.size()) {
                    const std::uint32_t node_pos =
                        ws.maskEdges[j].nodePos;
                    RuleMask acc = frontier_masks[node_pos];
                    for (; j < ws.maskEdges.size() &&
                           ws.maskEdges[j].nodePos == node_pos;
                         ++j) {
                        const MaskEdge &e = ws.maskEdges[j];
                        if (store.depthAt(e.id) == depth + 1) {
                            RuleMask m =
                                acc & por->independentOf(e.rule);
                            if (e.permKey !=
                                    PorContext::kIdentityPermKey &&
                                !m.none()) {
                                m = por->remapByKey(m, e.permKey);
                            }
                            const auto it = std::lower_bound(
                                next_frontier.begin(),
                                next_frontier.end(), e.id);
                            next_masks[static_cast<std::size_t>(
                                it - next_frontier.begin())] &= m;
                        }
                        acc.set(e.rule);
                    }
                }
                ws.maskEdges.clear();
            }
        }

        // Quiescent barrier hook: releases (in-RAM compact) or
        // unmaps (mmap backends) the state bytes of the level whose
        // expansion just finished.
        store.sealLevel();
        frontier.swap(next_frontier);
        frontier_masks.swap(next_masks);
        ++depth;
    }

    result.numStates = store.size();
    result.probeCollisions = store.probeCollisions();
    result.completed =
        frontier.empty() && !governed_stop && !violation_stopped;
    result.stopReason = governed_stop ? governor.reason()
                                      : StopReason::None;
    // Deepest fully-expanded level: every level is drained before
    // the barrier, so a violation stop still finished level `depth`;
    // a governed stop interrupted it (level depth-1 was the last one
    // finished); a completed run expanded everything.
    if (governed_stop)
        result.deepestCompleteLevel = depth > 0 ? depth - 1 : 0;
    else if (violation_stopped)
        result.deepestCompleteLevel = depth;
    else
        result.deepestCompleteLevel = result.maxDepth;
    return finishRun(result);
}

} // namespace cxl
