#include "checker/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>

#include "support/thread_pool.hh"

namespace cxl
{
namespace
{

/** One frontier slot: packed store id plus a copy of the state.
 *
 * Carrying the state keeps workers from dereferencing store entries
 * while other workers append to the same shard (the dense entry
 * arrays may reallocate mid-level). */
struct FrontierNode {
    std::uint32_t idx;
    SystemState state;
};

/**
 * A violation observed during one parallel level.  Candidates are
 * collected per worker and the winner is selected at the level
 * barrier by a thread-count-independent key, so the reported verdict
 * is deterministic.
 */
struct Candidate {
    Violation::Kind kind;
    const Conjunct *conjunct; ///< non-null only for Kind::Conjunct
    std::uint32_t idx;
    std::uint32_t depth;
    std::uint64_t stateHash;
};

/**
 * Deterministic candidate order: shallowest first, then by state
 * fingerprint, then overflow before conjunct (matching the sequential
 * per-state check order).  Thread-count independent.
 */
bool
candidateLess(const Candidate &a, const Candidate &b)
{
    auto rank = [](Violation::Kind k) {
        switch (k) {
          case Violation::Kind::Overflow: return 0;
          case Violation::Kind::Conjunct: return 1;
          case Violation::Kind::Deadlock: return 2;
        }
        return 3;
    };
    return std::make_tuple(a.depth, a.stateHash, rank(a.kind)) <
           std::make_tuple(b.depth, b.stateHash, rank(b.kind));
}

/** Per-worker scratch, reused across levels so the hot path stays
 * allocation-free once capacities have warmed up. */
struct WorkerScratch {
    std::vector<RuleSet::Successor> succs;
    std::vector<FrontierNode> next;
    std::vector<Candidate> candidates;
    std::vector<std::uint64_t> ruleFires;
    std::uint64_t transitions = 0;
};

} // namespace

std::string
Violation::describe() const
{
    std::string txt;
    switch (kind) {
      case Kind::Conjunct:
        txt = "conjunct '" + conjunctName + "' (family " +
              conjunctFamily + ") violated";
        break;
      case Kind::Overflow:
        txt = "channel overflow";
        break;
      case Kind::Deadlock:
        txt = "deadlock before program completion";
        break;
    }
    txt += " at depth " + std::to_string(depth);
    return txt;
}

Explorer::Explorer(const RuleSet &rules, const Scenario &scenario,
                   const InvariantSet &invariants)
    : rules_(rules), scenario_(scenario), invariants_(invariants)
{
}

std::vector<TraceStep>
Explorer::rebuildTrace(const StateStore &store, std::uint32_t idx) const
{
    std::vector<TraceStep> trace;
    std::uint32_t cur = idx;
    while (cur != StateStore::kNoParent) {
        const StateStore::Entry &e = store.entry(cur);
        TraceStep step;
        step.state = e.state;
        if (e.parent != StateStore::kNoParent)
            step.ruleName = rules_.rules()[e.ruleId].name;
        trace.push_back(std::move(step));
        cur = e.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
}

ExploreResult
Explorer::run(const ExploreOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    auto finish = [&start](ExploreResult &r) -> ExploreResult & {
        auto end = std::chrono::steady_clock::now();
        r.seconds = std::chrono::duration<double>(end - start).count();
        return r;
    };

    std::size_t threads = options.numThreads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // A per-worker scratch (and an OS thread) is allocated for each
    // worker, so clamp runaway requests to something a machine could
    // plausibly have.
    threads = std::min<std::size_t>(threads, 1024);

    ExploreResult result;
    result.ruleFireCounts.assign(rules_.rules().size(), 0);

    StateStore store;
    Context ctx{&scenario_};

    auto symmetry_canon = [&options](SystemState &s) {
        if (!options.symmetryReduction)
            return;
        // Map the state to the bytewise-least member of its
        // device-permutation orbit (all ndev! relabelings, device ids
        // in store values and tids remapped along).  Successors (and
        // the initial state) were already tid-canonicalised whenever
        // the option is on, so the identity image skips the rescan.
        s = s.deviceCanonical(options.canonicaliseTids,
                              options.canonicaliseTids);
    };

    SystemState init = scenario_.initial;
    if (options.canonicaliseTids)
        init.canonicaliseTids();
    symmetry_canon(init);

    auto [init_idx, inserted] =
        store.insert(init, StateStore::kNoParent, 0, 0);
    (void)inserted;

    auto record = [&](const Candidate &c) {
        Violation v;
        v.kind = c.kind;
        if (c.conjunct) {
            v.conjunctName = c.conjunct->name;
            v.conjunctFamily = c.conjunct->family;
        }
        v.stateIndex = c.idx;
        v.depth = c.depth;
        v.trace = rebuildTrace(store, c.idx);
        result.violation = std::move(v);
    };

    // Check the initial state itself.
    if (options.checkInvariants) {
        if (const Conjunct *bad = invariants_.firstFailure(init, ctx)) {
            ++result.violationCount;
            record({Violation::Kind::Conjunct, bad, init_idx, 0,
                    init.hash()});
            if (options.stopAtFirstViolation) {
                result.numStates = store.size();
                return finish(result);
            }
        }
    }

    std::vector<FrontierNode> frontier, next_frontier;
    frontier.push_back({init_idx, init});

    std::vector<WorkerScratch> scratch(threads);
    for (WorkerScratch &s : scratch)
        s.ruleFires.assign(rules_.rules().size(), 0);

    // Constructed lazily at the first level that actually goes
    // parallel: small explorations (e.g. the deadlock grid's hundreds
    // of tiny program-pair runs) never pay for spawning workers.
    std::optional<ThreadPool> pool;

    std::uint32_t depth = 0;
    bool cap_stopped = false;
    bool violation_stopped = false;

    // First exception thrown by any worker (e.g. a full shard); it
    // is rethrown at the level barrier so errors surface as a
    // catchable exception from run() in parallel mode too.
    std::mutex error_mutex;
    std::exception_ptr worker_error;

    while (!frontier.empty()) {
        result.maxDepth = std::max(result.maxDepth, depth);
        if (depth >= options.maxDepth) {
            // Depth-capped states count toward the diameter but are
            // not expanded; the walk still counts as completed.
            frontier.clear();
            break;
        }

        std::atomic<std::size_t> cursor{0};
        std::atomic<bool> cap_hit{false};

        // Claim granularity: fine enough that a level spreads over
        // all workers, coarse enough that the claim counter is not a
        // contention point (per-state work is microseconds).
        const std::size_t grain = std::max<std::size_t>(
            1, std::min<std::size_t>(
                   64, frontier.size() / (8 * threads)));

        auto workLevel = [&](WorkerScratch &ws) {
            Context wctx{&scenario_};
            for (;;) {
                if (cap_hit.load(std::memory_order_relaxed))
                    return;
                std::size_t begin =
                    cursor.fetch_add(grain, std::memory_order_relaxed);
                if (begin >= frontier.size())
                    return;
                std::size_t end =
                    std::min(begin + grain, frontier.size());
                for (std::size_t i = begin; i < end; ++i) {
                    const FrontierNode &node = frontier[i];
                    rules_.successorsInto(node.state, scenario_,
                                          options.canonicaliseTids,
                                          ws.succs);

                    if (ws.succs.empty() && options.checkDeadlock &&
                        !scenario_.freeRun &&
                        !scenario_.finished(node.state)) {
                        ws.candidates.push_back(
                            {Violation::Kind::Deadlock, nullptr,
                             node.idx, depth, node.state.hash()});
                    }

                    for (auto &succ : ws.succs) {
                        ++ws.transitions;
                        ++ws.ruleFires[succ.rule->id];
                        symmetry_canon(succ.state);

                        const std::uint64_t h = succ.state.hash();
                        auto [succ_idx, is_new] =
                            store.insert(succ.state, h, node.idx,
                                         succ.rule->id, depth + 1);

                        // Overflow is a property of the *edge*, not
                        // of the target state, and which edge wins
                        // the insert race is thread-dependent —
                        // report it independently of is_new so the
                        // verdict stays deterministic.
                        if (succ.overflow) {
                            ws.candidates.push_back(
                                {Violation::Kind::Overflow, nullptr,
                                 succ_idx, depth + 1, h});
                        }
                        if (!is_new)
                            continue;
                        if (options.checkInvariants) {
                            if (const Conjunct *bad =
                                    invariants_.firstFailure(succ.state,
                                                             wctx)) {
                                ws.candidates.push_back(
                                    {Violation::Kind::Conjunct, bad,
                                     succ_idx, depth + 1, h});
                            }
                        }

                        if (store.size() >= options.maxStates) {
                            cap_hit.store(true,
                                          std::memory_order_relaxed);
                            return;
                        }
                        ws.next.push_back({succ_idx, succ.state});
                    }
                }
            }
        };

        auto work = [&](WorkerScratch &ws) {
            try {
                workLevel(ws);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!worker_error)
                    worker_error = std::current_exception();
                // Make peers drain their claims promptly.
                cap_hit.store(true, std::memory_order_relaxed);
            }
        };

        // Small levels are expanded inline: the result is identical
        // by construction and the dispatch overhead is skipped.
        const bool parallel =
            threads > 1 && frontier.size() >= 2 * threads;
        if (parallel) {
            if (!pool)
                pool.emplace(threads);
            for (std::size_t t = 0; t < threads; ++t)
                pool->submit([&, t] { work(scratch[t]); });
            pool->wait();
        } else {
            work(scratch[0]);
        }
        if (worker_error)
            std::rethrow_exception(worker_error);

        // Depth barrier: merge per-worker scratch into the result.
        next_frontier.clear();
        std::optional<Candidate> best;
        for (WorkerScratch &ws : scratch) {
            result.numTransitions += ws.transitions;
            ws.transitions = 0;
            for (std::size_t r = 0; r < ws.ruleFires.size(); ++r) {
                result.ruleFireCounts[r] += ws.ruleFires[r];
                ws.ruleFires[r] = 0;
            }
            next_frontier.insert(next_frontier.end(), ws.next.begin(),
                                 ws.next.end());
            ws.next.clear();
            for (const Candidate &c : ws.candidates) {
                ++result.violationCount;
                if (!best || candidateLess(c, *best))
                    best = c;
            }
            ws.candidates.clear();
        }

        if (best && !result.violation) {
            record(*best); // store is quiescent at the barrier
            if (options.stopAtFirstViolation)
                violation_stopped = true;
        }
        if (cap_hit.load(std::memory_order_relaxed))
            cap_stopped = true;
        if (violation_stopped || cap_stopped)
            break;

        frontier.swap(next_frontier);
        ++depth;
    }

    result.numStates = store.size();
    result.completed =
        frontier.empty() && !cap_stopped && !violation_stopped;
    return finish(result);
}

} // namespace cxl
