#include "checker/explorer.hh"

#include <algorithm>
#include <chrono>
#include <deque>

namespace cxl
{

std::string
Violation::describe() const
{
    std::string txt;
    switch (kind) {
      case Kind::Conjunct:
        txt = "conjunct '" + conjunctName + "' (family " +
              conjunctFamily + ") violated";
        break;
      case Kind::Overflow:
        txt = "channel overflow";
        break;
      case Kind::Deadlock:
        txt = "deadlock before program completion";
        break;
    }
    txt += " at depth " + std::to_string(depth);
    return txt;
}

Explorer::Explorer(const RuleSet &rules, const Scenario &scenario,
                   const InvariantSet &invariants)
    : rules_(rules), scenario_(scenario), invariants_(invariants)
{
}

std::vector<TraceStep>
Explorer::rebuildTrace(const StateStore &store, std::uint32_t idx) const
{
    std::vector<TraceStep> trace;
    std::uint32_t cur = idx;
    while (cur != StateStore::kNoParent) {
        const StateStore::Entry &e = store.entry(cur);
        TraceStep step;
        step.state = e.state;
        if (e.parent != StateStore::kNoParent)
            step.ruleName = rules_.rules()[e.ruleId].name;
        trace.push_back(std::move(step));
        cur = e.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
}

ExploreResult
Explorer::run(const ExploreOptions &options)
{
    auto start = std::chrono::steady_clock::now();

    ExploreResult result;
    result.ruleFireCounts.assign(rules_.rules().size(), 0);

    StateStore store;
    std::deque<std::uint32_t> frontier;
    Context ctx{&scenario_};

    auto symmetry_canon = [&options](SystemState &s) {
        if (!options.symmetryReduction)
            return;
        SystemState swapped = s.swappedDevices();
        if (options.canonicaliseTids)
            swapped.canonicaliseTids();
        if (swapped.bytewiseLess(s))
            s = swapped;
    };

    SystemState init = scenario_.initial;
    if (options.canonicaliseTids)
        init.canonicaliseTids();
    symmetry_canon(init);

    auto [init_idx, inserted] =
        store.insert(init, StateStore::kNoParent, 0, 0);
    (void)inserted;
    frontier.push_back(init_idx);

    auto report = [&](Violation::Kind kind, const Conjunct *conjunct,
                      std::uint32_t idx, std::uint32_t depth) {
        ++result.violationCount;
        if (result.violation)
            return false; // keep only the first trace
        Violation v;
        v.kind = kind;
        if (conjunct) {
            v.conjunctName = conjunct->name;
            v.conjunctFamily = conjunct->family;
        }
        v.stateIndex = idx;
        v.depth = depth;
        v.trace = rebuildTrace(store, idx);
        result.violation = std::move(v);
        return options.stopAtFirstViolation;
    };

    // Check the initial state itself.
    if (options.checkInvariants) {
        if (const Conjunct *bad =
                invariants_.firstFailure(init, ctx)) {
            report(Violation::Kind::Conjunct, bad, init_idx, 0);
            if (options.stopAtFirstViolation) {
                result.numStates = store.size();
                return result;
            }
        }
    }

    bool stopped = false;
    while (!frontier.empty() && !stopped) {
        std::uint32_t idx = frontier.front();
        frontier.pop_front();

        // Copy: store.insert below may reallocate the entry array.
        const SystemState state = store.entry(idx).state;
        const std::uint16_t depth = store.entry(idx).depth;
        result.maxDepth = std::max<std::uint32_t>(result.maxDepth, depth);

        if (depth >= options.maxDepth)
            continue;

        auto succs = rules_.successors(state, scenario_,
                                       options.canonicaliseTids);

        if (succs.empty() && options.checkDeadlock &&
            !scenario_.freeRun && !scenario_.finished(state)) {
            if (report(Violation::Kind::Deadlock, nullptr, idx, depth))
                break;
        }

        for (auto &succ : succs) {
            ++result.numTransitions;
            ++result.ruleFireCounts[succ.rule->id];
            symmetry_canon(succ.state);

            auto [succ_idx, is_new] =
                store.insert(succ.state, idx, succ.rule->id,
                             static_cast<std::uint16_t>(depth + 1));
            if (!is_new)
                continue;

            if (succ.overflow) {
                if (report(Violation::Kind::Overflow, nullptr, succ_idx,
                           depth + 1)) {
                    stopped = true;
                    break;
                }
            }
            if (options.checkInvariants) {
                if (const Conjunct *bad =
                        invariants_.firstFailure(succ.state, ctx)) {
                    if (report(Violation::Kind::Conjunct, bad, succ_idx,
                               depth + 1)) {
                        stopped = true;
                        break;
                    }
                }
            }

            if (store.size() >= options.maxStates) {
                stopped = true;
                break;
            }
            frontier.push_back(succ_idx);
        }
    }

    result.numStates = store.size();
    result.completed = frontier.empty() && !stopped;

    auto end = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace cxl
