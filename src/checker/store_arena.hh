/**
 * @file
 * State-arena layer of the visited-state store.
 *
 * One StateArena holds a shard's state bytes in fixed-size,
 * index-addressed blocks allocated from the shard's ShardMem backend
 * (store_mem.hh):
 *
 *  - Full mode: verbatim SystemState slots, blockStates() per block.
 *  - Compact mode: zero-RLE cells in byte blocks, located by a
 *    chunked per-entry offset column (chunks never move, so workers
 *    may read frontier offsets while peers append).
 *
 * The block-pointer spine is fully reserved at init so it never
 * reallocates — readers index it lock-free for entries published
 * before their expansion phase began, the same contract the
 * monolithic store had.
 *
 * seal(): at a BFS level barrier the façade passes the current entry
 * count and the arena drops every whole block that belongs to levels
 * finished expanding.  On an unrecoverable backend (InRam) this is
 * the classic compact-mode release — full mode never drops, and
 * dropped cells are gone (cellRetained() goes false).  On a
 * recoverable backend (Mmap) *both* modes drop: the mapped window
 * shrinks to roughly the frontier and its successors while the
 * backing file keeps every byte, and a dropped block can be remapped
 * on demand (fullAtCold()/cellInto()) — which is also why
 * counterexample traces stay reconstructible under mmap even in
 * compact mode.  Recovered blocks are re-dropped at the next seal
 * (the drop loop rescans from block zero).
 *
 * Full-mode dedup against a sealed (dropped) block would fault pages
 * back per duplicate and re-grow the mapped window; the façade
 * instead keeps a verification fingerprint per entry on recoverable
 * full-mode backends and compares *that* when fullIfMapped() returns
 * null — identical detected-collision semantics to compact mode for
 * cold entries, exact byte comparison for the mapped window.
 *
 * Thread-safety: placeFull/appendCell/seal and the cold (recovering)
 * readers run under the shard lock or quiescent; fullAt/cellInto on
 * retained frontier entries follow the façade's lock-free reader
 * contract.
 */

#ifndef CXL_CHECKER_STORE_ARENA_HH
#define CXL_CHECKER_STORE_ARENA_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "checker/store_mem.hh"
#include "protocol/state.hh"

namespace cxl
{

/** Storage policy of a StateStore (façade-level; see state_store.hh). */
enum class StoreMode : std::uint8_t {
    Full,    ///< keep every state; exact dedup; traces reconstructible
    Compact, ///< hash compaction: 64-bit fingerprints instead of states
};

/** One shard's state-byte arena (see the file comment). */
class StateArena
{
  public:
    /** log2 of states per full-mode block: ~2 MB heap blocks in RAM;
     * smaller (~1 MB) blocks under mmap so the partial-block slack at
     * the mapped window's edges stays small. */
    static constexpr std::uint32_t kFullBlockBitsRam = 13;
    static constexpr std::uint32_t kFullBlockBitsMmap = 12;
    /** log2 of the compact-mode byte-block size (256 KiB). */
    static constexpr std::uint32_t kByteBlockBits = 18;

    /** log2 of entries per chunk of the compact offset column. */
    static constexpr std::uint32_t kOffChunkBits = 16;
    static constexpr std::uint32_t kOffChunkSize = 1u << kOffChunkBits;

    /**
     * Upper bound on one zero-RLE-encoded state cell: 2-byte payload
     * length plus, in the worst (incompressible) case, the literal
     * bytes emitted in <=255-byte chunks with 2 bytes of pair
     * overhead each.
     */
    static constexpr std::size_t kMaxEncodedState =
        2 + sizeof(SystemState) + 2 * (sizeof(SystemState) / 255 + 1);

    /** Bind to a backend; @p max_entries bounds the spine
     * reservations (full mode; compact reserves for its 4 GiB byte
     * space). */
    void init(ShardMem *mem, StoreMode mode, std::uint32_t max_entries);

    /** log2 of states per block in full mode (runtime: backend-
     * dependent). */
    std::uint32_t fullBlockBits() const { return blockBits_; }

    /** True when dropped blocks can be remapped from the backing
     * file. */
    bool recoverable() const { return mem_->recoverable(); }

    // --- Full mode ---------------------------------------------------

    /** State slot for a retained (mapped) entry; lock-free-safe for
     * published entries of the mapped window. */
    const SystemState *
    fullAt(std::uint32_t off) const
    {
        const std::byte *base = blocks_[off >> blockBits_];
        assert(base && "state block sealed; use fullAtCold");
        return slotAt(base, off);
    }

    /** Like fullAt but null when the enclosing block was dropped —
     * the façade's cue to fall back to fingerprint identity. */
    const SystemState *
    fullIfMapped(std::uint32_t off) const
    {
        const std::byte *base = blocks_[off >> blockBits_];
        return base ? slotAt(base, off) : nullptr;
    }

    /** fullAt that remaps a dropped block first (shard lock held or
     * quiescent; recoverable backends only once anything sealed). */
    const SystemState *fullAtCold(std::uint32_t off) const;

    /** Copy-construct entry @p off's state slot (shard lock held). */
    void placeFull(std::uint32_t off, const SystemState &state);

    // --- Compact mode ------------------------------------------------

    /**
     * Encode and append one state cell for entry @p off (shard lock
     * held).  @throws StoreFullError (shard @p shard_idx) when the
     * shard's 32-bit arena offset space is exhausted.
     */
    void appendCell(std::uint32_t shard_idx, std::uint32_t off,
                    const SystemState &state);

    /** Decode entry @p off's cell (recovering its block if sealed —
     * then shard lock held or quiescent). */
    void cellInto(std::uint32_t off, SystemState &out) const;

    /** True while entry @p off's cell is still decodable: always on a
     * recoverable backend; until seal() releases the enclosing block
     * otherwise. */
    bool
    cellRetained(std::uint32_t off) const
    {
        return byteFloor_ == 0 || stateOffAt(off) >= byteFloor_;
    }

    // --- Level barrier -----------------------------------------------

    /**
     * BFS level barrier (quiescent): drop every whole block of levels
     * finished expanding.  @p entry_count is the shard's current
     * entry count (full-mode level boundary; compact mode uses its
     * byte cursor).  No-op for full mode on unrecoverable backends.
     */
    void seal(std::uint32_t entry_count);

  private:
    const SystemState *
    slotAt(const std::byte *base, std::uint32_t off) const
    {
        return std::launder(reinterpret_cast<const SystemState *>(
            base +
            static_cast<std::size_t>(off & ((1u << blockBits_) - 1)) *
                sizeof(SystemState)));
    }

    std::uint32_t
    stateOffAt(std::uint32_t off) const
    {
        return stateOffs_[off >> kOffChunkBits]
                         [off & (kOffChunkSize - 1)];
    }

    std::byte *recoverBlock(std::uint32_t block) const;

    ShardMem *mem_ = nullptr;
    StoreMode mode_ = StoreMode::Full;
    std::uint32_t blockBits_ = kFullBlockBitsRam;
    std::size_t blockBytes_ = 0;
    /**
     * Block-pointer cache, fully reserved (never reallocates; see the
     * file comment).  Null means dropped; mutable because cold reads
     * remap on demand without changing observable state.
     */
    mutable std::vector<std::byte *> blocks_;
    /** Compact offset column, in fixed chunks (never move). */
    std::vector<std::uint32_t *> stateOffs_;
    std::uint64_t byteCursor_ = 0; ///< compact: next free arena byte
    std::uint64_t byteFloor_ = 0;  ///< compact: lost below this (InRam)
    /** Level boundary at the previous seal: entry count (full) or
     * byte cursor (compact). */
    std::uint64_t levelBoundary_ = 0;
};

} // namespace cxl

#endif // CXL_CHECKER_STORE_ARENA_HH
