#include "checker/random_walk.hh"

#include <chrono>

#include "support/hash.hh"

namespace cxl
{

RandomWalker::RandomWalker(const RuleSet &rules, const Scenario &scenario,
                           const InvariantSet &invariants)
    : rules_(rules), scenario_(scenario), invariants_(invariants)
{
}

RandomWalkResult
RandomWalker::run(const RandomWalkOptions &options) const
{
    auto start = std::chrono::steady_clock::now();
    RandomWalkResult result;
    Context ctx{&scenario_};
    SplitMix64 rng(options.seed);

    for (std::uint64_t walk = 0;
         walk < options.walks && !result.violation; ++walk) {
        ++result.walks;
        SystemState state = scenario_.initial;
        if (options.canonicaliseTids)
            state.canonicaliseTids();

        std::vector<TraceStep> trace;
        trace.push_back({"", state});

        if (const Conjunct *bad = invariants_.firstFailure(state, ctx)) {
            Violation v;
            v.kind = Violation::Kind::Conjunct;
            v.conjunctName = bad->name;
            v.conjunctFamily = bad->family;
            v.depth = 0;
            v.trace = trace;
            result.violation = std::move(v);
            break;
        }

        for (std::uint32_t step = 0; step < options.maxSteps; ++step) {
            auto succs = rules_.successors(state, scenario_,
                                           options.canonicaliseTids);
            if (succs.empty()) {
                ++result.terminalWalks;
                break;
            }
            const auto &choice =
                succs[rng.below(static_cast<std::uint32_t>(
                    succs.size()))];
            state = choice.state;
            ++result.steps;
            trace.push_back({choice.rule->name, state});

            const Conjunct *bad =
                invariants_.firstFailure(state, ctx);
            if (choice.overflow || bad) {
                Violation v;
                v.kind = choice.overflow ? Violation::Kind::Overflow
                                         : Violation::Kind::Conjunct;
                if (bad) {
                    v.conjunctName = bad->name;
                    v.conjunctFamily = bad->family;
                }
                v.depth = static_cast<std::uint32_t>(trace.size() - 1);
                v.trace = trace;
                result.violation = std::move(v);
                break;
            }
        }
    }

    auto end = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace cxl
