/**
 * @file
 * Work-stealing schedule of the explicit-state explorer
 * (Schedule::WorkSteal): the depth barrier of runBfs replaced by
 * per-worker Chase-Lev deques (checker/workqueue.hh) and a
 * label-correcting shortest-path discipline.
 *
 * How exactness survives losing the barrier:
 *
 *  - Depth labels.  Tasks carry the depth they were enqueued at; a
 *    duplicate insert with a smaller depth relabels the stored entry
 *    (StateStore::BatchItem::improved) and re-enqueues it, so depth
 *    labels converge to the BFS-minimal values (label correction
 *    over a finite graph).  Diameter and witness-trace lengths are
 *    therefore exact at quiescence, for any thread count.
 *
 *  - Violations.  Candidates are *recorded* during the run but
 *    *resolved* only at quiescence, from the converged depth labels:
 *    the producing level of a candidate is pl = depth(state) for a
 *    deadlock (found while expanding the state) and
 *    pl = depth(state) - 1 otherwise (found on an edge out of level
 *    pl); BFS would have stopped at the smallest such level L*, so
 *    only candidates with pl == L* are visible, the winner among
 *    them is picked by the same deterministic key runBfs uses, the
 *    reported state count is |{depth <= L* + 1}| (exactly the
 *    states a BFS run would have inserted by the end of level L*'s
 *    expansion), and the reported diameter is L*.  A monotonically
 *    shrinking expand limit (min over recorded candidates' pl
 *    estimates, each an upper bound of its final pl) prunes work
 *    beyond L* without ever pruning work at or below it; transient
 *    over-expansion before the limit tightens is excluded by the
 *    end-of-run depth filter.
 *
 *  - Termination.  A global pending-task counter: incremented
 *    *before* a worker publishes new tasks to its deque, decremented
 *    only after a claimed task's successors have been flushed (or
 *    the task was skipped as stale/pruned).  pending == 0 therefore
 *    implies no queued and no in-flight task anywhere — the
 *    quiescence the resolution step needs.
 *
 *  - POR.  Without levels there is no same-level intersection merge;
 *    instead every generated edge's sleep contribution — (source
 *    sleep ∪ {enabled rules fired before it}) ∩ indep(rule),
 *    permutation-relabelled under symmetry, exactly the runBfs
 *    formula — is intersected into a per-state mask side table, and
 *    a state whose mask shrinks after it was enqueued is re-enqueued
 *    (Godefroid's stateful sleep-set revisit rule).  Contributions
 *    are monotone in the source mask, so the chaotic iteration
 *    converges to a schedule-independent greatest fixpoint with
 *    masks no larger than the BFS ones: the engine fires a superset
 *    of the BFS-POR edges — pruning strictly less, never more — so
 *    state coverage, minimal depths and verdicts are untouched,
 *    while transition/slept counts become schedule-dependent.
 *
 *  - Counters.  Per-worker scratch is merged once, at termination,
 *    by an atomic-free binary reduction tree (support/reduce.hh) —
 *    no per-event atomics, no barrier-time serial merge.
 *
 * Hash compaction composes: the store's level sealing is a
 * BFS-schedule notion, so this engine never seals — every compact
 * cell stays retained, which costs the freed memory but makes full
 * counterexample traces reconstructible even under --ws --compact.
 */

#include "checker/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "checker/por.hh"
#include "checker/progress.hh"
#include "checker/workqueue.hh"
#include "support/reduce.hh"
#include "support/thread_pool.hh"

namespace cxl
{
namespace
{

/** Batched-flush size, matching the BFS schedule's. */
constexpr std::size_t kFlushBatch = 512;

// A task is (state id, depth at enqueue time) packed into the
// deque's u64 payload.
std::uint64_t
packTask(std::uint32_t id, std::uint32_t depth)
{
    return (static_cast<std::uint64_t>(depth) << 32) | id;
}
std::uint32_t
taskId(std::uint64_t task)
{
    return static_cast<std::uint32_t>(task);
}
std::uint32_t
taskDepth(std::uint64_t task)
{
    return static_cast<std::uint32_t>(task >> 32);
}

/**
 * A violation observed mid-run.  Depths are deliberately absent:
 * they are resolved from the store's converged labels at quiescence
 * (see the file comment), which is what makes the verdict
 * thread-count-deterministic despite the asynchronous order.
 */
struct WsCandidate {
    Violation::Kind kind;
    const Conjunct *conjunct; ///< non-null only for Kind::Conjunct
    std::uint32_t idx;
    std::uint64_t stateHash;
    // Overflow only: the violating edge itself.
    std::uint16_t edgeRule = 0;
    std::uint32_t edgeParent = StateStore::kNoParent;
    std::uint64_t parentHash = 0;
};

/** Dedup key: re-expansions re-observe the same candidate. */
bool
candidateIdLess(const WsCandidate &a, const WsCandidate &b)
{
    return std::make_tuple(static_cast<int>(a.kind), a.idx,
                           a.edgeParent, a.edgeRule) <
           std::make_tuple(static_cast<int>(b.kind), b.idx,
                           b.edgeParent, b.edgeRule);
}
bool
candidateIdEq(const WsCandidate &a, const WsCandidate &b)
{
    return a.kind == b.kind && a.idx == b.idx &&
           a.edgeParent == b.edgeParent && a.edgeRule == b.edgeRule;
}

/** A candidate with its quiescence-resolved depth. */
struct ResolvedCandidate {
    WsCandidate c;
    std::uint32_t depth;

    /** The deterministic selection key of the BFS schedule
     * (explorer.cc candidateLess), applied to resolved depths. */
    friend bool
    operator<(const ResolvedCandidate &a, const ResolvedCandidate &b)
    {
        auto rank = [](Violation::Kind k) {
            switch (k) {
              case Violation::Kind::Overflow: return 0;
              case Violation::Kind::Conjunct: return 1;
              case Violation::Kind::Deadlock: return 2;
            }
            return 3;
        };
        return std::make_tuple(a.depth, a.c.stateHash, rank(a.c.kind),
                               a.c.edgeRule, a.c.parentHash) <
               std::make_tuple(b.depth, b.c.stateHash, rank(b.c.kind),
                               b.c.edgeRule, b.c.parentHash);
    }
};

/** An overflow edge waiting for its batch flush to learn its id. */
struct WsPendingOverflow {
    std::uint32_t batchIndex;
    std::uint64_t parentHash;
};

/**
 * Per-state sleep-mask side table (POR only): chunked per shard so
 * the spines never reallocate, mutex-striped by shard.  Slots are
 * born all-rules (chunk fill at allocation — crucially *before* any
 * edge's contribution can race with an explicit initialisation) and
 * only ever shrink by intersection.
 */
class SleepTable
{
  public:
    explicit SleepTable(const RuleMask &fill) : fill_(fill)
    {
        for (ShardMasks &s : shards_) {
            s.chunks.reserve(
                (StateStore::kOffsetMask >> kChunkBits) + 1);
        }
    }

    RuleMask
    get(std::uint32_t id)
    {
        ShardMasks &s = shards_[StateStore::shardOf(id)];
        std::lock_guard<std::mutex> lock(s.mutex);
        return cell(s, id & StateStore::kOffsetMask);
    }

    /** The initial state sleeps nothing. */
    void
    clearMask(std::uint32_t id)
    {
        ShardMasks &s = shards_[StateStore::shardOf(id)];
        std::lock_guard<std::mutex> lock(s.mutex);
        cell(s, id & StateStore::kOffsetMask) = RuleMask{};
    }

    /** Intersect @p m into @p id's mask; true iff the mask shrank
     * (the caller then re-enqueues the state). */
    bool
    intersect(std::uint32_t id, const RuleMask &m)
    {
        ShardMasks &s = shards_[StateStore::shardOf(id)];
        std::lock_guard<std::mutex> lock(s.mutex);
        RuleMask &slot = cell(s, id & StateStore::kOffsetMask);
        const RuleMask before = slot;
        slot &= m;
        return !(slot == before);
    }

  private:
    /** log2 of masks per chunk (a chunk is 384 KiB of RuleMask). */
    static constexpr std::uint32_t kChunkBits = 12;

    struct alignas(64) ShardMasks {
        std::mutex mutex;
        std::vector<std::unique_ptr<RuleMask[]>> chunks;
    };

    RuleMask &
    cell(ShardMasks &s, std::uint32_t off)
    {
        const std::uint32_t chunk = off >> kChunkBits;
        while (chunk >= s.chunks.size()) {
            auto fresh = std::make_unique<RuleMask[]>(1u << kChunkBits);
            std::fill(fresh.get(), fresh.get() + (1u << kChunkBits),
                      fill_);
            s.chunks.push_back(std::move(fresh));
        }
        return s.chunks[chunk][off & ((1u << kChunkBits) - 1)];
    }

    RuleMask fill_;
    ShardMasks shards_[StateStore::kNumShards];
};

/** Per-worker scratch; merged once at termination by treeReduce. */
struct WsScratch {
    std::vector<RuleSet::Successor> succs;
    std::vector<StateStore::BatchItem> batch;
    std::vector<WsPendingOverflow> overflows;
    std::vector<WsCandidate> candidates;
    std::vector<std::uint64_t> ruleFires;
    std::uint64_t transitions = 0;

    // POR bookkeeping (unused when por is off).
    std::vector<std::uint16_t> sleptRules; ///< per-node scratch
    std::vector<std::uint8_t> batchPerm;   ///< permKey, aligned w/batch
    std::vector<std::uint32_t> batchNode;  ///< nodeMasks slot, aligned
    std::vector<RuleMask> nodeMasks; ///< mask snapshot per batch node
    std::vector<std::uint64_t> ruleSlept;
    std::uint64_t slept = 0;

    std::vector<std::uint64_t> pushes; ///< staged tasks of one flush
    std::uint32_t tasksDone = 0; ///< expanded, successors unflushed
};

} // namespace

ExploreResult
Explorer::runWorkSteal(const ExploreOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    auto finish = [&start](ExploreResult &r) -> ExploreResult & {
        auto end = std::chrono::steady_clock::now();
        r.seconds = std::chrono::duration<double>(end - start).count();
        return r;
    };

    std::size_t threads = options.numThreads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min<std::size_t>(threads, 1024);

    ExploreResult result;
    result.ruleFireCounts.assign(rules_.rules().size(), 0);
    result.ruleSleptCounts.assign(rules_.rules().size(), 0);

    std::optional<PorContext> por;
    if (options.por)
        por.emplace(rules_, options.symmetryReduction,
                    options.canonicaliseTids);

    StateStore store(StoreConfig{
        1 << 16,
        options.compaction ? StoreMode::Compact : StoreMode::Full,
        options.storeBackend, options.storeDir,
        options.storeCapacity});
    if (options.expectedStates != 0)
        store.reserveStates(options.expectedStates);
    Context ctx{&scenario_};

    // Every return goes through here so the out-of-core byte
    // counters ride along (finish() is declared before the store).
    auto finishRun = [&](ExploreResult &r) -> ExploreResult & {
        r.storeMappedBytes = store.mappedBytes();
        r.storeFileBytes = store.backingFileBytes();
        return finish(r);
    };

    // The run's stop word (see explorer.cc): every budget and the
    // maxStates cap trip it; workers check it at claim granularity
    // and poll the budgets at flush granularity.
    RunGovernor governor(
        {options.maxSeconds, options.maxRssBytes, options.cancel});

    // Progress samples ride the flush cadence (see explorer.cc).
    ProgressTicker progress(options.progress,
                            options.progressIntervalSeconds);

    auto symmetry_canon = [&options](SystemState &s) {
        if (!options.symmetryReduction)
            return;
        s = s.deviceCanonical(options.canonicaliseTids,
                              options.canonicaliseTids);
    };

    SystemState init = scenario_.initial;
    if (options.canonicaliseTids)
        init.canonicaliseTids();
    symmetry_canon(init);

    auto [init_idx, init_inserted] =
        store.insert(init, StateStore::kNoParent, 0, 0);
    (void)init_inserted;

    // Resolution-time violation reporting.  Unlike the BFS schedule,
    // compact mode keeps every cell retained (no sealing), so the
    // full witness trace is rebuilt in both store modes.
    auto record = [&](Violation::Kind kind, const Conjunct *conjunct,
                      std::uint32_t idx, std::uint32_t depth,
                      std::uint16_t edge_rule,
                      std::uint32_t edge_parent) {
        Violation v;
        v.kind = kind;
        if (conjunct) {
            v.conjunctName = conjunct->name;
            v.conjunctFamily = conjunct->family;
        }
        v.stateIndex = idx;
        v.depth = depth;
        if (kind == Violation::Kind::Overflow) {
            v.overflowRule = rules_.rules()[edge_rule].name;
            v.trace = rebuildTrace(store, edge_parent);
            TraceStep step;
            step.ruleName = v.overflowRule;
            store.stateInto(idx, step.state);
            v.trace.push_back(std::move(step));
        } else {
            v.trace = rebuildTrace(store, idx);
        }
        result.violation = std::move(v);
    };

    // Check the initial state itself (depth 0; resolution below only
    // handles candidates produced by expansions).
    if (options.checkInvariants) {
        if (const Conjunct *bad = invariants_.firstFailure(init, ctx)) {
            ++result.violationCount;
            record(Violation::Kind::Conjunct, bad, init_idx, 0, 0,
                   StateStore::kNoParent);
            if (options.stopAtFirstViolation) {
                result.numStates = store.size();
                result.probeCollisions = store.probeCollisions();
                return finishRun(result);
            }
        }
    }

    const RuleMask all_rules_mask =
        RuleMask::firstN(rules_.rules().size());
    std::optional<SleepTable> sleep;
    if (options.por) {
        sleep.emplace(all_rules_mask);
        sleep->clearMask(init_idx);
    }

    std::vector<WsScratch> scratch(threads);
    for (WsScratch &s : scratch) {
        s.ruleFires.assign(rules_.rules().size(), 0);
        if (options.por)
            s.ruleSlept.assign(rules_.rules().size(), 0);
    }
    std::vector<std::unique_ptr<WorkDeque>> deques;
    deques.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        deques.push_back(std::make_unique<WorkDeque>());

    // Outstanding tasks (queued + in-flight).  Incremented *before* a
    // push is visible, decremented only after the claimed task's
    // successors were flushed — so 0 really means quiescent.
    std::atomic<std::int64_t> pending{0};

    // Largest task depth still worth expanding.  Starts at the depth
    // cap and, under stop-at-first-violation, shrinks to min over
    // candidates' producing-level estimates (each >= its final pl,
    // hence always >= the final L* — pruning never loses required
    // work; see the file comment).
    std::atomic<std::int64_t> expand_limit{
        static_cast<std::int64_t>(options.maxDepth) - 1};

    std::mutex error_mutex;
    std::exception_ptr worker_error;

    const std::uint64_t soft_cap =
        options.maxStates > threads * kFlushBatch
            ? options.maxStates - threads * kFlushBatch
            : 0;

    auto note_limit = [&](std::uint32_t pl_estimate) {
        if (!options.stopAtFirstViolation)
            return;
        std::int64_t cur =
            expand_limit.load(std::memory_order_relaxed);
        const auto want = static_cast<std::int64_t>(pl_estimate);
        while (want < cur &&
               !expand_limit.compare_exchange_weak(
                   cur, want, std::memory_order_relaxed)) {
        }
    };

    // Flush a worker's pending successor batch, then retire the
    // tasks whose successors it carried: insertBatch -> overflow
    // candidates -> invariant checks on fresh states -> POR sleep
    // contributions -> publish new tasks -> pending bookkeeping.
    auto flush = [&](std::size_t t, WsScratch &ws, Context &wctx) {
        if (ws.batch.empty() && ws.tasksDone == 0)
            return;
        const std::size_t flushed = ws.batch.size();
        std::uint32_t flush_depth = 0;
        ws.pushes.clear();
        if (!ws.batch.empty()) {
            store.insertBatch(ws.batch.data(), ws.batch.size());
            for (const WsPendingOverflow &po : ws.overflows) {
                const StateStore::BatchItem &item =
                    ws.batch[po.batchIndex];
                ws.candidates.push_back(
                    {Violation::Kind::Overflow, nullptr, item.id,
                     item.hash, item.rule, item.parent,
                     po.parentHash});
                note_limit(item.depth - 1);
            }
            ws.overflows.clear();
            for (std::size_t bi = 0; bi < ws.batch.size(); ++bi) {
                const StateStore::BatchItem &item = ws.batch[bi];
                flush_depth = std::max(flush_depth, item.depth);
                if (item.inserted) {
                    if (options.checkInvariants) {
                        if (const Conjunct *bad =
                                invariants_.firstFailure(item.state,
                                                         wctx)) {
                            ws.candidates.push_back(
                                {Violation::Kind::Conjunct, bad,
                                 item.id, item.hash});
                            note_limit(item.depth - 1);
                        }
                    }
                    ws.pushes.push_back(
                        packTask(item.id, item.depth));
                } else if (item.improved) {
                    // Shorter path to a known state: its depth label
                    // just dropped, so it must be re-expanded for
                    // the labels of its successors to converge too.
                    ws.pushes.push_back(
                        packTask(item.id, item.depth));
                }
            }
            if (options.por) {
                // Sleep contributions, per source node (edges of one
                // node are contiguous and in fired order): acc
                // starts at the node's mask snapshot and accumulates
                // fired rules, exactly the BFS barrier walk — minus
                // the level filter, which no longer exists; every
                // edge contributes (prune-only, see file comment).
                std::size_t j = 0;
                while (j < ws.batch.size()) {
                    const std::uint32_t node_slot = ws.batchNode[j];
                    RuleMask acc = ws.nodeMasks[node_slot];
                    for (; j < ws.batch.size() &&
                           ws.batchNode[j] == node_slot;
                         ++j) {
                        const StateStore::BatchItem &item =
                            ws.batch[j];
                        RuleMask m =
                            acc & por->independentOf(item.rule);
                        if (ws.batchPerm[j] !=
                                PorContext::kIdentityPermKey &&
                            !m.none()) {
                            m = por->remapByKey(m, ws.batchPerm[j]);
                        }
                        if (sleep->intersect(item.id, m)) {
                            // Godefroid revisit: the mask shrank, so
                            // rules it slept may need firing now.
                            ws.pushes.push_back(packTask(
                                item.id, store.depthAt(item.id)));
                        }
                        acc.set(item.rule);
                    }
                }
                ws.batchPerm.clear();
                ws.batchNode.clear();
                ws.nodeMasks.clear();
            }
            ws.batch.clear();
        }

        std::sort(ws.pushes.begin(), ws.pushes.end());
        ws.pushes.erase(
            std::unique(ws.pushes.begin(), ws.pushes.end()),
            ws.pushes.end());
        // Publish order matters twice over: count the new tasks as
        // pending before any thief can complete them, and only then
        // retire the tasks that produced them; and push batches
        // shallowest-first — with consumption at the FIFO end (see
        // the worker loop), per-worker processing order stays
        // approximately nondecreasing in depth, which keeps the
        // labels close to minimal from the start and the
        // label-correcting re-expansions rare.
        if (!ws.pushes.empty()) {
            pending.fetch_add(
                static_cast<std::int64_t>(ws.pushes.size()),
                std::memory_order_acq_rel);
            for (std::uint64_t task : ws.pushes)
                deques[t]->push(task);
        }
        if (ws.tasksDone != 0) {
            pending.fetch_sub(ws.tasksDone,
                              std::memory_order_acq_rel);
            ws.tasksDone = 0;
        }
        if (store.size() >= options.maxStates)
            governor.trip(StopReason::StateCap);
        governor.poll();
        progress.tick(store.size(), flushed, flush_depth);
    };

    auto expand = [&](std::size_t t, WsScratch &ws, Context &wctx,
                      SystemState &decode_buf, std::uint32_t node_idx,
                      std::uint32_t node_depth) {
        const SystemState *node_ptr;
        if (options.compaction) {
            store.stateInto(node_idx, decode_buf);
            node_ptr = &decode_buf;
        } else {
            node_ptr = &store.stateAt(node_idx);
        }
        const SystemState &node_state = *node_ptr;
        if (options.por) {
            const RuleMask node_mask = sleep->get(node_idx);
            rules_.successorsPor(node_state, scenario_,
                                 options.canonicaliseTids,
                                 node_mask.words.data(), ws.succs,
                                 ws.sleptRules);
            ws.slept += ws.sleptRules.size();
            for (std::uint16_t r : ws.sleptRules)
                ++ws.ruleSlept[r];
            ws.nodeMasks.push_back(node_mask);
        } else {
            rules_.successorsInto(node_state, scenario_,
                                  options.canonicaliseTids, ws.succs);
        }

        // Deadlock = no *enabled* rule (slept rules are enabled), a
        // state property — re-expansions re-observe it identically
        // and the resolution pass dedups.
        if (ws.succs.empty() &&
            (!options.por || ws.sleptRules.empty()) &&
            options.checkDeadlock && !scenario_.freeRun &&
            !scenario_.finished(node_state)) {
            ws.candidates.push_back({Violation::Kind::Deadlock,
                                     nullptr, node_idx,
                                     node_state.hash()});
            note_limit(node_depth);
        }

        std::uint64_t node_hash = 0;
        bool node_hash_valid = false;
        const auto node_slot =
            static_cast<std::uint32_t>(ws.nodeMasks.size()) - 1;

        for (auto &succ : ws.succs) {
            ++ws.transitions;
            ++ws.ruleFires[succ.rule->id];
            std::uint8_t perm_key = PorContext::kIdentityPermKey;
            if (options.symmetryReduction) {
                std::uint8_t perm[kMaxDevices];
                succ.state = succ.state.deviceCanonical(
                    options.canonicaliseTids,
                    options.canonicaliseTids,
                    options.por ? perm : nullptr);
                if (options.por) {
                    perm_key = PorContext::permKey(
                        perm, rules_.numDevices());
                }
            }
            if (options.por) {
                ws.batchPerm.push_back(perm_key);
                ws.batchNode.push_back(node_slot);
            }

            StateStore::BatchItem item;
            item.hash = succ.state.hash();
            item.state = std::move(succ.state);
            item.parent = node_idx;
            item.depth = node_depth + 1;
            item.rule = succ.rule->id;
            ws.batch.push_back(std::move(item));

            if (succ.overflow) {
                if (!node_hash_valid) {
                    node_hash = node_state.hash();
                    node_hash_valid = true;
                }
                ws.overflows.push_back(
                    {static_cast<std::uint32_t>(ws.batch.size() - 1),
                     node_hash});
            }
        }
        ++ws.tasksDone;

        if (ws.batch.size() >= kFlushBatch ||
            store.size() + ws.batch.size() >= soft_cap)
            flush(t, ws, wctx);
    };

    auto worker = [&](std::size_t t) {
        WsScratch &ws = scratch[t];
        Context wctx{&scenario_};
        SystemState decode_buf;
        WorkDeque &mine = *deques[t];
        // The owner drains its own deque from the *steal* (FIFO) end
        // rather than the LIFO end: tasks are flushed in depth order,
        // so FIFO consumption keeps the processing order
        // approximately breadth-first — the difference between a
        // handful of label-correcting re-expansions and a DFS-shaped
        // walk that relabels (and re-expands) most states many times
        // over.  One CAS per task, amortised over a full successor
        // expansion, is noise; Abort just means a thief raced us, so
        // retry.
        auto take_own = [&](std::uint64_t &task) {
            for (;;) {
                switch (mine.steal(task)) {
                  case WorkDeque::Steal::Success:
                    return true;
                  case WorkDeque::Steal::Empty:
                    return false;
                  case WorkDeque::Steal::Abort:
                    break;
                }
            }
        };
        for (;;) {
            if (governor.stopped())
                return;
            std::uint64_t task;
            if (!take_own(task)) {
                // Publish everything before going thieving, so the
                // work (and its pending count) is visible to peers
                // and the quiescence check below is conclusive.
                flush(t, ws, wctx);
                bool got = false;
                for (std::size_t v = 1; v < threads && !got; ++v) {
                    switch (
                        deques[(t + v) % threads]->steal(task)) {
                      case WorkDeque::Steal::Success:
                        got = true;
                        break;
                      case WorkDeque::Steal::Abort:
                      case WorkDeque::Steal::Empty:
                        break;
                    }
                }
                if (!got) {
                    if (pending.load(std::memory_order_acquire) == 0)
                        return;
                    std::this_thread::yield();
                    continue;
                }
            }
            const std::uint32_t id = taskId(task);
            const std::uint32_t depth = taskDepth(task);
            // Stale (a shorter path won the relabel race — its own
            // re-enqueue carries the re-expansion) or pruned beyond
            // the expand limit: retire without expanding.
            if (store.depthAt(id) < depth ||
                static_cast<std::int64_t>(depth) >
                    expand_limit.load(std::memory_order_relaxed)) {
                pending.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            expand(t, ws, wctx, decode_buf, id, depth);
        }
    };

    auto guarded_worker = [&](std::size_t t) {
        WsScratch &ws = scratch[t];
        try {
            worker(t);
        } catch (const StoreFullError &) {
            // Governed stop, not an error (see explorer.cc): drop
            // the interrupted batch whole — insertBatch may have
            // filled only some item ids — and let peers drain on the
            // stop word.  The pending counter is left stale, which
            // is fine: workers exit on the stop word, not on
            // quiescence.
            ws.batch.clear();
            ws.batchPerm.clear();
            ws.batchNode.clear();
            ws.nodeMasks.clear();
            ws.overflows.clear();
            governor.trip(StopReason::ShardFull);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!worker_error)
                worker_error = std::current_exception();
            governor.trip(StopReason::InternalError);
        }
    };

    // Seed and run to quiescence (or to the first tripped budget —
    // the pre-seed poll catches an already-cancelled token or an
    // already-exceeded ceiling before any expansion).
    governor.poll();
    pending.store(1, std::memory_order_relaxed);
    deques[0]->push(packTask(init_idx, 0));

    std::optional<ThreadPool> pool;
    if (threads > 1) {
        pool.emplace(threads);
        for (std::size_t t = 0; t < threads; ++t)
            pool->submit([&, t] { guarded_worker(t); });
        pool->wait();
    } else {
        guarded_worker(0);
    }
    if (worker_error)
        std::rethrow_exception(worker_error);
    const bool cap_stopped = governor.stopped();

    // On a governed stop the deques and scratch batches still hold
    // unexpanded work; the deepest level known fully expanded is one
    // below the shallowest of it.  (Quiescent: workers are gone, so
    // steal() only aborts on its own races — retry until Empty.)
    std::uint32_t min_unexpanded = 0xffffffffu;
    if (cap_stopped) {
        for (std::size_t t = 0; t < threads; ++t) {
            for (;;) {
                std::uint64_t task;
                const auto got = deques[t]->steal(task);
                if (got == WorkDeque::Steal::Empty)
                    break;
                if (got == WorkDeque::Steal::Abort)
                    continue;
                min_unexpanded =
                    std::min(min_unexpanded,
                             store.depthAt(taskId(task)));
            }
            // Unflushed successors: their source (depth-1) was
            // expanded but the results were dropped, so that level
            // is not fully expanded either.
            for (const StateStore::BatchItem &item :
                 scratch[t].batch) {
                min_unexpanded = std::min(
                    min_unexpanded,
                    item.depth > 0 ? item.depth - 1 : 0);
            }
        }
    }

    // Atomic-free merge of the per-worker scratch: counters,
    // rule-fire profiles and violation candidates fold pairwise in
    // ceil(log2(threads)) rounds, each round's merges disjoint.
    treeReduce(
        scratch.data(), scratch.size(),
        pool ? &*pool : nullptr, [](WsScratch &into, WsScratch &from) {
            into.transitions += from.transitions;
            from.transitions = 0;
            into.slept += from.slept;
            from.slept = 0;
            for (std::size_t r = 0; r < from.ruleFires.size(); ++r) {
                into.ruleFires[r] += from.ruleFires[r];
                from.ruleFires[r] = 0;
            }
            for (std::size_t r = 0; r < from.ruleSlept.size(); ++r) {
                into.ruleSlept[r] += from.ruleSlept[r];
                from.ruleSlept[r] = 0;
            }
            into.candidates.insert(into.candidates.end(),
                                   from.candidates.begin(),
                                   from.candidates.end());
            from.candidates.clear();
        });
    WsScratch &merged = scratch[0];
    result.numTransitions = merged.transitions;
    result.sleptTransitions = merged.slept;
    for (std::size_t r = 0; r < merged.ruleFires.size(); ++r)
        result.ruleFireCounts[r] = merged.ruleFires[r];
    for (std::size_t r = 0; r < merged.ruleSlept.size(); ++r)
        result.ruleSleptCounts[r] = merged.ruleSlept[r];

    // Quiescent resolution: dedup the candidate log (re-expansions
    // re-observe candidates), then judge every survivor by its
    // converged producing level.
    std::vector<WsCandidate> &cands = merged.candidates;
    std::sort(cands.begin(), cands.end(), candidateIdLess);
    cands.erase(
        std::unique(cands.begin(), cands.end(), candidateIdEq),
        cands.end());

    bool violation_stopped = false;
    if (!cands.empty()) {
        auto producing_level = [&](const WsCandidate &c) {
            switch (c.kind) {
              case Violation::Kind::Deadlock:
                return store.depthAt(c.idx);
              case Violation::Kind::Overflow:
                return store.depthAt(c.edgeParent);
              default:
                return store.depthAt(c.idx) - 1;
            }
        };
        std::uint32_t l_star = producing_level(cands[0]);
        for (const WsCandidate &c : cands)
            l_star = std::min(l_star, producing_level(c));

        // Visible candidates: exactly those a BFS run (which stops
        // after fully expanding level L*) would have collected.
        std::vector<ResolvedCandidate> visible;
        for (const WsCandidate &c : cands) {
            if (producing_level(c) != l_star)
                continue;
            const std::uint32_t depth =
                c.kind == Violation::Kind::Deadlock
                    ? l_star
                    : l_star + 1;
            visible.push_back({c, depth});
        }
        const ResolvedCandidate best =
            *std::min_element(visible.begin(), visible.end());

        result.violationCount +=
            options.stopAtFirstViolation
                ? static_cast<std::uint64_t>(visible.size())
                : static_cast<std::uint64_t>(cands.size());
        if (!result.violation) {
            record(best.c.kind, best.c.conjunct, best.c.idx,
                   best.depth, best.c.edgeRule, best.c.edgeParent);
        }
        if (options.stopAtFirstViolation)
            violation_stopped = true;

        if (violation_stopped && !cap_stopped) {
            // Reproduce the BFS stop-at-level footprint from the
            // converged labels: BFS would have inserted every state
            // of depth <= L*+1 and stopped with diameter L*.
            result.numStates = store.countDepthAtMost(l_star + 1);
            result.maxDepth = l_star;
        }
    }

    if (!violation_stopped || cap_stopped) {
        result.numStates = store.size();
        result.maxDepth = store.maxDepthQuiescent();
    }
    result.probeCollisions = store.probeCollisions();
    result.completed = !cap_stopped && !violation_stopped;
    result.stopReason =
        cap_stopped ? governor.reason() : StopReason::None;
    if (cap_stopped) {
        result.deepestCompleteLevel =
            min_unexpanded == 0xffffffffu
                ? result.maxDepth
                : (min_unexpanded > 0 ? min_unexpanded - 1 : 0);
    } else {
        result.deepestCompleteLevel = result.maxDepth;
    }
    return finishRun(result);
}

} // namespace cxl
