#include "checker/store_columns.hh"

#include <cstring>
#include <new>

namespace cxl
{
namespace
{

/** Smallest power of two >= n, floored at 16. */
std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t cap = 16;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace

void
ShardColumns::init(ShardMem *mem, bool keep_verifies,
                   std::size_t initial_buckets,
                   std::uint32_t max_entries)
{
    mem_ = mem;
    keepVerifies_ = keep_verifies;
    depths_.reserve((max_entries >> kDepthChunkBits) + 1);
    sizeBuckets(pow2AtLeast(initial_buckets));
}

void
ShardColumns::sizeBuckets(std::size_t cap)
{
    buckets_ = static_cast<std::uint32_t *>(mem_->flatGrow(
        ShardMem::kFlatBuckets, cap * sizeof(std::uint32_t)));
    std::memset(buckets_, 0, cap * sizeof(std::uint32_t));
    mask_ = cap - 1;
    // Rehash from the stored probe hashes — state bytes are never
    // touched, which also makes growth possible while the arena layer
    // has already released (or paged out) old state bytes.
    for (std::uint32_t off = 0; off < count_; ++off) {
        std::uint64_t slot = hashes_[off] & mask_;
        while (buckets_[slot] != 0)
            slot = (slot + 1) & mask_;
        buckets_[slot] = off + 1;
    }
}

void
ShardColumns::growColumns(std::size_t need)
{
    std::size_t cap = entryCap_ == 0 ? 1024 : entryCap_;
    while (cap < need)
        cap *= 2;
    hashes_ = static_cast<std::uint64_t *>(mem_->flatGrow(
        ShardMem::kFlatHashes, cap * sizeof(std::uint64_t)));
    if (keepVerifies_) {
        verifies_ = static_cast<std::uint64_t *>(mem_->flatGrow(
            ShardMem::kFlatVerifies, cap * sizeof(std::uint64_t)));
    }
    parents_ = static_cast<std::uint32_t *>(mem_->flatGrow(
        ShardMem::kFlatParents, cap * sizeof(std::uint32_t)));
    rules_ = static_cast<std::uint16_t *>(mem_->flatGrow(
        ShardMem::kFlatRules, cap * sizeof(std::uint16_t)));
    entryCap_ = cap;
}

std::uint32_t
ShardColumns::append(std::uint64_t hash, std::uint64_t verify,
                     std::uint32_t parent, std::uint16_t rule,
                     std::uint32_t depth)
{
    const std::uint32_t off = count_;
    if (off >= entryCap_)
        growColumns(static_cast<std::size_t>(off) + 1);
    hashes_[off] = hash;
    if (keepVerifies_)
        verifies_[off] = verify;
    parents_[off] = parent;
    rules_[off] = rule;
    const std::uint32_t chunk = off >> kDepthChunkBits;
    if (chunk == depths_.size()) {
        auto *cells = static_cast<std::atomic<std::uint32_t> *>(
            mem_->chunkAlloc(kDepthChunkSize *
                             sizeof(std::atomic<std::uint32_t>)));
        for (std::uint32_t i = 0; i < kDepthChunkSize; ++i)
            new (&cells[i]) std::atomic<std::uint32_t>();
        depths_.push_back(cells);
    }
    depthCell(off).store(depth, std::memory_order_relaxed);
    ++count_;
    return off;
}

void
ShardColumns::reserveEntries(std::size_t entries)
{
    // Buckets at 2x the entry hint keep the load factor <= 0.5
    // through the expected run, so probes stay short and no rehash
    // pause lands mid-exploration.
    const std::size_t cap = pow2AtLeast(2 * entries);
    if (cap > mask_ + 1)
        sizeBuckets(cap);
    if (entries > entryCap_)
        growColumns(entries);
}

} // namespace cxl
