#include "checker/workqueue.hh"

namespace cxl
{
namespace
{

std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t cap = 2;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace

WorkDeque::Ring::Ring(std::size_t capacity)
    : cap(static_cast<std::int64_t>(capacity)),
      mask(static_cast<std::int64_t>(capacity) - 1),
      slots(new std::atomic<std::uint64_t>[capacity])
{
}

WorkDeque::WorkDeque(std::size_t initial_capacity)
{
    rings_.push_back(
        std::make_unique<Ring>(pow2AtLeast(initial_capacity)));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
}

WorkDeque::Ring *
WorkDeque::grow(Ring *old, std::int64_t bottom, std::int64_t top)
{
    auto bigger =
        std::make_unique<Ring>(static_cast<std::size_t>(old->cap) * 2);
    for (std::int64_t i = top; i < bottom; ++i) {
        bigger->at(i).store(old->at(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    Ring *raw = bigger.get();
    // The old ring is retired, not freed: a concurrent thief may
    // still read from it, and its failing CAS discards the value.
    rings_.push_back(std::move(bigger));
    return raw;
}

void
WorkDeque::push(std::uint64_t task)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring *a = ring_.load(std::memory_order_relaxed);
    if (b - t > a->cap - 1) {
        a = grow(a, b, t);
        ring_.store(a, std::memory_order_release);
    }
    a->at(b).store(task, std::memory_order_relaxed);
    // Release-publish: a thief that acquires the new bottom sees the
    // slot write (and, transitively, the ring published above).
    bottom_.store(b + 1, std::memory_order_release);
}

bool
WorkDeque::pop(std::uint64_t &out)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring *a = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the bottom reservation must be
    // globally ordered before the top read, or a concurrent thief
    // and the owner could both claim the last task.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
        // Already empty; restore bottom.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }
    out = a->at(b).load(std::memory_order_relaxed);
    if (t == b) {
        // Last element: race the thieves for it via top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst,
            std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
    }
    return true;
}

WorkDeque::Steal
WorkDeque::steal(std::uint64_t &out)
{
    // seq_cst load pair, mirroring pop(): top must be read no later
    // than bottom in the global order, or a stale bottom could make a
    // non-empty deque look empty forever.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
        return Steal::Empty;
    Ring *a = ring_.load(std::memory_order_acquire);
    out = a->at(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
        return Steal::Abort; // lost to the owner or another thief
    return Steal::Success;
}

} // namespace cxl
