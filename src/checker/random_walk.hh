/**
 * @file
 * Randomised walk testing, in the spirit of gem5's Ruby Random Tester:
 * a cheap complement to exhaustive BFS that samples long interleaving
 * paths uniformly at random and checks the invariant at every step.
 *
 * For this model BFS is exhaustive anyway; the walker exists (a) as a
 * scalable fallback for extended models whose state spaces outgrow
 * exhaustive search, and (b) as an independent implementation that
 * cross-checks the explorer (both must agree on the correct model's
 * cleanliness and find violations in mutated ones).
 */

#ifndef CXL_CHECKER_RANDOM_WALK_HH
#define CXL_CHECKER_RANDOM_WALK_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "checker/explorer.hh"
#include "invariants/invariant.hh"
#include "protocol/rules.hh"

namespace cxl
{

/** Random-walk parameters. */
struct RandomWalkOptions {
    std::uint64_t seed = 1;
    std::uint64_t walks = 256;     ///< independent walks from initial
    std::uint32_t maxSteps = 256;  ///< step budget per walk
    bool canonicaliseTids = true;
};

/** Aggregate results over all walks. */
struct RandomWalkResult {
    std::uint64_t walks = 0;
    std::uint64_t steps = 0;          ///< total transitions taken
    std::uint64_t terminalWalks = 0;  ///< walks that hit a state with
                                      ///< no successors
    std::optional<Violation> violation;
    double seconds = 0.0;
};

/** Uniform-random walker over the transition system. */
class RandomWalker
{
  public:
    RandomWalker(const RuleSet &rules, const Scenario &scenario,
                 const InvariantSet &invariants);

    /** Run the configured number of walks; stops at a violation. */
    RandomWalkResult run(const RandomWalkOptions &options = {}) const;

  private:
    const RuleSet &rules_;
    const Scenario &scenario_;
    const InvariantSet &invariants_;
};

} // namespace cxl

#endif // CXL_CHECKER_RANDOM_WALK_HH
