#include "checker/store_mem.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <vector>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#define CXL_STORE_HAVE_MMAP 1
#endif

namespace cxl
{
namespace
{

/** Heap backend: the classic layout.  Dropped blocks are freed and
 * gone — exactly the pre-backend StateStore behaviour. */
class RamShardMem final : public ShardMem
{
  public:
    ~RamShardMem() override
    {
        for (Flat &f : flats_)
            std::free(f.p);
        for (void *c : chunks_)
            ::operator delete(c);
        for (void *b : blocks_)
            ::operator delete(b);
    }

    void *
    flatGrow(unsigned id, std::size_t bytes) override
    {
        Flat &f = flats_[id];
        if (bytes <= f.cap)
            return f.p;
        void *p = std::realloc(f.p, bytes);
        if (!p)
            throw std::bad_alloc();
        f.p = p;
        f.cap = bytes;
        return p;
    }

    void *
    chunkAlloc(std::size_t bytes) override
    {
        void *p = ::operator new(bytes);
        chunks_.push_back(p);
        return p;
    }

    void *
    blockAlloc(std::uint32_t index, std::size_t bytes) override
    {
        void *p = ::operator new(bytes);
        if (index >= blocks_.size())
            blocks_.resize(index + 1, nullptr);
        blocks_[index] = p;
        return p;
    }

    void
    blockDrop(std::uint32_t index) override
    {
        ::operator delete(blocks_[index]);
        blocks_[index] = nullptr;
    }

    void *
    blockRecover(std::uint32_t) override
    {
        return nullptr;
    }

    bool recoverable() const override { return false; }

  private:
    struct Flat {
        void *p = nullptr;
        std::size_t cap = 0;
    };
    Flat flats_[kFlatCount];
    std::vector<void *> chunks_;
    std::vector<void *> blocks_;
};

#if CXL_STORE_HAVE_MMAP

std::size_t
pageSize()
{
    static const std::size_t page = [] {
        const long p = ::sysconf(_SC_PAGESIZE);
        return p > 0 ? static_cast<std::size_t>(p)
                     : std::size_t{4096};
    }();
    return page;
}

std::size_t
roundUpPage(std::size_t bytes)
{
    const std::size_t page = pageSize();
    return (bytes + page - 1) & ~(page - 1);
}

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::runtime_error(std::string("mmap store: ") + what +
                             ": " + std::strerror(errno));
}

/**
 * An anonymous backing file: memfd when available, else an
 * O_TMPFILE (or created-and-unlinked) file in @p dir — so spill
 * space is reclaimed by the kernel no matter how the process exits.
 * An empty @p dir means "RAM-speed anonymous memory" (memfd/tmpfs);
 * a real directory pins the bytes to that filesystem for true
 * out-of-core spill.
 */
int
openBackingFile(const std::string &dir, const char *tag)
{
    if (dir.empty()) {
#if defined(MFD_CLOEXEC)
        const int fd = ::memfd_create(tag, MFD_CLOEXEC);
        if (fd >= 0)
            return fd;
#endif
    }
    const std::string where = dir.empty() ? "/tmp" : dir;
#if defined(O_TMPFILE)
    const int fd = ::open(where.c_str(), O_TMPFILE | O_RDWR | O_CLOEXEC,
                          0600);
    if (fd >= 0)
        return fd;
#endif
    std::string tmpl = where + "/cxl-store-XXXXXX";
    std::vector<char> path(tmpl.begin(), tmpl.end());
    path.push_back('\0');
    const int tmpfd = ::mkstemp(path.data());
    if (tmpfd < 0)
        throwErrno(tag);
    ::unlink(path.data());
    return tmpfd;
}

/**
 * File-backed backend: every flat region and the chunk/arena pools
 * get their own backing file, grown with ftruncate and (flats)
 * remapped in place with mremap.  See store_mem.hh for the drop /
 * recover / go-cold scheme.
 */
class MmapShardMem final : public ShardMem
{
  public:
    explicit MmapShardMem(std::string dir) : dir_(std::move(dir)) {}

    ~MmapShardMem() override
    {
        for (Flat &f : flats_) {
            if (f.p)
                ::munmap(f.p, f.cap);
            if (f.fd >= 0)
                ::close(f.fd);
        }
        for (const Mapping &c : chunks_)
            ::munmap(c.p, c.bytes);
        if (chunkFd_ >= 0)
            ::close(chunkFd_);
        for (const Block &b : blocks_) {
            if (b.p)
                ::munmap(b.p, b.bytes);
        }
        if (arenaFd_ >= 0)
            ::close(arenaFd_);
    }

    void *
    flatGrow(unsigned id, std::size_t bytes) override
    {
        Flat &f = flats_[id];
        const std::size_t cap = roundUpPage(bytes);
        if (cap <= f.cap)
            return f.p;
        if (f.fd < 0)
            f.fd = openBackingFile(dir_, "cxl-store-flat");
        if (::ftruncate(f.fd, static_cast<off_t>(cap)) != 0)
            throwErrno("ftruncate (flat column)");
        void *p =
            f.p == nullptr
                ? ::mmap(nullptr, cap, PROT_READ | PROT_WRITE,
                         MAP_SHARED, f.fd, 0)
                : ::mremap(f.p, f.cap, cap, MREMAP_MAYMOVE);
        if (p == MAP_FAILED)
            throwErrno("map (flat column)");
        bumpMapped(cap - f.cap);
        bumpFile(cap - f.cap);
        f.p = p;
        f.cap = cap;
        return p;
    }

    void *
    chunkAlloc(std::size_t bytes) override
    {
        if (chunkFd_ < 0)
            chunkFd_ = openBackingFile(dir_, "cxl-store-chunk");
        const std::size_t len = roundUpPage(bytes);
        const off_t off = chunkEnd_;
        if (::ftruncate(chunkFd_, off + static_cast<off_t>(len)) != 0)
            throwErrno("ftruncate (chunk)");
        void *p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                         MAP_SHARED, chunkFd_, off);
        if (p == MAP_FAILED)
            throwErrno("map (chunk)");
        chunkEnd_ += static_cast<off_t>(len);
        bumpMapped(len);
        bumpFile(len);
        chunks_.push_back({p, len});
        return p;
    }

    void *
    blockAlloc(std::uint32_t index, std::size_t bytes) override
    {
        if (arenaFd_ < 0)
            arenaFd_ = openBackingFile(dir_, "cxl-store-arena");
        const std::size_t len = roundUpPage(bytes);
        const off_t off = arenaEnd_;
        if (::ftruncate(arenaFd_, off + static_cast<off_t>(len)) != 0)
            throwErrno("ftruncate (arena block)");
        void *p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                         MAP_SHARED, arenaFd_, off);
        if (p == MAP_FAILED)
            throwErrno("map (arena block)");
        arenaEnd_ += static_cast<off_t>(len);
        bumpMapped(len);
        bumpFile(len);
        if (index >= blocks_.size())
            blocks_.resize(index + 1);
        blocks_[index] = {p, len, off};
        return p;
    }

    void
    blockDrop(std::uint32_t index) override
    {
        Block &b = blocks_[index];
        if (!b.p)
            return;
        // Advise the level's pages cold before unmapping: the file
        // keeps the bytes, but the kernel may reclaim the physical
        // pages ahead of memory pressure.
#if defined(MADV_COLD)
        ::madvise(b.p, b.bytes, MADV_COLD);
#endif
        ::munmap(b.p, b.bytes);
        bumpMapped(-static_cast<std::int64_t>(b.bytes));
        b.p = nullptr;
    }

    void *
    blockRecover(std::uint32_t index) override
    {
        Block &b = blocks_[index];
        if (b.p)
            return b.p;
        void *p = ::mmap(nullptr, b.bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED, arenaFd_, b.off);
        if (p == MAP_FAILED)
            throwErrno("remap (sealed arena block)");
        bumpMapped(b.bytes);
        b.p = p;
        return p;
    }

    bool recoverable() const override { return true; }

    std::uint64_t
    mappedBytes() const override
    {
        return mapped_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    backingFileBytes() const override
    {
        return fileBytes_.load(std::memory_order_relaxed);
    }

  private:
    struct Flat {
        int fd = -1;
        void *p = nullptr;
        std::size_t cap = 0;
    };
    struct Mapping {
        void *p;
        std::size_t bytes;
    };
    struct Block {
        void *p = nullptr;
        std::size_t bytes = 0;
        off_t off = 0;
    };

    void
    bumpMapped(std::int64_t delta)
    {
        mapped_.fetch_add(static_cast<std::uint64_t>(delta),
                          std::memory_order_relaxed);
    }
    void
    bumpFile(std::uint64_t delta)
    {
        fileBytes_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::string dir_;
    Flat flats_[kFlatCount];
    int chunkFd_ = -1;
    off_t chunkEnd_ = 0;
    std::vector<Mapping> chunks_;
    int arenaFd_ = -1;
    off_t arenaEnd_ = 0;
    std::vector<Block> blocks_;
    std::atomic<std::uint64_t> mapped_{0};
    std::atomic<std::uint64_t> fileBytes_{0};
};

#endif // CXL_STORE_HAVE_MMAP

} // namespace

std::unique_ptr<ShardMem>
makeShardMem(StoreBackend backend, const std::string &dir)
{
#if CXL_STORE_HAVE_MMAP
    if (backend == StoreBackend::Mmap)
        return std::make_unique<MmapShardMem>(dir);
#else
    (void)backend;
#endif
    (void)dir;
    return std::make_unique<RamShardMem>();
}

} // namespace cxl
