/**
 * @file
 * Breadth-first explicit-state explorer.
 *
 * This is the reproduction's counterpart of the paper's SWMR theorem
 * (Section 6): for the finite two-device, one-location model we
 * enumerate *every* reachable state and evaluate *every* invariant
 * conjunct on each, instead of proving preservation deductively.  On a
 * violation (or deadlock, if requested) the explorer reconstructs the
 * full rule-labelled trace from the initial state — the counterpart of
 * the paper's message-sequence-chart counterexamples (Fig. 5).
 *
 * Two parallel schedules share the sharded StateStore (see
 * Schedule):
 *
 *  - Bfs: depth-synchronized levels expanded by a worker pool, with
 *    per-worker scratch buffers merged at the level barrier.
 *    Results (state count, transition count, violation verdict and
 *    depth) are deterministic regardless of thread count.
 *  - WorkSteal: asynchronous task-parallel expansion over per-worker
 *    Chase-Lev deques (checker/workqueue.hh) — no depth barrier.
 *    Depth labels converge to BFS-minimal values by label
 *    correction, so verdicts, state counts and diameters are still
 *    exact and thread-count-deterministic; only the transition
 *    count (redundant re-expansions) becomes schedule-dependent.
 *    See explorer_ws.cc.
 */

#ifndef CXL_CHECKER_EXPLORER_HH
#define CXL_CHECKER_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "checker/state_store.hh"
#include "invariants/invariant.hh"
#include "protocol/rules.hh"
#include "protocol/scenario.hh"
#include "support/governor.hh"

namespace cxl
{

/** Parallel exploration schedule (see the file comment). */
enum class Schedule : std::uint8_t {
    /** Depth-synchronized level-parallel BFS (the paper-exact
     * baseline: transition counts reproducible too). */
    Bfs,
    /**
     * Asynchronous work stealing: workers spawn successor tasks into
     * per-worker deques and steal when dry, so no worker idles at a
     * depth barrier.  Verdicts, state counts and diameters match Bfs
     * bit-for-bit at any thread count; transition/slept counts are
     * schedule-dependent, and counterexample traces are shortest
     * paths (by converged depth labels) rather than BFS-layer
     * traces.
     */
    WorkSteal,
};

/**
 * A mid-run counter sample handed to ExploreOptions::progress.
 * Counters are relaxed reads of live worker state — monotonically
 * believable but not barrier-exact (the final ExploreResult is the
 * authoritative count).  depth is the deepest level any worker has
 * generated a successor into so far.
 */
struct ProgressSnapshot {
    std::uint64_t states = 0;      ///< distinct states inserted so far
    std::uint64_t transitions = 0; ///< rule firings examined so far
    std::uint32_t depth = 0;       ///< deepest level reached so far
    std::uint64_t rssBytes = 0;    ///< current process RSS
    double seconds = 0.0;          ///< wall-clock since run start
};

/**
 * Observer for periodic progress samples.  Called from engine worker
 * threads (one call at a time — emission is serialized), so it must
 * be thread-safe with respect to the caller's own state and must not
 * block for long: workers poll budgets at the same granularity.
 */
using ProgressFn = std::function<void(const ProgressSnapshot &)>;

/** Exploration limits and switches. */
struct ExploreOptions {
    std::uint64_t maxStates = 20'000'000;
    std::uint32_t maxDepth = 60000;

    /** Which parallel schedule expands the frontier. */
    Schedule schedule = Schedule::Bfs;

    /** Relabel tids per state; required for free-run finiteness. */
    bool canonicaliseTids = true;

    /**
     * Identify device-permutation-symmetric states (classic Murphi
     * scalarset reduction): every generated state is replaced by the
     * canonical representative of its orbit under all ndev! device
     * permutations (SystemState::deviceCanonical).  Only sound when
     * the scenario itself is device-symmetric (free-run, or identical
     * programs from a symmetric initial state).  This is what keeps
     * 3-4 device free-run spaces enumerable.
     */
    bool symmetryReduction = false;

    /**
     * Hash-compaction (fingerprint-only) storage: the visited set
     * keeps a second 64-bit verification fingerprint per state
     * instead of the state bytes, and releases old BFS levels' state
     * bytes as exploration advances — memory per state drops by
     * roughly an order of magnitude, which is what makes the 4-device
     * free-run space enumerable in RAM.  Counts and verdicts are
     * exact up to fingerprint collisions (expected ~ n^2 / 2^65;
     * detected probe-hash near-misses are reported via
     * ExploreResult::probeCollisions).  Counterexample *traces*
     * cannot be rebuilt in this mode: a violation is still found at
     * the same minimal depth, but Violation::trace carries at most
     * the final state and Violation::traceNote explains how to re-run
     * for the full path.
     */
    bool compaction = false;

    /**
     * Visited-set memory backend (see StoreBackend): InRam is the
     * classic heap store; Mmap gives every shard file-backed growable
     * mappings and — under the depth-synchronized schedule — unmaps
     * sealed BFS levels, so the mapped window tracks the frontier
     * while the backing files keep every byte (the out-of-core mode).
     * Verdicts, counts and diameters are backend-independent; under
     * Mmap counterexample traces are reconstructible even with
     * compaction on (sealed cells persist in the backing file).
     */
    StoreBackend storeBackend = StoreBackend::InRam;

    /** Mmap backend: backing-file directory ("" = anonymous
     * in-memory files). */
    std::string storeDir;

    /**
     * Pre-size the visited set for this many states (0 = default
     * sizing): eliminates rehash pauses and keeps the probe load
     * factor <= 0.5 through a run of the expected size.  A hint, not
     * a cap — exploration continues past it.
     */
    std::uint64_t expectedStates = 0;

    /**
     * Partial-order reduction (sleep sets over the rules' static
     * dependency footprints): prune successor firings whose effect is
     * covered by a commuting interleaving explored elsewhere in the
     * same BFS level structure.  Every reachable state is still
     * visited at its minimal depth, so state counts, diameters,
     * verdicts and violated-conjunct sets are identical to an
     * unreduced run — only numTransitions (and wall-clock) drop.
     * Composes with symmetryReduction (sleep masks are relabelled
     * through the canonicalising device permutation) and compaction.
     * See checker/por.hh.
     */
    bool por = false;

    /** Evaluate the invariant set on every reachable state. */
    bool checkInvariants = true;

    /** Stop at the first violation (otherwise count them all). */
    bool stopAtFirstViolation = true;

    /**
     * Report states with no enabled rule before the programs finished
     * (program mode only; free-run states always have successors).
     */
    bool checkDeadlock = true;

    /**
     * Wall-clock budget in seconds (0 = none).  A run that exceeds
     * it stops gracefully at batch-flush granularity and reports the
     * explored prefix with StopReason::Deadline.  Where the stop
     * lands is wall-clock-dependent by design — deadline-stopped
     * counts are not reproducible.
     */
    double maxSeconds = 0;

    /**
     * Resident-set ceiling in bytes (0 = none), sampled from
     * /proc/self/statm by the governor at flush granularity.  The
     * ceiling is process-wide *anonymous* RSS — resident minus
     * file-backed pages — so the mmap store backends' mappings
     * (which the kernel reclaims by writeback, not swap) do not
     * count against it.  Not per-run allocation, and the stop is
     * detected one sample stride after the crossing — treat it as a
     * safety net, not an exact budget.
     */
    std::uint64_t maxRssBytes = 0;

    /** External cancellation (SIGINT/SIGTERM via the CLIs, or any
     * other holder of the token); invalid token = not cancellable. */
    CancelToken cancel;

    /**
     * Total visited-set capacity (0 = the architectural 2^28 per
     * shard).  Hitting it stops the run gracefully with
     * StopReason::ShardFull instead of erroring — and makes the
     * shard-full path testable at toy sizes.
     */
    std::uint64_t storeCapacity = 0;

    /**
     * Periodic progress observer (empty = none).  Sampled at
     * governor-poll granularity — the same batch-flush cadence the
     * budgets ride — and rate-limited to one call per
     * progressIntervalSeconds.  Purely observational: verdicts and
     * counts are unaffected by whether a callback is installed.
     */
    ProgressFn progress;

    /** Minimum seconds between progress calls; <= 0 reports at every
     * flush (tests use that to see the stream without waiting). */
    double progressIntervalSeconds = 0.25;

    /**
     * Worker threads for the depth-synchronized parallel expansion;
     * 0 means one per hardware thread.  For runs that complete or
     * stop at a violation, any value yields the same
     * state/transition counts and violation verdict (the explorer
     * completes the BFS level a violation is found in and picks the
     * deterministically smallest witness); only wall-clock time and
     * the shape of the reconstructed trace may differ.  Runs
     * truncated by maxStates stop at a thread-dependent point: the
     * cap may be overshot by up to one state per worker and the
     * final counts are not comparable across thread counts.
     * Requests above 1024 workers are clamped.
     */
    std::size_t numThreads = 0;
};

/** A single step of a counterexample trace. */
struct TraceStep {
    std::string ruleName; ///< empty for the initial state
    SystemState state;
};

/** Description of a found violation. */
struct Violation {
    enum class Kind : std::uint8_t {
        Conjunct, ///< an invariant conjunct failed
        /**
         * A rule overfilled a channel (mutated models).  Counted per
         * overflowing transition: overflow is an edge property, and
         * gating it on target-state novelty would make the verdict
         * depend on which racing edge inserted the state first.
         */
        Overflow,
        Deadlock, ///< no rule enabled before program completion
    };

    Kind kind = Kind::Conjunct;
    std::string conjunctName;   ///< valid for Kind::Conjunct
    std::string conjunctFamily; ///< valid for Kind::Conjunct
    std::uint32_t stateIndex = 0;
    std::uint32_t depth = 0;

    /**
     * Kind::Overflow only: the rule whose channel push overflowed.
     * Recorded from the violating *edge* itself, so it is correct
     * even when that edge lands on an already-known state whose
     * breadcrumb path runs through a different rule.
     */
    std::string overflowRule;

    /**
     * Rule-labelled path from the initial state to the bad state.
     * For overflow violations the trace follows the overflowing
     * edge's own parent and ends with that edge (see overflowRule),
     * not the target state's breadcrumbs.  Empty or truncated when
     * traceNote is set.
     */
    std::vector<TraceStep> trace;

    /**
     * Non-empty when the trace could not be fully rebuilt (hash
     * compaction releases breadcrumb states); explains what is shown
     * and how to obtain the full path.
     */
    std::string traceNote;

    std::string describe() const;
};

/** Aggregate exploration results. */
struct ExploreResult {
    std::uint64_t numStates = 0;      ///< distinct reachable states
    std::uint64_t numTransitions = 0; ///< rule firings examined
    std::uint32_t maxDepth = 0;       ///< BFS diameter reached
    bool completed = false;           ///< frontier fully drained
    std::uint64_t violationCount = 0; ///< violations seen (counted mode)
    std::optional<Violation> violation;
    double seconds = 0.0;

    /**
     * Probe-hash collisions the store detected and kept separate
     * (see StateStore::probeCollisions).  A nonzero value in compact
     * mode is the visible tail of the fingerprinting risk; each one
     * would have been a silent state merge without the verification
     * fingerprint.
     */
    std::uint64_t probeCollisions = 0;

    /** Per-rule firing counts, indexed by rule id. */
    std::vector<std::uint64_t> ruleFireCounts;

    /**
     * Partial-order reduction accounting (zero when por is off):
     * enabled rule firings skipped because the rule sat in the
     * expanded state's sleep set.  numTransitions + sleptTransitions
     * is what an unreduced run of the same space would have explored.
     */
    std::uint64_t sleptTransitions = 0;

    /** Per-rule slept-firing counts, indexed by rule id (por only). */
    std::vector<std::uint64_t> ruleSleptCounts;

    /**
     * Why the governor stopped the run (StopReason::None when it
     * completed or stopped at a violation).  Every stop cause — cap,
     * deadline, memory, cancel, shard-full — lands here instead of
     * surfacing as an exception, and the counts above describe the
     * explored prefix exactly.
     */
    StopReason stopReason = StopReason::None;

    /**
     * Deepest BFS level known to be *fully* expanded when the run
     * ended: maxDepth for completed (and violation-stopped) runs; on
     * a governed stop, the last level every worker finished before
     * the stop word tripped (conservative under the work-stealing
     * schedule, where levels interleave).  States at or below this
     * level have had every successor generated, so per-level facts
     * up to here are trustworthy even in a partial result.
     */
    std::uint32_t deepestCompleteLevel = 0;

    /** Bytes still mapped by the store's file-backed shard memory at
     * the end of the run (0 for the InRam backend) — the out-of-core
     * mapped window. */
    std::uint64_t storeMappedBytes = 0;

    /** Final total size of the store's backing files (0 for InRam);
     * how much state the run spilled out of core. */
    std::uint64_t storeFileBytes = 0;
};

/**
 * BFS over the reachable states of (rules, scenario), checking
 * invariants on the way.
 */
class Explorer
{
  public:
    Explorer(const RuleSet &rules, const Scenario &scenario,
             const InvariantSet &invariants);

    /** Run to completion or until a limit/violation stops the walk;
     * dispatches on ExploreOptions::schedule. */
    ExploreResult run(const ExploreOptions &options = {});

  private:
    /** Depth-synchronized level-parallel schedule (explorer.cc). */
    ExploreResult runBfs(const ExploreOptions &options);
    /** Asynchronous work-stealing schedule (explorer_ws.cc). */
    ExploreResult runWorkSteal(const ExploreOptions &options);

    std::vector<TraceStep> rebuildTrace(const StateStore &store,
                                        std::uint32_t idx) const;

    const RuleSet &rules_;
    const Scenario &scenario_;
    const InvariantSet &invariants_;
};

} // namespace cxl

#endif // CXL_CHECKER_EXPLORER_HH
