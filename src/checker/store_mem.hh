/**
 * @file
 * Backend memory layer of the visited-state store.
 *
 * StateStore's shard columns and state arenas (store_columns.hh,
 * store_arena.hh) never allocate directly: each shard owns one
 * ShardMem that hands out the three allocation shapes the store
 * needs, and the backend choice — plain heap or per-shard
 * file-backed mappings — is made once here, invisibly to the layers
 * above:
 *
 *  - flats: amortised-growable arrays (the SoA entry columns and the
 *    probe bucket array).  Growing may move the base, so callers
 *    re-read the returned pointer; flats are only touched under the
 *    shard lock (or quiescent), matching that contract.
 *  - chunks: fixed-size allocations whose address never moves (the
 *    chunked atomic depth column and the compact-mode state-offset
 *    column), so lock-free readers can walk them while peers insert.
 *  - blocks: fixed-size, index-addressed arena blocks that can be
 *    dropped (sealLevel) and — on backends with a backing file —
 *    recovered later, because the bytes persist in the file.
 *
 * The Mmap backend gives every shard its own anonymous backing files
 * (memfd, or O_TMPFILE/unlinked files under an explicit directory for
 * true spill-to-disk), grown with ftruncate and remapped with
 * mremap.  Dropping a sealed block munmaps it — address space and
 * residency shrink, the file keeps the bytes — after advising the
 * kernel the pages have gone cold, so a bounded mapped window walks
 * the (unbounded) file as BFS levels seal.  That is what lets a
 * space whose full-mode arena exceeds an address-space budget
 * (`ulimit -v`) complete out of core.
 *
 * Thread-safety: all allocation calls are made under the owning
 * shard's lock (or while quiescent).  The byte counters are atomics
 * readable from any thread (bench/progress sampling).
 */

#ifndef CXL_CHECKER_STORE_MEM_HH
#define CXL_CHECKER_STORE_MEM_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace cxl
{

/** Which memory backend a StateStore's shards allocate from. */
enum class StoreBackend : std::uint8_t {
    InRam, ///< heap allocations; dropped blocks are freed for good
    Mmap,  ///< per-shard file-backed mappings; dropped blocks persist
};

/** One shard's allocator (see the file comment for the shapes). */
class ShardMem
{
  public:
    /** Flat-region slots a shard uses (one growable array each). */
    enum FlatId : unsigned {
        kFlatHashes = 0,
        kFlatVerifies,
        kFlatParents,
        kFlatRules,
        kFlatBuckets,
        kFlatCount,
    };

    virtual ~ShardMem() = default;

    /**
     * Grow flat region @p id to at least @p bytes (first call
     * creates it).  Contents are preserved; the base may move —
     * callers re-read the return value.  Never shrinks.
     */
    virtual void *flatGrow(unsigned id, std::size_t bytes) = 0;

    /** Allocate @p bytes at an address that never moves. */
    virtual void *chunkAlloc(std::size_t bytes) = 0;

    /**
     * Allocate arena block @p index (@p bytes each); blocks are
     * created in index order, each at a stable address.
     */
    virtual void *blockAlloc(std::uint32_t index,
                             std::size_t bytes) = 0;

    /** Release block @p index's memory.  InRam frees it for good;
     * Mmap unmaps the window (the backing file keeps the bytes). */
    virtual void blockDrop(std::uint32_t index) = 0;

    /** Re-map a dropped block; nullptr when the backend cannot
     * (InRam).  Callers hold the shard lock or are quiescent. */
    virtual void *blockRecover(std::uint32_t index) = 0;

    /** True when dropped blocks can be recovered (a backing file
     * holds their bytes). */
    virtual bool recoverable() const = 0;

    /** Bytes currently mapped/allocated by this shard's file-backed
     * regions (0 for InRam: nothing is file-backed). */
    virtual std::uint64_t mappedBytes() const { return 0; }

    /** Total size of this shard's backing files (0 for InRam). */
    virtual std::uint64_t backingFileBytes() const { return 0; }
};

/**
 * Build one shard's allocator.  @p dir names the backing directory
 * for StoreBackend::Mmap ("" = anonymous in-memory files); ignored
 * for InRam.  On platforms without the required mmap surface the
 * Mmap backend degrades to InRam (dropped blocks unrecoverable).
 *
 * @throws std::runtime_error when a backing file cannot be created.
 */
std::unique_ptr<ShardMem> makeShardMem(StoreBackend backend,
                                       const std::string &dir);

} // namespace cxl

#endif // CXL_CHECKER_STORE_MEM_HH
