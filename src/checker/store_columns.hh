/**
 * @file
 * Shard-column layer of the visited-state store.
 *
 * One ShardColumns instance holds a shard's struct-of-arrays entry
 * columns — probe hash, verification fingerprint, parent, rule, and
 * the chunked atomic depth column — plus the open-addressing bucket
 * array, all allocated from the shard's ShardMem backend
 * (store_mem.hh).  The probe/insert *algorithm* stays in the
 * StateStore façade; this layer only owns the memory layout:
 *
 *  - the hash/verify/parent/rule columns and the bucket array are
 *    backend flats — they may move when grown, so they are touched
 *    only under the shard lock (or quiescent), matching the façade's
 *    published thread-safety contract;
 *  - the depth column lives in fixed-size chunks (backend chunkAlloc,
 *    addresses never move) behind a fully-reserved spine, so
 *    depthCell() is readable lock-free at any time — the
 *    work-stealing explorer's stale-task check depends on this.
 *
 * Growth doubles the entry capacity (realloc-style, preserved by the
 * backend) and rehashes buckets from the stored probe hashes only —
 * state bytes are never touched, which is what lets the arena layer
 * drop them independently.
 */

#ifndef CXL_CHECKER_STORE_COLUMNS_HH
#define CXL_CHECKER_STORE_COLUMNS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "checker/store_mem.hh"

namespace cxl
{

/** One shard's SoA entry columns + probe buckets (see file comment). */
class ShardColumns
{
  public:
    /** log2 of entries per depth-column chunk. */
    static constexpr std::uint32_t kDepthChunkBits = 16;
    static constexpr std::uint32_t kDepthChunkSize =
        1u << kDepthChunkBits;

    /**
     * Bind to a backend and size the initial bucket array.
     * @p keep_verifies stores the 64-bit verification fingerprint per
     * entry (compact mode, and full-mode backends that dedup sealed
     * entries by fingerprint).  @p max_entries bounds the depth-chunk
     * spine reservation.
     */
    void init(ShardMem *mem, bool keep_verifies,
              std::size_t initial_buckets, std::uint32_t max_entries);

    std::uint32_t count() const { return count_; }
    std::uint64_t mask() const { return mask_; }

    std::uint32_t bucketAt(std::uint64_t slot) const
    {
        return buckets_[slot];
    }
    void setBucket(std::uint64_t slot, std::uint32_t v)
    {
        buckets_[slot] = v;
    }

    std::uint64_t hashAt(std::uint32_t off) const
    {
        return hashes_[off];
    }
    std::uint64_t verifyAt(std::uint32_t off) const
    {
        return verifies_[off];
    }
    std::uint32_t parentAt(std::uint32_t off) const
    {
        return parents_[off];
    }
    std::uint16_t ruleAt(std::uint32_t off) const
    {
        return rules_[off];
    }
    void setParent(std::uint32_t off, std::uint32_t p)
    {
        parents_[off] = p;
    }
    void setRule(std::uint32_t off, std::uint16_t r)
    {
        rules_[off] = r;
    }

    /** Lock-free-readable depth cell (chunked atomics; see file
     * comment). */
    std::atomic<std::uint32_t> &
    depthCell(std::uint32_t off) const
    {
        return depths_[off >> kDepthChunkBits]
                      [off & (kDepthChunkSize - 1)];
    }

    /** Detected probe-hash collision counter (façade-maintained). */
    void bumpCollisions() { ++collisions_; }
    std::uint64_t collisions() const { return collisions_; }

    /** Grow buckets at 3/4 load so the next append keeps probes
     * short; call before probing. */
    void
    maybeGrow()
    {
        if ((static_cast<std::uint64_t>(count_) + 1) * 4 >=
            (mask_ + 1) * 3)
            sizeBuckets((mask_ + 1) * 2);
    }

    /**
     * Append one entry's column values (not the bucket link — the
     * façade writes that after the arena append succeeds, so a thrown
     * arena-full error cannot publish a half-made entry).
     * @return the new entry's offset.
     */
    std::uint32_t append(std::uint64_t hash, std::uint64_t verify,
                         std::uint32_t parent, std::uint16_t rule,
                         std::uint32_t depth);

    /** Pre-size columns for @p entries and buckets for <=0.5 load. */
    void reserveEntries(std::size_t entries);

  private:
    void sizeBuckets(std::size_t cap);
    void growColumns(std::size_t need);

    ShardMem *mem_ = nullptr;
    std::uint64_t *hashes_ = nullptr;
    std::uint64_t *verifies_ = nullptr;
    std::uint32_t *parents_ = nullptr;
    std::uint16_t *rules_ = nullptr;
    std::uint32_t *buckets_ = nullptr;
    /** Depth-chunk spine; fully reserved, so push_back never moves
     * the chunk pointers lock-free readers are walking. */
    std::vector<std::atomic<std::uint32_t> *> depths_;
    std::uint64_t mask_ = 0;
    std::uint32_t count_ = 0;
    std::size_t entryCap_ = 0;
    std::uint64_t collisions_ = 0;
    bool keepVerifies_ = false;
};

} // namespace cxl

#endif // CXL_CHECKER_STORE_COLUMNS_HH
