#include "checker/state_store.hh"

#include <algorithm>

namespace cxl
{

StateStore::StateStore(const StoreConfig &config)
    : mode_(config.mode), backend_(config.backend)
{
    // The per-shard ceiling from a total-state capacity: hashing
    // spreads entries near-uniformly, so the first shard to fill does
    // so at roughly capacity/kNumShards — close enough for a budget.
    std::uint32_t limit = kOffsetMask;
    if (config.capacityLimit != 0) {
        const std::uint64_t per = std::max<std::uint64_t>(
            1, config.capacityLimit / kNumShards);
        limit = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(per, kOffsetMask));
    }
    const std::size_t per_shard_buckets =
        config.initialBuckets / kNumShards;
    for (Shard &shard : shards_) {
        shard.limit = limit;
        shard.mem = makeShardMem(backend_, config.dir);
        shard.arena.init(shard.mem.get(), mode_, kOffsetMask);
        // Fingerprints are the identity in compact mode; full-mode
        // recoverable backends keep them too, to dedup against sealed
        // (unmapped) entries without refaulting their blocks.
        needsVerify_ = mode_ == StoreMode::Compact ||
                       shard.arena.recoverable();
        shard.cols.init(shard.mem.get(), needsVerify_,
                        per_shard_buckets, kOffsetMask);
    }
}

void
StateStore::reserveStates(std::uint64_t expected)
{
    const auto per_shard =
        static_cast<std::size_t>(expected / kNumShards + 1);
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.cols.reserveEntries(per_shard);
    }
}

void
StateStore::stateInto(std::uint32_t id, SystemState &out) const
{
    const Shard &shard = shards_[shardOf(id)];
    const std::uint32_t off = id & kOffsetMask;
    if (mode_ == StoreMode::Full) {
        out = *shard.arena.fullAtCold(off);
        return;
    }
    shard.arena.cellInto(off, out);
}

std::pair<std::uint32_t, bool>
StateStore::insert(const SystemState &state, std::uint64_t hash,
                   std::uint32_t parent, std::uint16_t rule_id,
                   std::uint32_t depth)
{
    // Route by the top bits; probe by the low bits, so the two index
    // streams stay independent.  The verification fingerprint is
    // computed before the lock is taken.
    const auto shard_idx =
        static_cast<std::uint32_t>(hash >> (64 - kShardBits));
    const std::uint64_t verify =
        needsVerify_ ? state.fingerprint() : 0;
    Shard &shard = shards_[shard_idx];

    std::lock_guard<std::mutex> lock(shard.mutex);
    const InsertOutcome out = probeInsertLocked(
        shard_idx, shard, state, hash, verify, parent, rule_id, depth);
    return {out.id, out.inserted};
}

void
StateStore::insertBatch(BatchItem *items, std::size_t count)
{
    if (count == 0)
        return;

    constexpr std::uint32_t kEnd = 0xffffffffu;

    // Fingerprints are computed before any lock.  (Cell compression
    // happens under the lock instead, but only for the ~third of
    // successors that turn out to be new — cheaper in aggregate than
    // encoding every duplicate up front.)
    if (needsVerify_) {
        for (std::size_t i = 0; i < count; ++i)
            items[i].verify_ = items[i].state.fingerprint();
    }

    // Group by destination shard: per-shard singly-linked chains
    // through the items themselves, preserving batch order so
    // in-batch duplicates resolve exactly as sequential inserts.
    std::uint32_t head[kNumShards];
    std::uint32_t tail[kNumShards];
    for (std::uint32_t s = 0; s < kNumShards; ++s)
        head[s] = kEnd;
    for (std::size_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::uint32_t>(
            items[i].hash >> (64 - kShardBits));
        items[i].next_ = kEnd;
        if (head[s] == kEnd)
            head[s] = static_cast<std::uint32_t>(i);
        else
            items[tail[s]].next_ = static_cast<std::uint32_t>(i);
        tail[s] = static_cast<std::uint32_t>(i);
    }

    // One lock acquisition per destination shard per batch.
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
        if (head[s] == kEnd)
            continue;
        Shard &shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (std::uint32_t i = head[s]; i != kEnd;
             i = items[i].next_) {
            BatchItem &item = items[i];
            const InsertOutcome out = probeInsertLocked(
                s, shard, item.state, item.hash, item.verify_,
                item.parent, item.rule, item.depth);
            item.id = out.id;
            item.inserted = out.inserted;
            item.improved = out.improved;
        }
    }
}

StateStore::InsertOutcome
StateStore::probeInsertLocked(std::uint32_t shard_idx, Shard &shard,
                              const SystemState &state,
                              std::uint64_t hash, std::uint64_t verify,
                              std::uint32_t parent,
                              std::uint16_t rule_id,
                              std::uint32_t depth)
{
    ShardColumns &cols = shard.cols;
    // Grow at 3/4 load; power-of-two capacity keeps the probe a mask.
    cols.maybeGrow();

    std::uint64_t slot = hash & cols.mask();
    for (;;) {
        const std::uint32_t bucket = cols.bucketAt(slot);
        if (bucket == 0)
            break;
        const std::uint32_t off = bucket - 1;
        if (cols.hashAt(off) == hash) {
            // Identity: in compact mode the verification fingerprint,
            // in full mode the state bytes (falling back to the
            // fingerprint when the entry's block has been sealed cold
            // — see the class comment).  A probe-hash match with an
            // identity mismatch is a detected collision — the states
            // stay distinct and the probe continues.
            bool same;
            if (mode_ == StoreMode::Compact) {
                same = cols.verifyAt(off) == verify;
            } else if (const SystemState *stored =
                           shard.arena.fullIfMapped(off)) {
                same = *stored == state;
            } else {
                same = cols.verifyAt(off) == verify;
            }
            if (same) {
                const std::uint32_t id =
                    (shard_idx << kOffsetBits) | off;
                // Label-correcting duplicate: a shorter path to a
                // known state relabels its breadcrumbs (async
                // schedule; BFS duplicates are never shallower).
                std::atomic<std::uint32_t> &cell = cols.depthCell(off);
                if (depth < cell.load(std::memory_order_relaxed)) {
                    cell.store(depth, std::memory_order_relaxed);
                    cols.setParent(off, parent);
                    cols.setRule(off, rule_id);
                    return {id, false, true};
                }
                return {id, false, false};
            }
            cols.bumpCollisions();
        }
        slot = (slot + 1) & cols.mask();
    }

    // kOffsetMask itself is unusable: shard kNumShards-1 would pack
    // it to the kNoParent sentinel.  The per-run limit (when set) is
    // always <= that.
    if (cols.count() >= shard.limit) {
        throw StoreFullError(
            shard_idx,
            "StateStore shard " + std::to_string(shard_idx) +
                " full (per-shard limit " +
                std::to_string(shard.limit) +
                " entries); pre-size with --expect-states, raise the "
                "run's state budget, or pick another store kind "
                "(--store=ram|ram-compact|mmap|mmap-compact: compact "
                "kinds cut bytes/state ~10x, mmap kinds page sealed "
                "levels out of core)");
    }

    const std::uint32_t off =
        cols.append(hash, verify, parent, rule_id, depth);
    if (mode_ == StoreMode::Full)
        shard.arena.placeFull(off, state);
    else
        shard.arena.appendCell(shard_idx, off, state);

    cols.setBucket(slot, off + 1);
    total_.fetch_add(1, std::memory_order_release);
    return {(shard_idx << kOffsetBits) | off, true, false};
}

std::uint32_t
StateStore::maxDepthQuiescent() const
{
    std::uint32_t deepest = 0;
    for (const Shard &shard : shards_) {
        for (std::uint32_t off = 0; off < shard.cols.count(); ++off) {
            deepest = std::max(deepest,
                               shard.cols.depthCell(off).load(
                                   std::memory_order_relaxed));
        }
    }
    return deepest;
}

std::uint64_t
StateStore::countDepthAtMost(std::uint32_t depth) const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        for (std::uint32_t off = 0; off < shard.cols.count(); ++off) {
            if (shard.cols.depthCell(off).load(
                    std::memory_order_relaxed) <= depth)
                ++total;
        }
    }
    return total;
}

void
StateStore::sealLevel()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.arena.seal(shard.cols.count());
    }
}

std::uint64_t
StateStore::probeCollisions() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.cols.collisions();
    return total;
}

std::uint64_t
StateStore::mappedBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.mem->mappedBytes();
    return total;
}

std::uint64_t
StateStore::backingFileBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.mem->backingFileBytes();
    return total;
}

} // namespace cxl
