#include "checker/state_store.hh"

#include <stdexcept>

namespace cxl
{

StateStore::StateStore(std::size_t initial_buckets)
{
    std::size_t per_shard = initial_buckets / kNumShards;
    std::size_t cap = 16;
    while (cap < per_shard)
        cap <<= 1;
    for (Shard &shard : shards_) {
        shard.buckets.assign(cap, 0);
        shard.mask = cap - 1;
    }
}

std::pair<std::uint32_t, bool>
StateStore::insert(const SystemState &state, std::uint64_t hash,
                   std::uint32_t parent, std::uint16_t rule_id,
                   std::uint32_t depth)
{
    // Route by the top bits; probe by the low bits, so the two index
    // streams stay independent.
    const std::uint32_t shard_idx =
        static_cast<std::uint32_t>(hash >> (64 - kShardBits));
    Shard &shard = shards_[shard_idx];

    std::lock_guard<std::mutex> lock(shard.mutex);

    if ((shard.entries.size() + 1) * 10 >= shard.buckets.size() * 7)
        growShard(shard);

    std::uint64_t slot = hash & shard.mask;
    for (;;) {
        std::uint32_t bucket = shard.buckets[slot];
        if (bucket == 0) {
            // kOffsetMask itself is unusable: shard kNumShards-1 would
            // pack it to the kNoParent sentinel.
            if (shard.entries.size() >= kOffsetMask)
                throw std::length_error("StateStore shard full");
            Entry e;
            e.state = state;
            e.parent = parent;
            e.ruleId = rule_id;
            e.depth = depth;
            shard.entries.push_back(e);
            auto off =
                static_cast<std::uint32_t>(shard.entries.size() - 1);
            shard.buckets[slot] = off + 1;
            total_.fetch_add(1, std::memory_order_release);
            return {(shard_idx << kOffsetBits) | off, true};
        }
        std::uint32_t off = bucket - 1;
        if (shard.entries[off].state == state)
            return {(shard_idx << kOffsetBits) | off, false};
        slot = (slot + 1) & shard.mask;
    }
}

void
StateStore::growShard(Shard &shard)
{
    std::size_t cap = shard.buckets.size() * 2;
    shard.buckets.assign(cap, 0);
    shard.mask = cap - 1;
    for (std::uint32_t off = 0; off < shard.entries.size(); ++off) {
        std::uint64_t slot = shard.entries[off].state.hash() & shard.mask;
        while (shard.buckets[slot] != 0)
            slot = (slot + 1) & shard.mask;
        shard.buckets[slot] = off + 1;
    }
}

} // namespace cxl
