#include "checker/state_store.hh"

#include <cassert>

namespace cxl
{

StateStore::StateStore(std::size_t initial_buckets)
{
    std::size_t cap = 16;
    while (cap < initial_buckets)
        cap <<= 1;
    buckets_.assign(cap, 0);
    mask_ = cap - 1;
}

std::pair<std::uint32_t, bool>
StateStore::insert(const SystemState &state, std::uint32_t parent,
                   std::uint16_t rule_id, std::uint16_t depth)
{
    if ((entries_.size() + 1) * 10 >= buckets_.size() * 7)
        grow();

    std::uint64_t slot = state.hash() & mask_;
    for (;;) {
        std::uint32_t bucket = buckets_[slot];
        if (bucket == 0) {
            Entry e;
            e.state = state;
            e.parent = parent;
            e.ruleId = rule_id;
            e.depth = depth;
            entries_.push_back(e);
            auto idx = static_cast<std::uint32_t>(entries_.size() - 1);
            buckets_[slot] = idx + 1;
            return {idx, true};
        }
        std::uint32_t idx = bucket - 1;
        if (entries_[idx].state == state)
            return {idx, false};
        slot = (slot + 1) & mask_;
    }
}

void
StateStore::grow()
{
    std::size_t cap = buckets_.size() * 2;
    buckets_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
        std::uint64_t slot = entries_[idx].state.hash() & mask_;
        while (buckets_[slot] != 0)
            slot = (slot + 1) & mask_;
        buckets_[slot] = idx + 1;
    }
}

} // namespace cxl
