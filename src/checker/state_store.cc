#include "checker/state_store.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace cxl
{
namespace
{

/** Smallest power of two >= n, floored at 16. */
std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t cap = 16;
    while (cap < n)
        cap <<= 1;
    return cap;
}

/**
 * Zero-RLE codec for compact-mode state cells.  Reachable states are
 * sparse — most channel slots are empty and InlineVec zeroes its
 * tail — so run-length-eliding the zero bytes shrinks a ~240-byte
 * record to a few tens of bytes.  Cell layout:
 *
 *   [payload_len:u16] ([zero_run:u8][lit_len:u8][lit bytes...])*
 *
 * Decoding starts from an all-zero record, so a cell reproduces the
 * active prefix bit-exactly.  If the greedy pair encoding would ever
 * exceed the all-literal fallback (pathologically alternating bytes),
 * the cell is emitted as plain <=255-byte literal chunks instead,
 * which is what bounds StateStore::kMaxEncodedState.
 */
std::uint16_t
encodeCell(const SystemState &state, std::byte *dst)
{
    const auto *src = reinterpret_cast<const unsigned char *>(&state);
    const std::size_t len = state.activeBytes();

    // Worst-case greedy output: 2 bytes of pair overhead per literal
    // island; islands are at least 1 byte, so 3x the input bounds it.
    unsigned char tmp[2 + 3 * sizeof(SystemState) + 8];
    std::size_t pos = 0;
    std::size_t i = 0;
    while (i < len) {
        std::size_t zeros = 0;
        while (i + zeros < len && src[i + zeros] == 0)
            ++zeros;
        if (i + zeros == len)
            break; // trailing zeros are implicit
        std::size_t lit = 0;
        while (i + zeros + lit < len && src[i + zeros + lit] != 0)
            ++lit;
        std::size_t z = zeros, l = lit, at = i + zeros;
        while (z > 255) {
            tmp[pos++] = 255;
            tmp[pos++] = 0;
            z -= 255;
        }
        while (l > 255) {
            tmp[pos++] = static_cast<unsigned char>(z);
            tmp[pos++] = 255;
            std::memcpy(tmp + pos, src + at, 255);
            pos += 255;
            at += 255;
            l -= 255;
            z = 0;
        }
        tmp[pos++] = static_cast<unsigned char>(z);
        tmp[pos++] = static_cast<unsigned char>(l);
        std::memcpy(tmp + pos, src + at, l);
        pos += l;
        i += zeros + lit;
    }

    // All-literal fallback size (the kMaxEncodedState bound).
    const std::size_t fallback = len + 2 * (len / 255 + 1);
    if (pos > fallback) {
        pos = 0;
        std::size_t at = 0, rest = len;
        while (rest > 0) {
            const std::size_t l = std::min<std::size_t>(rest, 255);
            tmp[pos++] = 0;
            tmp[pos++] = static_cast<unsigned char>(l);
            std::memcpy(tmp + pos, src + at, l);
            pos += l;
            at += l;
            rest -= l;
        }
    }

    const auto payload = static_cast<std::uint16_t>(pos);
    std::memcpy(dst, &payload, 2);
    std::memcpy(dst + 2, tmp, pos);
    return static_cast<std::uint16_t>(2 + pos);
}

/** Inverse of encodeCell; @p out is fully overwritten. */
void
decodeCell(const std::byte *cell, SystemState &out)
{
    std::memset(&out, 0, sizeof(SystemState));
    auto *dst = reinterpret_cast<unsigned char *>(&out);
    std::uint16_t payload = 0;
    std::memcpy(&payload, cell, 2);
    const auto *src = reinterpret_cast<const unsigned char *>(cell) + 2;
    std::size_t pos = 0, at = 0;
    while (pos < payload) {
        at += src[pos];
        const std::size_t lit = src[pos + 1];
        std::memcpy(dst + at, src + pos + 2, lit);
        at += lit;
        pos += 2 + lit;
    }
}

} // namespace

StateStore::StateStore(std::size_t initial_buckets, StoreMode mode,
                       std::uint64_t capacity_limit)
    : mode_(mode)
{
    const std::size_t per_shard =
        pow2AtLeast(initial_buckets / kNumShards);
    // The per-shard ceiling from a total-state capacity: hashing
    // spreads entries near-uniformly, so the first shard to fill does
    // so at roughly capacity/kNumShards — close enough for a budget.
    std::uint32_t limit = kOffsetMask;
    if (capacity_limit != 0) {
        const std::uint64_t per =
            std::max<std::uint64_t>(1, capacity_limit / kNumShards);
        limit = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(per, kOffsetMask));
    }
    for (Shard &shard : shards_) {
        shard.limit = limit;
        shard.buckets.assign(per_shard, 0);
        shard.mask = per_shard - 1;
        // Fully reserve the arena (and offset-column) spines: they
        // must never reallocate, because readers index them lock-free
        // (see stateAt / stateInto).  Same for the depth-chunk spine,
        // which depthAt() walks lock-free in both modes.
        shard.depths.reserve((kOffsetMask >> kOffChunkBits) + 1);
        if (mode_ == StoreMode::Full) {
            shard.blocks.reserve((kOffsetMask >> kBlockBits) + 1);
        } else {
            // Compact cells are offset-addressed with 32 bits per
            // shard: up to 4 GiB of compressed frontier per shard,
            // far beyond the retained working set of any feasible
            // run.
            shard.blocks.reserve(
                (std::uint64_t{1} << 32) >> kByteBlockBits);
            shard.stateOffs.reserve((kOffsetMask >> kOffChunkBits) +
                                    1);
        }
    }
}

void
StateStore::reserveStates(std::uint64_t expected)
{
    const std::size_t per_shard = static_cast<std::size_t>(
        expected / kNumShards + 1);
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        // Buckets at 2x the entry hint keep the load factor <= 0.5
        // through the expected run, so probes stay short and no
        // rehash pause lands mid-exploration.
        const std::size_t cap = pow2AtLeast(2 * per_shard);
        if (cap > shard.mask + 1)
            sizeBuckets(shard, cap);
        shard.hashes.reserve(per_shard);
        if (mode_ == StoreMode::Compact)
            shard.verifies.reserve(per_shard);
        shard.parents.reserve(per_shard);
        shard.rules.reserve(per_shard);
    }
}

void
StateStore::stateInto(std::uint32_t id, SystemState &out) const
{
    const Shard &shard = shards_[shardOf(id)];
    const std::uint32_t off = id & kOffsetMask;
    if (mode_ == StoreMode::Full) {
        out = *blockState(shard, off);
        return;
    }
    const std::uint32_t byte_off = stateOffAt(shard, off);
    assert(byte_off >= shard.byteFloor &&
           "state released by sealLevel");
    decodeCell(shard.blocks[byte_off >> kByteBlockBits].get() +
                   (byte_off & (kByteBlockSize - 1)),
               out);
}

std::pair<std::uint32_t, bool>
StateStore::insert(const SystemState &state, std::uint64_t hash,
                   std::uint32_t parent, std::uint16_t rule_id,
                   std::uint32_t depth)
{
    // Route by the top bits; probe by the low bits, so the two index
    // streams stay independent.  The verification fingerprint
    // (compact mode) is computed before the lock is taken.
    const std::uint32_t shard_idx =
        static_cast<std::uint32_t>(hash >> (64 - kShardBits));
    const std::uint64_t verify =
        mode_ == StoreMode::Compact ? state.fingerprint() : 0;
    Shard &shard = shards_[shard_idx];

    std::lock_guard<std::mutex> lock(shard.mutex);
    const InsertOutcome out = probeInsertLocked(
        shard_idx, shard, state, hash, verify, parent, rule_id, depth);
    return {out.id, out.inserted};
}

void
StateStore::insertBatch(BatchItem *items, std::size_t count)
{
    if (count == 0)
        return;

    constexpr std::uint32_t kEnd = 0xffffffffu;

    // Fingerprints (compact mode) are computed before any lock.
    // (Cell compression happens under the lock instead, but only for
    // the ~third of successors that turn out to be new — cheaper in
    // aggregate than encoding every duplicate up front.)
    if (mode_ == StoreMode::Compact) {
        for (std::size_t i = 0; i < count; ++i)
            items[i].verify_ = items[i].state.fingerprint();
    }

    // Group by destination shard: per-shard singly-linked chains
    // through the items themselves, preserving batch order so
    // in-batch duplicates resolve exactly as sequential inserts.
    std::uint32_t head[kNumShards];
    std::uint32_t tail[kNumShards];
    for (std::uint32_t s = 0; s < kNumShards; ++s)
        head[s] = kEnd;
    for (std::size_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::uint32_t>(
            items[i].hash >> (64 - kShardBits));
        items[i].next_ = kEnd;
        if (head[s] == kEnd)
            head[s] = static_cast<std::uint32_t>(i);
        else
            items[tail[s]].next_ = static_cast<std::uint32_t>(i);
        tail[s] = static_cast<std::uint32_t>(i);
    }

    // One lock acquisition per destination shard per batch.
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
        if (head[s] == kEnd)
            continue;
        Shard &shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (std::uint32_t i = head[s]; i != kEnd;
             i = items[i].next_) {
            BatchItem &item = items[i];
            const InsertOutcome out = probeInsertLocked(
                s, shard, item.state, item.hash, item.verify_,
                item.parent, item.rule, item.depth);
            item.id = out.id;
            item.inserted = out.inserted;
            item.improved = out.improved;
        }
    }
}

StateStore::InsertOutcome
StateStore::probeInsertLocked(std::uint32_t shard_idx, Shard &shard,
                              const SystemState &state,
                              std::uint64_t hash, std::uint64_t verify,
                              std::uint32_t parent,
                              std::uint16_t rule_id,
                              std::uint32_t depth)
{
    // Grow at 3/4 load; power-of-two capacity keeps the probe a mask.
    if ((static_cast<std::uint64_t>(shard.count) + 1) * 4 >=
        (shard.mask + 1) * 3)
        growShard(shard);

    std::uint64_t slot = hash & shard.mask;
    for (;;) {
        const std::uint32_t bucket = shard.buckets[slot];
        if (bucket == 0)
            break;
        const std::uint32_t off = bucket - 1;
        if (shard.hashes[off] == hash) {
            // Identity: in compact mode the verification fingerprint,
            // in full mode the state bytes.  A probe-hash match with
            // an identity mismatch is a detected collision — the
            // states stay distinct and the probe continues.
            if (mode_ == StoreMode::Compact
                    ? shard.verifies[off] == verify
                    : *blockState(shard, off) == state) {
                const std::uint32_t id =
                    (shard_idx << kOffsetBits) | off;
                // Label-correcting duplicate: a shorter path to a
                // known state relabels its breadcrumbs (async
                // schedule; BFS duplicates are never shallower).
                std::atomic<std::uint32_t> &cell =
                    depthCell(shard, off);
                if (depth <
                    cell.load(std::memory_order_relaxed)) {
                    cell.store(depth, std::memory_order_relaxed);
                    shard.parents[off] = parent;
                    shard.rules[off] = rule_id;
                    return {id, false, true};
                }
                return {id, false, false};
            }
            ++shard.collisions;
        }
        slot = (slot + 1) & shard.mask;
    }

    // kOffsetMask itself is unusable: shard kNumShards-1 would pack
    // it to the kNoParent sentinel.  The per-run limit (when set) is
    // always <= that.
    if (shard.count >= shard.limit) {
        throw StoreFullError(
            shard_idx,
            "StateStore shard " + std::to_string(shard_idx) +
                " full (" + std::to_string(shard.limit) +
                " entries); pre-size with --expect-states or switch "
                "to the hash-compacted store (--compact)");
    }

    const std::uint32_t off = shard.count++;
    shard.hashes.push_back(hash);
    shard.parents.push_back(parent);
    shard.rules.push_back(rule_id);
    const std::uint32_t depth_chunk = off >> kOffChunkBits;
    if (depth_chunk == shard.depths.size()) {
        shard.depths.emplace_back(
            new std::atomic<std::uint32_t>[1u << kOffChunkBits]);
    }
    depthCell(shard, off).store(depth, std::memory_order_relaxed);

    if (mode_ == StoreMode::Full) {
        const std::uint32_t block = off >> kBlockBits;
        if (block == shard.blocks.size())
            shard.blocks.emplace_back(
                new std::byte[static_cast<std::size_t>(kBlockSize) *
                              sizeof(SystemState)]);
        new (shard.blocks[block].get() +
             static_cast<std::size_t>(off & (kBlockSize - 1)) *
                 sizeof(SystemState)) SystemState(state);
    } else {
        shard.verifies.push_back(verify);
        std::byte enc[kMaxEncodedState];
        const std::uint16_t enc_len = encodeCell(state, enc);
        // A cell never straddles byte blocks; skip a too-small tail.
        std::uint64_t at = shard.byteCursor;
        if ((at & (kByteBlockSize - 1)) + enc_len > kByteBlockSize)
            at = (at | (kByteBlockSize - 1)) + 1;
        if (at + enc_len > (std::uint64_t{1} << 32)) {
            throw StoreFullError(
                shard_idx,
                "StateStore shard " + std::to_string(shard_idx) +
                    " compact arena offset space exhausted (4 GiB of "
                    "encoded frontier); pre-size with "
                    "--expect-states so sealing keeps up, or lower "
                    "the run's budgets");
        }
        const std::uint32_t block =
            static_cast<std::uint32_t>(at >> kByteBlockBits);
        while (block >= shard.blocks.size())
            shard.blocks.emplace_back(
                new std::byte[kByteBlockSize]);
        std::memcpy(shard.blocks[block].get() +
                        (at & (kByteBlockSize - 1)),
                    enc, enc_len);
        const std::uint32_t chunk = off >> kOffChunkBits;
        if (chunk == shard.stateOffs.size())
            shard.stateOffs.emplace_back(
                new std::uint32_t[1u << kOffChunkBits]);
        shard.stateOffs[chunk][off & ((1u << kOffChunkBits) - 1)] =
            static_cast<std::uint32_t>(at);
        shard.byteCursor = at + enc_len;
    }

    shard.buckets[slot] = off + 1;
    total_.fetch_add(1, std::memory_order_release);
    return {(shard_idx << kOffsetBits) | off, true, false};
}

std::uint32_t
StateStore::maxDepthQuiescent() const
{
    std::uint32_t deepest = 0;
    for (const Shard &shard : shards_) {
        for (std::uint32_t off = 0; off < shard.count; ++off) {
            deepest = std::max(
                deepest, depthCell(shard, off)
                             .load(std::memory_order_relaxed));
        }
    }
    return deepest;
}

std::uint64_t
StateStore::countDepthAtMost(std::uint32_t depth) const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        for (std::uint32_t off = 0; off < shard.count; ++off) {
            if (depthCell(shard, off)
                    .load(std::memory_order_relaxed) <= depth)
                ++total;
        }
    }
    return total;
}

void
StateStore::sealLevel()
{
    if (mode_ != StoreMode::Compact)
        return;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        // Cells below the previous boundary belong to levels whose
        // expansion has finished; their state bytes will never be
        // read again.  Release whole byte blocks only — a partial
        // tail block is shared with the still-needed frontier.
        const std::uint64_t floor_block =
            shard.levelBoundaryByte >> kByteBlockBits;
        for (std::uint64_t b = shard.byteFloor >> kByteBlockBits;
             b < floor_block; ++b)
            shard.blocks[b].reset();
        shard.byteFloor = std::max(shard.byteFloor,
                                   floor_block << kByteBlockBits);
        shard.levelBoundaryByte = shard.byteCursor;
    }
}

std::uint64_t
StateStore::probeCollisions() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.collisions;
    return total;
}

void
StateStore::sizeBuckets(Shard &shard, std::size_t cap)
{
    shard.buckets.assign(cap, 0);
    shard.mask = cap - 1;
    // Rehash from the stored probe hashes — state bytes are never
    // touched, which also makes growth possible in compact mode where
    // old state bytes may already be released.
    for (std::uint32_t off = 0; off < shard.count; ++off) {
        std::uint64_t slot = shard.hashes[off] & shard.mask;
        while (shard.buckets[slot] != 0)
            slot = (slot + 1) & shard.mask;
        shard.buckets[slot] = off + 1;
    }
}

void
StateStore::growShard(Shard &shard)
{
    sizeBuckets(shard, (shard.mask + 1) * 2);
}

} // namespace cxl
