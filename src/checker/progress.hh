/**
 * @file
 * ProgressTicker: the shared rate limiter behind
 * ExploreOptions::progress.  Both engines call tick() wherever they
 * poll the governor (batch-flush granularity), and the ticker turns
 * that firehose into one serialized ProgressSnapshot per interval:
 *
 *  - transition deltas and the deepest-level watermark are folded
 *    into relaxed atomics on every tick (cheap enough for the flush
 *    path even with no observer installed);
 *  - the interval gate is a CAS on a nanosecond deadline, so exactly
 *    one racing worker wins each window;
 *  - the winner emits under a mutex, so the observer never sees
 *    concurrent calls (serve/ writes socket frames from it).
 *
 * Header-only; no engine state is read — callers pass the store size
 * at each tick, the ticker owns the rest of the sample.
 */

#ifndef CXL_CHECKER_PROGRESS_HH
#define CXL_CHECKER_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "checker/explorer.hh"
#include "support/resource.hh"

namespace cxl
{

class ProgressTicker
{
  public:
    /** @p fn may be empty (ticks then only fold counters, which keeps
     * the call sites unconditional).  Copies @p fn: the ticker can
     * outlive the options struct it was configured from. */
    ProgressTicker(ProgressFn fn, double intervalSeconds)
        : fn_(std::move(fn)),
          intervalNs_(intervalSeconds > 0
                          ? static_cast<std::int64_t>(
                                intervalSeconds * 1e9)
                          : 0),
          start_(std::chrono::steady_clock::now())
    {
    }

    ProgressTicker(const ProgressTicker &) = delete;
    ProgressTicker &operator=(const ProgressTicker &) = delete;

    /**
     * Fold @p deltaTransitions and the @p depth watermark into the
     * running sample and, if an observer is installed and the
     * interval elapsed, emit a snapshot with @p states as the state
     * count.  Thread-safe; called at governor-poll granularity.
     */
    void
    tick(std::uint64_t states, std::uint64_t deltaTransitions,
         std::uint32_t depth)
    {
        if (deltaTransitions)
            transitions_.fetch_add(deltaTransitions,
                                   std::memory_order_relaxed);
        std::uint32_t seen = depth_.load(std::memory_order_relaxed);
        while (depth > seen &&
               !depth_.compare_exchange_weak(
                   seen, depth, std::memory_order_relaxed)) {
        }
        if (!fn_)
            return;
        const std::int64_t now =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::int64_t due = next_.load(std::memory_order_relaxed);
        if (now < due)
            return;
        // One winner per window; losers return without blocking.
        if (!next_.compare_exchange_strong(due, now + intervalNs_,
                                           std::memory_order_relaxed))
            return;
        const std::lock_guard<std::mutex> lock(emit_);
        ProgressSnapshot p;
        p.states = states;
        p.transitions = transitions_.load(std::memory_order_relaxed);
        p.depth = depth_.load(std::memory_order_relaxed);
        p.rssBytes = currentRssBytes();
        p.seconds = static_cast<double>(now) * 1e-9;
        fn_(p);
    }

  private:
    const ProgressFn fn_;
    const std::int64_t intervalNs_;
    const std::chrono::steady_clock::time_point start_;
    std::atomic<std::uint64_t> transitions_{0};
    std::atomic<std::uint32_t> depth_{0};
    std::atomic<std::int64_t> next_{0};
    std::mutex emit_;
};

} // namespace cxl

#endif // CXL_CHECKER_PROGRESS_HH
